/// Landscape explorer: run any mechanism x adversary x mode combination
/// from the command line and see what the verifier concludes.
///
///   ./build/examples/landscape [mechanism] [adversary] [mode]
///
///   mechanism: nolock | alllock | alllockext | declock | inclock |
///              inclockext | cpylock          (default: nolock)
///   adversary: none | transient | chase | roving   (default: chase)
///   mode:      atomic | interruptible               (default: interruptible)
///
/// Examples:
///   ./build/examples/landscape declock transient
///   ./build/examples/landscape nolock chase atomic

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "src/apps/scenario.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

const std::map<std::string, locking::LockMechanism> kMechanisms = {
    {"nolock", locking::LockMechanism::kNoLock},
    {"alllock", locking::LockMechanism::kAllLock},
    {"alllockext", locking::LockMechanism::kAllLockExt},
    {"declock", locking::LockMechanism::kDecLock},
    {"inclock", locking::LockMechanism::kIncLock},
    {"inclockext", locking::LockMechanism::kIncLockExt},
    {"cpylock", locking::LockMechanism::kCpyLock},
};

const std::map<std::string, apps::AdversaryKind> kAdversaries = {
    {"none", apps::AdversaryKind::kNone},
    {"transient", apps::AdversaryKind::kTransientLeaver},
    {"chase", apps::AdversaryKind::kRelocChase},
    {"roving", apps::AdversaryKind::kRelocRoving},
};

template <typename Map>
bool lookup(const Map& map, const char* arg, typename Map::mapped_type& out) {
  const auto it = map.find(arg);
  if (it == map.end()) return false;
  out = it->second;
  return true;
}

int usage() {
  std::printf("usage: landscape [mechanism] [adversary] [mode]\n");
  std::printf("  mechanism: ");
  for (const auto& [name, _] : kMechanisms) std::printf("%s ", name.c_str());
  std::printf("\n  adversary: ");
  for (const auto& [name, _] : kAdversaries) std::printf("%s ", name.c_str());
  std::printf("\n  mode:      atomic interruptible\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  apps::LockScenarioConfig config;
  config.blocks = 64;
  config.block_size = 1024;
  config.mode = attest::ExecutionMode::kInterruptible;
  config.lock = locking::LockMechanism::kNoLock;
  config.adversary = apps::AdversaryKind::kRelocChase;
  config.writer_enabled = true;
  config.release_delay = sim::kMillisecond;

  if (argc > 1 && !lookup(kMechanisms, argv[1], config.lock)) return usage();
  // The availability probe writes into attested memory, which (correctly)
  // fails verification on its own under No-Lock; keep detection runs clean
  // so the verdict reflects the adversary alone.

  if (argc > 2 && !lookup(kAdversaries, argv[2], config.adversary)) return usage();
  config.writer_enabled = config.adversary == apps::AdversaryKind::kNone;
  if (argc > 3) {
    if (std::strcmp(argv[3], "atomic") == 0) {
      config.mode = attest::ExecutionMode::kAtomic;
    } else if (std::strcmp(argv[3], "interruptible") == 0) {
      config.mode = attest::ExecutionMode::kInterruptible;
    } else {
      return usage();
    }
  }

  std::printf("mechanism : %s\n", locking::lock_mechanism_name(config.lock).c_str());
  std::printf("adversary : %s\n", apps::adversary_name(config.adversary).c_str());
  std::printf("execution : %s\n\n", attest::execution_mode_name(config.mode).c_str());

  const auto outcome = apps::run_lock_scenario(config);
  if (!outcome.completed) {
    std::printf("the attestation round did not complete\n");
    return 1;
  }

  if (config.writer_enabled) {
    // The probe's own writes into attested memory fail the golden-image
    // comparison by design; the interesting columns are below.
    std::printf("verdict            : (availability probe: app writes into\n");
    std::printf("                     attested memory, golden comparison n/a)\n");
  } else {
    std::printf("verdict            : %s\n",
                outcome.detected ? "COMPROMISED (detected)" : "TRUSTED");
  }
  if (outcome.malware_present_at_ts) {
    std::printf("ground truth       : malware %s\n",
                outcome.malware_escaped ? "ESCAPED detection" : "was present & caught");
    std::printf("blocked mal. moves : %zu\n", outcome.malware_blocked_actions);
  }
  std::printf("MP duration        : %s\n",
              sim::format_duration(outcome.measurement_duration).c_str());
  std::printf("app writes admitted: %s (%zu issued during [t_s, t_r])\n",
              support::fmt_percent(outcome.writer_availability, 0).c_str(),
              outcome.writer_attempts_during);
  std::string at;
  if (outcome.consistency.at_ts) at += "t_s ";
  if (outcome.consistency.at_te) at += "t_e ";
  if (outcome.consistency.at_tr) at += "t_r";
  std::printf("report consistent  : %s\n", at.empty() ? "with NO instant" : at.c_str());
  return 0;
}
