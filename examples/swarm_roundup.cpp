/// Collective attestation of a device swarm: one verifier, one round trip,
/// one authenticated aggregate — instead of interrogating hundreds of
/// devices one by one.
///
/// Build & run:  ./build/examples/swarm_roundup

#include <cstdio>
#include <set>

#include "src/swarm/swarm.hpp"

using namespace rasc;

int main() {
  swarm::SwarmConfig config;
  config.device_count = 127;  // a building's worth of sensors
  config.branching = 2;

  std::printf("Swarm: %zu devices, binary spanning tree of depth %zu.\n\n",
              config.device_count, swarm::tree_depth(config.device_count, 2));

  // Three compromised devices hide in the swarm.
  const std::set<std::size_t> infected = {17, 64, 101};

  const auto collective = swarm::run_swarm_attestation(
      config, swarm::SwarmProtocol::kCollectiveTree, infected);
  const auto naive =
      swarm::run_swarm_attestation(config, swarm::SwarmProtocol::kNaiveStar, infected);

  std::printf("Collective (SEDA-style) round: %s\n",
              sim::format_duration(collective.total_time).c_str());
  std::printf("One-by-one baseline:           %s  (%.0fx slower)\n",
              sim::format_duration(naive.total_time).c_str(),
              static_cast<double>(naive.total_time) /
                  static_cast<double>(collective.total_time));

  std::printf("\nAggregate report: %zu/%zu healthy, MAC chain %s\n",
              collective.reported_good, collective.devices,
              collective.aggregate_authentic ? "authentic" : "FORGED");
  std::printf("Compromised devices named by the aggregate:");
  for (std::size_t id : collective.failed_ids) std::printf(" %zu", id);
  std::printf("\n");
  return collective.aggregate_authentic && collective.failed_ids.size() == 3 ? 0 : 1;
}
