/// ERASMUS for an unattended device: the prover measures itself every T_M
/// and a collector drops by every T_C to fetch and verify the history.
/// Transient malware that slips between two self-measurements stays
/// invisible; malware that overlaps one is convicted retroactively.
///
/// Build & run:  ./build/examples/erasmus_unattended

#include <cstdio>

#include "src/malware/transient.hpp"
#include "src/selfmeasure/erasmus.hpp"
#include "src/selfmeasure/qoa.hpp"
#include "src/support/rng.hpp"

using namespace rasc;

int main() {
  sim::Simulator simulator;
  sim::Device device(simulator, sim::DeviceConfig{"pipeline-sensor-7", 64 * 1024, 1024,
                                                  support::to_bytes("erasmus-key")});
  support::Xoshiro256 rng(11);
  support::Bytes image(device.memory().size());
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  device.memory().load(image);
  attest::Verifier verifier(crypto::HashKind::kSha256, support::to_bytes("erasmus-key"),
                            device.memory().snapshot(), 1024);

  // Self-measure every 5 s; the collector visits once a minute.
  selfm::ErasmusConfig config;
  config.period = 5 * sim::kSecond;
  config.history_capacity = 32;
  selfm::ErasmusProver prover(device, config);
  sim::Link to_prv(simulator, {});
  sim::Link to_vrf(simulator, {});
  selfm::Collector collector(verifier, prover, to_prv, to_vrf, 60 * sim::kSecond);

  // A transient intruder: resident from t=17 s to t=29 s, then gone.
  malware::TransientConfig mc;
  mc.block = 13;
  mc.infect_at = sim::from_seconds(17);
  mc.dwell = 12 * sim::kSecond;
  malware::TransientMalware intruder(device, mc);
  intruder.arm();

  prover.start(sim::from_seconds(180));
  collector.start(sim::from_seconds(190));
  simulator.run();

  std::printf("Unattended run: %llu self-measurements, %zu collections\n",
              static_cast<unsigned long long>(prover.measurements_taken()),
              collector.records().size());
  for (std::size_t i = 0; i < collector.records().size(); ++i) {
    const auto& record = collector.records()[i];
    std::printf("  collection %zu at %6.1f s: %zu new reports, %zu bad -> %s\n", i + 1,
                sim::to_seconds(record.at), record.reports_seen, record.reports_bad,
                record.detected ? "ALARM" : "all clear");
  }

  const auto& infection = intruder.history().front();
  std::vector<sim::Time> collection_times;
  for (const auto& record : collector.records()) collection_times.push_back(record.at);
  const auto analysis =
      selfm::analyze_infection(prover.measurement_times(), collection_times,
                               infection.begin, *infection.end);
  std::printf("\nIntruder resident [%.0f s, %.0f s]; malware erased itself long before\n",
              sim::to_seconds(infection.begin), sim::to_seconds(*infection.end));
  std::printf("any verifier contact, yet the stored history convicts it:\n");
  std::printf("  measured while resident at %.1f s, reported at %.1f s\n",
              sim::to_seconds(analysis.measured_at.value_or(0)),
              sim::to_seconds(analysis.reported_at.value_or(0)));
  std::printf("  end-to-end detection latency: %s (worst case T_M + T_C = %s)\n",
              sim::format_duration(analysis.detection_latency.value_or(0)).c_str(),
              sim::format_duration(selfm::worst_case_detection_latency(
                                       config.period, 60 * sim::kSecond))
                  .c_str());
  return 0;
}
