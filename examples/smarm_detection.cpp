/// SMARM in action: an interruptible measurement is evaded by roving
/// malware when the traversal order is public, but a secret shuffled order
/// catches it within a handful of rounds.
///
/// Build & run:  ./build/examples/smarm_detection

#include <cstdio>

#include "src/apps/scenario.hpp"
#include "src/smarm/escape.hpp"
#include "src/smarm/runner.hpp"

using namespace rasc;

int main() {
  // Act 1: the attack.  Interruptible sequential sweep, no locks; the
  // malware chases the sweep (copies itself into already-measured blocks).
  apps::LockScenarioConfig attack;
  attack.blocks = 32;
  attack.block_size = 1024;
  attack.mode = attest::ExecutionMode::kInterruptible;
  attack.lock = locking::LockMechanism::kNoLock;
  attack.adversary = apps::AdversaryKind::kRelocChase;
  const auto evasion = apps::run_lock_scenario(attack);
  std::printf("Act 1 — public sequential order, no locking:\n");
  std::printf("  verifier verdict: %s (malware %s)\n\n",
              evasion.detected ? "COMPROMISED" : "TRUSTED",
              evasion.malware_escaped ? "escaped by relocating" : "was caught");

  // Act 2: SMARM.  Same malware class, but now the order is a secret
  // permutation; the rover can only see *how many* blocks are done.
  std::printf("Act 2 — SMARM: secret shuffled order, repeated rounds:\n");
  smarm::RunnerConfig config;
  config.blocks = 32;
  config.block_size = 1024;
  config.rounds = 12;
  config.seed = 7;
  const auto outcome = smarm::run_rounds(config);
  std::printf("  %zu rounds run, %zu rounds detected the rover "
              "(it relocated %zu times)\n",
              outcome.rounds_run, outcome.detections, outcome.malware_relocations);
  std::printf("  per-round catch probability (analytic): %.2f\n",
              1.0 - smarm::single_round_escape(config.blocks));
  std::printf("  escape after %zu independent rounds    : %.2e\n\n", config.rounds,
              smarm::multi_round_escape(config.blocks, config.rounds));

  const std::size_t needed = smarm::rounds_for_target(config.blocks, 1e-6);
  std::printf("To push the false-negative rate below 1e-6, schedule %zu rounds —\n",
              needed);
  std::printf("the price SMARM pays for keeping the device interruptible without\n");
  std::printf("any memory locking.\n");
  return 0;
}
