/// SeED-style non-interactive attestation: the prover pushes reports at
/// times derived from a seed it shares with the verifier (and hides from
/// its own software).  The verifier never sends a single packet, yet it
/// notices missing, stale and bad reports.
///
/// Build & run:  ./build/examples/seed_offline

#include <cstdio>

#include "src/selfmeasure/seed.hpp"
#include "src/support/rng.hpp"

using namespace rasc;

int main() {
  sim::Simulator simulator;
  sim::Device device(simulator, sim::DeviceConfig{"meter-003", 32 * 1024, 1024,
                                                  support::to_bytes("meter-key")});
  support::Xoshiro256 rng(77);
  support::Bytes image(device.memory().size());
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  device.memory().load(image);
  attest::Verifier verifier(crypto::HashKind::kSha256, support::to_bytes("meter-key"),
                            device.memory().snapshot(), 1024);

  selfm::SeedConfig config;
  config.shared_seed = support::to_bytes("factory-provisioned-seed");
  config.epoch = 15 * sim::kSecond;
  config.response_window = 2 * sim::kSecond;

  // A mildly lossy uplink: some reports will vanish.
  sim::LinkConfig link_config;
  link_config.drop_probability = 0.15;
  link_config.seed = 99;
  sim::Link uplink(simulator, link_config);

  selfm::SeedProver prover(device, config, uplink);
  selfm::SeedVerifier watcher(simulator, verifier, config);
  prover.set_delivery_handler(
      [&](const attest::Report& report) { watcher.on_report(report); });

  // Malware shows up at t = 70 s and stays (it cannot predict the secret
  // schedule, so hiding is hopeless).
  simulator.schedule_at(sim::from_seconds(70), [&] {
    (void)device.memory().write(9 * 1024, support::to_bytes("implant"), simulator.now(),
                                sim::Actor::kMalware);
  });

  const sim::Time horizon = sim::from_seconds(150);
  prover.start(horizon);
  watcher.start(horizon);
  simulator.run();

  std::printf("Verifier log (never sent a packet):\n");
  for (const auto& epoch : watcher.outcomes()) {
    const char* status = epoch.missing        ? "MISSING (lost or suppressed?)"
                         : !epoch.verified_ok ? "BAD REPORT -> device compromised"
                                              : "ok";
    std::printf("  epoch %llu, expected ~%5.1f s: %s\n",
                static_cast<unsigned long long>(epoch.epoch),
                sim::to_seconds(epoch.expected_at), status);
  }
  std::printf("\n%zu detections, %zu missing epochs out of %zu.\n",
              watcher.detections(), watcher.false_alarms(), watcher.outcomes().size());
  std::printf("Unidirectional attestation is DoS-resistant and cheap, but loss is\n");
  std::printf("indistinguishable from suppression — the paper's SeED trade-off.\n");
  return 0;
}
