/// Quickstart: provision a simulated IoT prover, run one on-demand
/// attestation round from the verifier, then infect the device and watch
/// the next round fail.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/attest/protocol.hpp"
#include "src/support/rng.hpp"

using namespace rasc;

int main() {
  // 1. A discrete-event world with one prover device: 1 MiB of attested
  //    memory in 4 KiB blocks and a symmetric attestation key shared with
  //    the verifier (SMART-style ROM key).
  sim::Simulator simulator;
  sim::DeviceConfig dev_config;
  dev_config.id = "thermostat-42";
  dev_config.memory_size = 1 << 20;
  dev_config.block_size = 4096;
  dev_config.attestation_key = support::to_bytes("shared-attestation-key");
  sim::Device device(simulator, dev_config);

  // 2. Provision firmware (here: deterministic pseudo-random bytes) and
  //    hand the verifier the golden image.
  support::Xoshiro256 firmware_rng(2024);
  support::Bytes firmware(device.memory().size());
  for (auto& b : firmware) b = static_cast<std::uint8_t>(firmware_rng.below(256));
  device.memory().load(firmware);
  attest::Verifier verifier(crypto::HashKind::kSha256, dev_config.attestation_key,
                            device.memory().snapshot(), dev_config.block_size);

  // 3. A SMART-style atomic measurement process and a network.
  attest::ProverConfig prover_config;
  prover_config.mode = attest::ExecutionMode::kAtomic;
  attest::AttestationProcess mp(device, prover_config);
  sim::Link vrf_to_prv(simulator, {});
  sim::Link prv_to_vrf(simulator, {});
  attest::OnDemandProtocol protocol(device, verifier, mp, vrf_to_prv, prv_to_vrf);

  // 4. Round 1: clean device.
  protocol.run(1, [](attest::OnDemandTimings t) {
    std::printf("[%8.3f ms] round 1 verdict: %s (MP took %.3f ms)\n",
                sim::to_millis(t.t_verified), t.outcome.ok() ? "TRUSTED" : "COMPROMISED",
                sim::to_millis(t.t_e - t.t_s));
  });
  simulator.run();

  // 5. Malware lands in block 37.
  (void)device.memory().write(37 * 4096 + 100, support::to_bytes("\xde\xad\xbe\xef"),
                              simulator.now(), sim::Actor::kMalware);
  std::printf("[%8.3f ms] malware wrote 4 bytes into block 37\n",
              sim::to_millis(simulator.now()));

  // 6. Round 2: detection.
  protocol.run(2, [](attest::OnDemandTimings t) {
    std::printf("[%8.3f ms] round 2 verdict: %s (mac_ok=%d digest_ok=%d)\n",
                sim::to_millis(t.t_verified), t.outcome.ok() ? "TRUSTED" : "COMPROMISED",
                t.outcome.mac_ok, t.outcome.digest_ok);
  });
  simulator.run();

  std::printf("\nA single flipped bit anywhere in the 1 MiB region flips the\n");
  std::printf("measurement, while the report MAC still authenticates the device.\n");
  return 0;
}
