/// The paper's Section 2.5 motivating scenario as a runnable demo: a fire
/// alarm sampling its sensor every second while the verifier attests 1 GB
/// of prover memory — first atomically (SMART), then interruptibly.
///
/// Build & run:  ./build/examples/fire_alarm_demo
///
/// Pass `--trace-out FILE` to capture the SMART-style atomic run as a
/// Chrome trace_event JSON file; open it in chrome://tracing or Perfetto
/// to see the fire-alarm CPU segments stall behind the nested
/// attest.session > attest.measure span while the building burns.
///
/// Pass `--journal-out FILE` to capture the same run in the flight
/// recorder (deadline hits/misses, the alarm raise) as NDJSON; a short
/// event transcript is printed too.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/apps/scenario.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/timeline.hpp"
#include "src/obs/trace.hpp"

using namespace rasc;

namespace {

void run(const char* label, attest::ExecutionMode mode, obs::TraceSink* trace,
         obs::EventJournal* journal) {
  apps::FireAlarmScenarioConfig config;
  config.modeled_memory_bytes = 1ull << 30;  // the paper's 1 GB prover
  config.mode = mode;
  config.fire_after_mp_start = 100 * sim::kMillisecond;
  config.trace = trace;
  config.journal = journal;

  const auto outcome = apps::run_fire_alarm_scenario(config);
  std::printf("--- %s ---\n", label);
  std::printf("  measurement duration : %s\n",
              sim::format_duration(outcome.measurement_duration).c_str());
  std::printf("  fire -> alarm latency: %s\n",
              sim::format_duration(outcome.alarm_latency).c_str());
  std::printf("  worst sensor jitter  : %s\n",
              sim::format_duration(outcome.max_sample_delay).c_str());
  std::printf("  deadline misses      : %zu\n", outcome.deadline_misses);
  std::printf("  attestation verdict  : %s\n\n",
              outcome.attestation_ok ? "TRUSTED" : "COMPROMISED");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string journal_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--journal-out") == 0 && i + 1 < argc) {
      journal_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out FILE] [--journal-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("Fire alarm on an ODROID-class prover; 1 GB attested memory;\n");
  std::printf("the fire starts 100 ms after the measurement begins.\n\n");

  obs::TraceSink sink;
  obs::EventJournal journal;
  run("SMART-style atomic MP (uninterruptible)", attest::ExecutionMode::kAtomic,
      trace_out.empty() ? nullptr : &sink,
      journal_out.empty() ? nullptr : &journal);
  run("Interruptible MP (block-granular preemption)",
      attest::ExecutionMode::kInterruptible, nullptr, nullptr);

  if (!journal_out.empty()) {
    if (journal.write_ndjson(journal_out)) {
      std::printf("Flight-recorder journal of the atomic run written to %s\n",
                  journal_out.c_str());
      std::printf("%s\n", obs::render_journal_summary(journal).c_str());
    } else {
      std::fprintf(stderr, "failed to write journal to %s\n", journal_out.c_str());
      return 1;
    }
  }

  if (!trace_out.empty()) {
    if (sink.write_chrome_json(trace_out)) {
      std::printf("Chrome trace of the atomic run written to %s\n", trace_out.c_str());
      std::printf("(load it in chrome://tracing or https://ui.perfetto.dev)\n\n");
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      return 1;
    }
  }

  std::printf("Atomic attestation keeps the device 'safe' from roving malware but\n");
  std::printf("leaves the building to burn for ~7 seconds; interruptible attestation\n");
  std::printf("keeps the alarm prompt but — without further measures — opens the\n");
  std::printf("door to the evasion games explored in the other examples.\n");
  return 0;
}
