/// The paper's Section 2.5 motivating scenario as a runnable demo: a fire
/// alarm sampling its sensor every second while the verifier attests 1 GB
/// of prover memory — first atomically (SMART), then interruptibly.
///
/// Build & run:  ./build/examples/fire_alarm_demo

#include <cstdio>

#include "src/apps/scenario.hpp"

using namespace rasc;

namespace {

void run(const char* label, attest::ExecutionMode mode) {
  apps::FireAlarmScenarioConfig config;
  config.modeled_memory_bytes = 1ull << 30;  // the paper's 1 GB prover
  config.mode = mode;
  config.fire_after_mp_start = 100 * sim::kMillisecond;

  const auto outcome = apps::run_fire_alarm_scenario(config);
  std::printf("--- %s ---\n", label);
  std::printf("  measurement duration : %s\n",
              sim::format_duration(outcome.measurement_duration).c_str());
  std::printf("  fire -> alarm latency: %s\n",
              sim::format_duration(outcome.alarm_latency).c_str());
  std::printf("  worst sensor jitter  : %s\n",
              sim::format_duration(outcome.max_sample_delay).c_str());
  std::printf("  attestation verdict  : %s\n\n",
              outcome.attestation_ok ? "TRUSTED" : "COMPROMISED");
}

}  // namespace

int main() {
  std::printf("Fire alarm on an ODROID-class prover; 1 GB attested memory;\n");
  std::printf("the fire starts 100 ms after the measurement begins.\n\n");

  run("SMART-style atomic MP (uninterruptible)", attest::ExecutionMode::kAtomic);
  run("Interruptible MP (block-granular preemption)",
      attest::ExecutionMode::kInterruptible);

  std::printf("Atomic attestation keeps the device 'safe' from roving malware but\n");
  std::printf("leaves the building to burn for ~7 seconds; interruptible attestation\n");
  std::printf("keeps the alarm prompt but — without further measures — opens the\n");
  std::printf("door to the evasion games explored in the other examples.\n");
  return 0;
}
