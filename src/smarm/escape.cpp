#include "src/smarm/escape.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/support/rng.hpp"

namespace rasc::smarm {

double single_round_escape(std::size_t n_blocks) {
  if (n_blocks == 0) throw std::invalid_argument("n_blocks must be positive");
  return std::pow(1.0 - 1.0 / static_cast<double>(n_blocks),
                  static_cast<double>(n_blocks));
}

double multi_round_escape(std::size_t n_blocks, std::size_t rounds) {
  return std::pow(single_round_escape(n_blocks), static_cast<double>(rounds));
}

std::size_t rounds_for_target(std::size_t n_blocks, double target) {
  if (target <= 0.0 || target >= 1.0) throw std::invalid_argument("target in (0,1)");
  const double per_round = single_round_escape(n_blocks);
  return static_cast<std::size_t>(std::ceil(std::log(target) / std::log(per_round)));
}

namespace {

/// Play one shuffled measurement; returns true if the malware escapes.
bool play_round(std::size_t n, support::Xoshiro256& rng, std::size_t& pos) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (order[k] == pos) return false;  // measured while resident
    pos = rng.below(n);                 // optimal blind relocation
  }
  return true;
}

}  // namespace

bool play_escape_game(std::size_t n_blocks, std::size_t rounds, support::Xoshiro256& rng) {
  if (n_blocks == 0 || rounds == 0) {
    throw std::invalid_argument("play_escape_game: need blocks and rounds");
  }
  std::size_t pos = rng.below(n_blocks);
  for (std::size_t r = 0; r < rounds; ++r) {
    if (!play_round(n_blocks, rng, pos)) return false;
  }
  return true;
}

double simulate_single_round_escape(std::size_t n_blocks, std::size_t trials,
                                    std::uint64_t seed) {
  if (n_blocks == 0 || trials == 0) throw std::invalid_argument("need blocks and trials");
  support::Xoshiro256 rng(seed);
  std::size_t escapes = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    escapes += play_escape_game(n_blocks, 1, rng) ? 1 : 0;
  }
  return static_cast<double>(escapes) / static_cast<double>(trials);
}

double simulate_multi_round_escape(std::size_t n_blocks, std::size_t rounds,
                                   std::size_t trials, std::uint64_t seed) {
  if (n_blocks == 0 || trials == 0 || rounds == 0) {
    throw std::invalid_argument("need blocks, rounds and trials");
  }
  support::Xoshiro256 rng(seed);
  std::size_t escapes = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    escapes += play_escape_game(n_blocks, rounds, rng) ? 1 : 0;
  }
  return static_cast<double>(escapes) / static_cast<double>(trials);
}

}  // namespace rasc::smarm
