#pragma once
/// \file runner.hpp
/// Full-stack SMARM experiment: a simulated device running shuffled,
/// interruptible measurements against live self-relocating malware that
/// physically copies itself through device memory.  Detection is decided
/// by the verifier comparing the report against the golden image — nothing
/// is asserted from ground truth.

#include <cstdint>

#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/malware/relocating.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/device.hpp"

namespace rasc::smarm {

struct RunnerConfig {
  std::size_t blocks = 32;
  std::size_t block_size = 1024;
  std::size_t rounds = 5;
  crypto::HashKind hash = crypto::HashKind::kSha256;
  attest::TraversalOrder order = attest::TraversalOrder::kShuffledSecret;
  attest::ExecutionMode mode = attest::ExecutionMode::kInterruptible;
  malware::RelocationStrategy strategy = malware::RelocationStrategy::kRovingUniform;
  std::uint64_t seed = 1;  ///< varies malware randomness across trials
  /// Optional observability (not owned): `trace` receives the device
  /// timeline plus a "smarm.round" span per permutation round; `metrics`
  /// accumulates "smarm.rounds"/"smarm.detections" counters and a
  /// "smarm.round_duration_ms" histogram across runs.
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct RunnerOutcome {
  std::size_t rounds_run = 0;
  std::size_t detections = 0;  ///< rounds whose report failed verification
  bool ever_detected = false;
  std::size_t malware_relocations = 0;
  std::size_t malware_blocked_relocations = 0;
};

/// Run `config.rounds` back-to-back measurements on a fresh device with
/// the malware resident throughout; returns per-round detection counts.
RunnerOutcome run_rounds(const RunnerConfig& config);

/// Monte-Carlo over full-stack trials: fraction of trials whose FIRST
/// round failed to detect the malware (single-round escape rate through
/// the real measurement/verifier pipeline).
double full_stack_single_round_escape(const RunnerConfig& base, std::size_t trials);

}  // namespace rasc::smarm
