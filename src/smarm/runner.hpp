#pragma once
/// \file runner.hpp
/// Full-stack SMARM experiment: a simulated device running shuffled,
/// interruptible measurements against live self-relocating malware that
/// physically copies itself through device memory.  Detection is decided
/// by the verifier comparing the report against the golden image — nothing
/// is asserted from ground truth.

#include <cstdint>
#include <memory>
#include <optional>

#include "src/attest/golden.hpp"
#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/malware/relocating.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/device.hpp"

namespace rasc::smarm {

struct RunnerConfig {
  std::size_t blocks = 32;
  std::size_t block_size = 1024;
  std::size_t rounds = 5;
  crypto::HashKind hash = crypto::HashKind::kSha256;
  attest::TraversalOrder order = attest::TraversalOrder::kShuffledSecret;
  attest::ExecutionMode mode = attest::ExecutionMode::kInterruptible;
  malware::RelocationStrategy strategy = malware::RelocationStrategy::kRovingUniform;
  std::uint64_t seed = 1;  ///< varies malware randomness across trials
  /// Firmware provisioning seed; defaults to a per-trial value derived
  /// from `seed`.  Campaign cells pin it so every trial shares one golden
  /// image (prerequisite for a per-cell GoldenMeasurement).
  std::optional<std::uint64_t> provision_seed;
  /// Pre-digested golden image shared across trials of a cell.  Must match
  /// the provisioned firmware (same provision_seed / size / hash / key);
  /// when null the verifier digests its own golden from a device snapshot.
  std::shared_ptr<const attest::GoldenMeasurement> golden;
  /// Host-side digest cache for the prover's multi-round measurements.
  bool use_digest_cache = true;
  /// Optional observability (not owned): `trace` receives the device
  /// timeline plus a "smarm.round" span per permutation round; `metrics`
  /// accumulates "smarm.rounds"/"smarm.detections" counters and a
  /// "smarm.round_duration_ms" histogram across runs.
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct RunnerOutcome {
  std::size_t rounds_run = 0;
  std::size_t detections = 0;  ///< rounds whose report failed verification
  bool ever_detected = false;
  std::size_t malware_relocations = 0;
  std::size_t malware_blocked_relocations = 0;
};

/// Deterministic benign "firmware" image for a given provisioning seed —
/// exactly what run_rounds loads into device memory, exposed so campaign
/// factories can pre-digest the cell's golden image once.
support::Bytes firmware_image(std::size_t size, std::uint64_t provision_seed);

/// Run `config.rounds` back-to-back measurements on a fresh device with
/// the malware resident throughout; returns per-round detection counts.
RunnerOutcome run_rounds(const RunnerConfig& config);

/// Monte-Carlo over full-stack trials: fraction of trials whose FIRST
/// round failed to detect the malware (single-round escape rate through
/// the real measurement/verifier pipeline).
double full_stack_single_round_escape(const RunnerConfig& base, std::size_t trials);

}  // namespace rasc::smarm
