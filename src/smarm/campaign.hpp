#pragma once
/// \file campaign.hpp
/// SMARM escape-rate experiment campaigns (paper Section 3.2) for the
/// exp engine: a parameter sweep over measurement rounds and block counts
/// whose Bernoulli channel is "the roving malware escaped every round".
/// The empirical rate per cell is compared against the closed form
/// ((1-1/k)^k)^n — e^-1 ~ 0.37 at one round, below 1e-6 at ~13.

#include "src/exp/campaign.hpp"
#include "src/smarm/runner.hpp"

namespace rasc::smarm {

struct EscapeCampaignOptions {
  std::size_t trials = 1000;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Full-stack only: prover-side digest cache (host wall-clock
  /// optimization).  Exposed so benches can assert that cached and
  /// uncached campaigns produce byte-identical aggregates.
  bool use_digest_cache = true;
};

/// Abstract-game campaign: each trial plays play_escape_game() once from
/// its private RNG stream.  Default grid sweeps rounds x blocks, covering
/// the paper's two headline points (1 round @ ~0.37, 13 rounds @ <1e-6).
exp::CampaignSpec make_escape_campaign(const EscapeCampaignOptions& options = {});

/// Full-stack campaign: each trial runs a fresh simulated device (real
/// shuffled measurement, real relocation writes, real verifier) for one
/// round and reports whether the verifier missed the malware.  Slower per
/// trial, so the default grid is small; per-round duration histograms are
/// merged across trials into each cell's metrics.
exp::CampaignSpec make_fullstack_escape_campaign(const EscapeCampaignOptions& options = {});

}  // namespace rasc::smarm
