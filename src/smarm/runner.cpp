#include "src/smarm/runner.hpp"

#include "src/support/rng.hpp"

namespace rasc::smarm {

support::Bytes firmware_image(std::size_t size, std::uint64_t provision_seed) {
  support::Xoshiro256 rng(provision_seed);
  support::Bytes image(size);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  return image;
}

RunnerOutcome run_rounds(const RunnerConfig& config) {
  sim::Simulator simulator;
  sim::DeviceConfig dev_config;
  dev_config.id = "prv-smarm";
  dev_config.memory_size = config.blocks * config.block_size;
  dev_config.block_size = config.block_size;
  dev_config.attestation_key = support::to_bytes("smarm-shared-key");
  sim::Device device(simulator, dev_config);
  const std::uint64_t provision_seed =
      config.provision_seed.value_or(0xf1f0 + config.seed);
  device.memory().load(firmware_image(device.memory().size(), provision_seed));

  // Challenge stream decorrelated from the trial seed so Monte-Carlo
  // trials exercise independent challenges, not one replayed sequence.
  std::uint64_t challenge_state = config.seed ^ 0xc0ffee;
  attest::Verifier verifier =
      config.golden != nullptr
          ? attest::Verifier(config.golden, dev_config.attestation_key,
                             support::splitmix64(challenge_state))
          : attest::Verifier(config.hash, dev_config.attestation_key,
                             device.memory().snapshot(), config.block_size,
                             support::splitmix64(challenge_state));

  attest::ProverConfig prover_config;
  prover_config.hash = config.hash;
  prover_config.mode = config.mode;
  prover_config.order = config.order;
  prover_config.priority = 10;
  prover_config.use_digest_cache = config.use_digest_cache;
  attest::AttestationProcess mp(device, prover_config);

  malware::RelocatingConfig mal_config;
  mal_config.initial_block = config.seed % config.blocks;
  mal_config.strategy = config.strategy;
  mal_config.priority = 50;  // can interrupt the measurement
  mal_config.seed = 0x5eed0000 + config.seed;
  malware::SelfRelocatingMalware malware(device, mal_config);
  malware.infect_initial();
  mp.set_observer([&malware](std::size_t done, std::size_t total) {
    malware.on_measurement_progress(done, total);
  });

  simulator.set_trace_sink(config.trace);
  if (config.metrics != nullptr) verifier.set_metrics(config.metrics);

  RunnerOutcome outcome;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    malware.on_measurement_start();
    const support::Bytes challenge = verifier.issue_challenge();
    attest::MeasurementContext context{device.id(), challenge, round + 1};
    bool done = false;
    attest::VerifyOutcome verdict;
    sim::Time t_s = 0;
    sim::Time t_e = 0;
    const sim::Time round_start = simulator.now();
    if (config.trace != nullptr) {
      config.trace->begin(round_start, "smarm", "smarm.round",
                          {obs::arg("round", static_cast<std::uint64_t>(round + 1))});
    }
    mp.start(std::move(context), [&](attest::AttestationResult result) {
      verdict = verifier.verify(result.report, /*expect_challenge=*/true);
      t_s = result.t_s;
      t_e = result.t_e;
      done = true;
    });
    simulator.run();
    if (config.trace != nullptr) {
      config.trace->end(simulator.now(), "smarm",
                        {obs::arg("detected", std::string(done && !verdict.ok() ? "yes" : "no"))});
    }
    if (!done) break;  // should not happen: the simulation quiesced early
    ++outcome.rounds_run;
    if (config.metrics != nullptr) {
      config.metrics->counter("smarm.rounds").inc();
      config.metrics->histogram("smarm.round_duration_ms").record(sim::to_millis(t_e - t_s));
    }
    if (!verdict.ok()) {
      ++outcome.detections;
      outcome.ever_detected = true;
      if (config.metrics != nullptr) config.metrics->counter("smarm.detections").inc();
    }
  }
  outcome.malware_relocations = malware.relocations();
  outcome.malware_blocked_relocations = malware.blocked_relocations();
  return outcome;
}

double full_stack_single_round_escape(const RunnerConfig& base, std::size_t trials) {
  std::size_t escapes = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    RunnerConfig config = base;
    config.rounds = 1;
    config.seed = base.seed * 1000003 + t;
    const RunnerOutcome outcome = run_rounds(config);
    if (outcome.rounds_run == 1 && outcome.detections == 0) ++escapes;
  }
  return static_cast<double>(escapes) / static_cast<double>(trials);
}

}  // namespace rasc::smarm
