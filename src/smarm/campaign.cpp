#include "src/smarm/campaign.hpp"

#include <map>
#include <memory>

#include "src/smarm/escape.hpp"
#include "src/smarm/runner.hpp"

namespace rasc::smarm {

exp::CampaignSpec make_escape_campaign(const EscapeCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "smarm_escape";
  // blocks=8 is where the paper's "13 checks push escape below 1e-6"
  // holds exactly ((1-1/8)^(8*13) ~ 9.3e-7); the larger counts trace the
  // (1-1/n)^n -> e^-1 asymptote (e^-13 ~ 2.3e-6, just above 1e-6).
  spec.grid.axis("rounds", {std::int64_t{1}, std::int64_t{2}, std::int64_t{3},
                            std::int64_t{5}, std::int64_t{8}, std::int64_t{13}});
  spec.grid.axis("blocks",
                 {std::int64_t{8}, std::int64_t{16}, std::int64_t{64}, std::int64_t{1024}});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  spec.trial = [](const exp::GridPoint& point, exp::TrialContext& ctx) {
    const auto rounds = static_cast<std::size_t>(point.i64("rounds"));
    const auto blocks = static_cast<std::size_t>(point.i64("blocks"));
    exp::TrialOutput out;
    out.bernoulli(play_escape_game(blocks, rounds, ctx.rng));
    return out;
  };
  return spec;
}

exp::CampaignSpec make_fullstack_escape_campaign(const EscapeCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "smarm_escape_fullstack";
  const std::vector<std::int64_t> block_counts{8, 12, 16};
  spec.grid.axis("blocks", {std::int64_t{8}, std::int64_t{12}, std::int64_t{16}});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  // Device simulation is ~ms per trial; keep work units small enough that
  // the pool load-balances even for modest trial counts.
  spec.shard_size = 8;
  // One firmware image and one pre-digested GoldenMeasurement per cell
  // (blocks value), shared by const reference across all trial workers —
  // the verifier no longer rehashes the golden image once per trial.
  constexpr std::size_t kBlockSize = 256;
  constexpr std::uint64_t kProvisionSeedBase = 0xf1f00000;
  auto goldens = std::make_shared<
      std::map<std::int64_t, std::shared_ptr<const attest::GoldenMeasurement>>>();
  for (const std::int64_t blocks : block_counts) {
    const auto image = firmware_image(static_cast<std::size_t>(blocks) * kBlockSize,
                                      kProvisionSeedBase + static_cast<std::uint64_t>(blocks));
    (*goldens)[blocks] = std::make_shared<const attest::GoldenMeasurement>(
        image, kBlockSize, crypto::HashKind::kSha256,
        support::to_bytes("smarm-shared-key"));
  }
  const bool use_digest_cache = options.use_digest_cache;
  spec.trial = [goldens, use_digest_cache](const exp::GridPoint& point,
                                           exp::TrialContext& ctx) {
    RunnerConfig config;
    config.blocks = static_cast<std::size_t>(point.i64("blocks"));
    config.block_size = kBlockSize;
    config.rounds = 1;
    config.seed = ctx.seed;
    config.use_digest_cache = use_digest_cache;
    config.provision_seed =
        kProvisionSeedBase + static_cast<std::uint64_t>(point.i64("blocks"));
    config.golden = goldens->at(point.i64("blocks"));
    exp::TrialOutput out;
    config.metrics = &out.metrics;
    const RunnerOutcome outcome = run_rounds(config);
    out.bernoulli(outcome.rounds_run == 1 && outcome.detections == 0);
    out.value("relocations", static_cast<double>(outcome.malware_relocations));
    return out;
  };
  return spec;
}

}  // namespace rasc::smarm
