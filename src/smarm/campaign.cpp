#include "src/smarm/campaign.hpp"

#include "src/smarm/escape.hpp"

namespace rasc::smarm {

exp::CampaignSpec make_escape_campaign(const EscapeCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "smarm_escape";
  // blocks=8 is where the paper's "13 checks push escape below 1e-6"
  // holds exactly ((1-1/8)^(8*13) ~ 9.3e-7); the larger counts trace the
  // (1-1/n)^n -> e^-1 asymptote (e^-13 ~ 2.3e-6, just above 1e-6).
  spec.grid.axis("rounds", {std::int64_t{1}, std::int64_t{2}, std::int64_t{3},
                            std::int64_t{5}, std::int64_t{8}, std::int64_t{13}});
  spec.grid.axis("blocks",
                 {std::int64_t{8}, std::int64_t{16}, std::int64_t{64}, std::int64_t{1024}});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  spec.trial = [](const exp::GridPoint& point, exp::TrialContext& ctx) {
    const auto rounds = static_cast<std::size_t>(point.i64("rounds"));
    const auto blocks = static_cast<std::size_t>(point.i64("blocks"));
    exp::TrialOutput out;
    out.bernoulli(play_escape_game(blocks, rounds, ctx.rng));
    return out;
  };
  return spec;
}

exp::CampaignSpec make_fullstack_escape_campaign(const EscapeCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "smarm_escape_fullstack";
  spec.grid.axis("blocks", {std::int64_t{8}, std::int64_t{12}, std::int64_t{16}});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  // Device simulation is ~ms per trial; keep work units small enough that
  // the pool load-balances even for modest trial counts.
  spec.shard_size = 8;
  spec.trial = [](const exp::GridPoint& point, exp::TrialContext& ctx) {
    RunnerConfig config;
    config.blocks = static_cast<std::size_t>(point.i64("blocks"));
    config.block_size = 256;
    config.rounds = 1;
    config.seed = ctx.seed;
    exp::TrialOutput out;
    config.metrics = &out.metrics;
    const RunnerOutcome outcome = run_rounds(config);
    out.bernoulli(outcome.rounds_run == 1 && outcome.detections == 0);
    out.value("relocations", static_cast<double>(outcome.malware_relocations));
    return out;
  };
  return spec;
}

}  // namespace rasc::smarm
