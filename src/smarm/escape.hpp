#pragma once
/// \file escape.hpp
/// SMARM escape-probability analysis (paper Section 3.2).  The adversary
/// knows how many blocks have been measured but not which; its optimal
/// strategy is to relocate to a uniformly random block during every block
/// measurement.  Each of the n steps then catches it with probability 1/n,
/// so a single pass lets it escape with probability (1 - 1/n)^n -> e^-1,
/// and r independent passes with ((1-1/n)^n)^r — hence the paper's "~13
/// checks for < 10^-6".

#include <cstddef>
#include <cstdint>

#include "src/support/rng.hpp"

namespace rasc::smarm {

/// Closed-form single-round escape probability (1 - 1/n)^n.
double single_round_escape(std::size_t n_blocks);

/// Escape probability after `rounds` independent shuffled measurements.
double multi_round_escape(std::size_t n_blocks, std::size_t rounds);

/// Smallest number of rounds driving escape below `target` (e.g. 1e-6).
std::size_t rounds_for_target(std::size_t n_blocks, double target);

/// Monte-Carlo estimate of the single-round escape probability by playing
/// the abstract SMARM game `trials` times: a secret permutation is drawn,
/// the malware starts in a uniform block and relocates uniformly after
/// every measured block; it escapes the round iff it is never resident in
/// the block being measured.
double simulate_single_round_escape(std::size_t n_blocks, std::size_t trials,
                                    std::uint64_t seed);

/// Monte-Carlo estimate of the probability of escaping ALL of `rounds`
/// consecutive shuffled measurements.
double simulate_multi_round_escape(std::size_t n_blocks, std::size_t rounds,
                                   std::size_t trials, std::uint64_t seed);

/// Play ONE multi-round game with an externally supplied RNG: the malware
/// starts in a uniform block, each round draws a fresh secret permutation,
/// and the malware relocates uniformly after every measured block.
/// Returns true iff it survives every round undetected.  This is the
/// trial primitive the exp campaign engine drives from its deterministic
/// per-trial streams; the simulate_* helpers above are thin loops over it.
bool play_escape_game(std::size_t n_blocks, std::size_t rounds, support::Xoshiro256& rng);

}  // namespace rasc::smarm
