#include "src/softatt/checksum.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

#include "src/crypto/hash.hpp"
#include "src/support/rng.hpp"

namespace rasc::softatt {

namespace {

/// Seed the address generator from the challenge (the real SWATT uses an
/// RC4 stream; any challenge-keyed generator with full-range addresses
/// preserves the construction's structure).
std::uint64_t seed_from_challenge(support::ByteView challenge) {
  const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha256, challenge);
  return support::get_u64_be(support::ByteView(digest.data(), 8));
}

}  // namespace

std::size_t resolve_iterations(std::size_t memory_size, const ChecksumConfig& config) {
  return config.iterations == 0 ? memory_size * 4 : config.iterations;
}

support::Bytes compute_checksum(support::ByteView memory, support::ByteView challenge,
                                const ChecksumConfig& config) {
  if (memory.empty()) throw std::invalid_argument("compute_checksum: empty memory");
  const std::size_t iterations = resolve_iterations(memory.size(), config);
  support::Xoshiro256 rng(seed_from_challenge(challenge));

  // Eight-lane state initialized from the challenge; each read perturbs
  // one lane, and lanes are cross-mixed so reordering reads changes the
  // result (the checksum is strongly order-dependent).
  std::uint64_t state[8];
  {
    const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha512, challenge);
    for (int i = 0; i < 8; ++i) {
      state[i] = support::get_u64_be(support::ByteView(digest.data() + 8 * i, 8));
    }
  }

  for (std::size_t k = 0; k < iterations; ++k) {
    const std::size_t addr = rng.below(memory.size());
    const std::uint64_t value = memory[addr];
    std::uint64_t& lane = state[k & 7];
    lane += value ^ std::rotl(state[(k + 1) & 7], 13) ^ (addr * 0x9e3779b97f4a7c15ULL);
    lane = std::rotl(lane, 29);
    state[(k + 5) & 7] ^= lane;
  }

  support::Bytes out(64);
  for (int i = 0; i < 8; ++i) {
    support::put_u64_be(support::MutableByteView(out.data() + 8 * i, 8), state[i]);
  }
  return out;
}

double traversal_coverage(std::size_t memory_size, support::ByteView challenge,
                          const ChecksumConfig& config) {
  const std::size_t iterations = resolve_iterations(memory_size, config);
  support::Xoshiro256 rng(seed_from_challenge(challenge));
  std::vector<bool> touched(memory_size, false);
  std::size_t distinct = 0;
  for (std::size_t k = 0; k < iterations; ++k) {
    const std::size_t addr = rng.below(memory_size);
    if (!touched[addr]) {
      touched[addr] = true;
      ++distinct;
    }
  }
  return static_cast<double>(distinct) / static_cast<double>(memory_size);
}

}  // namespace rasc::softatt
