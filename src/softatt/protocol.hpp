#pragma once
/// \file protocol.hpp
/// Timing-based software attestation protocol (Pioneer-style, paper
/// Section 2.1): the verifier challenges the prover, the prover computes
/// the checksum over its memory, and the verifier accepts iff the value is
/// right AND the response arrived within a deadline.  A memory-shadowing
/// adversary (malware keeps a pristine copy and redirects the checksum's
/// reads) returns the correct value but pays a per-access penalty — the
/// latency by which it is "caught".  The module also reproduces the
/// papers' caveat ([8]): with enough network jitter or a generous
/// deadline, the timing gap drowns and the scheme fails.

#include <functional>
#include <optional>

#include "src/sim/device.hpp"
#include "src/sim/network.hpp"
#include "src/softatt/checksum.hpp"

namespace rasc::softatt {

/// How the prover executes the checksum.
enum class ProverBehavior {
  kHonest,     ///< reads live memory directly
  kShadowing,  ///< malware redirects reads to a pristine copy (correct
               ///< value, slower) — the classic evasion attempt
};

struct SoftAttConfig {
  ChecksumConfig checksum{};
  /// Honest per-read cost on the prover (address gen + load + mix).
  sim::Duration per_access = 60;  // ns
  /// Multiplicative slowdown of every read under shadowing (bounds-check
  /// plus redirection, the Pioneer argument).
  double shadowing_overhead = 1.30;
  /// Verifier deadline: expected honest compute time + RTT + this slack.
  sim::Duration deadline_slack = 500 * sim::kMicrosecond;
  int prover_priority = 10;
  std::size_t challenge_size = 16;
};

struct SoftAttOutcome {
  bool completed = false;
  bool checksum_ok = false;
  bool on_time = false;
  bool accepted = false;  ///< checksum_ok && on_time
  sim::Duration response_time = 0;  ///< challenge sent -> response received
  sim::Duration deadline = 0;
};

/// One software-attestation round over the given links.  The verifier
/// holds `golden` (the expected memory image).  If `behavior` is
/// kShadowing, the prover computes over `golden` regardless of the actual
/// (possibly infected) memory content, at the shadowing overhead.
class SoftwareAttestation {
 public:
  SoftwareAttestation(sim::Device& device, support::Bytes golden,
                      sim::Link& vrf_to_prv, sim::Link& prv_to_vrf,
                      SoftAttConfig config = {});
  ~SoftwareAttestation();  // out-of-line: ChecksumProcess is incomplete here

  void run(ProverBehavior behavior, std::uint64_t round,
           std::function<void(SoftAttOutcome)> done);

  /// Expected honest computation time (exposed for tests/benches).
  sim::Duration honest_compute_time() const;

 private:
  class ChecksumProcess;

  sim::Device& device_;
  support::Bytes golden_;
  sim::Link& vrf_to_prv_;
  sim::Link& prv_to_vrf_;
  SoftAttConfig config_;
  std::unique_ptr<ChecksumProcess> process_;
};

}  // namespace rasc::softatt
