#pragma once
/// \file checksum.hpp
/// Software-based attestation checksum in the SWATT/Pioneer tradition
/// (paper Section 2.1): a one-time function that traverses memory in a
/// pseudorandom, challenge-dependent order and folds each read into a
/// running state with add-rotate-xor mixing.  Security rests not on
/// cryptographic strength but on the *time* an adversary loses when every
/// memory access must be checked or redirected.

#include <cstdint>

#include "src/support/bytes.hpp"

namespace rasc::softatt {

struct ChecksumConfig {
  /// Number of pseudorandom memory reads.  SWATT needs O(n ln n) accesses
  /// for full coverage with high probability.
  std::size_t iterations = 0;  ///< 0 = 4 * memory_size (coupon-collector safe)
};

/// Compute the checksum of `memory` under `challenge`.
/// Deterministic: the verifier evaluates the same function on its copy.
support::Bytes compute_checksum(support::ByteView memory, support::ByteView challenge,
                                const ChecksumConfig& config = {});

/// Effective iteration count for a memory size (resolves the 0 default).
std::size_t resolve_iterations(std::size_t memory_size, const ChecksumConfig& config);

/// Fraction of distinct memory addresses touched by the traversal —
/// coverage diagnostic used by tests and the bench.
double traversal_coverage(std::size_t memory_size, support::ByteView challenge,
                          const ChecksumConfig& config = {});

}  // namespace rasc::softatt
