#include "src/softatt/protocol.hpp"

#include "src/crypto/drbg.hpp"

namespace rasc::softatt {

/// The checksum computation as a single non-preemptible CPU segment (the
/// whole point of software attestation is that nothing else may run).
class SoftwareAttestation::ChecksumProcess final : public sim::Process {
 public:
  ChecksumProcess(sim::Device& device, int priority)
      : sim::Process("softatt/checksum", priority), device_(device) {}

  void begin(sim::Duration duration, std::function<void()> on_done) {
    duration_ = duration;
    on_done_ = std::move(on_done);
    pending_ = true;
    device_.cpu().make_ready(*this);
  }

  std::optional<sim::Segment> next_segment() override {
    if (!pending_) return std::nullopt;
    pending_ = false;
    return sim::Segment{duration_, [this] {
                          if (on_done_) on_done_();
                        }};
  }

 private:
  sim::Device& device_;
  sim::Duration duration_ = 0;
  std::function<void()> on_done_;
  bool pending_ = false;
};

SoftwareAttestation::SoftwareAttestation(sim::Device& device, support::Bytes golden,
                                         sim::Link& vrf_to_prv, sim::Link& prv_to_vrf,
                                         SoftAttConfig config)
    : device_(device),
      golden_(std::move(golden)),
      vrf_to_prv_(vrf_to_prv),
      prv_to_vrf_(prv_to_vrf),
      config_(config),
      process_(std::make_unique<ChecksumProcess>(device, config.prover_priority)) {}

SoftwareAttestation::~SoftwareAttestation() = default;

sim::Duration SoftwareAttestation::honest_compute_time() const {
  const std::size_t iterations =
      resolve_iterations(device_.memory().size(), config_.checksum);
  return config_.per_access * iterations;
}

void SoftwareAttestation::run(ProverBehavior behavior, std::uint64_t round,
                              std::function<void(SoftAttOutcome)> done) {
  auto& sim = device_.sim();

  support::Bytes seed(8);
  support::put_u64_be(seed, 0x50f7a77 + round);
  crypto::HmacDrbg drbg(seed);
  auto challenge = drbg.generate(config_.challenge_size);

  auto outcome = std::make_shared<SoftAttOutcome>();
  const sim::Time t_sent = sim.now();
  // Deadline known to Vrf: honest compute + generous two base latencies.
  outcome->deadline = honest_compute_time() + 2 * vrf_to_prv_.config().base_latency +
                      config_.deadline_slack;

  vrf_to_prv_.send(challenge, [this, outcome, behavior, t_sent, challenge,
                               done = std::move(done)](support::Bytes) mutable {
    // Prover computes the checksum as one uninterruptible segment.
    sim::Duration compute = honest_compute_time();
    if (behavior == ProverBehavior::kShadowing) {
      compute = static_cast<sim::Duration>(static_cast<double>(compute) *
                                           config_.shadowing_overhead);
    }
    process_->begin(compute, [this, outcome, behavior, t_sent,
                              challenge = std::move(challenge),
                              done = std::move(done)]() mutable {
      // The value is computed over live memory (honest) or the pristine
      // shadow copy (adversary).
      const support::ByteView source =
          behavior == ProverBehavior::kHonest
              ? support::ByteView(device_.memory().read(0, device_.memory().size()))
              : support::ByteView(golden_);
      auto checksum = compute_checksum(source, challenge, config_.checksum);

      prv_to_vrf_.send(std::move(checksum), [this, outcome, t_sent,
                                             challenge = std::move(challenge),
                                             done = std::move(done)](
                                                support::Bytes response) mutable {
        auto& sim = device_.sim();
        outcome->completed = true;
        outcome->response_time = sim.now() - t_sent;
        const auto expected = compute_checksum(golden_, challenge, config_.checksum);
        outcome->checksum_ok = support::ct_equal(response, expected);
        outcome->on_time = outcome->response_time <= outcome->deadline;
        outcome->accepted = outcome->checksum_ok && outcome->on_time;
        done(*outcome);
      });
    });
  });
}

}  // namespace rasc::softatt
