#include "src/exp/report.hpp"

#include <fstream>

#include "src/obs/json.hpp"

namespace rasc::exp {

namespace {

void write_param(obs::JsonWriter& w, const ParamValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    w.number_value(static_cast<double>(*i));
  } else if (const auto* d = std::get_if<double>(&value)) {
    w.number_value(*d);
  } else {
    w.string_value(std::get<std::string>(value));
  }
}

}  // namespace

std::string campaign_json(const CampaignResult& result) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.string_value(result.name);
  w.key("campaign");
  w.begin_object();
  w.key("base_seed");
  w.uint_value(result.base_seed);
  w.key("trials_per_point");
  w.uint_value(result.trials_per_point);
  w.key("cells");
  w.begin_array();
  for (const auto& cell : result.cells) {
    w.begin_object();
    w.key("grid_index");
    w.uint_value(cell.grid_index);
    w.key("params");
    w.begin_object();
    for (const auto& [name, value] : cell.point.params()) {
      w.key(name);
      write_param(w, value);
    }
    w.end_object();
    w.key("trials");
    w.uint_value(cell.trials);
    w.key("successes");
    w.uint_value(cell.successes);
    w.key("attempts");
    w.uint_value(cell.attempts);
    w.key("success_rate");
    w.number_value(cell.success_rate);
    w.key("wilson_lower");
    w.number_value(cell.ci.lower);
    w.key("wilson_upper");
    w.number_value(cell.ci.upper);
    w.key("values");
    w.begin_object();
    for (const auto& [name, moments] : cell.values) {
      w.key(name);
      w.begin_object();
      w.key("count");
      w.uint_value(moments.count());
      w.key("mean");
      w.number_value(moments.mean());
      w.key("stddev");
      w.number_value(moments.stddev());
      w.key("stderr");
      w.number_value(moments.stderror());
      w.key("min");
      w.number_value(moments.min());
      w.key("max");
      w.number_value(moments.max());
      w.end_object();
    }
    w.end_object();
    if (!cell.metrics.empty()) {
      w.key("metrics");
      w.raw_value(cell.metrics.to_json());
    }
    if (!cell.health.empty()) {
      w.key("health");
      cell.health.write_json(w);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.str();
}

std::string write_campaign_json(const CampaignResult& result, const std::string& dir) {
  std::string path;
  if (!dir.empty()) path = dir + "/";
  path += "BENCH_" + result.name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "";
  const std::string json = campaign_json(result);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out << '\n';
  if (!out) return "";
  return path;
}

support::Table campaign_table(const CampaignResult& result) {
  support::Table table({"cell", "trials", "rate", "wilson 95% CI", "values (mean)"});
  for (const auto& cell : result.cells) {
    std::string values;
    for (const auto& [name, moments] : cell.values) {
      if (!values.empty()) values += "  ";
      values += name + "=" + support::fmt_double(moments.mean(), 4);
    }
    table.add_row({cell.point.params().empty() ? "(all)" : cell.point.label(),
                   std::to_string(cell.trials),
                   support::fmt_sci(cell.success_rate, 3),
                   "[" + support::fmt_sci(cell.ci.lower, 2) + ", " +
                       support::fmt_sci(cell.ci.upper, 2) + "]",
                   values});
  }
  return table;
}

}  // namespace rasc::exp
