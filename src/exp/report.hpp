#pragma once
/// \file report.hpp
/// Campaign result serialization.  Reuses the obs JSON machinery and the
/// BENCH_<name>.json artifact convention from PR 1, so campaign output
/// lands next to single-run bench output and diffs across PRs the same
/// way.  Execution facts (thread count, wall time) are intentionally NOT
/// serialized: the artifact is a pure function of (spec, base_seed).

#include <string>

#include "src/exp/campaign.hpp"
#include "src/support/table.hpp"

namespace rasc::exp {

/// {"bench": <name>, "campaign": {"base_seed", "trials_per_point",
///  "cells": [{"grid_index","params","trials","successes","attempts",
///             "success_rate","wilson_lower","wilson_upper",
///             "values":{name:{count,mean,stddev,stderr,min,max}},
///             "metrics": <registry JSON>}]}}
std::string campaign_json(const CampaignResult& result);

/// Write campaign_json() to `<dir>/BENCH_<result.name>.json` (dir "" =
/// cwd).  Returns the path written, or "" on I/O failure.
std::string write_campaign_json(const CampaignResult& result, const std::string& dir = "");

/// Human-readable per-cell summary: one row per grid cell with the
/// Bernoulli channel and any named value means.
support::Table campaign_table(const CampaignResult& result);

}  // namespace rasc::exp
