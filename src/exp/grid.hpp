#pragma once
/// \file grid.hpp
/// Declarative parameter grids for experiment campaigns.  A grid is an
/// ordered list of named axes; its cells are the cartesian product of the
/// axis values, enumerated in mixed-radix order with the FIRST axis
/// varying slowest.  Cell enumeration order is part of the deterministic
/// seeding contract (grid_index feeds derive_trial_seed), so axis order
/// matters and is preserved exactly as declared.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace rasc::exp {

/// Axis values are integers, reals or symbolic names (e.g. a lock
/// mechanism).  Integers and reals are kept distinct so JSON output can
/// round-trip them faithfully.
using ParamValue = std::variant<std::int64_t, double, std::string>;

std::string param_to_string(const ParamValue& value);

struct Axis {
  std::string name;
  std::vector<ParamValue> values;
};

/// One cell of the grid: the chosen value per axis, in axis order.
class GridPoint {
 public:
  GridPoint() = default;
  GridPoint(std::size_t index, std::vector<std::pair<std::string, ParamValue>> params)
      : index_(index), params_(std::move(params)) {}

  std::size_t index() const noexcept { return index_; }
  const std::vector<std::pair<std::string, ParamValue>>& params() const noexcept {
    return params_;
  }

  bool has(const std::string& name) const noexcept;
  /// Typed accessors; throw std::out_of_range for a missing axis and
  /// std::bad_variant_access for a type mismatch.  i64() widens from the
  /// stored integer; f64() accepts either integer or real axes.
  std::int64_t i64(const std::string& name) const;
  double f64(const std::string& name) const;
  const std::string& str(const std::string& name) const;

  /// "rounds=13 blocks=64" — stable human-readable cell label.
  std::string label() const;

 private:
  const ParamValue& at(const std::string& name) const;

  std::size_t index_ = 0;
  std::vector<std::pair<std::string, ParamValue>> params_;
};

class ParamGrid {
 public:
  /// Append an axis (fluent).  Throws std::invalid_argument on an empty
  /// value list or a duplicate name.
  ParamGrid& axis(std::string name, std::vector<ParamValue> values);
  /// Replace the values of an existing axis, or append a new one — used by
  /// the campaign runner's --grid override.
  ParamGrid& set_axis(const std::string& name, std::vector<ParamValue> values);

  const std::vector<Axis>& axes() const noexcept { return axes_; }
  /// Number of cells: product of axis sizes; 1 for an axis-free grid (a
  /// single empty point, so plain N-trial campaigns need no special case).
  std::size_t size() const noexcept;
  /// Decode cell `index` (mixed-radix, first axis slowest).
  GridPoint point(std::size_t index) const;

 private:
  std::vector<Axis> axes_;
};

/// Parse "rounds=1,2,13;lock=nolock,wbl" into axes.  Each value is parsed
/// as int64 if it round-trips, else double, else kept as a string.  Throws
/// std::invalid_argument on syntax errors (missing '=', empty value list).
std::vector<Axis> parse_grid_spec(const std::string& spec);

}  // namespace rasc::exp
