#pragma once
/// \file campaign.hpp
/// Parallel Monte-Carlo campaign engine.  A campaign runs
/// `trials_per_point` independent trials for every cell of a ParamGrid
/// across a fixed-size worker pool, aggregating results streamingly.
///
/// Determinism contract: aggregates are bit-identical for any thread
/// count.  Two mechanisms provide this:
///  1. every trial's randomness comes from derive_trial_seed(base_seed,
///     grid_index, trial_index) — never from the executing thread;
///  2. trials are grouped into fixed-size shards (shard boundaries depend
///     only on shard_size, not on the thread count); workers reduce each
///     shard locally in trial order, and the shard aggregates are folded
///     in shard order after the pool drains.  Floating-point reduction
///     order is therefore a pure function of the spec.
///
/// Memory stays O(cells + shards): no per-trial storage survives the
/// shard that produced it.

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exp/grid.hpp"
#include "src/exp/seeding.hpp"
#include "src/exp/stats.hpp"
#include "src/obs/health.hpp"
#include "src/obs/metrics.hpp"

namespace rasc::exp {

/// Identity and RNG stream of one trial.  `rng` is pre-seeded from the
/// (base_seed, grid_index, trial_index) coordinates; trials needing more
/// than one generator can fork sub-streams from `seed` with mix64.
struct TrialContext {
  std::size_t grid_index = 0;
  std::size_t trial_index = 0;
  std::uint64_t seed = 0;
  support::Xoshiro256 rng;
};

/// What one trial hands back to the aggregator.
struct TrialOutput {
  /// Bernoulli channel (escape / deadline-miss / detection rates).  A
  /// trial may contribute several attempts (e.g. one per sensor sample).
  std::uint64_t successes = 0;
  std::uint64_t attempts = 0;
  /// Named scalar observations, folded into per-cell StreamingMoments.
  std::vector<std::pair<std::string, double>> values;
  /// Optional per-trial metrics (histograms/counters) merged into the
  /// cell's registry; gauges resolve to the last trial in trial order.
  obs::MetricsRegistry metrics;
  /// Optional per-trial fleet health rollup, merged into the cell's
  /// rollup (associative, so the result is thread-count independent).
  obs::HealthRollup health;

  /// Record the outcome of a single Bernoulli experiment.
  void bernoulli(bool success) {
    ++attempts;
    if (success) ++successes;
  }
  void value(std::string name, double v) { values.emplace_back(std::move(name), v); }

  /// Assert a per-trial invariant (e.g. "every attestation round reached
  /// a terminal outcome").  A violation throws; run_campaign stops the
  /// pool and rethrows, so a broken invariant fails the campaign loudly
  /// instead of skewing its aggregates.
  void require(bool ok, const char* what) const {
    if (!ok) {
      throw std::runtime_error(std::string("trial invariant violated: ") + what);
    }
  }
};

using TrialFn = std::function<TrialOutput(const GridPoint&, TrialContext&)>;

struct CampaignSpec {
  std::string name = "campaign";
  ParamGrid grid;
  std::size_t trials_per_point = 100;
  std::uint64_t base_seed = 1;
  /// 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Trials per deterministic work unit.  Part of the reduction order, so
  /// changing it may perturb float aggregates in the last ulp — but any
  /// value yields the same aggregates for every thread count.
  std::size_t shard_size = 16;
  TrialFn trial;
};

/// Aggregate over all trials of one grid cell.
struct CellResult {
  std::size_t grid_index = 0;
  GridPoint point;
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  std::uint64_t attempts = 0;
  /// successes / attempts (0 when no attempts were recorded).
  double success_rate = 0.0;
  WilsonInterval ci;
  std::map<std::string, StreamingMoments> values;
  obs::MetricsRegistry metrics;
  obs::HealthRollup health;
};

struct CampaignResult {
  std::string name;
  std::uint64_t base_seed = 0;
  std::size_t trials_per_point = 0;
  std::vector<CellResult> cells;
  /// Execution facts, deliberately excluded from the JSON artifact so a
  /// campaign's BENCH output is bit-identical across machines and -j.
  std::size_t threads_used = 0;
  double wall_seconds = 0.0;

  const CellResult* find_cell(const std::string& label) const;
};

/// Run the campaign.  Throws std::invalid_argument on a spec without a
/// trial function or with zero trials; rethrows the first trial exception
/// (after stopping the pool) otherwise.
CampaignResult run_campaign(const CampaignSpec& spec);

/// Shard-local streaming reduction, exposed for tests: fold `outputs` in
/// order into a fresh cell-shaped accumulator.  run_campaign composes
/// these with merge_cells in shard order.
namespace detail {

struct ShardAggregate {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  std::uint64_t attempts = 0;
  std::map<std::string, StreamingMoments> values;
  obs::MetricsRegistry metrics;
  obs::HealthRollup health;

  void fold(const TrialOutput& out);
  void merge(ShardAggregate&& other);
};

/// Merge `src` into `dst`: counters add, histograms bucket-merge (bounds
/// from first sight), gauges overwrite (last writer wins).
void merge_registry(obs::MetricsRegistry& dst, const obs::MetricsRegistry& src);

}  // namespace detail

}  // namespace rasc::exp
