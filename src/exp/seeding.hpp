#pragma once
/// \file seeding.hpp
/// Deterministic per-trial seed derivation for experiment campaigns.
///
/// Every trial in a campaign draws its randomness from a private
/// SplitMix64-derived stream keyed by (base_seed, grid_index, trial_index).
/// Because the stream depends only on those three coordinates — never on
/// which worker thread happens to execute the trial or in what order —
/// campaign aggregates are bit-identical across any thread count.
///
/// The derivation is a fixed-point of the repo: changing it invalidates
/// every recorded BENCH_*.json baseline, so treat it like a wire format.

#include <cstdint>

#include "src/support/rng.hpp"

namespace rasc::exp {

/// One SplitMix64 finalization step (stateless; distinct from
/// support::splitmix64 which advances a state variable).
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Derive the RNG seed for trial `trial_index` of grid cell `grid_index`
/// under campaign seed `base_seed`.  Feed-forward chain of mix64 steps so
/// that nearby (grid, trial) coordinates land in statistically independent
/// streams even for small or structured base seeds.
std::uint64_t derive_trial_seed(std::uint64_t base_seed, std::uint64_t grid_index,
                                std::uint64_t trial_index) noexcept;

/// Convenience: a Xoshiro256 generator positioned at the trial's stream.
support::Xoshiro256 make_trial_rng(std::uint64_t base_seed, std::uint64_t grid_index,
                                   std::uint64_t trial_index) noexcept;

}  // namespace rasc::exp
