#pragma once
/// \file stats.hpp
/// Streaming statistical aggregation for Monte-Carlo campaigns: Welford
/// single-pass moments with Chan's parallel merge, and Wilson score
/// confidence intervals for Bernoulli outcomes (escape / deadline-miss
/// rates).  Everything here is deterministic given a fixed merge order —
/// the campaign engine guarantees that order is independent of thread
/// count.

#include <cstdint>

namespace rasc::exp {

/// Single-pass mean/variance/min/max accumulator (Welford).  merge() uses
/// Chan's pairwise-combination formula, so shard-local accumulators can be
/// folded together after the fact without revisiting samples.
class StreamingMoments {
 public:
  void add(double x) noexcept;
  void merge(const StreamingMoments& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean: stddev / sqrt(n); 0 for fewer than 2.
  double stderror() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Two-sided confidence interval for a binomial proportion.
struct WilsonInterval {
  double lower = 0.0;
  double upper = 1.0;
  bool contains(double p) const noexcept { return p >= lower && p <= upper; }
};

/// Wilson score interval for `successes` out of `trials` at critical value
/// `z` (default 1.96 ~ 95%).  Exact endpoints at the boundaries: 0
/// successes gives lower == 0, all successes gives upper == 1.  With
/// trials == 0 the interval is the vacuous [0, 1].
WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z = 1.959963984540054);

}  // namespace rasc::exp
