#include "src/exp/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace rasc::exp {

namespace detail {

void merge_registry(obs::MetricsRegistry& dst, const obs::MetricsRegistry& src) {
  for (const auto& [name, c] : src.counters()) dst.counter(name).inc(c.value());
  for (const auto& [name, g] : src.gauges()) dst.gauge(name).set(g.value());
  for (const auto& [name, h] : src.histograms()) {
    dst.histogram(name, h->bounds()).merge(*h);
  }
}

void ShardAggregate::fold(const TrialOutput& out) {
  ++trials;
  successes += out.successes;
  attempts += out.attempts;
  for (const auto& [name, v] : out.values) values[name].add(v);
  merge_registry(metrics, out.metrics);
  health.merge(out.health);
}

void ShardAggregate::merge(ShardAggregate&& other) {
  trials += other.trials;
  successes += other.successes;
  attempts += other.attempts;
  for (auto& [name, moments] : other.values) values[name].merge(moments);
  merge_registry(metrics, other.metrics);
  health.merge(other.health);
}

}  // namespace detail

const CellResult* CampaignResult::find_cell(const std::string& label) const {
  for (const auto& cell : cells) {
    if (cell.point.label() == label) return &cell;
  }
  return nullptr;
}

CampaignResult run_campaign(const CampaignSpec& spec) {
  if (!spec.trial) throw std::invalid_argument("run_campaign: spec.trial is empty");
  if (spec.trials_per_point == 0) {
    throw std::invalid_argument("run_campaign: trials_per_point must be positive");
  }
  if (spec.shard_size == 0) {
    throw std::invalid_argument("run_campaign: shard_size must be positive");
  }

  const std::size_t cells = spec.grid.size();
  const std::size_t shards_per_cell =
      (spec.trials_per_point + spec.shard_size - 1) / spec.shard_size;
  const std::size_t total_shards = cells * shards_per_cell;

  // Shard slots are written by exactly one worker each (disjoint indices
  // claimed via the atomic cursor), then read only after the pool joins.
  std::vector<detail::ShardAggregate> shards(total_shards);
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t shard = cursor.fetch_add(1, std::memory_order_relaxed);
      if (shard >= total_shards) return;
      const std::size_t grid_index = shard / shards_per_cell;
      const std::size_t lo = (shard % shards_per_cell) * spec.shard_size;
      const std::size_t hi = std::min(lo + spec.shard_size, spec.trials_per_point);
      const GridPoint point = spec.grid.point(grid_index);
      try {
        for (std::size_t t = lo; t < hi; ++t) {
          TrialContext ctx;
          ctx.grid_index = grid_index;
          ctx.trial_index = t;
          ctx.seed = derive_trial_seed(spec.base_seed, grid_index, t);
          ctx.rng = support::Xoshiro256(ctx.seed);
          shards[shard].fold(spec.trial(point, ctx));
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::size_t threads = spec.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, total_shards);

  const auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (first_error) std::rethrow_exception(first_error);

  CampaignResult result;
  result.name = spec.name;
  result.base_seed = spec.base_seed;
  result.trials_per_point = spec.trials_per_point;
  result.threads_used = threads;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.cells.reserve(cells);
  // Deterministic reduction: shards fold in shard order within each cell,
  // independent of which worker produced them.
  for (std::size_t g = 0; g < cells; ++g) {
    detail::ShardAggregate acc;
    for (std::size_t s = 0; s < shards_per_cell; ++s) {
      acc.merge(std::move(shards[g * shards_per_cell + s]));
    }
    CellResult cell;
    cell.grid_index = g;
    cell.point = spec.grid.point(g);
    cell.trials = acc.trials;
    cell.successes = acc.successes;
    cell.attempts = acc.attempts;
    cell.success_rate = acc.attempts == 0 ? 0.0
                                          : static_cast<double>(acc.successes) /
                                                static_cast<double>(acc.attempts);
    cell.ci = wilson_interval(acc.successes, acc.attempts);
    cell.values = std::move(acc.values);
    cell.metrics = std::move(acc.metrics);
    cell.health = std::move(acc.health);
    result.cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace rasc::exp
