#include "src/exp/grid.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rasc::exp {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string param_to_string(const ParamValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&value)) return format_double(*d);
  return std::get<std::string>(value);
}

bool GridPoint::has(const std::string& name) const noexcept {
  for (const auto& [key, value] : params_) {
    if (key == name) return true;
  }
  return false;
}

const ParamValue& GridPoint::at(const std::string& name) const {
  for (const auto& [key, value] : params_) {
    if (key == name) return value;
  }
  throw std::out_of_range("GridPoint: no axis named '" + name + "'");
}

std::int64_t GridPoint::i64(const std::string& name) const {
  return std::get<std::int64_t>(at(name));
}

double GridPoint::f64(const std::string& name) const {
  const ParamValue& value = at(name);
  if (const auto* i = std::get_if<std::int64_t>(&value)) return static_cast<double>(*i);
  return std::get<double>(value);
}

const std::string& GridPoint::str(const std::string& name) const {
  return std::get<std::string>(at(name));
}

std::string GridPoint::label() const {
  std::string out;
  for (const auto& [key, value] : params_) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += param_to_string(value);
  }
  return out;
}

ParamGrid& ParamGrid::axis(std::string name, std::vector<ParamValue> values) {
  if (values.empty()) throw std::invalid_argument("ParamGrid: empty axis '" + name + "'");
  for (const auto& existing : axes_) {
    if (existing.name == name) {
      throw std::invalid_argument("ParamGrid: duplicate axis '" + name + "'");
    }
  }
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

ParamGrid& ParamGrid::set_axis(const std::string& name, std::vector<ParamValue> values) {
  if (values.empty()) throw std::invalid_argument("ParamGrid: empty axis '" + name + "'");
  for (auto& existing : axes_) {
    if (existing.name == name) {
      existing.values = std::move(values);
      return *this;
    }
  }
  axes_.push_back(Axis{name, std::move(values)});
  return *this;
}

std::size_t ParamGrid::size() const noexcept {
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

GridPoint ParamGrid::point(std::size_t index) const {
  if (index >= size()) throw std::out_of_range("ParamGrid::point: index past grid end");
  std::vector<std::pair<std::string, ParamValue>> params;
  params.reserve(axes_.size());
  // Mixed-radix decode with the first axis as the most significant digit.
  std::size_t radix_below = size();
  std::size_t rest = index;
  for (const auto& a : axes_) {
    radix_below /= a.values.size();
    const std::size_t digit = rest / radix_below;
    rest %= radix_below;
    params.emplace_back(a.name, a.values[digit]);
  }
  return GridPoint(index, std::move(params));
}

std::vector<Axis> parse_grid_spec(const std::string& spec) {
  std::vector<Axis> axes;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;

    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("grid spec clause '" + clause + "': want name=v1,v2,...");
    }
    Axis axis;
    axis.name = clause.substr(0, eq);
    std::size_t vstart = eq + 1;
    while (vstart <= clause.size()) {
      std::size_t vend = clause.find(',', vstart);
      if (vend == std::string::npos) vend = clause.size();
      const std::string token = clause.substr(vstart, vend - vstart);
      vstart = vend + 1;
      if (token.empty()) {
        throw std::invalid_argument("grid spec axis '" + axis.name + "': empty value");
      }
      char* parse_end = nullptr;
      errno = 0;
      const long long as_int = std::strtoll(token.c_str(), &parse_end, 10);
      if (errno == 0 && parse_end == token.c_str() + token.size()) {
        axis.values.emplace_back(static_cast<std::int64_t>(as_int));
        continue;
      }
      errno = 0;
      const double as_double = std::strtod(token.c_str(), &parse_end);
      if (errno == 0 && parse_end == token.c_str() + token.size()) {
        axis.values.emplace_back(as_double);
        continue;
      }
      axis.values.emplace_back(token);
    }
    if (axis.values.empty()) {
      throw std::invalid_argument("grid spec axis '" + axis.name + "': no values");
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

}  // namespace rasc::exp
