#include "src/exp/seeding.hpp"

namespace rasc::exp {

std::uint64_t mix64(std::uint64_t x) noexcept {
  // SplitMix64 finalizer (Steele, Lea, Flood 2014).
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_trial_seed(std::uint64_t base_seed, std::uint64_t grid_index,
                                std::uint64_t trial_index) noexcept {
  // Domain-separate the three coordinates with distinct odd constants so
  // (base=1, grid=2) and (base=2, grid=1) do not collide.
  std::uint64_t h = mix64(base_seed ^ 0x52415f4558503031ULL);  // "RA_EXP01"
  h = mix64(h ^ (grid_index * 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ (trial_index * 0xd1b54a32d192ed03ULL));
  return h;
}

support::Xoshiro256 make_trial_rng(std::uint64_t base_seed, std::uint64_t grid_index,
                                   std::uint64_t trial_index) noexcept {
  return support::Xoshiro256(derive_trial_seed(base_seed, grid_index, trial_index));
}

}  // namespace rasc::exp
