#include "src/exp/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rasc::exp {

void StreamingMoments::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingMoments::merge(const StreamingMoments& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  // Chan, Golub, LeVeque (1979): numerically stable pairwise combination.
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingMoments::sum() const noexcept {
  return mean_ * static_cast<double>(count_);
}

double StreamingMoments::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingMoments::stddev() const noexcept { return std::sqrt(variance()); }

double StreamingMoments::stderror() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  WilsonInterval ci;
  ci.lower = std::clamp((center - half) / denom, 0.0, 1.0);
  ci.upper = std::clamp((center + half) / denom, 0.0, 1.0);
  // Boundary exactness: floating point can leave a ~1e-17 residue at the
  // closed-form zeros; pin them so 0/n reports lower == 0 and n/n upper == 1.
  if (successes == 0) ci.lower = 0.0;
  if (successes == trials) ci.upper = 1.0;
  return ci;
}

}  // namespace rasc::exp
