#pragma once
/// \file fleet.hpp
/// Fleet-scale verifier: one process drives N simulated prover devices —
/// each behind its own pair of faulty sim::Links — through concurrent
/// attest::ReliableSession rounds on a single simulator event loop.  This
/// is ROADMAP item 1: the paper attests one simple device; a deployment
/// verifier must judge tens of thousands without melting.
///
/// Architecture (DESIGN.md §11):
///  - devices are partitioned into contiguous *shards*; every device of a
///    shard is provisioned with the same image and attestation key, so
///    the shard shares one pre-digested attest::GoldenMeasurement and
///    (optionally) one prover-side attest::DigestCache — verifier-side
///    memory per device therefore shrinks as the fleet grows;
///  - rounds are scheduled in *epochs*: epoch e's challenges issue from
///    t = e * epoch_period, smeared over stagger_span * epoch_period by a
///    StaggerPolicy so measurement load is smoothed, not bursty;
///  - an *admission window* caps concurrently in-flight sessions; ready
///    devices beyond the cap queue FIFO and start as slots free up;
///  - every resolved round feeds three independent obs::HealthRollup
///    folds (per shard, per epoch, fleet total) whose integer aggregates
///    must agree — one of the invariants checked after every epoch.
///
/// Determinism: a fleet run is a pure function of (FleetConfig, Roster).
/// All per-device randomness (links, session jitter, challenges) derives
/// from config.seed and the device id via fixed mix64 chains, so the
/// fleet_scale campaign built on top is bit-identical for any --threads,
/// and replay_device() can re-run any single device's rounds in a fresh
/// simulator and reproduce the fleet's verdicts exactly.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/attest/prover.hpp"
#include "src/attest/session.hpp"
#include "src/fleet/roster.hpp"
#include "src/obs/health.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"

namespace rasc::fleet {

/// How challenge issuance is spread inside an epoch.
enum class StaggerPolicy {
  kBurst,        ///< everything at the epoch boundary (worst case)
  kUniform,      ///< device d at stagger_span * period * d / N
  kShardPhased,  ///< shard s at stagger_span * period * s / shards
};

std::string stagger_policy_name(StaggerPolicy policy);
/// Inverse of stagger_policy_name; throws std::invalid_argument.
StaggerPolicy parse_stagger_policy(const std::string& name);

struct FleetConfig {
  std::size_t devices = 1000;
  /// Verifier-side shards (golden + digest-cache sharing domains).
  /// 0 = auto: one shard per 4096 devices, at least one.
  std::size_t shards = 0;
  /// Attestation rounds per device — one per epoch.
  std::size_t epochs = 2;
  /// Epoch e's issuance begins at e * epoch_period.  Epochs may overlap
  /// in flight (a slow round can straddle the boundary); a device only
  /// becomes ready for epoch e+1 once its epoch-e round resolved.
  sim::Duration epoch_period = sim::kSecond;
  StaggerPolicy stagger = StaggerPolicy::kUniform;
  /// Fraction of epoch_period the stagger smears issuance over.
  double stagger_span = 0.5;
  /// Admission window: max sessions concurrently in flight (0 = no cap).
  std::size_t max_in_flight = 1024;

  /// Stack hibernation (the 1M tier): bound the pool of live DeviceStacks
  /// (0 = keep all N alive for the whole run, the pre-1M behavior).
  /// Between rounds an idle, fully quiescent stack is torn down to a
  /// compact HibernatedDevice seed record and rebuilt from the shard
  /// state at its next admission; verdicts, journals and health rollups
  /// are byte-identical either way (chaos-tested).  The cap is soft:
  /// admission always wakes the device it needs, then the pool shrinks
  /// back by hibernating least-recently-idle stacks, so liveness never
  /// depends on the cap.  Requires share_golden and share_digest_cache —
  /// a hibernating device must not own golden/cache state that dies with
  /// its stack (losing cache entries would change the journaled hit/miss
  /// sequence).
  std::size_t max_live_stacks = 0;

  /// Shard-wave challenge batching: devices admitted per scheduler event
  /// (0 = auto: devices/64 clamped to [1, devices_per_shard]; 1 = the
  /// legacy one-event-per-device dripper).  Waves never cross a shard
  /// boundary and every device of a wave becomes ready at the wave
  /// leader's stagger offset.  Round outcomes are invariant under wave
  /// size (per-device randomness is admission-time-independent); only the
  /// recorded start times of kUniform runs quantize to wave leaders.
  std::size_t wave_size = 0;

  /// Bound on retained per-device round history (ring buffer; 0 = keep
  /// all config.epochs records).  With history H < epochs only the last H
  /// rounds of each device stay addressable via FleetResult::round();
  /// every aggregate (health, epoch stats, outcome counts) still covers
  /// all rounds.  At 1M devices the full history dominates verifier
  /// memory, which is exactly what this bounds.
  std::size_t max_round_history = 0;

  /// Prover hardware.  Deliberately tiny by default: with
  /// max_live_stacks == 0 all N device stacks stay alive for the whole
  /// run (in-flight events hold references into them), so the per-device
  /// footprint bounds fleet size in host RAM.
  std::size_t blocks = 4;
  std::size_t block_size = 64;
  crypto::HashKind hash = crypto::HashKind::kSha256;
  attest::ExecutionMode mode = attest::ExecutionMode::kAtomic;
  /// Share one GoldenMeasurement / prover DigestCache per shard (off =
  /// per-device copies; the memory-accounting tests sweep both).
  bool share_golden = true;
  bool share_digest_cache = true;
  /// Merkle-tree incremental measurement (prover.use_merkle_tree): every
  /// stack primes its tree from the provisioned image *before* the
  /// infection patch lands, so an infected device's first round visits
  /// exactly the infected blocks and its report's subtree proofs let the
  /// verifier localize them (RoundRecord.localized_*).
  bool use_merkle_tree = false;
  /// Number of consecutive blocks the infection patch covers (ground
  /// truth; 1 = the legacy single-byte flip at size/2).  The range is
  /// centered per detail::infection_range.
  std::size_t infection_blocks = 1;

  /// Symmetric per-direction link fault model; per-device decorrelated
  /// seeds.  Timed partition windows are deliberately not configurable:
  /// they are absolute-time fault state, which replay_device() — which
  /// re-runs rounds at recorded absolute times — could not re-interpret.
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double corrupt_probability = 0.0;
  double reorder_probability = 0.0;
  sim::Duration link_latency = 2 * sim::kMillisecond;
  sim::Duration link_jitter = 500 * sim::kMicrosecond;

  /// Session template; `session.seed` is overridden per device.
  attest::SessionConfig session;

  /// When constructing a FleetVerifier without an explicit Roster: the
  /// fraction of devices infected at provision time (ground truth).
  double infected_fraction = 0.0;
  std::uint64_t seed = 1;

  /// run() throws std::logic_error when an invariant is violated
  /// (violations are collected in FleetResult.invariant_violations
  /// regardless).
  bool enforce_invariants = true;

  obs::MetricsRegistry* metrics = nullptr;  ///< not owned; may be null
  obs::EventJournal* journal = nullptr;     ///< not owned; may be null
};

/// One resolved round of one device.
struct RoundRecord {
  sim::Time started = 0;
  obs::RoundOutcome outcome = obs::RoundOutcome::kTimeout;
  std::uint8_t attempts = 0;
  bool resolved = false;
  /// Tree-mode fault localization from the decisive report's subtree
  /// proofs: how many divergent block ranges the verifier localized, and
  /// the first one.  All zero for flat-mode rounds and clean devices.
  std::uint32_t localized_ranges = 0;
  std::uint32_t localized_first = 0;
  std::uint32_t localized_count = 0;
};

struct EpochStats {
  std::size_t admitted = 0;   ///< sessions started for this epoch
  std::size_t resolved = 0;   ///< terminal outcomes observed
  std::size_t misjudged = 0;  ///< outcome disagrees with roster ground truth
  /// Explicit has-value sentinels: an epoch with zero admitted (or zero
  /// resolved) sessions reads as nullopt, distinguishable from an event
  /// at t = 0 (a burst epoch 0 legitimately starts at time zero).
  std::optional<sim::Time> first_start;
  std::optional<sim::Time> last_resolve;
  obs::HealthRollup health;   ///< per-epoch fold (independent of shards)
};

/// Verifier-side memory accounting.  `shared_bytes` is amortized state
/// (goldens, shared digest caches, shard images and keys); per_device is
/// what scales linearly (sessions, verifiers, links, bookkeeping).  The
/// simulated prover hardware itself (device RAM, CPU) is deliberately
/// excluded — it models the *prover's* silicon, not verifier memory.
struct FleetMemoryStats {
  std::size_t shared_bytes = 0;
  std::size_t per_device_bytes = 0;
  std::size_t roster_bytes = 0;
  /// Live-stack pool under hibernation: high-water live stacks times the
  /// full stack footprint.  Zero when stacks are persistent (the full
  /// footprint is then inside per_device_bytes).
  std::size_t pool_bytes = 0;
  std::size_t total_bytes() const noexcept {
    return shared_bytes + per_device_bytes + roster_bytes + pool_bytes;
  }
  /// total / N: b + a/N — strictly decreasing in fleet size while the
  /// shard count stays fixed (the sub-linearity the tests assert).
  double bytes_per_device(std::size_t devices) const noexcept {
    return devices == 0 ? 0.0
                        : static_cast<double>(total_bytes()) /
                              static_cast<double>(devices);
  }
};

struct FleetResult {
  std::size_t devices = 0;
  std::size_t epochs = 0;
  std::size_t shards = 0;

  std::size_t rounds_resolved = 0;
  std::size_t misjudged_rounds = 0;
  std::array<std::uint64_t, obs::kRoundOutcomeCount> outcome_counts{};

  /// Device-major: round(device, epoch) = rounds[device * epochs + epoch].
  std::vector<RoundRecord> rounds;
  std::vector<EpochStats> epoch_stats;

  /// Per-shard folds (fed live by the sessions) and their shard-order
  /// merge.  The invariant checker verifies the integer aggregates of
  /// `health` equal the merge of epoch_stats[*].health — the same rounds
  /// grouped two independent ways.
  std::vector<obs::HealthRollup> shard_health;
  obs::HealthRollup health;

  /// Rounds each device retains in `rounds` (min(epochs, the resolved
  /// max_round_history)); round() only addresses the last `round_history`
  /// epochs when it is smaller than `epochs`.
  std::size_t round_history = 0;

  /// Resolved admission wave size and the number of admission scheduler
  /// events that actually fired (dripper steps, summed across epochs) —
  /// the scheduler-pressure figure wave batching exists to cut.
  std::size_t wave_size = 0;
  std::size_t admission_events = 0;

  /// Stack hibernation accounting (all zero when max_live_stacks == 0).
  /// `wakes` counts rebuilds from a HibernatedDevice record only; the
  /// first construction of a stack is not a wake.
  std::size_t hibernations = 0;
  std::size_t wakes = 0;
  std::size_t live_stacks_high_water = 0;

  std::size_t in_flight_high_water = 0;
  sim::Time makespan = 0;  ///< first challenge issued -> last round resolved
  double rounds_per_sim_second = 0.0;
  /// 1-based count of epochs until every device had resolved at least one
  /// round; 0 = never achieved within config.epochs.
  std::size_t epochs_to_full_coverage = 0;

  std::uint64_t link_sent = 0;
  std::uint64_t link_delivered = 0;
  std::uint64_t link_dropped = 0;
  std::uint64_t link_duplicated = 0;
  std::uint64_t link_corrupted = 0;
  std::uint64_t link_reordered = 0;

  FleetMemoryStats memory;

  /// Golden Merkle roots per shard and their domain-separated pairwise
  /// aggregate (mtree::MerkleTree::combine_roots) — one digest standing
  /// for the expected state of the whole fleet.  Always populated: the
  /// goldens build their trees at construction regardless of
  /// use_merkle_tree.
  std::vector<attest::Digest> shard_tree_roots;
  attest::Digest fleet_tree_root;

  /// Human-readable invariant violations (empty on a healthy run).
  std::vector<std::string> invariant_violations;

  /// Record of one device's round at `epoch`.  With a bounded history
  /// ring (round_history < epochs) only the last round_history epochs are
  /// addressable; asking for an evicted epoch throws std::out_of_range.
  const RoundRecord& round(std::size_t device, std::size_t epoch) const;
  /// Recorded start times of one device's rounds, in epoch order — the
  /// exact schedule replay_device() re-runs.  Requires the full history
  /// (throws std::logic_error when round_history < epochs).
  std::vector<sim::Time> start_times(std::size_t device) const;
};

/// Owns the simulator, all N device stacks and the scheduling state.
/// Build, call run() once, read the FleetResult.
class FleetVerifier {
 public:
  /// Roster derived from config.infected_fraction (seeded from
  /// config.seed), matching what replay_device() reconstructs.
  explicit FleetVerifier(FleetConfig config);
  FleetVerifier(FleetConfig config, Roster roster);
  ~FleetVerifier();
  FleetVerifier(const FleetVerifier&) = delete;
  FleetVerifier& operator=(const FleetVerifier&) = delete;

  /// Drive every device through config.epochs rounds and quiesce.
  /// Throws std::logic_error on a second call, or (when
  /// config.enforce_invariants) when the invariant checker trips.
  FleetResult run();

  const Roster& roster() const noexcept;
  std::size_t shard_count() const noexcept;
  std::size_t shard_of(std::size_t device) const noexcept;
  /// Verifier-side memory accounting from the actual container footprints
  /// (capacities, not assumed sizes).  Without hibernation it is constant
  /// from construction on; with hibernation the pool term uses the live-
  /// stack high water, so read it after run() for the final figure.
  FleetMemoryStats memory_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Cross-check harness: rebuild device `device`'s stack exactly as the
/// fleet does — same shard image, key, golden parameters, per-device
/// link/session/challenge seeds — in a *fresh* simulator, and run one
/// round at each recorded start time (from FleetResult::start_times).
/// Because every random draw a device's timeline consumes comes from its
/// own per-device streams, the standalone outcomes must equal the fleet's
/// verdicts; a mismatch isolates an orchestration bug (admission window,
/// stagger, shared-cache contamination), not stack wiring.
std::vector<obs::RoundOutcome> replay_device(const FleetConfig& config,
                                             const Roster& roster,
                                             std::size_t device,
                                             const std::vector<sim::Time>& start_times);

namespace detail {

/// Fixed seed-derivation chains (treat like a wire format: the recorded
/// BENCH_fleet baselines depend on them).
std::uint64_t device_stream(std::uint64_t fleet_seed, std::uint64_t device,
                            std::uint64_t salt) noexcept;
std::uint64_t shard_stream(std::uint64_t fleet_seed, std::uint64_t shard,
                           std::uint64_t salt) noexcept;
/// Effective shard count for a config (resolves the 0 = auto rule).
std::size_t resolve_shards(const FleetConfig& config) noexcept;
/// Ground-truth infected block range {first, count} for a config —
/// exactly the blocks DeviceStack patches on infected devices (the range
/// the chaos tests compare the verifier's localization against).
std::pair<std::size_t, std::size_t> infection_range(const FleetConfig& config) noexcept;

}  // namespace detail

}  // namespace rasc::fleet
