#include "src/fleet/roster.hpp"

#include <algorithm>

#include "src/support/rng.hpp"

namespace rasc::fleet {

Roster Roster::with_infected_fraction(std::size_t devices, double fraction,
                                      std::uint64_t seed) {
  Roster roster(devices);
  if (devices == 0 || fraction <= 0.0) return roster;
  std::size_t count = static_cast<std::size_t>(
      static_cast<double>(devices) * std::min(fraction, 1.0) + 0.5);
  count = std::max<std::size_t>(count, 1);
  count = std::min(count, devices);

  // Partial Fisher-Yates over the id space: the first `count` positions of
  // the (virtually) shuffled identity permutation are the infected ids.
  std::vector<std::size_t> ids(devices);
  for (std::size_t i = 0; i < devices; ++i) ids[i] = i;
  support::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.below(devices - i);
    std::swap(ids[i], ids[j]);
    roster.set_infected(ids[i]);
  }
  return roster;
}

std::size_t Roster::infected_count() const noexcept {
  std::size_t n = 0;
  for (std::uint8_t f : flags_) n += (f & kInfected) != 0;
  return n;
}

std::size_t Roster::removed_count() const noexcept {
  std::size_t n = 0;
  for (std::uint8_t f : flags_) n += (f & kRemoved) != 0;
  return n;
}

std::set<std::size_t> Roster::infected_set() const {
  std::set<std::size_t> ids;
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    if (flags_[i] & kInfected) ids.insert(i);
  }
  return ids;
}

std::set<std::size_t> Roster::removed_set() const {
  std::set<std::size_t> ids;
  for (std::size_t i = 0; i < flags_.size(); ++i) {
    if (flags_[i] & kRemoved) ids.insert(i);
  }
  return ids;
}

swarm::SwarmResult run_swarm_round(const Roster& roster, swarm::SwarmConfig config,
                                   swarm::SwarmProtocol protocol) {
  config.device_count = roster.size();
  return swarm::run_swarm_attestation(config, protocol, roster.infected_set(),
                                      roster.removed_set());
}

bool swarm_round_matches(const Roster& roster, const swarm::SwarmResult& result) {
  if (!result.completed) return false;
  const std::set<std::size_t> failed(result.failed_ids.begin(),
                                     result.failed_ids.end());
  const std::set<std::size_t> absent(result.absent_ids.begin(),
                                     result.absent_ids.end());
  for (std::size_t id : failed) {
    // Only genuinely infected devices may be accused of failing.
    if (id >= roster.size() || !roster.infected(id)) return false;
  }
  for (std::size_t id = 0; id < roster.size(); ++id) {
    // Every removed device must be noticed (failed or absent), and every
    // infected device must surface unless a removed ancestor hid it.
    if (roster.removed(id) && !failed.count(id) && !absent.count(id)) return false;
    if (roster.infected(id) && !roster.removed(id) && !failed.count(id) &&
        !absent.count(id)) {
      return false;
    }
  }
  return true;
}

}  // namespace rasc::fleet
