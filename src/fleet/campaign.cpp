#include "src/fleet/campaign.hpp"

#include "src/sim/time.hpp"

namespace rasc::fleet {

FleetConfig fleet_config_for(const exp::GridPoint& point,
                             std::uint64_t trial_seed) {
  FleetConfig config;
  config.devices = static_cast<std::size_t>(point.i64("devices"));
  config.drop_probability = static_cast<double>(point.i64("drop_pct")) / 100.0;
  config.stagger = parse_stagger_policy(point.str("stagger"));
  // Mild background faults so duplication/reordering/corruption machinery
  // is exercised in every cell, not just the ones the axes sweep.
  config.duplicate_probability = 0.02;
  config.reorder_probability = 0.02;
  config.corrupt_probability = 0.01;
  config.infected_fraction = 0.01;
  config.epochs = 2;
  config.epoch_period = sim::kSecond;
  config.stagger_span = 0.5;
  config.max_in_flight = 1024;
  // Tight-but-survivable reliability budget: at 20% drop most rounds
  // still resolve inside three attempts, and a budget exhaustion is a
  // legitimate kTimeout misjudgement the Bernoulli channel prices.
  config.session.response_timeout = 60 * sim::kMillisecond;
  config.session.max_attempts = 3;
  config.session.backoff_base = 20 * sim::kMillisecond;
  // Million-device tier: above the hibernation threshold a cell keeps at
  // most kHibernationPool stacks live (the rest exist as seed records and
  // are rebuilt from the shard golden on admission) and admits devices in
  // shard waves (wave_size 0 = auto ≈ devices/64), which is what makes a
  // 1M-device cell fit one process.  Smaller cells keep every stack
  // resident so both regimes stay covered by the same campaign.
  if (config.devices >= kHibernationDeviceThreshold) {
    config.max_live_stacks = kHibernationPool;
  }
  config.seed = trial_seed;
  return config;
}

exp::CampaignSpec make_fleet_scale_campaign(
    const FleetScaleCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "fleet";
  spec.grid.axis("devices", {std::int64_t{1000}, std::int64_t{10000},
                             std::int64_t{100000}, std::int64_t{1000000}});
  spec.grid.axis("drop_pct", {std::int64_t{0}, std::int64_t{20}});
  spec.grid.axis("stagger", {std::string("burst"), std::string("uniform")});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  // One trial is already a whole fleet; shard per trial so the pool can
  // spread cells across workers.
  spec.shard_size = 1;
  spec.trial = [](const exp::GridPoint& point, exp::TrialContext& ctx) {
    FleetConfig config = fleet_config_for(point, ctx.seed);
    exp::TrialOutput out;
    config.metrics = &out.metrics;
    // Collect violations instead of throwing so require() can report them
    // through the campaign's own invariant channel.
    config.enforce_invariants = false;
    FleetVerifier fleet(config);
    const FleetResult result = fleet.run();

    out.require(result.invariant_violations.empty(),
                "fleet invariant checker reported violations");
    out.require(result.rounds_resolved == config.devices * config.epochs,
                "not every admitted round reached a terminal outcome");

    // Bernoulli channel: per-round misjudgement against ground truth.
    out.successes = result.misjudged_rounds;
    out.attempts = result.rounds_resolved;

    out.value("resolved",
              result.rounds_resolved == config.devices * config.epochs ? 1.0 : 0.0);
    out.value("rounds_per_sim_second", result.rounds_per_sim_second);
    out.value("verifier_bytes_per_device",
              result.memory.bytes_per_device(config.devices));
    out.value("epochs_to_full_coverage",
              static_cast<double>(result.epochs_to_full_coverage));
    out.value("in_flight_high_water",
              static_cast<double>(result.in_flight_high_water));
    // Scheduler pressure: dripper firings per epoch.  Wave batching at
    // the hibernation tier must show this ≈ devices / wave_size instead
    // of ≈ devices.
    out.value("admission_events_per_epoch",
              static_cast<double>(result.admission_events) /
                  static_cast<double>(config.epochs));
    out.value("live_stacks_high_water",
              static_cast<double>(result.live_stacks_high_water));
    out.value("hibernation_wakes", static_cast<double>(result.wakes));
    out.value("makespan_ms", sim::to_millis(result.makespan));
    out.value("wasted_mp_ms", result.health.wasted_measure_ms_total());
    out.value("link_drop_rate",
              result.link_sent == 0
                  ? 0.0
                  : static_cast<double>(result.link_dropped) /
                        static_cast<double>(result.link_sent));
    out.value("first_misjudge_trial",
              result.misjudged_rounds > 0 ? static_cast<double>(ctx.trial_index)
                                          : kNoMisjudgeFleetTrial);
    out.health.merge(result.health);
    return out;
  };
  return spec;
}

}  // namespace rasc::fleet
