#include "src/fleet/fleet.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>

#include "src/exp/seeding.hpp"
#include "src/support/rng.hpp"

namespace rasc::fleet {

namespace detail {

std::uint64_t device_stream(std::uint64_t fleet_seed, std::uint64_t device,
                            std::uint64_t salt) noexcept {
  return exp::mix64(fleet_seed ^ exp::mix64(device ^ exp::mix64(salt)));
}

std::uint64_t shard_stream(std::uint64_t fleet_seed, std::uint64_t shard,
                           std::uint64_t salt) noexcept {
  return exp::mix64(exp::mix64(fleet_seed ^ salt) + shard);
}

std::size_t resolve_shards(const FleetConfig& config) noexcept {
  if (config.shards != 0) {
    return std::min(config.shards, std::max<std::size_t>(config.devices, 1));
  }
  const std::size_t autos = (config.devices + 4095) / 4096;
  return std::max<std::size_t>(autos, 1);
}

std::pair<std::size_t, std::size_t> infection_range(const FleetConfig& config) noexcept {
  const std::size_t count =
      std::min(std::max<std::size_t>(config.infection_blocks, 1), config.blocks);
  // Centered like the legacy single-byte patch (block size/2), clamped so
  // the range fits; count == 1 reproduces the legacy patch exactly.
  const std::size_t first = std::min(config.blocks / 2, config.blocks - count);
  return {first, count};
}

}  // namespace detail

std::string stagger_policy_name(StaggerPolicy policy) {
  switch (policy) {
    case StaggerPolicy::kBurst: return "burst";
    case StaggerPolicy::kUniform: return "uniform";
    case StaggerPolicy::kShardPhased: return "shard_phased";
  }
  return "?";
}

StaggerPolicy parse_stagger_policy(const std::string& name) {
  for (StaggerPolicy policy : {StaggerPolicy::kBurst, StaggerPolicy::kUniform,
                               StaggerPolicy::kShardPhased}) {
    if (stagger_policy_name(policy) == name) return policy;
  }
  throw std::invalid_argument("unknown stagger policy '" + name + "'");
}

std::vector<sim::Time> FleetResult::start_times(std::size_t device) const {
  std::vector<sim::Time> times;
  times.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) times.push_back(round(device, e).started);
  return times;
}

namespace {

using detail::device_stream;
using detail::shard_stream;

// Fixed salts for the per-device / per-shard seed streams.  Treat like a
// wire format: the recorded BENCH_fleet baselines depend on them.
constexpr std::uint64_t kChallengeSalt = 0xc0ffee01;
constexpr std::uint64_t kLinkForwardSalt = 0x11c40001;
constexpr std::uint64_t kLinkReverseSalt = 0x11c40002;
constexpr std::uint64_t kSessionSalt = 0x5e551001;
constexpr std::uint64_t kImageSalt = 0x1a9e0001;
constexpr std::uint64_t kKeySalt = 0x6e7f0001;
constexpr std::uint64_t kRosterSalt = 0x1f3c7ed1;

/// Estimated bytes of one DigestCache slot (the Slot layout is private;
/// the accounting only needs a stable, order-of-magnitude figure).
constexpr std::size_t kDigestCacheSlotBytes = sizeof(attest::Digest) + 32;
/// Per-device label strings (device id, trace tracks, session label) —
/// small and constant in N, estimated rather than introspected.
constexpr std::size_t kPerDeviceStringBytes = 128;
constexpr std::size_t kKeyBytes = 16;

/// State shared by every device of one shard: identical provisioned
/// content, one key, one pre-digested golden, one prover-side digest
/// cache (sound to share because same image + same key + same infection
/// patch make block generation -> content a function within the shard).
struct ShardState {
  support::Bytes image;
  support::Bytes key;
  std::shared_ptr<const attest::GoldenMeasurement> golden;
  attest::DigestCache cache;
  obs::HealthRollup health;
};

support::Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  support::Xoshiro256 rng(seed);
  support::Bytes bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

ShardState make_shard_state(const FleetConfig& config, std::size_t shard) {
  ShardState state;
  state.image = random_bytes(shard_stream(config.seed, shard, kImageSalt),
                             config.blocks * config.block_size);
  state.key = random_bytes(shard_stream(config.seed, shard, kKeySalt), kKeyBytes);
  state.golden = std::make_shared<const attest::GoldenMeasurement>(
      state.image, config.block_size, config.hash, state.key);
  return state;
}

sim::DeviceConfig make_device_config(const FleetConfig& config,
                                     const ShardState& shard, std::size_t device) {
  sim::DeviceConfig dev;
  dev.id = "prv-" + std::to_string(device);
  dev.memory_size = config.blocks * config.block_size;
  dev.block_size = config.block_size;
  dev.attestation_key = shard.key;
  return dev;
}

sim::LinkConfig make_link_config(const FleetConfig& config, std::size_t device,
                                 bool forward) {
  sim::LinkConfig link;
  link.name = forward ? "vrf->prv" : "prv->vrf";
  link.base_latency = config.link_latency;
  link.jitter = config.link_jitter;
  link.drop_probability = config.drop_probability;
  link.duplicate_probability = config.duplicate_probability;
  link.corrupt_probability = config.corrupt_probability;
  link.reorder_probability = config.reorder_probability;
  link.seed = device_stream(config.seed, device,
                            forward ? kLinkForwardSalt : kLinkReverseSalt);
  return link;
}

attest::ProverConfig make_prover_config(const FleetConfig& config) {
  attest::ProverConfig prover;
  prover.hash = config.hash;
  prover.mode = config.mode;
  prover.use_merkle_tree = config.use_merkle_tree;
  return prover;
}

attest::SessionConfig make_session_config(const FleetConfig& config,
                                          std::size_t device) {
  attest::SessionConfig session = config.session;
  session.seed = device_stream(config.seed, device, kSessionSalt);
  return session;
}

/// One prover and everything the verifier keeps to talk to it.  All
/// stacks stay alive for the entire fleet run: CPU segment completions
/// and link deliveries capture references into them, so tearing a stack
/// down mid-run would be use-after-free.  The admission window bounds
/// *concurrent sessions*, not live objects.
struct DeviceStack {
  std::shared_ptr<const attest::GoldenMeasurement> own_golden;  ///< iff !share_golden
  sim::Device device;
  attest::Verifier verifier;
  attest::AttestationProcess mp;
  sim::Link vrf_to_prv;
  sim::Link prv_to_vrf;
  attest::ReliableSession session;

  DeviceStack(sim::Simulator& sim, const FleetConfig& config, ShardState& shard,
              std::size_t index)
      : own_golden(config.share_golden
                       ? nullptr
                       : std::make_shared<const attest::GoldenMeasurement>(
                             shard.image, config.block_size, config.hash,
                             shard.key)),
        device(sim, make_device_config(config, shard, index)),
        verifier(config.share_golden ? shard.golden : own_golden, shard.key,
                 device_stream(config.seed, index, kChallengeSalt)),
        mp(device, make_prover_config(config)),
        vrf_to_prv(sim, make_link_config(config, index, /*forward=*/true)),
        prv_to_vrf(sim, make_link_config(config, index, /*forward=*/false)),
        session(device, verifier, mp, vrf_to_prv, prv_to_vrf,
                make_session_config(config, index)) {
    device.memory().load(shard.image);
    if (config.share_digest_cache) mp.set_shared_digest_cache(&shard.cache);
    if (config.metrics != nullptr) {
      verifier.set_metrics(config.metrics);
      vrf_to_prv.set_metrics(config.metrics);
      prv_to_vrf.set_metrics(config.metrics);
      session.set_metrics(config.metrics);
    }
  }

  /// Provisioning step two, split from construction so the fleet can build
  /// every stack of a shard wave first and then provision them together.
  /// Per device the order is fixed: prime from the *clean* image strictly
  /// before the infection patch lands, so the infection is the only
  /// dirtiness the first round sees and the subtree proofs localize
  /// exactly the infected range.
  void provision(const FleetConfig& config, ShardState& shard, bool infected) {
    if (config.use_merkle_tree) {
      // The shard golden already holds every block digest of the clean
      // image, computed once per shard in one multi-lane batch
      // (GoldenMeasurement's batched constructor).  Prime the tree from
      // those digests directly instead of re-digesting blocks * devices
      // times — the prover's (mac, hash, key) match the golden's by
      // construction (same FleetConfig, same shard key).
      const attest::GoldenMeasurement& golden =
          config.share_golden ? *shard.golden : *own_golden;
      mp.prime_tree_from(golden.block_digests());
    }
    if (infected) {
      // Shard-deterministic infection: same blocks, same byte flips for
      // every infected device of the shard, planted before any round —
      // required both for soundly sharing the shard digest cache (the
      // infected content at generation 2 is one value shard-wide) and for
      // the roster's ground truth (correct verdict = kCompromised).
      const auto [first, count] = detail::infection_range(config);
      for (std::size_t block = first; block < first + count; ++block) {
        const std::size_t addr = block * device.memory().block_size();
        const std::uint8_t original = device.memory().block_view(block)[0];
        const support::Bytes patch = {static_cast<std::uint8_t>(original ^ 0xff)};
        device.memory().write(addr, patch, 0, sim::Actor::kMalware);
      }
    }
  }
};

}  // namespace

struct FleetVerifier::Impl {
  FleetConfig config;
  Roster roster;
  std::size_t shard_count = 1;
  std::size_t devices_per_shard = 1;
  bool ran = false;

  sim::Simulator simulator;
  std::vector<ShardState> shards;
  std::vector<std::unique_ptr<DeviceStack>> stacks;

  /// Per-device scheduling record.  `pending` counts epochs whose stagger
  /// time has passed but whose round has not started yet (waiting on the
  /// admission window or on the device's previous round).
  struct DeviceRec {
    std::uint32_t pending = 0;
    std::uint32_t rounds_done = 0;
    bool queued = false;
    bool in_flight = false;
  };
  std::vector<DeviceRec> recs;
  std::deque<std::uint32_t> admission;
  std::size_t in_flight_count = 0;

  FleetResult result;
  sim::Time first_start = 0;
  sim::Time last_resolve = 0;
  bool any_started = false;

  Impl(FleetConfig cfg, Roster ros)
      : config(std::move(cfg)), roster(std::move(ros)) {
    if (config.devices == 0) throw std::invalid_argument("FleetConfig.devices == 0");
    if (config.epochs == 0) throw std::invalid_argument("FleetConfig.epochs == 0");
    if (config.epoch_period == 0) {
      throw std::invalid_argument("FleetConfig.epoch_period == 0");
    }
    if (roster.size() != config.devices) {
      throw std::invalid_argument("roster size != FleetConfig.devices");
    }
    shard_count = detail::resolve_shards(config);
    devices_per_shard = (config.devices + shard_count - 1) / shard_count;

    simulator.set_journal(config.journal);

    shards.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards.push_back(make_shard_state(config, s));
    }
    stacks.reserve(config.devices);
    for (std::size_t d = 0; d < config.devices; ++d) {
      stacks.push_back(std::make_unique<DeviceStack>(
          simulator, config, shards[shard_of(d)], d));
      stacks.back()->session.set_health(&shards[shard_of(d)].health);
    }
    // Shard-wave provisioning: every device of a shard primes its tree
    // from the same pre-batched golden digests (tree mode), then takes
    // its infection patch.  Separate pass so the batched digesting work
    // (one digest_batch per shard, inside make_shard_state) amortizes
    // across the whole wave instead of repeating per device.
    for (std::size_t d = 0; d < config.devices; ++d) {
      stacks[d]->provision(config, shards[shard_of(d)], roster.infected(d));
    }
    recs.resize(config.devices);
  }

  std::size_t shard_of(std::size_t device) const noexcept {
    return std::min(device / devices_per_shard, shard_count - 1);
  }

  sim::Duration stagger_offset(std::size_t device) const noexcept {
    const double span = std::clamp(config.stagger_span, 0.0, 1.0);
    const auto span_ns = static_cast<sim::Duration>(
        static_cast<double>(config.epoch_period) * span);
    switch (config.stagger) {
      case StaggerPolicy::kBurst:
        return 0;
      case StaggerPolicy::kUniform:
        return span_ns * device / config.devices;
      case StaggerPolicy::kShardPhased:
        return span_ns * shard_of(device) / shard_count;
    }
    return 0;
  }

  void violation(std::string what) {
    result.invariant_violations.push_back(std::move(what));
  }

  /// One dripper event chain per epoch: admit every device whose stagger
  /// offset has passed, then sleep until the next offset — one pending
  /// simulator event per epoch instead of N closures.
  void schedule_epoch(std::size_t epoch) {
    const sim::Time start = static_cast<sim::Time>(epoch) * config.epoch_period;
    auto step = std::make_shared<std::function<void(std::size_t)>>();
    *step = [this, start, step](std::size_t next) {
      while (next < config.devices &&
             start + stagger_offset(next) <= simulator.now()) {
        device_ready(next);
        ++next;
      }
      if (next < config.devices) {
        simulator.schedule_at(start + stagger_offset(next),
                              [step, next] { (*step)(next); });
      }
    };
    simulator.schedule_at(start, [step] { (*step)(0); });
  }

  void device_ready(std::size_t d) {
    DeviceRec& rec = recs[d];
    ++rec.pending;
    if (!rec.queued && !rec.in_flight) {
      rec.queued = true;
      admission.push_back(static_cast<std::uint32_t>(d));
    }
    pump();
  }

  void pump() {
    while (!admission.empty() &&
           (config.max_in_flight == 0 || in_flight_count < config.max_in_flight)) {
      const std::size_t d = admission.front();
      admission.pop_front();
      start_round(d);
    }
  }

  void start_round(std::size_t d) {
    DeviceRec& rec = recs[d];
    rec.queued = false;
    --rec.pending;
    rec.in_flight = true;
    ++in_flight_count;
    result.in_flight_high_water =
        std::max(result.in_flight_high_water, in_flight_count);
    EpochStats& es = result.epoch_stats[rec.rounds_done];
    if (es.admitted == 0) es.first_start = simulator.now();
    ++es.admitted;
    if (!any_started) {
      any_started = true;
      first_start = simulator.now();
    }
    stacks[d]->session.run(
        [this, d](attest::RoundResult r) { on_round_done(d, std::move(r)); });
  }

  void on_round_done(std::size_t d, attest::RoundResult r) {
    DeviceRec& rec = recs[d];
    const std::size_t epoch = rec.rounds_done;
    ++rec.rounds_done;
    rec.in_flight = false;
    --in_flight_count;

    const obs::RoundOutcome outcome = attest::session_outcome_rollup(r.outcome);
    RoundRecord& record = result.rounds[d * config.epochs + epoch];
    record.started = r.t_started;
    record.outcome = outcome;
    record.attempts =
        static_cast<std::uint8_t>(std::min<std::size_t>(r.attempts, 255));
    record.resolved = true;
    if (r.verdict.used_tree && !r.verdict.localized.empty()) {
      record.localized_ranges =
          static_cast<std::uint32_t>(r.verdict.localized.size());
      record.localized_first =
          static_cast<std::uint32_t>(r.verdict.localized.front().first);
      record.localized_count =
          static_cast<std::uint32_t>(r.verdict.localized.front().count);
    }

    ++result.rounds_resolved;
    ++result.outcome_counts[static_cast<std::size_t>(outcome)];
    last_resolve = std::max(last_resolve, r.t_resolved);

    EpochStats& es = result.epoch_stats[epoch];
    ++es.resolved;
    es.last_resolve = std::max(es.last_resolve, r.t_resolved);
    // Independent epoch-grouped fold with the exact arguments the session
    // records into its shard rollup — the two groupings must agree.
    es.health.record_round(outcome, r.attempts, r.t_resolved - r.t_started,
                           r.measure_time, r.wasted_measure_time);

    const obs::RoundOutcome expected = roster.infected(d)
                                           ? obs::RoundOutcome::kCompromised
                                           : obs::RoundOutcome::kVerified;
    if (outcome != expected) {
      ++result.misjudged_rounds;
      ++es.misjudged;
    }

    if (r.attempts == 0 || r.attempts > config.session.max_attempts) {
      violation("device " + std::to_string(d) + " round " +
                std::to_string(epoch) + " used " + std::to_string(r.attempts) +
                " attempts (budget " +
                std::to_string(config.session.max_attempts) + ")");
    }

    if (rec.pending > 0 && !rec.queued) {
      rec.queued = true;
      admission.push_back(static_cast<std::uint32_t>(d));
    }
    pump();
    if (es.resolved == config.devices) check_epoch(epoch);
  }

  /// Invariants asserted the moment an epoch's last round resolves.
  void check_epoch(std::size_t epoch) {
    const EpochStats& es = result.epoch_stats[epoch];
    if (es.admitted != config.devices) {
      violation("epoch " + std::to_string(epoch) + " admitted " +
                std::to_string(es.admitted) + " of " +
                std::to_string(config.devices) + " devices");
    }
    if (es.health.rounds() != config.devices) {
      violation("epoch " + std::to_string(epoch) + " health rollup saw " +
                std::to_string(es.health.rounds()) + " rounds, expected " +
                std::to_string(config.devices));
    }
    if (config.max_in_flight != 0 &&
        result.in_flight_high_water > config.max_in_flight) {
      violation("in-flight high water " +
                std::to_string(result.in_flight_high_water) +
                " exceeded admission window " +
                std::to_string(config.max_in_flight));
    }
  }

  /// Compare two rollups' integer aggregates (double sums may differ in
  /// the last ulp between groupings; counts may not differ at all).
  static bool same_integer_aggregates(const obs::HealthRollup& a,
                                      const obs::HealthRollup& b) {
    if (a.rounds() != b.rounds()) return false;
    for (std::size_t i = 0; i < obs::kRoundOutcomeCount; ++i) {
      const auto outcome = static_cast<obs::RoundOutcome>(i);
      if (a.outcome_count(outcome) != b.outcome_count(outcome)) return false;
    }
    for (std::size_t depth = 1; depth <= obs::HealthRollup::kMaxRetryDepth;
         ++depth) {
      if (a.retry_depth(depth) != b.retry_depth(depth)) return false;
    }
    return a.latency_ms().count() == b.latency_ms().count();
  }

  void finalize() {
    const std::size_t expected_rounds = config.devices * config.epochs;
    if (result.rounds_resolved != expected_rounds) {
      violation("resolved " + std::to_string(result.rounds_resolved) + " of " +
                std::to_string(expected_rounds) + " rounds");
    }
    if (in_flight_count != 0 || !admission.empty()) {
      violation("simulation quiesced with " + std::to_string(in_flight_count) +
                " sessions in flight and " + std::to_string(admission.size()) +
                " queued");
    }
    for (std::size_t d = 0; d < config.devices; ++d) {
      if (recs[d].rounds_done != config.epochs || recs[d].pending != 0) {
        violation("device " + std::to_string(d) + " finished " +
                  std::to_string(recs[d].rounds_done) + " of " +
                  std::to_string(config.epochs) + " rounds (" +
                  std::to_string(recs[d].pending) + " pending)");
        break;  // one witness is enough; the counts above give the total
      }
      if (stacks[d]->session.busy()) {
        violation("device " + std::to_string(d) +
                  " session still busy after drain");
        break;
      }
    }

    // Fleet total = shard-order merge of the per-shard rollups the
    // sessions fed live.  It must agree (integer-exactly) with the merge
    // of the independently accumulated per-epoch rollups — the same
    // rounds grouped two different ways — and with a reversed-order merge
    // (associativity/commutativity witness on real data).
    result.shard_health.reserve(shards.size());
    for (const ShardState& shard : shards) {
      result.shard_health.push_back(shard.health);
    }
    for (const obs::HealthRollup& shard : result.shard_health) {
      result.health.merge(shard);
    }
    obs::HealthRollup by_epoch;
    for (const EpochStats& es : result.epoch_stats) by_epoch.merge(es.health);
    if (!same_integer_aggregates(result.health, by_epoch)) {
      violation("shard-grouped and epoch-grouped health rollups disagree");
    }
    obs::HealthRollup reversed;
    for (auto it = result.shard_health.rbegin(); it != result.shard_health.rend();
         ++it) {
      reversed.merge(*it);
    }
    if (!same_integer_aggregates(result.health, reversed)) {
      violation("shard rollup merge is order-sensitive");
    }
    std::uint64_t outcome_total = 0;
    for (std::size_t i = 0; i < obs::kRoundOutcomeCount; ++i) {
      const auto outcome = static_cast<obs::RoundOutcome>(i);
      outcome_total += result.outcome_counts[i];
      if (result.outcome_counts[i] != result.health.outcome_count(outcome)) {
        violation("per-round outcome tally disagrees with health rollup for " +
                  std::string(obs::round_outcome_name(outcome)));
      }
    }
    if (outcome_total != result.rounds_resolved) {
      violation("outcome counts do not sum to rounds resolved");
    }

    for (const auto& stack : stacks) {
      for (const sim::Link* link : {&stack->vrf_to_prv, &stack->prv_to_vrf}) {
        result.link_sent += link->sent();
        result.link_delivered += link->delivered();
        result.link_dropped += link->dropped();
        result.link_duplicated += link->duplicated();
        result.link_corrupted += link->corrupted();
        result.link_reordered += link->reordered();
      }
    }
    if (result.link_delivered !=
        result.link_sent - result.link_dropped + result.link_duplicated) {
      violation("link counter invariant delivered == sent - dropped + "
                "duplicated does not hold after drain");
    }

    result.makespan = any_started ? last_resolve - first_start : 0;
    result.rounds_per_sim_second =
        result.makespan == 0 ? 0.0
                             : static_cast<double>(result.rounds_resolved) /
                                   sim::to_seconds(result.makespan);

    // Full coverage: the epoch boundary by which every device had its
    // first round resolved (0 = some device never resolved one).
    if (!result.epoch_stats.empty() &&
        result.epoch_stats[0].resolved == config.devices) {
      result.epochs_to_full_coverage = static_cast<std::size_t>(
          result.epoch_stats[0].last_resolve / config.epoch_period) + 1;
    }

    result.memory = memory_stats();

    // Shard golden roots and their fleet aggregate — the one digest a
    // higher-tier verifier would pin for this fleet's expected state.
    result.shard_tree_roots.reserve(shards.size());
    for (const ShardState& shard : shards) {
      result.shard_tree_roots.push_back(shard.golden->tree().root());
    }
    result.fleet_tree_root =
        mtree::MerkleTree::combine_roots(result.shard_tree_roots, config.hash);
  }

  FleetMemoryStats memory_stats() const {
    FleetMemoryStats stats;
    for (const ShardState& shard : shards) {
      stats.shared_bytes += shard.image.capacity() + shard.key.capacity();
      if (config.share_golden) {
        stats.shared_bytes += sizeof(attest::GoldenMeasurement) +
                              shard.golden->block_count() * sizeof(attest::Digest) +
                              shard.golden->tree_memory_bytes() +
                              shard.key.capacity();
      }
      if (config.share_digest_cache) {
        stats.shared_bytes += sizeof(attest::DigestCache) +
                              config.blocks * kDigestCacheSlotBytes;
      }
    }
    std::size_t per_device = sizeof(DeviceStack) + sizeof(DeviceRec) +
                             config.epochs * sizeof(RoundRecord) +
                             kPerDeviceStringBytes + /*verifier key copy*/ kKeyBytes;
    if (!config.share_golden) {
      per_device += sizeof(attest::GoldenMeasurement) +
                    config.blocks * sizeof(attest::Digest) +
                    shards.front().golden->tree_memory_bytes() + kKeyBytes;
    }
    if (!config.share_digest_cache) {
      per_device += sizeof(attest::DigestCache) +
                    config.blocks * kDigestCacheSlotBytes;
    }
    stats.per_device_bytes = config.devices * per_device;
    stats.roster_bytes = roster.memory_bytes();
    return stats;
  }

  FleetResult run() {
    if (ran) throw std::logic_error("FleetVerifier::run called twice");
    ran = true;
    result.devices = config.devices;
    result.epochs = config.epochs;
    result.shards = shard_count;
    result.rounds.resize(config.devices * config.epochs);
    result.epoch_stats.resize(config.epochs);
    for (std::size_t e = 0; e < config.epochs; ++e) schedule_epoch(e);
    simulator.run();
    finalize();
    if (config.enforce_invariants && !result.invariant_violations.empty()) {
      std::string what = "fleet invariants violated:";
      for (const std::string& v : result.invariant_violations) what += "\n  " + v;
      throw std::logic_error(what);
    }
    return std::move(result);
  }
};

FleetVerifier::FleetVerifier(FleetConfig config)
    : FleetVerifier(config,
                    Roster::with_infected_fraction(
                        config.devices, config.infected_fraction,
                        detail::device_stream(config.seed, 0, 0x1f3c7ed1))) {}

FleetVerifier::FleetVerifier(FleetConfig config, Roster roster)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(roster))) {}

FleetVerifier::~FleetVerifier() = default;

FleetResult FleetVerifier::run() { return impl_->run(); }

const Roster& FleetVerifier::roster() const noexcept { return impl_->roster; }
std::size_t FleetVerifier::shard_count() const noexcept {
  return impl_->shard_count;
}
std::size_t FleetVerifier::shard_of(std::size_t device) const noexcept {
  return impl_->shard_of(device);
}
FleetMemoryStats FleetVerifier::memory_stats() const {
  return impl_->memory_stats();
}

std::vector<obs::RoundOutcome> replay_device(
    const FleetConfig& config, const Roster& roster, std::size_t device,
    const std::vector<sim::Time>& start_times) {
  if (device >= config.devices) {
    throw std::out_of_range("replay_device: device index out of range");
  }
  const std::size_t shard_count = detail::resolve_shards(config);
  const std::size_t devices_per_shard =
      (config.devices + shard_count - 1) / shard_count;
  const std::size_t shard_index =
      std::min(device / devices_per_shard, shard_count - 1);

  sim::Simulator simulator;
  // Fresh shard state: own golden, own digest cache (shared only with
  // itself) — cache hits are bit-identical to recomputation, so sharing
  // verifier state with fleet neighbors cannot change outcomes, and the
  // replay cross-check proves exactly that.
  FleetConfig replay_config = config;
  replay_config.metrics = nullptr;
  replay_config.journal = nullptr;
  ShardState shard = make_shard_state(replay_config, shard_index);
  DeviceStack stack(simulator, replay_config, shard, device);
  stack.provision(replay_config, shard, roster.infected(device));

  std::vector<obs::RoundOutcome> outcomes;
  outcomes.reserve(start_times.size());
  // Chain rounds through the done callback (mirroring the fleet's
  // resolve-then-readmit pump) so a round whose recorded start coincides
  // with the previous round's resolve timestamp starts *after* that
  // resolution instead of hitting a busy session.
  std::function<void(std::size_t)> schedule_round = [&](std::size_t r) {
    if (r >= start_times.size()) return;
    simulator.schedule_at(start_times[r], [&, r] {
      stack.session.run([&, r](attest::RoundResult res) {
        outcomes.push_back(attest::session_outcome_rollup(res.outcome));
        schedule_round(r + 1);
      });
    });
  };
  schedule_round(0);
  simulator.run();
  return outcomes;
}

}  // namespace rasc::fleet
