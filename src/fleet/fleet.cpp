#include "src/fleet/fleet.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>

#include "src/exp/seeding.hpp"
#include "src/support/rng.hpp"

namespace rasc::fleet {

namespace detail {

std::uint64_t device_stream(std::uint64_t fleet_seed, std::uint64_t device,
                            std::uint64_t salt) noexcept {
  return exp::mix64(fleet_seed ^ exp::mix64(device ^ exp::mix64(salt)));
}

std::uint64_t shard_stream(std::uint64_t fleet_seed, std::uint64_t shard,
                           std::uint64_t salt) noexcept {
  return exp::mix64(exp::mix64(fleet_seed ^ salt) + shard);
}

std::size_t resolve_shards(const FleetConfig& config) noexcept {
  if (config.shards != 0) {
    return std::min(config.shards, std::max<std::size_t>(config.devices, 1));
  }
  const std::size_t autos = (config.devices + 4095) / 4096;
  return std::max<std::size_t>(autos, 1);
}

std::pair<std::size_t, std::size_t> infection_range(const FleetConfig& config) noexcept {
  const std::size_t count =
      std::min(std::max<std::size_t>(config.infection_blocks, 1), config.blocks);
  // Centered like the legacy single-byte patch (block size/2), clamped so
  // the range fits; count == 1 reproduces the legacy patch exactly.
  const std::size_t first = std::min(config.blocks / 2, config.blocks - count);
  return {first, count};
}

}  // namespace detail

std::string stagger_policy_name(StaggerPolicy policy) {
  switch (policy) {
    case StaggerPolicy::kBurst: return "burst";
    case StaggerPolicy::kUniform: return "uniform";
    case StaggerPolicy::kShardPhased: return "shard_phased";
  }
  return "?";
}

StaggerPolicy parse_stagger_policy(const std::string& name) {
  for (StaggerPolicy policy : {StaggerPolicy::kBurst, StaggerPolicy::kUniform,
                               StaggerPolicy::kShardPhased}) {
    if (stagger_policy_name(policy) == name) return policy;
  }
  throw std::invalid_argument("unknown stagger policy '" + name + "'");
}

const RoundRecord& FleetResult::round(std::size_t device, std::size_t epoch) const {
  if (epoch >= epochs) {
    throw std::out_of_range("FleetResult::round: epoch out of range");
  }
  if (epoch + round_history < epochs) {
    throw std::out_of_range(
        "FleetResult::round: epoch evicted by max_round_history");
  }
  return rounds.at(device * round_history + epoch % round_history);
}

std::vector<sim::Time> FleetResult::start_times(std::size_t device) const {
  if (round_history < epochs) {
    throw std::logic_error(
        "FleetResult::start_times requires the full round history "
        "(max_round_history >= epochs)");
  }
  std::vector<sim::Time> times;
  times.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) times.push_back(round(device, e).started);
  return times;
}

namespace {

using detail::device_stream;
using detail::shard_stream;

// Fixed salts for the per-device / per-shard seed streams.  Treat like a
// wire format: the recorded BENCH_fleet baselines depend on them.
constexpr std::uint64_t kChallengeSalt = 0xc0ffee01;
constexpr std::uint64_t kLinkForwardSalt = 0x11c40001;
constexpr std::uint64_t kLinkReverseSalt = 0x11c40002;
constexpr std::uint64_t kSessionSalt = 0x5e551001;
constexpr std::uint64_t kImageSalt = 0x1a9e0001;
constexpr std::uint64_t kKeySalt = 0x6e7f0001;
constexpr std::uint64_t kRosterSalt = 0x1f3c7ed1;

/// Estimated bytes of one DigestCache slot (the Slot layout is private;
/// the accounting only needs a stable, order-of-magnitude figure).
constexpr std::size_t kDigestCacheSlotBytes = sizeof(attest::Digest) + 32;
/// Per-device label strings (device id, trace tracks, session label) —
/// small and constant in N, estimated rather than introspected.
constexpr std::size_t kPerDeviceStringBytes = 128;
constexpr std::size_t kKeyBytes = 16;
/// Heap behind one HibernatedDevice record: the verifier DRBG snapshot
/// (K and V, 32 B each) plus the outstanding challenge.  The flat-mode
/// proof backlog is empty; tree-mode backlogs add 4 B per unacknowledged
/// block on top of this constant.
constexpr std::size_t kHibernatedHeapBytes = 96;

/// Order-independent stamp over the memory's generation counters.  A
/// rebuilt stack must reproduce it exactly (same load, same infection
/// patch): a mismatch means the rebuild diverged from the original
/// provisioning and the shared digest cache's generation keys are no
/// longer sound for this device.
std::uint64_t generation_summary(const sim::DeviceMemory& memory) {
  std::uint64_t h = exp::mix64(memory.generation());
  for (std::size_t b = 0; b < memory.block_count(); ++b) {
    h = exp::mix64(h ^ memory.block_generation(b));
  }
  return h;
}

std::uint64_t key_fingerprint(support::ByteView key) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint8_t b : key) h = exp::mix64(h ^ b);
  return h;
}

/// Compact between-rounds seed record of one device: everything a rebuilt
/// stack cannot re-derive from (FleetConfig, shard state, device id) —
/// a few hundred bytes against ~3 kB for a live DeviceStack, which is
/// what makes the 1M tier fit in host RAM.
struct HibernatedDevice {
  bool valid = false;
  std::uint32_t device = 0;
  std::uint32_t shard = 0;
  std::uint32_t wakes = 0;              ///< rebuilds consumed so far
  std::uint64_t key_fingerprint = 0;    ///< shard key stamp (sanity check)
  std::uint64_t generation_summary = 0; ///< memory generations at capture
  attest::ReliableSession::State session;
  attest::Verifier::SessionState verifier;
  attest::AttestationProcess::ProcessState process;
  sim::Link::State vrf_to_prv;
  sim::Link::State prv_to_vrf;
};

/// State shared by every device of one shard: identical provisioned
/// content, one key, one pre-digested golden, one prover-side digest
/// cache (sound to share because same image + same key + same infection
/// patch make block generation -> content a function within the shard).
struct ShardState {
  support::Bytes image;
  support::Bytes key;
  std::shared_ptr<const attest::GoldenMeasurement> golden;
  attest::DigestCache cache;
  obs::HealthRollup health;
};

support::Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  support::Xoshiro256 rng(seed);
  support::Bytes bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

ShardState make_shard_state(const FleetConfig& config, std::size_t shard) {
  ShardState state;
  state.image = random_bytes(shard_stream(config.seed, shard, kImageSalt),
                             config.blocks * config.block_size);
  state.key = random_bytes(shard_stream(config.seed, shard, kKeySalt), kKeyBytes);
  state.golden = std::make_shared<const attest::GoldenMeasurement>(
      state.image, config.block_size, config.hash, state.key);
  return state;
}

sim::DeviceConfig make_device_config(const FleetConfig& config,
                                     const ShardState& shard, std::size_t device) {
  sim::DeviceConfig dev;
  dev.id = "prv-" + std::to_string(device);
  dev.memory_size = config.blocks * config.block_size;
  dev.block_size = config.block_size;
  dev.attestation_key = shard.key;
  return dev;
}

sim::LinkConfig make_link_config(const FleetConfig& config, std::size_t device,
                                 bool forward) {
  sim::LinkConfig link;
  link.name = forward ? "vrf->prv" : "prv->vrf";
  link.base_latency = config.link_latency;
  link.jitter = config.link_jitter;
  link.drop_probability = config.drop_probability;
  link.duplicate_probability = config.duplicate_probability;
  link.corrupt_probability = config.corrupt_probability;
  link.reorder_probability = config.reorder_probability;
  link.seed = device_stream(config.seed, device,
                            forward ? kLinkForwardSalt : kLinkReverseSalt);
  return link;
}

attest::ProverConfig make_prover_config(const FleetConfig& config) {
  attest::ProverConfig prover;
  prover.hash = config.hash;
  prover.mode = config.mode;
  prover.use_merkle_tree = config.use_merkle_tree;
  return prover;
}

attest::SessionConfig make_session_config(const FleetConfig& config,
                                          std::size_t device) {
  attest::SessionConfig session = config.session;
  session.seed = device_stream(config.seed, device, kSessionSalt);
  return session;
}

/// One prover and everything the verifier keeps to talk to it.  CPU
/// segment completions and link deliveries capture references into the
/// stack, so it may only be torn down while quiescent() — no round in
/// flight, no measurement running, no protocol deferral pending, nothing
/// in flight on either link.  Without hibernation
/// (FleetConfig::max_live_stacks == 0) every stack stays alive for the
/// whole run; with it, idle quiescent stacks collapse to HibernatedDevice
/// records and are rebuilt from the shard state on the next admission.
/// The admission window bounds *concurrent sessions*, not live objects.
struct DeviceStack {
  std::shared_ptr<const attest::GoldenMeasurement> own_golden;  ///< iff !share_golden
  sim::Device device;
  attest::Verifier verifier;
  attest::AttestationProcess mp;
  sim::Link vrf_to_prv;
  sim::Link prv_to_vrf;
  attest::ReliableSession session;

  DeviceStack(sim::Simulator& sim, const FleetConfig& config, ShardState& shard,
              std::size_t index)
      : own_golden(config.share_golden
                       ? nullptr
                       : std::make_shared<const attest::GoldenMeasurement>(
                             shard.image, config.block_size, config.hash,
                             shard.key)),
        device(sim, make_device_config(config, shard, index)),
        verifier(config.share_golden ? shard.golden : own_golden, shard.key,
                 device_stream(config.seed, index, kChallengeSalt)),
        mp(device, make_prover_config(config)),
        vrf_to_prv(sim, make_link_config(config, index, /*forward=*/true)),
        prv_to_vrf(sim, make_link_config(config, index, /*forward=*/false)),
        session(device, verifier, mp, vrf_to_prv, prv_to_vrf,
                make_session_config(config, index)) {
    device.memory().load(shard.image);
    if (config.share_digest_cache) mp.set_shared_digest_cache(&shard.cache);
    if (config.metrics != nullptr) {
      verifier.set_metrics(config.metrics);
      vrf_to_prv.set_metrics(config.metrics);
      prv_to_vrf.set_metrics(config.metrics);
      session.set_metrics(config.metrics);
    }
  }

  /// Provisioning step two, split from construction so the fleet can build
  /// every stack of a shard wave first and then provision them together.
  /// Per device the order is fixed: prime from the *clean* image strictly
  /// before the infection patch lands, so the infection is the only
  /// dirtiness the first round sees and the subtree proofs localize
  /// exactly the infected range.
  void provision(const FleetConfig& config, ShardState& shard, bool infected) {
    if (config.use_merkle_tree) {
      // The shard golden already holds every block digest of the clean
      // image, computed once per shard in one multi-lane batch
      // (GoldenMeasurement's batched constructor).  Prime the tree from
      // those digests directly instead of re-digesting blocks * devices
      // times — the prover's (mac, hash, key) match the golden's by
      // construction (same FleetConfig, same shard key).
      const attest::GoldenMeasurement& golden =
          config.share_golden ? *shard.golden : *own_golden;
      mp.prime_tree_from(golden.block_digests());
    }
    patch_infection(config, infected);
  }

  /// The infection writes alone — shard-deterministic: same blocks, same
  /// byte flips for every infected device of the shard, planted before
  /// any round.  Required both for soundly sharing the shard digest cache
  /// (the infected content at generation 2 is one value shard-wide) and
  /// for the roster's ground truth (correct verdict = kCompromised).  A
  /// rebuilt stack replays exactly these writes so its generation
  /// counters match the first build's (see generation_summary).
  void patch_infection(const FleetConfig& config, bool infected) {
    if (!infected) return;
    const auto [first, count] = detail::infection_range(config);
    for (std::size_t block = first; block < first + count; ++block) {
      const std::size_t addr = block * device.memory().block_size();
      const std::uint8_t original = device.memory().block_view(block)[0];
      const support::Bytes patch = {static_cast<std::uint8_t>(original ^ 0xff)};
      device.memory().write(addr, patch, 0, sim::Actor::kMalware);
    }
  }

  /// Safe-to-tear-down check: every event that could still reference this
  /// stack has fired.  Link in_flight covers deliveries; mp.busy covers
  /// CPU segments and the measurement callback chain; session.quiescent
  /// covers round state and the protocol's deferral events.
  bool quiescent() const noexcept {
    return session.quiescent() && !mp.busy() && vrf_to_prv.in_flight() == 0 &&
           prv_to_vrf.in_flight() == 0;
  }

  /// Collapse to the seed record.  Caller guarantees quiescent().
  HibernatedDevice hibernate(std::size_t index, std::size_t shard_index,
                             std::uint64_t key_fp, std::uint32_t wakes) const {
    HibernatedDevice h;
    h.valid = true;
    h.device = static_cast<std::uint32_t>(index);
    h.shard = static_cast<std::uint32_t>(shard_index);
    h.wakes = wakes;
    h.key_fingerprint = key_fp;
    h.generation_summary = generation_summary(device.memory());
    h.session = session.save_state();
    h.verifier = verifier.save_session_state();
    h.process = mp.save_process_state();
    h.vrf_to_prv = vrf_to_prv.save_state();
    h.prv_to_vrf = prv_to_vrf.save_state();
    return h;
  }

  /// Rebuild-from-seed path (the constructor already loaded the clean
  /// shard image): replay the infection patch, then — tree mode only —
  /// re-prime the tree from the *current* (patched) content.  The
  /// persistent stack's tree was already consistent with that content, so
  /// re-priming from the golden digests here would spuriously re-dirty
  /// the infected blocks and change the next round's visit set.  Finally
  /// restore every captured protocol position.
  void restore(const FleetConfig& config, bool infected,
               const HibernatedDevice& h) {
    patch_infection(config, infected);
    if (config.use_merkle_tree) mp.prime_tree();
    session.restore_state(h.session);
    verifier.restore_session_state(h.verifier);
    mp.restore_process_state(h.process);
    vrf_to_prv.restore_state(h.vrf_to_prv);
    prv_to_vrf.restore_state(h.prv_to_vrf);
  }
};

}  // namespace

struct FleetVerifier::Impl {
  FleetConfig config;
  Roster roster;
  std::size_t shard_count = 1;
  std::size_t devices_per_shard = 1;
  bool hibernation = false;  ///< config.max_live_stacks != 0
  std::size_t wave = 1;      ///< resolved admission wave size
  std::size_t history = 1;   ///< resolved per-device round-history depth
  bool ran = false;

  sim::Simulator simulator;
  std::vector<ShardState> shards;
  std::vector<std::uint64_t> shard_key_fps;
  /// Null slots are hibernated (or not yet admitted) devices.
  std::vector<std::unique_ptr<DeviceStack>> stacks;
  std::vector<HibernatedDevice> hibernated;  ///< sized N iff hibernation
  std::size_t live_stacks = 0;

  /// Per-device scheduling record.  `pending` counts epochs whose stagger
  /// time has passed but whose round has not started yet (waiting on the
  /// admission window or on the device's previous round).
  struct DeviceRec {
    std::uint32_t pending = 0;
    std::uint32_t rounds_done = 0;
    bool queued = false;
    bool in_flight = false;
    bool idle_listed = false;  ///< sitting in idle_lru (hibernation only)
  };
  std::vector<DeviceRec> recs;
  std::deque<std::uint32_t> admission;
  /// Hibernation candidates, least-recently-idle first.  Entries are
  /// validated lazily at pop time (the device may have been readmitted).
  std::deque<std::uint32_t> idle_lru;
  std::size_t in_flight_count = 0;

  FleetResult result;
  sim::Time first_start = 0;
  sim::Time last_resolve = 0;
  bool any_started = false;

  Impl(FleetConfig cfg, Roster ros)
      : config(std::move(cfg)), roster(std::move(ros)) {
    if (config.devices == 0) throw std::invalid_argument("FleetConfig.devices == 0");
    if (config.epochs == 0) throw std::invalid_argument("FleetConfig.epochs == 0");
    if (config.epoch_period == 0) {
      throw std::invalid_argument("FleetConfig.epoch_period == 0");
    }
    if (roster.size() != config.devices) {
      throw std::invalid_argument("roster size != FleetConfig.devices");
    }
    hibernation = config.max_live_stacks != 0;
    if (hibernation && (!config.share_golden || !config.share_digest_cache)) {
      throw std::invalid_argument(
          "FleetConfig.max_live_stacks requires share_golden and "
          "share_digest_cache (a hibernating stack must not own them)");
    }
    shard_count = detail::resolve_shards(config);
    devices_per_shard = (config.devices + shard_count - 1) / shard_count;
    wave = config.wave_size != 0
               ? config.wave_size
               : std::min(std::max<std::size_t>(config.devices / 64, 1),
                          devices_per_shard);
    history = config.max_round_history == 0
                  ? config.epochs
                  : std::min(config.max_round_history, config.epochs);

    simulator.set_journal(config.journal);

    shards.reserve(shard_count);
    shard_key_fps.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards.push_back(make_shard_state(config, s));
      shard_key_fps.push_back(key_fingerprint(shards.back().key));
    }
    stacks.resize(config.devices);
    if (hibernation) {
      // Lazy construction: stacks are built (and provisioned) on first
      // admission, one shard wave at a time — building all N up front
      // would defeat the point of bounding live stacks.
      hibernated.resize(config.devices);
    } else {
      for (std::size_t d = 0; d < config.devices; ++d) {
        stacks[d] = std::make_unique<DeviceStack>(simulator, config,
                                                  shards[shard_of(d)], d);
        stacks[d]->session.set_health(&shards[shard_of(d)].health);
      }
      // Shard-wave provisioning: every device of a shard primes its tree
      // from the same pre-batched golden digests (tree mode), then takes
      // its infection patch.  Separate pass so the batched digesting work
      // (one digest_batch per shard, inside make_shard_state) amortizes
      // across the whole wave instead of repeating per device.
      for (std::size_t d = 0; d < config.devices; ++d) {
        stacks[d]->provision(config, shards[shard_of(d)], roster.infected(d));
      }
      live_stacks = config.devices;
      result.live_stacks_high_water = live_stacks;
    }
    recs.resize(config.devices);
  }

  std::size_t shard_of(std::size_t device) const noexcept {
    return std::min(device / devices_per_shard, shard_count - 1);
  }

  void journal_fleet(obs::JournalEventKind kind, std::size_t d, std::uint64_t a,
                     std::uint64_t b) {
    if (config.journal != nullptr) {
      config.journal->append(simulator.now(),
                             config.journal->intern("prv-" + std::to_string(d)),
                             0, 0, kind, a, b);
    }
  }

  /// Live (or build) the stack for device d.  Rebuilds from the
  /// HibernatedDevice record when one exists, verifying the rebuild
  /// reproduced the captured key fingerprint and generation summary.
  DeviceStack& ensure_stack(std::size_t d) {
    if (stacks[d]) return *stacks[d];
    const std::size_t s = shard_of(d);
    auto stack = std::make_unique<DeviceStack>(simulator, config, shards[s], d);
    stack->session.set_health(&shards[s].health);
    ++live_stacks;
    result.live_stacks_high_water =
        std::max(result.live_stacks_high_water, live_stacks);
    HibernatedDevice& h = hibernated[d];
    if (h.valid) {
      stack->restore(config, roster.infected(d), h);
      if (generation_summary(stack->device.memory()) != h.generation_summary) {
        violation("device " + std::to_string(d) +
                  " rebuilt with mismatched generation summary");
      }
      if (shard_key_fps[s] != h.key_fingerprint) {
        violation("device " + std::to_string(d) +
                  " rebuilt with mismatched key fingerprint");
      }
      h.valid = false;
      ++h.wakes;
      ++result.wakes;
      journal_fleet(obs::JournalEventKind::kFleetWake, d, h.wakes, live_stacks);
    } else {
      stack->provision(config, shards[s], roster.infected(d));
    }
    stacks[d] = std::move(stack);
    return *stacks[d];
  }

  void hibernate_stack(std::size_t d) {
    const std::size_t s = shard_of(d);
    hibernated[d] = stacks[d]->hibernate(d, s, shard_key_fps[s],
                                         hibernated[d].wakes);
    journal_fleet(obs::JournalEventKind::kFleetHibernate, d,
                  stacks[d]->session.rounds_resolved(), live_stacks - 1);
    stacks[d].reset();
    --live_stacks;
    ++result.hibernations;
  }

  /// Hibernate quiescent stacks until the pool is back under the (soft)
  /// cap, evicting from the *most recently idled* end: the candidate list
  /// fills in resolution order, which under a saturated admission window
  /// is also re-admission order — so the back holds the devices that will
  /// wait longest before their next round, and evicting there avoids
  /// tearing down a stack that is about to start.  Entries are validated
  /// lazily (the device may be mid-round again); still-settling stacks
  /// (e.g. a duplicated report copy in flight) are recycled and revisited
  /// on a later pool event — the scan bound keeps that from spinning.
  void shrink_pool() {
    if (!hibernation) return;
    std::size_t scan = idle_lru.size();
    while (live_stacks > config.max_live_stacks && scan-- > 0) {
      const std::uint32_t d = idle_lru.back();
      idle_lru.pop_back();
      DeviceRec& rec = recs[d];
      rec.idle_listed = false;
      if (!stacks[d] || rec.in_flight) continue;
      if (!stacks[d]->quiescent()) {
        rec.idle_listed = true;
        idle_lru.push_front(d);
        continue;
      }
      hibernate_stack(d);
    }
  }

  sim::Duration stagger_offset(std::size_t device) const noexcept {
    const double span = std::clamp(config.stagger_span, 0.0, 1.0);
    const auto span_ns = static_cast<sim::Duration>(
        static_cast<double>(config.epoch_period) * span);
    switch (config.stagger) {
      case StaggerPolicy::kBurst:
        return 0;
      case StaggerPolicy::kUniform:
        return span_ns * device / config.devices;
      case StaggerPolicy::kShardPhased:
        return span_ns * shard_of(device) / shard_count;
    }
    return 0;
  }

  void violation(std::string what) {
    result.invariant_violations.push_back(std::move(what));
  }

  /// Last device (exclusive) of the admission wave led by `first`.  A wave
  /// never crosses a shard boundary, so every member primes from the same
  /// shard golden and the wave admits with one batched provisioning pass.
  std::size_t wave_end(std::size_t first) const noexcept {
    return std::min({first + wave,
                     (shard_of(first) + 1) * devices_per_shard,
                     static_cast<std::size_t>(config.devices)});
  }

  /// One dripper event chain per epoch, advancing a whole shard wave per
  /// firing: the wave is admitted at its *leader's* stagger offset, so the
  /// scheduler sees devices/wave events per epoch instead of N closures.
  /// Per-device outcomes are unchanged by the grouping — each device's
  /// rng/session streams are seeded independently of admission time, and
  /// wave_size=1 reproduces the legacy per-device drip exactly.
  void schedule_epoch(std::size_t epoch) {
    const sim::Time start = static_cast<sim::Time>(epoch) * config.epoch_period;
    auto step = std::make_shared<std::function<void(std::size_t)>>();
    *step = [this, start, step](std::size_t next) {
      ++result.admission_events;
      while (next < config.devices &&
             start + stagger_offset(next) <= simulator.now()) {
        const std::size_t end = wave_end(next);
        for (std::size_t d = next; d < end; ++d) device_ready(d);
        next = end;
      }
      if (next < config.devices) {
        simulator.schedule_at(start + stagger_offset(next),
                              [step, next] { (*step)(next); });
      }
    };
    simulator.schedule_at(start, [step] { (*step)(0); });
  }

  void device_ready(std::size_t d) {
    DeviceRec& rec = recs[d];
    ++rec.pending;
    if (!rec.queued && !rec.in_flight) {
      rec.queued = true;
      admission.push_back(static_cast<std::uint32_t>(d));
    }
    pump();
  }

  void pump() {
    while (!admission.empty() &&
           (config.max_in_flight == 0 || in_flight_count < config.max_in_flight)) {
      const std::size_t d = admission.front();
      admission.pop_front();
      start_round(d);
    }
    shrink_pool();
  }

  void start_round(std::size_t d) {
    DeviceRec& rec = recs[d];
    rec.queued = false;
    --rec.pending;
    rec.in_flight = true;
    ++in_flight_count;
    result.in_flight_high_water =
        std::max(result.in_flight_high_water, in_flight_count);
    EpochStats& es = result.epoch_stats[rec.rounds_done];
    if (es.admitted == 0) es.first_start = simulator.now();
    ++es.admitted;
    if (!any_started) {
      any_started = true;
      first_start = simulator.now();
    }
    ensure_stack(d).session.run(
        [this, d](attest::RoundResult r) { on_round_done(d, std::move(r)); });
  }

  void on_round_done(std::size_t d, attest::RoundResult r) {
    DeviceRec& rec = recs[d];
    const std::size_t epoch = rec.rounds_done;
    ++rec.rounds_done;
    rec.in_flight = false;
    --in_flight_count;

    const obs::RoundOutcome outcome = attest::session_outcome_rollup(r.outcome);
    // Ring slot: with bounded history the slot for epoch e is reused by
    // epoch e + history, so clear it before filling.
    RoundRecord& record = result.rounds[d * history + epoch % history];
    record = RoundRecord{};
    record.started = r.t_started;
    record.outcome = outcome;
    record.attempts =
        static_cast<std::uint8_t>(std::min<std::size_t>(r.attempts, 255));
    record.resolved = true;
    if (r.verdict.used_tree && !r.verdict.localized.empty()) {
      record.localized_ranges =
          static_cast<std::uint32_t>(r.verdict.localized.size());
      record.localized_first =
          static_cast<std::uint32_t>(r.verdict.localized.front().first);
      record.localized_count =
          static_cast<std::uint32_t>(r.verdict.localized.front().count);
    }

    ++result.rounds_resolved;
    ++result.outcome_counts[static_cast<std::size_t>(outcome)];
    last_resolve = std::max(last_resolve, r.t_resolved);

    EpochStats& es = result.epoch_stats[epoch];
    ++es.resolved;
    es.last_resolve = std::max(es.last_resolve.value_or(0), r.t_resolved);
    // Independent epoch-grouped fold with the exact arguments the session
    // records into its shard rollup — the two groupings must agree.
    es.health.record_round(outcome, r.attempts, r.t_resolved - r.t_started,
                           r.measure_time, r.wasted_measure_time);

    const obs::RoundOutcome expected = roster.infected(d)
                                           ? obs::RoundOutcome::kCompromised
                                           : obs::RoundOutcome::kVerified;
    if (outcome != expected) {
      ++result.misjudged_rounds;
      ++es.misjudged;
    }

    if (r.attempts == 0 || r.attempts > config.session.max_attempts) {
      violation("device " + std::to_string(d) + " round " +
                std::to_string(epoch) + " used " + std::to_string(r.attempts) +
                " attempts (budget " +
                std::to_string(config.session.max_attempts) + ")");
    }

    if (rec.pending > 0 && !rec.queued) {
      rec.queued = true;
      admission.push_back(static_cast<std::uint32_t>(d));
    }
    if (hibernation && !rec.idle_listed) {
      // Hibernation candidate — even when already re-queued: under a
      // saturated admission window a device can wait whole epochs between
      // resolve and next start, and that parked stack is exactly what the
      // pool must not keep live.  start_round wakes it when its turn
      // comes.
      rec.idle_listed = true;
      idle_lru.push_back(static_cast<std::uint32_t>(d));
    }
    pump();
    if (es.resolved == config.devices) check_epoch(epoch);
  }

  /// Invariants asserted the moment an epoch's last round resolves.
  void check_epoch(std::size_t epoch) {
    const EpochStats& es = result.epoch_stats[epoch];
    if (es.admitted != config.devices) {
      violation("epoch " + std::to_string(epoch) + " admitted " +
                std::to_string(es.admitted) + " of " +
                std::to_string(config.devices) + " devices");
    }
    if (es.health.rounds() != config.devices) {
      violation("epoch " + std::to_string(epoch) + " health rollup saw " +
                std::to_string(es.health.rounds()) + " rounds, expected " +
                std::to_string(config.devices));
    }
    if (config.max_in_flight != 0 &&
        result.in_flight_high_water > config.max_in_flight) {
      violation("in-flight high water " +
                std::to_string(result.in_flight_high_water) +
                " exceeded admission window " +
                std::to_string(config.max_in_flight));
    }
  }

  /// Compare two rollups' integer aggregates (double sums may differ in
  /// the last ulp between groupings; counts may not differ at all).
  static bool same_integer_aggregates(const obs::HealthRollup& a,
                                      const obs::HealthRollup& b) {
    if (a.rounds() != b.rounds()) return false;
    for (std::size_t i = 0; i < obs::kRoundOutcomeCount; ++i) {
      const auto outcome = static_cast<obs::RoundOutcome>(i);
      if (a.outcome_count(outcome) != b.outcome_count(outcome)) return false;
    }
    for (std::size_t depth = 1; depth <= obs::HealthRollup::kMaxRetryDepth;
         ++depth) {
      if (a.retry_depth(depth) != b.retry_depth(depth)) return false;
    }
    return a.latency_ms().count() == b.latency_ms().count();
  }

  void finalize() {
    const std::size_t expected_rounds = config.devices * config.epochs;
    if (result.rounds_resolved != expected_rounds) {
      violation("resolved " + std::to_string(result.rounds_resolved) + " of " +
                std::to_string(expected_rounds) + " rounds");
    }
    if (in_flight_count != 0 || !admission.empty()) {
      violation("simulation quiesced with " + std::to_string(in_flight_count) +
                " sessions in flight and " + std::to_string(admission.size()) +
                " queued");
    }
    for (std::size_t d = 0; d < config.devices; ++d) {
      if (recs[d].rounds_done != config.epochs || recs[d].pending != 0) {
        violation("device " + std::to_string(d) + " finished " +
                  std::to_string(recs[d].rounds_done) + " of " +
                  std::to_string(config.epochs) + " rounds (" +
                  std::to_string(recs[d].pending) + " pending)");
        break;  // one witness is enough; the counts above give the total
      }
      if (stacks[d] && stacks[d]->session.busy()) {
        violation("device " + std::to_string(d) +
                  " session still busy after drain");
        break;
      }
    }

    // Fleet total = shard-order merge of the per-shard rollups the
    // sessions fed live.  It must agree (integer-exactly) with the merge
    // of the independently accumulated per-epoch rollups — the same
    // rounds grouped two different ways — and with a reversed-order merge
    // (associativity/commutativity witness on real data).
    result.shard_health.reserve(shards.size());
    for (const ShardState& shard : shards) {
      result.shard_health.push_back(shard.health);
    }
    for (const obs::HealthRollup& shard : result.shard_health) {
      result.health.merge(shard);
    }
    obs::HealthRollup by_epoch;
    for (const EpochStats& es : result.epoch_stats) by_epoch.merge(es.health);
    if (!same_integer_aggregates(result.health, by_epoch)) {
      violation("shard-grouped and epoch-grouped health rollups disagree");
    }
    obs::HealthRollup reversed;
    for (auto it = result.shard_health.rbegin(); it != result.shard_health.rend();
         ++it) {
      reversed.merge(*it);
    }
    if (!same_integer_aggregates(result.health, reversed)) {
      violation("shard rollup merge is order-sensitive");
    }
    std::uint64_t outcome_total = 0;
    for (std::size_t i = 0; i < obs::kRoundOutcomeCount; ++i) {
      const auto outcome = static_cast<obs::RoundOutcome>(i);
      outcome_total += result.outcome_counts[i];
      if (result.outcome_counts[i] != result.health.outcome_count(outcome)) {
        violation("per-round outcome tally disagrees with health rollup for " +
                  std::string(obs::round_outcome_name(outcome)));
      }
    }
    if (outcome_total != result.rounds_resolved) {
      violation("outcome counts do not sum to rounds resolved");
    }

    // Link counters survive hibernation inside the saved Link::State, so
    // the fleet totals cover live and hibernated devices alike.
    for (std::size_t d = 0; d < config.devices; ++d) {
      if (stacks[d]) {
        for (const sim::Link* link :
             {&stacks[d]->vrf_to_prv, &stacks[d]->prv_to_vrf}) {
          result.link_sent += link->sent();
          result.link_delivered += link->delivered();
          result.link_dropped += link->dropped();
          result.link_duplicated += link->duplicated();
          result.link_corrupted += link->corrupted();
          result.link_reordered += link->reordered();
        }
      } else if (hibernation && hibernated[d].valid) {
        for (const sim::Link::State* link :
             {&hibernated[d].vrf_to_prv, &hibernated[d].prv_to_vrf}) {
          result.link_sent += link->sent;
          result.link_delivered += link->delivered;
          result.link_dropped += link->dropped;
          result.link_duplicated += link->duplicated;
          result.link_corrupted += link->corrupted;
          result.link_reordered += link->reordered;
        }
      }
    }
    if (result.link_delivered !=
        result.link_sent - result.link_dropped + result.link_duplicated) {
      violation("link counter invariant delivered == sent - dropped + "
                "duplicated does not hold after drain");
    }

    result.makespan = any_started ? last_resolve - first_start : 0;
    result.rounds_per_sim_second =
        result.makespan == 0 ? 0.0
                             : static_cast<double>(result.rounds_resolved) /
                                   sim::to_seconds(result.makespan);

    // Full coverage: the epoch boundary by which every device had its
    // first round resolved (0 = some device never resolved one).
    if (!result.epoch_stats.empty() &&
        result.epoch_stats[0].resolved == config.devices &&
        result.epoch_stats[0].last_resolve.has_value()) {
      result.epochs_to_full_coverage = static_cast<std::size_t>(
          *result.epoch_stats[0].last_resolve / config.epoch_period) + 1;
    }

    if (config.metrics != nullptr) {
      config.metrics->gauge("fleet.live_stacks_high_water")
          .set(static_cast<double>(result.live_stacks_high_water));
      config.metrics->gauge("fleet.hibernations")
          .set(static_cast<double>(result.hibernations));
      config.metrics->gauge("fleet.wakes").set(static_cast<double>(result.wakes));
      config.metrics->gauge("fleet.admission_events")
          .set(static_cast<double>(result.admission_events));
    }

    result.memory = memory_stats();

    // Shard golden roots and their fleet aggregate — the one digest a
    // higher-tier verifier would pin for this fleet's expected state.
    result.shard_tree_roots.reserve(shards.size());
    for (const ShardState& shard : shards) {
      result.shard_tree_roots.push_back(shard.golden->tree().root());
    }
    result.fleet_tree_root =
        mtree::MerkleTree::combine_roots(result.shard_tree_roots, config.hash);
  }

  FleetMemoryStats memory_stats() const {
    FleetMemoryStats stats;
    for (const ShardState& shard : shards) {
      stats.shared_bytes += shard.image.capacity() + shard.key.capacity();
      if (config.share_golden) {
        stats.shared_bytes += sizeof(attest::GoldenMeasurement) +
                              shard.golden->block_count() * sizeof(attest::Digest) +
                              shard.golden->tree_memory_bytes() +
                              shard.key.capacity();
      }
      if (config.share_digest_cache) {
        stats.shared_bytes += sizeof(attest::DigestCache) +
                              config.blocks * kDigestCacheSlotBytes;
      }
    }
    std::size_t per_device = sizeof(DeviceRec) +
                             history * sizeof(RoundRecord);
    if (hibernation) {
      // A hibernated device is its seed record (plus the heap its saved
      // session/verifier state holds); the full stack is charged to the
      // bounded pool below, not per device.
      per_device += sizeof(HibernatedDevice) + kHibernatedHeapBytes;
    } else {
      per_device += sizeof(DeviceStack) + kPerDeviceStringBytes +
                    /*verifier key copy*/ kKeyBytes;
      if (!config.share_golden) {
        per_device += sizeof(attest::GoldenMeasurement) +
                      config.blocks * sizeof(attest::Digest) +
                      shards.front().golden->tree_memory_bytes() + kKeyBytes;
      }
      if (!config.share_digest_cache) {
        per_device += sizeof(attest::DigestCache) +
                      config.blocks * kDigestCacheSlotBytes;
      }
    }
    stats.per_device_bytes = config.devices * per_device;
    if (hibernation) {
      // Pre-run the high-water is still 0; charge the configured cap so
      // the estimate is an honest a-priori budget, and the measured
      // high-water once it exceeds the cap (the cap is soft).
      const std::size_t pool_stacks =
          std::max({result.live_stacks_high_water, live_stacks,
                    std::min(config.max_live_stacks,
                             static_cast<std::size_t>(config.devices))});
      stats.pool_bytes = pool_stacks * (sizeof(DeviceStack) +
                                        kPerDeviceStringBytes + kKeyBytes);
    }
    stats.roster_bytes = roster.memory_bytes();
    return stats;
  }

  FleetResult run() {
    if (ran) throw std::logic_error("FleetVerifier::run called twice");
    ran = true;
    result.devices = config.devices;
    result.epochs = config.epochs;
    result.shards = shard_count;
    result.round_history = history;
    result.wave_size = wave;
    result.rounds.resize(config.devices * history);
    result.epoch_stats.resize(config.epochs);
    for (std::size_t e = 0; e < config.epochs; ++e) schedule_epoch(e);
    simulator.run();
    finalize();
    if (config.enforce_invariants && !result.invariant_violations.empty()) {
      std::string what = "fleet invariants violated:";
      for (const std::string& v : result.invariant_violations) what += "\n  " + v;
      throw std::logic_error(what);
    }
    return std::move(result);
  }
};

FleetVerifier::FleetVerifier(FleetConfig config)
    : FleetVerifier(config,
                    Roster::with_infected_fraction(
                        config.devices, config.infected_fraction,
                        detail::device_stream(config.seed, 0, 0x1f3c7ed1))) {}

FleetVerifier::FleetVerifier(FleetConfig config, Roster roster)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(roster))) {}

FleetVerifier::~FleetVerifier() = default;

FleetResult FleetVerifier::run() { return impl_->run(); }

const Roster& FleetVerifier::roster() const noexcept { return impl_->roster; }
std::size_t FleetVerifier::shard_count() const noexcept {
  return impl_->shard_count;
}
std::size_t FleetVerifier::shard_of(std::size_t device) const noexcept {
  return impl_->shard_of(device);
}
FleetMemoryStats FleetVerifier::memory_stats() const {
  return impl_->memory_stats();
}

std::vector<obs::RoundOutcome> replay_device(
    const FleetConfig& config, const Roster& roster, std::size_t device,
    const std::vector<sim::Time>& start_times) {
  if (device >= config.devices) {
    throw std::out_of_range("replay_device: device index out of range");
  }
  const std::size_t shard_count = detail::resolve_shards(config);
  const std::size_t devices_per_shard =
      (config.devices + shard_count - 1) / shard_count;
  const std::size_t shard_index =
      std::min(device / devices_per_shard, shard_count - 1);

  sim::Simulator simulator;
  // Fresh shard state: own golden, own digest cache (shared only with
  // itself) — cache hits are bit-identical to recomputation, so sharing
  // verifier state with fleet neighbors cannot change outcomes, and the
  // replay cross-check proves exactly that.
  FleetConfig replay_config = config;
  replay_config.metrics = nullptr;
  replay_config.journal = nullptr;
  ShardState shard = make_shard_state(replay_config, shard_index);
  DeviceStack stack(simulator, replay_config, shard, device);
  stack.provision(replay_config, shard, roster.infected(device));

  std::vector<obs::RoundOutcome> outcomes;
  outcomes.reserve(start_times.size());
  // Chain rounds through the done callback (mirroring the fleet's
  // resolve-then-readmit pump) so a round whose recorded start coincides
  // with the previous round's resolve timestamp starts *after* that
  // resolution instead of hitting a busy session.
  std::function<void(std::size_t)> schedule_round = [&](std::size_t r) {
    if (r >= start_times.size()) return;
    simulator.schedule_at(start_times[r], [&, r] {
      stack.session.run([&, r](attest::RoundResult res) {
        outcomes.push_back(attest::session_outcome_rollup(res.outcome));
        schedule_round(r + 1);
      });
    });
  };
  schedule_round(0);
  simulator.run();
  return outcomes;
}

}  // namespace rasc::fleet
