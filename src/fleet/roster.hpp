#pragma once
/// \file roster.hpp
/// Ground-truth membership table for a fleet of provers: which devices
/// exist, which are infected and which have been physically removed.
/// This is the single fleet abstraction the repo keeps — the swarm
/// collective-attestation module (src/swarm) used to ask callers to
/// maintain ad-hoc std::set<std::size_t> infected/removed sets; those now
/// come from a Roster (run_swarm_round below), and the fleet verifier
/// scores every per-device verdict against the same table.
///
/// The representation is two bits per device, so a 100k-device roster
/// costs ~100 kB and membership checks are O(1) — cheap enough that the
/// FleetVerifier consults it on every resolved round.

#include <cstdint>
#include <set>
#include <vector>

#include "src/swarm/swarm.hpp"

namespace rasc::fleet {

class Roster {
 public:
  Roster() = default;
  /// `devices` healthy, present devices.
  explicit Roster(std::size_t devices) : flags_(devices, 0) {}

  /// Deterministically infect floor(devices * fraction + 0.5) devices,
  /// at least one when fraction > 0, chosen by a seeded partial
  /// Fisher-Yates shuffle — the same (devices, fraction, seed) always
  /// yields the same infected set.
  static Roster with_infected_fraction(std::size_t devices, double fraction,
                                       std::uint64_t seed);

  std::size_t size() const noexcept { return flags_.size(); }
  bool infected(std::size_t device) const { return (flags_.at(device) & kInfected) != 0; }
  bool removed(std::size_t device) const { return (flags_.at(device) & kRemoved) != 0; }
  void set_infected(std::size_t device, bool on = true) { set(device, kInfected, on); }
  void set_removed(std::size_t device, bool on = true) { set(device, kRemoved, on); }

  std::size_t infected_count() const noexcept;
  std::size_t removed_count() const noexcept;

  /// Materialize the id sets in the shape src/swarm consumes.
  std::set<std::size_t> infected_set() const;
  std::set<std::size_t> removed_set() const;

  /// Bytes backing this roster (for the fleet memory accounting).
  std::size_t memory_bytes() const noexcept {
    return sizeof(Roster) + flags_.capacity() * sizeof(std::uint8_t);
  }

 private:
  static constexpr std::uint8_t kInfected = 1u << 0;
  static constexpr std::uint8_t kRemoved = 1u << 1;

  void set(std::size_t device, std::uint8_t bit, bool on) {
    if (on) {
      flags_.at(device) |= bit;
    } else {
      flags_.at(device) &= static_cast<std::uint8_t>(~bit);
    }
  }

  std::vector<std::uint8_t> flags_;
};

/// Delegate one collective swarm attestation round to src/swarm with this
/// roster as ground truth (config.device_count is overridden by the
/// roster size).  The swarm protocols and the FleetVerifier thus judge
/// the same fleet state through one table.
swarm::SwarmResult run_swarm_round(const Roster& roster,
                                   swarm::SwarmConfig config,
                                   swarm::SwarmProtocol protocol);

/// Did a swarm round's verdict exactly match the roster's ground truth?
/// (failed_ids == infected-and-reachable, absent_ids == every device cut
/// off by a removed ancestor is at least a superset of removed ones — the
/// check here is the conservative containment the protocols guarantee:
/// every reported-failed id is infected, every removed id is reported
/// failed or absent, and no healthy reachable device is accused.)
bool swarm_round_matches(const Roster& roster, const swarm::SwarmResult& result);

}  // namespace rasc::fleet
