#pragma once
/// \file campaign.hpp
/// The fleet_scale campaign: how many concurrent reliable-attestation
/// sessions can one verifier process drive, and what does reliability
/// cost at scale?  Sweeps fleet size (1k -> 10k -> 100k -> 1M devices) x
/// link drop rate x stagger policy; every trial runs a full FleetVerifier
/// epoch schedule with the invariant checker enabled, so the campaign is
/// simultaneously a benchmark and a property test — any violated fleet
/// invariant fails the campaign instead of skewing its aggregates.
///
/// Determinism: a trial is a pure function of (grid point, trial seed),
/// so BENCH_fleet.json is bit-identical for any --threads, which is what
/// the fleet-smoke CI job asserts with cmp.

#include "src/exp/campaign.hpp"
#include "src/fleet/fleet.hpp"

namespace rasc::fleet {

struct FleetScaleCampaignOptions {
  /// Fleet trials are heavyweight (one trial = devices x epochs rounds),
  /// so the default is one trial per cell — the fleet seed still varies
  /// per cell through derive_trial_seed.
  std::size_t trials = 1;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

/// Sentinel recorded in the "first_misjudge_trial" value channel when a
/// trial misjudged no round; the per-cell min() is then either the lowest
/// misjudging trial index or this (thread-count independent either way,
/// which lets campaign_runner --journal-out replay the same trial
/// regardless of -j).
inline constexpr double kNoMisjudgeFleetTrial = 1e18;

/// Cells at or above this fleet size run with stack hibernation and the
/// bounded live pool (FleetConfig::max_live_stacks = kHibernationPool).
/// The threshold is low enough that CI's reduced fleet-1m cell
/// (devices=20000) exercises the hibernate/wake path, while the 1k/10k
/// cells keep the legacy all-resident regime covered.
inline constexpr std::size_t kHibernationDeviceThreshold = 20000;
inline constexpr std::size_t kHibernationPool = 4096;

/// Build the fleet configuration for one (cell, trial seed) coordinate.
/// Shared by the campaign trial function and campaign_runner's
/// --journal-out replay, so a re-run with a journal attached reproduces
/// the selected trial event-for-event.
FleetConfig fleet_config_for(const exp::GridPoint& point, std::uint64_t trial_seed);

/// Spec name "fleet" (artifact BENCH_fleet.json; the campaign_runner CLI
/// registers it as "fleet_scale").  Axes: devices x drop_pct x
/// stagger policy.  Bernoulli channel = per-round misjudgement against
/// the roster's ground truth; scalars track throughput (rounds per
/// simulated second), verifier memory per device (must shrink as N
/// grows), time to full fleet coverage, admission high-water and the
/// wasted prover CPU the reliability layer burned.
exp::CampaignSpec make_fleet_scale_campaign(
    const FleetScaleCampaignOptions& options = {});

}  // namespace rasc::fleet
