#pragma once
/// \file json.hpp
/// Minimal streaming JSON writer for the observability exporters (Chrome
/// trace_event files, metrics dumps, BENCH_*.json).  Deterministic output:
/// no locale dependence, fixed number formatting, insertion-ordered keys.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rasc::obs {

/// Escape a string for inclusion inside JSON quotes (without the quotes).
std::string json_escape(std::string_view s);

/// Shortest stable decimal rendering used for all JSON numbers: integers
/// print without a fractional part; everything else uses the fewest
/// significant digits (9..17) that strtod back to the exact double, so
/// artifact comparison (bench_diff) never conflates distinct values.
std::string json_number(double v);

/// Streaming writer.  The caller is responsible for a well-formed nesting
/// sequence; keys are only legal directly inside objects.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view k);

  void string_value(std::string_view v);
  void number_value(double v);
  void uint_value(std::uint64_t v);
  void bool_value(bool v);
  /// Append a pre-formatted JSON fragment as one value (e.g. a fixed-point
  /// timestamp rendered elsewhere).
  void raw_value(std::string_view fragment);

  const std::string& str() const noexcept { return out_; }

 private:
  void before_value();

  std::string out_;
  /// One entry per open container: true once the first element was written
  /// (so the next one needs a comma).
  std::vector<bool> wrote_element_;
  bool pending_key_ = false;
};

}  // namespace rasc::obs
