#include "src/obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/obs/json.hpp"

namespace rasc::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: bounds must be non-empty");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::exponential_bounds(double first, double factor,
                                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::default_latency_bounds_ms() {
  // 1 us .. ~1e6 ms in half-decade steps: 19 edges.
  return exponential_bounds(1e-3, 3.1622776601683795, 19);
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge: mismatched bounds");
  }
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += buckets_[i];
    if (static_cast<double>(cum) < target) continue;
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = i < bounds_.size() ? bounds_[i] : max_;
    const double pos = (target - static_cast<double>(prev)) /
                       static_cast<double>(buckets_[i]);
    const double value = lower + pos * (upper - lower);
    return std::clamp(value, min_, max_);
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::default_latency_bounds_ms();
    it = histograms_.emplace(name, std::make_unique<Histogram>(std::move(bounds))).first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

support::Table MetricsRegistry::to_table() const {
  support::Table table({"metric", "type", "count", "value/mean", "p50", "p95", "p99",
                        "max"});
  for (const auto& [name, c] : counters_) {
    table.add_row({name, "counter", std::to_string(c.value())});
  }
  for (const auto& [name, g] : gauges_) {
    table.add_row({name, "gauge", "", support::fmt_double(g.value(), 4)});
  }
  for (const auto& [name, h] : histograms_) {
    table.add_row({name, "histogram", std::to_string(h->count()),
                   support::fmt_double(h->mean(), 4),
                   support::fmt_double(h->percentile(50), 4),
                   support::fmt_double(h->percentile(95), 4),
                   support::fmt_double(h->percentile(99), 4),
                   support::fmt_double(h->max(), 4)});
  }
  return table;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name);
    w.uint_value(c.value());
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.number_value(g.value());
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.uint_value(h->count());
    w.key("sum");
    w.number_value(h->sum());
    w.key("min");
    w.number_value(h->min());
    w.key("max");
    w.number_value(h->max());
    w.key("mean");
    w.number_value(h->mean());
    w.key("p50");
    w.number_value(h->percentile(50));
    w.key("p95");
    w.number_value(h->percentile(95));
    w.key("p99");
    w.number_value(h->percentile(99));
    w.key("bounds");
    w.begin_array();
    for (double b : h->bounds()) w.number_value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (std::uint64_t c : h->bucket_counts()) w.uint_value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.str();
}

}  // namespace rasc::obs
