#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "src/obs/json.hpp"

namespace rasc::obs {

TraceArg arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), /*numeric=*/false};
}

TraceArg arg(std::string key, double value) {
  return TraceArg{std::move(key), json_number(value), /*numeric=*/true};
}

TraceArg arg(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), std::to_string(value), /*numeric=*/true};
}

void TraceSink::set_capacity(std::size_t cap) {
  capacity_ = cap;
  while (cap != 0 && events_.size() > cap) {
    events_.pop_front();
    ++dropped_;
  }
}

void TraceSink::push(TraceEvent ev) {
  if (capacity_ != 0 && events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(std::move(ev));
}

void TraceSink::begin(TimeNs t, std::string track, std::string name,
                      std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.time = t;
  ev.kind = TraceEventKind::kBegin;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceSink::end(TimeNs t, std::string track, std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.time = t;
  ev.kind = TraceEventKind::kEnd;
  ev.track = std::move(track);
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceSink::instant(TimeNs t, std::string track, std::string name,
                        std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.time = t;
  ev.kind = TraceEventKind::kInstant;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceSink::counter(TimeNs t, std::string track, std::string name, double value) {
  TraceEvent ev;
  ev.time = t;
  ev.kind = TraceEventKind::kCounter;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.value = value;
  push(std::move(ev));
}

void TraceSink::complete(TimeNs start, TimeNs duration, std::string track,
                         std::string name, std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.time = start;
  ev.duration = duration;
  ev.kind = TraceEventKind::kComplete;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceSink::flow_start(TimeNs t, std::string track, std::string name,
                           std::uint64_t id) {
  TraceEvent ev;
  ev.time = t;
  ev.kind = TraceEventKind::kFlowStart;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.flow_id = id;
  push(std::move(ev));
}

void TraceSink::flow_finish(TimeNs t, std::string track, std::string name,
                            std::uint64_t id) {
  TraceEvent ev;
  ev.time = t;
  ev.kind = TraceEventKind::kFlowFinish;
  ev.track = std::move(track);
  ev.name = std::move(name);
  ev.flow_id = id;
  push(std::move(ev));
}

void TraceSink::clear() {
  events_.clear();
  dropped_ = 0;
}

std::size_t TraceSink::count_named(std::string_view name) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [&](const TraceEvent& ev) { return ev.name == name; }));
}

std::vector<TraceSpan> TraceSink::spans() const {
  std::vector<TraceSpan> out;
  // Per-track stack of open begins; events are already time-ordered
  // because simulated time is monotonic and pushes happen causally.
  std::unordered_map<std::string, std::vector<TraceSpan>> open;
  for (const TraceEvent& ev : events_) {
    switch (ev.kind) {
      case TraceEventKind::kBegin: {
        auto& stack = open[ev.track];
        TraceSpan span;
        span.start = ev.time;
        span.track = ev.track;
        span.name = ev.name;
        span.depth = static_cast<int>(stack.size());
        span.args = ev.args;
        stack.push_back(std::move(span));
        break;
      }
      case TraceEventKind::kEnd: {
        auto it = open.find(ev.track);
        if (it == open.end() || it->second.empty()) break;  // unmatched end
        TraceSpan span = std::move(it->second.back());
        it->second.pop_back();
        span.end = ev.time;
        span.args.insert(span.args.end(), ev.args.begin(), ev.args.end());
        out.push_back(std::move(span));
        break;
      }
      case TraceEventKind::kComplete: {
        auto it = open.find(ev.track);
        TraceSpan span;
        span.start = ev.time;
        span.end = ev.time + ev.duration;
        span.track = ev.track;
        span.name = ev.name;
        span.depth = it == open.end() ? 0 : static_cast<int>(it->second.size());
        span.args = ev.args;
        out.push_back(std::move(span));
        break;
      }
      case TraceEventKind::kInstant:
      case TraceEventKind::kCounter:
      case TraceEventKind::kFlowStart:
      case TraceEventKind::kFlowFinish:
        break;
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end > b.end;  // outermost first
  });
  return out;
}

std::vector<TraceSpan> TraceSink::spans_named(std::string_view name) const {
  std::vector<TraceSpan> out;
  for (auto& span : spans()) {
    if (span.name == name) out.push_back(std::move(span));
  }
  return out;
}

std::optional<TraceSpan> TraceSink::first_span_named(std::string_view name) const {
  for (auto& span : spans()) {
    if (span.name == name) return span;
  }
  return std::nullopt;
}

std::optional<double> TraceSink::last_counter(std::string_view name) const {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->kind == TraceEventKind::kCounter && it->name == name) return it->value;
  }
  return std::nullopt;
}

namespace {

/// Chrome trace timestamps are microseconds; render ns exactly as a
/// fixed-point decimal so the export is deterministic.
std::string micros_fixed(TimeNs ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

void write_args(JsonWriter& w, const std::vector<TraceArg>& args) {
  if (args.empty()) return;
  w.key("args");
  w.begin_object();
  for (const auto& a : args) {
    w.key(a.key);
    if (a.numeric) {
      w.raw_value(a.value);
    } else {
      w.string_value(a.value);
    }
  }
  w.end_object();
}

}  // namespace

std::string TraceSink::to_chrome_json() const {
  // Track -> tid in first-seen order (deterministic across runs).
  std::unordered_map<std::string, int> tids;
  std::vector<std::string> track_order;
  for (const TraceEvent& ev : events_) {
    if (tids.emplace(ev.track, static_cast<int>(track_order.size()) + 1).second) {
      track_order.push_back(ev.track);
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.string_value("ms");
  w.key("traceEvents");
  w.begin_array();

  w.begin_object();
  w.key("name");
  w.string_value("process_name");
  w.key("ph");
  w.string_value("M");
  w.key("pid");
  w.uint_value(1);
  w.key("tid");
  w.uint_value(0);
  w.key("args");
  w.begin_object();
  w.key("name");
  w.string_value("rasc simulated device");
  w.end_object();
  w.end_object();

  for (const std::string& track : track_order) {
    w.begin_object();
    w.key("name");
    w.string_value("thread_name");
    w.key("ph");
    w.string_value("M");
    w.key("pid");
    w.uint_value(1);
    w.key("tid");
    w.uint_value(static_cast<std::uint64_t>(tids[track]));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.string_value(track);
    w.end_object();
    w.end_object();
  }

  for (const TraceEvent& ev : events_) {
    w.begin_object();
    switch (ev.kind) {
      case TraceEventKind::kBegin:
        w.key("name");
        w.string_value(ev.name);
        w.key("ph");
        w.string_value("B");
        break;
      case TraceEventKind::kEnd:
        w.key("ph");
        w.string_value("E");
        break;
      case TraceEventKind::kInstant:
        w.key("name");
        w.string_value(ev.name);
        w.key("ph");
        w.string_value("i");
        w.key("s");
        w.string_value("t");
        break;
      case TraceEventKind::kCounter:
        w.key("name");
        w.string_value(ev.name);
        w.key("ph");
        w.string_value("C");
        break;
      case TraceEventKind::kComplete:
        w.key("name");
        w.string_value(ev.name);
        w.key("ph");
        w.string_value("X");
        w.key("dur");
        w.raw_value(micros_fixed(ev.duration));
        break;
      case TraceEventKind::kFlowStart:
        w.key("name");
        w.string_value(ev.name);
        w.key("cat");
        w.string_value("flow");
        w.key("ph");
        w.string_value("s");
        w.key("id");
        w.uint_value(ev.flow_id);
        break;
      case TraceEventKind::kFlowFinish:
        w.key("name");
        w.string_value(ev.name);
        w.key("cat");
        w.string_value("flow");
        w.key("ph");
        w.string_value("f");
        // Bind to the enclosing slice so the arrow lands on the span, not
        // on the next one to start.
        w.key("bp");
        w.string_value("e");
        w.key("id");
        w.uint_value(ev.flow_id);
        break;
    }
    w.key("ts");
    w.raw_value(micros_fixed(ev.time));
    w.key("pid");
    w.uint_value(1);
    w.key("tid");
    w.uint_value(static_cast<std::uint64_t>(tids[ev.track]));
    if (ev.kind == TraceEventKind::kCounter) {
      w.key("args");
      w.begin_object();
      w.key("value");
      w.number_value(ev.value);
      w.end_object();
    } else {
      write_args(w, ev.args);
    }
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.str();
}

bool TraceSink::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = to_chrome_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out << '\n';
  return static_cast<bool>(out);
}

}  // namespace rasc::obs
