#pragma once
/// \file health.hpp
/// Fleet health rollup: a mergeable per-fleet summary of attestation round
/// outcomes — per-outcome rates, retry-depth histogram, p50/p99 round
/// latency, and wasted measurement time — designed to fold across
/// Monte-Carlo trials by the src/exp shard pool exactly like
/// MetricsRegistry (associative merge, deterministic JSON).  This is the
/// seed data structure for the ROADMAP fleet verifier: a gateway can keep
/// one rollup per subnet and merge them upstream without ever shipping raw
/// events.
///
/// The obs layer cannot depend on attest, so the outcome taxonomy is
/// mirrored here; attest::ReliableSession maps its SessionOutcome into
/// RoundOutcome when recording (see session.cpp).

#include <array>
#include <cstdint>
#include <string_view>

#include "src/obs/metrics.hpp"

namespace rasc::obs {

/// Terminal verdicts of one attestation round, mirrored from
/// attest::SessionOutcome (values must stay in sync; session.cpp
/// static_asserts the mapping).
enum class RoundOutcome : std::uint8_t {
  kVerified = 0,
  kCompromised,
  kTimeout,
  kCorruptReport,
  kReplayRejected,
};
inline constexpr std::size_t kRoundOutcomeCount = 5;

std::string_view round_outcome_name(RoundOutcome outcome);

class JsonWriter;

/// Accumulates rounds; merge() is associative and commutative so shard
/// folds produce the same rollup for any thread count.
class HealthRollup {
 public:
  /// Retry depths above this clamp into the last slot.
  static constexpr std::size_t kMaxRetryDepth = 16;

  HealthRollup();

  /// Record one resolved round.  `attempts` is 1-based (a first-try
  /// success records depth 1); times are nanoseconds of simulated time.
  void record_round(RoundOutcome outcome, std::uint64_t attempts,
                    std::uint64_t latency_ns, std::uint64_t measure_ns,
                    std::uint64_t wasted_measure_ns);

  /// Normalized block-index histogram for verifier fault localization:
  /// bucket i covers block-index fractions [i/16, (i+1)/16) of the
  /// prover's attested region, so fleets of mixed memory sizes fold into
  /// one comparable "where do infections land" picture.
  static constexpr std::size_t kLocalizationBuckets = 16;

  /// Record one localized mismatching block range [first_block,
  /// first_block + block_count) out of total_blocks attested blocks (tree
  /// mode; one call per localized range).  No-op when block_count or
  /// total_blocks is zero.
  void record_localization(std::uint64_t first_block, std::uint64_t block_count,
                           std::uint64_t total_blocks);
  /// Record a compromised round whose report carried no usable subtree
  /// proof (root mismatch only — the flat-measurement equivalent).
  void record_unlocalized_compromise() { ++unlocalized_compromised_; }

  void merge(const HealthRollup& other);

  bool empty() const noexcept { return rounds_ == 0; }
  std::uint64_t rounds() const noexcept { return rounds_; }
  std::uint64_t outcome_count(RoundOutcome outcome) const noexcept {
    return outcomes_[static_cast<std::size_t>(outcome)];
  }
  double outcome_rate(RoundOutcome outcome) const noexcept;
  /// retry_depth(1) = rounds resolved on the first attempt, ...;
  /// retry_depth(kMaxRetryDepth) includes everything deeper.
  std::uint64_t retry_depth(std::size_t attempts) const noexcept;
  const Histogram& latency_ms() const noexcept { return latency_ms_; }
  double measure_ms_total() const noexcept;
  double wasted_measure_ms_total() const noexcept;

  std::uint64_t localized_ranges() const noexcept { return localized_ranges_; }
  std::uint64_t localized_blocks() const noexcept { return localized_blocks_; }
  std::uint64_t unlocalized_compromised() const noexcept {
    return unlocalized_compromised_;
  }
  /// Localized blocks whose normalized index fell into bucket `i`.
  std::uint64_t localization_bucket(std::size_t i) const noexcept {
    return i < kLocalizationBuckets ? localization_[i] : 0;
  }

  /// {"rounds":N,"outcomes":{name:{count,rate},..},"retry_depth":[..],
  ///  "latency_ms":{p50,p99,mean,max},"measure_ms_total":X,
  ///  "wasted_measure_ms_total":Y} — written as one JSON value.  A
  ///  "localization" section {ranges,blocks,unlocalized,block_histogram}
  ///  is appended only when localization was recorded, so rollups from
  ///  flat-measurement runs serialize exactly as before.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  std::uint64_t rounds_ = 0;
  std::array<std::uint64_t, kRoundOutcomeCount> outcomes_{};
  std::array<std::uint64_t, kMaxRetryDepth> retry_depth_{};
  Histogram latency_ms_;
  std::uint64_t measure_ns_ = 0;
  std::uint64_t wasted_measure_ns_ = 0;
  std::uint64_t localized_ranges_ = 0;
  std::uint64_t localized_blocks_ = 0;
  std::uint64_t unlocalized_compromised_ = 0;
  std::array<std::uint64_t, kLocalizationBuckets> localization_{};
};

}  // namespace rasc::obs
