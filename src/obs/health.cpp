#include "src/obs/health.hpp"

#include <algorithm>

#include "src/obs/json.hpp"

namespace rasc::obs {

std::string_view round_outcome_name(RoundOutcome outcome) {
  switch (outcome) {
    case RoundOutcome::kVerified: return "verified";
    case RoundOutcome::kCompromised: return "compromised";
    case RoundOutcome::kTimeout: return "timeout";
    case RoundOutcome::kCorruptReport: return "corrupt_report";
    case RoundOutcome::kReplayRejected: return "replay_rejected";
  }
  return "?";
}

// Fixed bounds so any two rollups are always mergeable.
HealthRollup::HealthRollup() : latency_ms_(Histogram::default_latency_bounds_ms()) {}

void HealthRollup::record_round(RoundOutcome outcome, std::uint64_t attempts,
                                std::uint64_t latency_ns, std::uint64_t measure_ns,
                                std::uint64_t wasted_measure_ns) {
  ++rounds_;
  ++outcomes_[static_cast<std::size_t>(outcome)];
  if (attempts < 1) attempts = 1;
  if (attempts > kMaxRetryDepth) attempts = kMaxRetryDepth;
  ++retry_depth_[attempts - 1];
  latency_ms_.record(static_cast<double>(latency_ns) / 1e6);
  measure_ns_ += measure_ns;
  wasted_measure_ns_ += wasted_measure_ns;
}

void HealthRollup::record_localization(std::uint64_t first_block,
                                       std::uint64_t block_count,
                                       std::uint64_t total_blocks) {
  if (block_count == 0 || total_blocks == 0) return;
  ++localized_ranges_;
  localized_blocks_ += block_count;
  for (std::uint64_t b = first_block;
       b < first_block + block_count && b < total_blocks; ++b) {
    const std::size_t bucket = static_cast<std::size_t>(
        b * kLocalizationBuckets / total_blocks);
    ++localization_[std::min(bucket, kLocalizationBuckets - 1)];
  }
}

void HealthRollup::merge(const HealthRollup& other) {
  rounds_ += other.rounds_;
  for (std::size_t i = 0; i < outcomes_.size(); ++i) outcomes_[i] += other.outcomes_[i];
  for (std::size_t i = 0; i < retry_depth_.size(); ++i) {
    retry_depth_[i] += other.retry_depth_[i];
  }
  latency_ms_.merge(other.latency_ms_);
  measure_ns_ += other.measure_ns_;
  wasted_measure_ns_ += other.wasted_measure_ns_;
  localized_ranges_ += other.localized_ranges_;
  localized_blocks_ += other.localized_blocks_;
  unlocalized_compromised_ += other.unlocalized_compromised_;
  for (std::size_t i = 0; i < localization_.size(); ++i) {
    localization_[i] += other.localization_[i];
  }
}

double HealthRollup::outcome_rate(RoundOutcome outcome) const noexcept {
  if (rounds_ == 0) return 0.0;
  return static_cast<double>(outcome_count(outcome)) / static_cast<double>(rounds_);
}

std::uint64_t HealthRollup::retry_depth(std::size_t attempts) const noexcept {
  if (attempts < 1 || attempts > kMaxRetryDepth) return 0;
  return retry_depth_[attempts - 1];
}

double HealthRollup::measure_ms_total() const noexcept {
  return static_cast<double>(measure_ns_) / 1e6;
}

double HealthRollup::wasted_measure_ms_total() const noexcept {
  return static_cast<double>(wasted_measure_ns_) / 1e6;
}

void HealthRollup::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("rounds");
  w.uint_value(rounds_);
  w.key("outcomes");
  w.begin_object();
  for (std::size_t i = 0; i < kRoundOutcomeCount; ++i) {
    auto outcome = static_cast<RoundOutcome>(i);
    w.key(round_outcome_name(outcome));
    w.begin_object();
    w.key("count");
    w.uint_value(outcomes_[i]);
    w.key("rate");
    w.number_value(outcome_rate(outcome));
    w.end_object();
  }
  w.end_object();
  // Trailing zero depths are elided so small runs stay readable; merge
  // never depends on the serialized form.
  std::size_t depth_len = retry_depth_.size();
  while (depth_len > 1 && retry_depth_[depth_len - 1] == 0) --depth_len;
  w.key("retry_depth");
  w.begin_array();
  for (std::size_t i = 0; i < depth_len; ++i) w.uint_value(retry_depth_[i]);
  w.end_array();
  w.key("latency_ms");
  w.begin_object();
  w.key("count");
  w.uint_value(latency_ms_.count());
  w.key("mean");
  w.number_value(latency_ms_.mean());
  w.key("p50");
  w.number_value(latency_ms_.percentile(50));
  w.key("p99");
  w.number_value(latency_ms_.percentile(99));
  w.key("max");
  w.number_value(latency_ms_.max());
  w.end_object();
  w.key("measure_ms_total");
  w.number_value(measure_ms_total());
  w.key("wasted_measure_ms_total");
  w.number_value(wasted_measure_ms_total());
  // Only emitted when tree-mode localization was recorded, so rollups
  // from flat-measurement runs keep their byte-exact legacy form (the
  // committed BENCH baselines depend on it).
  if (localized_ranges_ != 0 || unlocalized_compromised_ != 0) {
    w.key("localization");
    w.begin_object();
    w.key("ranges");
    w.uint_value(localized_ranges_);
    w.key("blocks");
    w.uint_value(localized_blocks_);
    w.key("unlocalized");
    w.uint_value(unlocalized_compromised_);
    w.key("block_histogram");
    w.begin_array();
    for (std::uint64_t count : localization_) w.uint_value(count);
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

std::string HealthRollup::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace rasc::obs
