#pragma once
/// \file bench_diff.hpp
/// Bench regression gate: compare two BENCH_*.json artifacts leaf-by-leaf
/// against per-metric relative tolerances.  The artifacts are already
/// machine-comparable by convention (no wall-clock time, no thread counts,
/// deterministic key order), so a diff is meaningful across commits — this
/// is the library behind the bench/bench_diff CLI and the CI gate that
/// holds each PR's numbers against the committed baselines in
/// bench/baselines/.

#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json_parse.hpp"

namespace rasc::obs {

/// One numeric (or scalar) leaf of an artifact, addressed by a dotted
/// path with array indices, e.g. "cells[2].values.retries.mean".
struct BenchLeaf {
  std::string path;
  JsonValue value;
};

/// Flatten every scalar leaf of `root` in document order.
std::vector<BenchLeaf> flatten_bench_json(const JsonValue& root);

/// Tolerance override: applies to every path containing `pattern` as a
/// substring.  The last matching rule wins.
struct BenchDiffRule {
  std::string pattern;
  double tolerance = 0.0;
};

struct BenchDiffOptions {
  /// Allowed two-sided relative deviation |cur-base| / max(|base|,|cur|)
  /// for numeric leaves without a matching rule.  0 = exact.
  double default_tolerance = 0.0;
  std::vector<BenchDiffRule> rules;
  /// Paths containing any of these substrings are skipped entirely.
  std::vector<std::string> ignore;
};

enum class BenchDiffStatus : std::uint8_t {
  kOk,            ///< within tolerance
  kRegression,    ///< numeric deviation beyond tolerance
  kMissing,       ///< present in baseline, absent in current (regression)
  kAdded,         ///< new leaf in current (informational, not a failure)
  kTypeMismatch,  ///< leaf changed JSON type (regression)
};

struct BenchDiffEntry {
  std::string path;
  BenchDiffStatus status = BenchDiffStatus::kOk;
  double baseline = 0.0;   ///< numeric leaves only
  double current = 0.0;    ///< numeric leaves only
  double rel_delta = 0.0;  ///< |cur-base| / max(|base|,|cur|), 0 if both 0
  double tolerance = 0.0;  ///< the tolerance this leaf was held to
  /// For non-numeric leaves: rendered values for the report.
  std::string baseline_text;
  std::string current_text;
};

struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;  ///< failures and additions only
  std::size_t compared = 0;             ///< leaves held to a tolerance
  std::size_t ignored = 0;
  std::size_t added = 0;

  bool ok() const noexcept {
    for (const auto& e : entries) {
      if (e.status != BenchDiffStatus::kOk && e.status != BenchDiffStatus::kAdded) {
        return false;
      }
    }
    return true;
  }
};

BenchDiffResult diff_bench(const JsonValue& baseline, const JsonValue& current,
                           const BenchDiffOptions& options);

/// Human-readable report: one line per failing (or added) leaf plus a
/// summary tail, e.g.
///   REGRESS cells[0].values.retries.mean: 1.25 -> 1.5 (rel 0.1667 > tol 0.01)
std::string format_bench_diff(const BenchDiffResult& result);

}  // namespace rasc::obs
