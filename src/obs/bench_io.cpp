#include "src/obs/bench_io.hpp"

#include <fstream>

#include "src/obs/json.hpp"

namespace rasc::obs {

std::string bench_json(const MetricsRegistry& registry, const std::string& name) {
  JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.string_value(name);
  w.key("metrics");
  w.raw_value(registry.to_json());
  w.end_object();
  return w.str();
}

std::string write_bench_json(const MetricsRegistry& registry, const std::string& name,
                             const std::string& dir) {
  std::string path;
  if (!dir.empty()) path = dir + "/";
  path += "BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "";
  const std::string json = bench_json(registry, name);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out << '\n';
  if (!out) return "";
  return path;
}

}  // namespace rasc::obs
