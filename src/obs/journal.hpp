#pragma once
/// \file journal.hpp
/// Flight-recorder event journal: a bounded ring buffer of fixed-size
/// typed events keyed to simulated time.  Where the TraceSink answers
/// "what does the timeline look like" (Chrome-trace spans for a human in
/// Perfetto), the journal answers "what exactly happened, in order, to
/// this device/session/round" — a structured, queryable record that a
/// campaign misjudge can be *explained* from (see timeline.hpp).
///
/// Design constraints, matching the PR-4 hot-path ethos:
///  - events are POD (timestamp, interned actor id, session/round ids,
///    kind, two u64 args) — appending allocates nothing;
///  - the ring is preallocated; when full the OLDEST events are
///    overwritten first (flight-recorder semantics) and dropped() counts;
///  - the disabled path is a single null-pointer branch at each event
///    site (`if (auto* j = sim.journal()) ...`), exactly like trace_sink;
///  - NDJSON export is a pure function of the recorded events, so a
///    journal captured from a deterministic simulation is byte-identical
///    across runs and thread counts like every other artifact.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rasc::obs {

using TimeNs = std::uint64_t;  ///< nanoseconds of simulated time

/// Every instrumented site in the stack.  The two u64 args are
/// kind-specific; the meaning is documented per block below and rendered
/// by the explain renderer (timeline.cpp).
enum class JournalEventKind : std::uint8_t {
  // sim::Link — a = message id, b as noted.
  kLinkSend,           ///< b = payload bytes
  kLinkDeliver,        ///< b = payload bytes (fires once per delivered copy)
  kLinkDrop,           ///< b = payload bytes
  kLinkPartitionDrop,  ///< b = payload bytes
  kLinkDuplicate,      ///< b = extra transit ns of the trailing copy
  kLinkCorrupt,        ///< b = corrupted byte offset
  kLinkReorder,        ///< b = holdback delay ns
  // attest::ReliableSession — actor = prover device.
  kSessionStart,          ///< a = max attempts, b = response timeout ns
  kSessionAttempt,        ///< a = attempt number (1-based), b = protocol counter
  kSessionAttemptTimeout, ///< a = attempt number
  kSessionBackoff,        ///< a = attempt that failed, b = backoff ns
  kSessionReplayRejected, ///< a = attempt number
  kSessionCorruptReport,  ///< a = attempt number
  kSessionLateReport,     ///< report arrived after the round resolved
  kSessionResolved,       ///< a = RoundOutcome, b = wasted measure ns
  // attest digest cache — a = block index, b = generation.
  kCacheHit,
  kCacheMiss,
  kCacheInvalidate,  ///< a = block (or ~0ull for all), b = entries flushed
  // apps::FireAlarmTask — a = delay/latency ns.
  kDeadlineHit,
  kDeadlineMiss,
  kAlarmRaised,
  // mtree incremental measurement (appended at the end so existing
  // numeric payloads keep their values).
  kMtreeRehash,  ///< a = dirty leaves folded in, b = tree nodes re-hashed
  kMtreeProof,   ///< a = first covered leaf, b = covered leaf count
  // fleet stack hibernation — actor = prover device (appended at the end
  // so existing numeric payloads keep their values).
  kFleetHibernate,  ///< a = rounds resolved so far, b = live stacks after
  kFleetWake,       ///< a = wakes of this device so far, b = live stacks after
};

/// Stable machine name ("link.drop", "session.resolved", ...).
std::string_view journal_event_kind_name(JournalEventKind kind);

struct JournalEvent {
  TimeNs time = 0;
  std::uint32_t actor = 0;    ///< interned name; 0 = unknown
  std::uint32_t session = 0;  ///< session instance id; 0 = none
  std::uint64_t round = 0;    ///< round sequence within the session; 0 = none
  JournalEventKind kind = JournalEventKind::kLinkSend;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(std::is_trivially_copyable_v<JournalEvent>,
              "journal events must append without allocation");

/// Conjunctive match over the event fields; unset members match anything.
struct JournalFilter {
  std::optional<JournalEventKind> kind;
  std::optional<std::uint32_t> actor;
  std::optional<std::uint32_t> session;
  std::optional<std::uint64_t> round;
  TimeNs t_min = 0;
  TimeNs t_max = UINT64_MAX;

  bool matches(const JournalEvent& ev) const noexcept {
    return (!kind || ev.kind == *kind) && (!actor || ev.actor == *actor) &&
           (!session || ev.session == *session) && (!round || ev.round == *round) &&
           ev.time >= t_min && ev.time <= t_max;
  }
};

class EventJournal {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// The ring is fully preallocated here; append() never grows it.
  explicit EventJournal(std::size_t capacity = kDefaultCapacity);

  /// Reallocate the ring (contents are cleared; counters reset).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Intern an actor name (device id, link label); ids are assigned in
  /// first-intern order starting at 1, so a deterministic wiring order
  /// yields deterministic ids.  Re-interning an existing name is a pure
  /// lookup.  Id 0 is reserved and renders as "?".
  std::uint32_t intern(std::string_view name);
  const std::string& actor_name(std::uint32_t id) const;

  /// O(1), allocation-free.  A full ring overwrites the oldest event.
  void append(const JournalEvent& ev) noexcept;
  void append(TimeNs time, std::uint32_t actor, std::uint32_t session,
              std::uint64_t round, JournalEventKind kind, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept {
    append(JournalEvent{time, actor, session, round, kind, a, b});
  }

  /// Events currently retained (<= capacity), oldest first.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const JournalEvent& at(std::size_t i) const noexcept {
    return ring_[(tail_ + i) % ring_.size()];
  }

  /// Lifetime counters: everything ever appended, and how many of those
  /// were overwritten by ring wrap-around.
  std::uint64_t appended() const noexcept { return appended_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  void clear();

  // -- query ------------------------------------------------------------------
  std::vector<JournalEvent> select(const JournalFilter& filter) const;
  std::size_t count(const JournalFilter& filter) const;
  /// First retained event matching, in time order.
  std::optional<JournalEvent> first(const JournalFilter& filter) const;

  // -- export -----------------------------------------------------------------
  /// One JSON object per line, oldest first, keys in fixed order:
  /// {"t":<ns>,"actor":"<name>","kind":"<kind>","session":S,"round":R,
  ///  "a":A,"b":B}\n — deterministic byte-for-byte for a deterministic
  /// simulation.
  std::string to_ndjson() const;
  /// Write to_ndjson() to `path`; false on I/O failure.
  bool write_ndjson(const std::string& path) const;

 private:
  std::vector<JournalEvent> ring_;
  std::size_t tail_ = 0;  ///< index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::string> names_;  ///< index 0 = "?"
  std::unordered_map<std::string, std::uint32_t> ids_;
};

/// Caches one interned actor id so instrumented hot paths pay the intern
/// lookup once per (journal, site) instead of per event.
class ActorId {
 public:
  std::uint32_t get(EventJournal& journal, std::string_view name) {
    if (journal_ != &journal) {
      id_ = journal.intern(name);
      journal_ = &journal;
    }
    return id_;
  }

 private:
  const EventJournal* journal_ = nullptr;
  std::uint32_t id_ = 0;
};

}  // namespace rasc::obs
