#pragma once
/// \file trace.hpp
/// Structured tracing keyed to simulated time.  A TraceSink collects
/// begin/end spans, instants, counter samples and pre-paired complete
/// spans; every event carries a *track* (one per device component:
/// "cpu/prv-0", "attest/prv-0", "net", ...) that becomes a thread row in
/// the Chrome trace_event export, so a capture of a scenario renders as
/// the paper's Figure 1 / Figure 4 timelines in chrome://tracing or
/// Perfetto.
///
/// The sink is deliberately clock-agnostic (timestamps are plain ns
/// values supplied by the caller) so the library sits below `src/sim`;
/// the simulator owns the wiring via `Simulator::set_trace_sink`.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rasc::obs {

using TimeNs = std::uint64_t;  ///< nanoseconds of simulated time

enum class TraceEventKind : std::uint8_t {
  kBegin,       ///< opens a span on its track
  kEnd,         ///< closes the innermost open span on its track
  kInstant,     ///< point event
  kCounter,     ///< sampled numeric series
  kComplete,    ///< pre-paired span (start + duration known at emission)
  kFlowStart,   ///< start of a flow arrow (Chrome "s" phase)
  kFlowFinish,  ///< end of a flow arrow (Chrome "f" phase, bp:"e")
};

/// One key/value annotation; `numeric` values export unquoted.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

TraceArg arg(std::string key, std::string value);
TraceArg arg(std::string key, double value);
TraceArg arg(std::string key, std::uint64_t value);

struct TraceEvent {
  TimeNs time = 0;
  TimeNs duration = 0;  ///< kComplete only
  TraceEventKind kind = TraceEventKind::kInstant;
  std::string track;
  std::string name;  ///< empty on kEnd (pairs with the open begin)
  double value = 0;  ///< kCounter only
  std::uint64_t flow_id = 0;  ///< kFlowStart/kFlowFinish only
  std::vector<TraceArg> args;
};

/// A completed span reconstructed by the query API.  `depth` is the
/// nesting level on its track (0 = outermost).
struct TraceSpan {
  TimeNs start = 0;
  TimeNs end = 0;
  std::string track;
  std::string name;
  int depth = 0;
  std::vector<TraceArg> args;

  TimeNs duration() const noexcept { return end - start; }
};

class TraceSink {
 public:
  /// Bound the in-memory event log; 0 (default) = unbounded.  When full,
  /// the OLDEST events are evicted first; `dropped()` counts evictions.
  /// A span whose begin was evicted is not reconstructed by spans().
  void set_capacity(std::size_t cap);
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t dropped() const noexcept { return dropped_; }

  // -- recording --------------------------------------------------------------
  void begin(TimeNs t, std::string track, std::string name,
             std::vector<TraceArg> args = {});
  /// Closes the innermost open span on `track`; extra `args` are merged
  /// into the span's annotations.
  void end(TimeNs t, std::string track, std::vector<TraceArg> args = {});
  void instant(TimeNs t, std::string track, std::string name,
               std::vector<TraceArg> args = {});
  void counter(TimeNs t, std::string track, std::string name, double value);
  void complete(TimeNs start, TimeNs duration, std::string track, std::string name,
                std::vector<TraceArg> args = {});
  /// Flow arrow across tracks: a start on one track links to the finish
  /// with the same (name, id) on another — Perfetto draws the arrow
  /// between the spans enclosing the two events, which is how a challenge
  /// span on the verifier row points at its report span on the prover row.
  void flow_start(TimeNs t, std::string track, std::string name, std::uint64_t id);
  void flow_finish(TimeNs t, std::string track, std::string name, std::uint64_t id);

  // -- query ------------------------------------------------------------------
  const std::deque<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  void clear();

  /// Events (any kind) with the given name.
  std::size_t count_named(std::string_view name) const;

  /// Completed spans in start order (outermost first at equal starts),
  /// reconstructed by replaying begin/end pairs per track plus all
  /// complete events.  Unmatched begins/ends are ignored.
  std::vector<TraceSpan> spans() const;
  std::vector<TraceSpan> spans_named(std::string_view name) const;
  std::optional<TraceSpan> first_span_named(std::string_view name) const;

  /// Latest sample of a counter series, if any.
  std::optional<double> last_counter(std::string_view name) const;

  // -- export -----------------------------------------------------------------
  /// Chrome trace_event JSON (object format with "traceEvents"), loadable
  /// in chrome://tracing and Perfetto.  Tracks map to tids in first-seen
  /// order with thread_name metadata; timestamps are microseconds with
  /// nanosecond fractions.
  std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  void push(TraceEvent ev);

  std::deque<TraceEvent> events_;
  std::size_t capacity_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace rasc::obs
