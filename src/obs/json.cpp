#include "src/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rasc::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest representation that parses back to exactly `v`: 17 significant
  // digits always round-trip a double, but most values need fewer, so probe
  // upward and keep the artifact diffs readable.
  for (int precision = 9; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // comma handled when the key was written
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) out_ += ',';
    wrote_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  wrote_element_.push_back(false);
}

void JsonWriter::end_object() {
  wrote_element_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  wrote_element_.push_back(false);
}

void JsonWriter::end_array() {
  wrote_element_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) out_ += ',';
    wrote_element_.back() = true;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::string_value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::number_value(double v) {
  before_value();
  out_ += json_number(v);
}

void JsonWriter::uint_value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
}

void JsonWriter::bool_value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::raw_value(std::string_view fragment) {
  before_value();
  out_ += fragment;
}

}  // namespace rasc::obs
