#pragma once
/// \file metrics.hpp
/// Aggregated metrics: counters, gauges and fixed-bucket histograms with
/// percentile extraction.  A MetricsRegistry renders both human-readably
/// (support::Table) and machine-readably (JSON), so every bench can dump
/// its results as BENCH_<name>.json (see bench_io.hpp) and every scenario
/// can account per-phase latencies the way the paper's timelines do.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/support/table.hpp"

namespace rasc::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram.  `bounds` are ascending bucket upper edges; an
/// implicit overflow bucket catches everything above the last bound.
///
/// percentile(p) walks the cumulative counts to the bucket containing
/// rank p/100 * count and interpolates linearly inside it (lower edge =
/// previous bound, or 0 for the first bucket; upper edge = the bound, or
/// the observed max for the overflow bucket).  The result is clamped to
/// [min, max] of the observed samples; an empty histogram returns 0.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Geometric bucket edges: first, first*factor, ... (`count` edges).
  static std::vector<double> exponential_bounds(double first, double factor,
                                                std::size_t count);
  /// Default edges for latencies in milliseconds: 1 us .. ~1000 s.
  static std::vector<double> default_latency_bounds_ms();

  void record(double v);
  /// Fold another histogram into this one (bucket-wise).  Both must have
  /// identical bounds; throws std::invalid_argument otherwise.
  void merge(const Histogram& other);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double percentile(double p) const;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const noexcept { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named metrics, deterministically ordered.  Accessors create on first
/// use; a histogram's bucket bounds are fixed by its first accessor call.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Ordered iteration, e.g. for merging registries across Monte-Carlo
  /// trials (see exp::detail::merge_registry).
  const std::map<std::string, Counter>& counters() const noexcept { return counters_; }
  const std::map<std::string, Gauge>& gauges() const noexcept { return gauges_; }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const noexcept {
    return histograms_;
  }

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// One row per metric: histograms show count/mean/p50/p95/p99/max.
  support::Table to_table() const;
  /// {"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,max,
  ///  mean,p50,p95,p99,bounds,buckets}}}
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rasc::obs
