#pragma once
/// \file bench_io.hpp
/// Machine-readable bench output: dump a MetricsRegistry as
/// BENCH_<name>.json in the working directory, so every bench run leaves
/// a structured artifact the perf trajectory can diff across PRs.

#include <string>

#include "src/obs/metrics.hpp"

namespace rasc::obs {

/// Serialize `{"bench": name, "metrics": <registry JSON>}`.
std::string bench_json(const MetricsRegistry& registry, const std::string& name);

/// Write bench_json() to `<dir>/BENCH_<name>.json` (dir "" = cwd).
/// Returns the path written, or "" on I/O failure.
std::string write_bench_json(const MetricsRegistry& registry, const std::string& name,
                             const std::string& dir = "");

}  // namespace rasc::obs
