#pragma once
/// \file json_parse.hpp
/// Minimal recursive-descent JSON parser — just enough to read back our
/// own artifacts (BENCH_*.json, journal NDJSON lines) for the bench
/// regression gate and round-trip tests.  Objects preserve insertion
/// order, matching the deterministic writer, so parse→flatten→compare is
/// stable.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rasc::obs {

class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return number_; }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<JsonValue>& items() const noexcept { return items_; }
  /// Insertion-ordered key/value pairs.
  const std::vector<std::pair<std::string, JsonValue>>& members() const noexcept {
    return members_;
  }

  /// nullptr when absent or when this is not an object.
  const JsonValue* find(std::string_view key) const;

  std::vector<JsonValue>& items() noexcept { return items_; }
  std::vector<std::pair<std::string, JsonValue>>& members() noexcept { return members_; }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse one JSON document.  On failure returns nullopt and, if `error` is
/// non-null, stores a message with the byte offset.  Trailing whitespace
/// is allowed; trailing garbage is an error.
std::optional<JsonValue> parse_json(std::string_view text, std::string* error = nullptr);

}  // namespace rasc::obs
