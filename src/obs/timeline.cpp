#include "src/obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/obs/health.hpp"

namespace rasc::obs {
namespace {

std::string ms_fixed(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string ms_offset(TimeNs t, TimeNs origin) {
  // Events can legitimately precede the round origin when a round was
  // reconstructed from a truncated journal; render those at +0.000.
  return "+" + ms_fixed(t >= origin ? t - origin : 0) + " ms";
}

std::string outcome_label(std::uint64_t a) {
  if (a < kRoundOutcomeCount) {
    return std::string(round_outcome_name(static_cast<RoundOutcome>(a)));
  }
  return "unresolved";
}

/// Kind-specific argument rendering; keep each line self-describing so a
/// transcript reads without the journal schema at hand.
std::string describe(const JournalEvent& ev) {
  switch (ev.kind) {
    case JournalEventKind::kLinkSend:
    case JournalEventKind::kLinkDeliver:
      return "msg=" + std::to_string(ev.a) + " (" + std::to_string(ev.b) + " B)";
    case JournalEventKind::kLinkDrop:
    case JournalEventKind::kLinkPartitionDrop:
      return "msg=" + std::to_string(ev.a);
    case JournalEventKind::kLinkDuplicate:
      return "msg=" + std::to_string(ev.a) + " copy after " + ms_fixed(ev.b) + " ms";
    case JournalEventKind::kLinkCorrupt:
      return "msg=" + std::to_string(ev.a) + " byte " + std::to_string(ev.b);
    case JournalEventKind::kLinkReorder:
      return "msg=" + std::to_string(ev.a) + " held " + ms_fixed(ev.b) + " ms";
    case JournalEventKind::kSessionStart:
      return "max_attempts=" + std::to_string(ev.a) + " timeout=" + ms_fixed(ev.b) +
             " ms";
    case JournalEventKind::kSessionAttempt:
      return "#" + std::to_string(ev.a) + " counter=" + std::to_string(ev.b);
    case JournalEventKind::kSessionAttemptTimeout:
    case JournalEventKind::kSessionReplayRejected:
    case JournalEventKind::kSessionCorruptReport:
      return "#" + std::to_string(ev.a);
    case JournalEventKind::kSessionBackoff:
      return "after #" + std::to_string(ev.a) + ", " + ms_fixed(ev.b) + " ms";
    case JournalEventKind::kSessionLateReport:
      return "";
    case JournalEventKind::kSessionResolved:
      return outcome_label(ev.a) + ", " + ms_fixed(ev.b) + " ms wasted MP";
    case JournalEventKind::kCacheHit:
    case JournalEventKind::kCacheMiss:
      return "block=" + std::to_string(ev.a) + " gen=" + std::to_string(ev.b);
    case JournalEventKind::kCacheInvalidate:
      return (ev.a == ~0ull ? std::string("all blocks")
                            : "block=" + std::to_string(ev.a)) +
             ", flushed " + std::to_string(ev.b);
    case JournalEventKind::kDeadlineHit:
    case JournalEventKind::kDeadlineMiss:
      return "delay=" + ms_fixed(ev.a) + " ms";
    case JournalEventKind::kAlarmRaised:
      return "latency=" + ms_fixed(ev.a) + " ms";
    case JournalEventKind::kMtreeRehash:
      return "dirty_leaves=" + std::to_string(ev.a) + " nodes=" + std::to_string(ev.b);
    case JournalEventKind::kMtreeProof:
      return "leaves=[" + std::to_string(ev.a) + ", " +
             std::to_string(ev.a + ev.b) + ")";
    case JournalEventKind::kFleetHibernate:
      return "rounds=" + std::to_string(ev.a) + " pool=" + std::to_string(ev.b);
    case JournalEventKind::kFleetWake:
      return "wake #" + std::to_string(ev.a) + " pool=" + std::to_string(ev.b);
  }
  return "";
}

void append_event_line(std::string& out, const JournalEvent& ev, TimeNs origin,
                       const EventJournal& journal) {
  char line[160];
  std::string what(journal_event_kind_name(ev.kind));
  std::string detail = describe(ev);
  std::snprintf(line, sizeof(line), "  %12s  %-24s %s [%s]\n",
                ms_offset(ev.time, origin).c_str(), what.c_str(), detail.c_str(),
                journal.actor_name(ev.actor).c_str());
  out += line;
}

}  // namespace

std::vector<RoundTimeline> build_round_timelines(const EventJournal& journal) {
  // Pass 1: group session-tagged events exactly by (session, round).
  std::map<std::pair<std::uint32_t, std::uint64_t>, RoundTimeline> by_round;
  for (std::size_t i = 0; i < journal.size(); ++i) {
    const JournalEvent& ev = journal.at(i);
    if (ev.session == 0) continue;
    RoundTimeline& rt = by_round[{ev.session, ev.round}];
    if (rt.events.empty()) {
      rt.session = ev.session;
      rt.round = ev.round;
      rt.actor = ev.actor;
      rt.t_start = ev.time;
    }
    rt.t_resolved = ev.time;
    switch (ev.kind) {
      case JournalEventKind::kSessionStart:
        rt.t_start = ev.time;
        break;
      case JournalEventKind::kSessionAttempt:
        rt.attempts = std::max(rt.attempts, ev.a);
        break;
      case JournalEventKind::kSessionResolved:
        rt.outcome = ev.a;
        rt.wasted_measure_ns = ev.b;
        break;
      default:
        break;
    }
    rt.events.push_back(ev);
  }

  std::vector<RoundTimeline> rounds;
  rounds.reserve(by_round.size());
  for (auto& [key, rt] : by_round) rounds.push_back(std::move(rt));
  std::sort(rounds.begin(), rounds.end(),
            [](const RoundTimeline& a, const RoundTimeline& b) {
              if (a.t_start != b.t_start) return a.t_start < b.t_start;
              if (a.session != b.session) return a.session < b.session;
              return a.round < b.round;
            });

  // Pass 2: attribute untagged events (link, cache, app) to the round
  // whose [start, resolve] window contains them.
  for (std::size_t i = 0; i < journal.size(); ++i) {
    const JournalEvent& ev = journal.at(i);
    if (ev.session != 0) continue;
    for (RoundTimeline& rt : rounds) {
      if (ev.time >= rt.t_start && ev.time <= rt.t_resolved) {
        rt.events.push_back(ev);
        break;
      }
    }
  }
  for (RoundTimeline& rt : rounds) {
    std::stable_sort(rt.events.begin(), rt.events.end(),
                     [](const JournalEvent& a, const JournalEvent& b) {
                       return a.time < b.time;
                     });
  }
  return rounds;
}

std::string explain_round(const EventJournal& journal, const RoundTimeline& round) {
  std::string out = "round " + std::to_string(round.round) + " on " +
                    journal.actor_name(round.actor) + ": " +
                    outcome_label(round.outcome) + " after " +
                    std::to_string(round.attempts) +
                    (round.attempts == 1 ? " attempt" : " attempts") + ", " +
                    ms_fixed(round.wasted_measure_ns) + " ms wasted MP\n";
  for (const JournalEvent& ev : round.events) {
    append_event_line(out, ev, round.t_start, journal);
  }
  return out;
}

std::string explain(const EventJournal& journal, bool only_problem_rounds) {
  std::string out;
  for (const RoundTimeline& rt : build_round_timelines(journal)) {
    bool clean = rt.resolved() &&
                 rt.outcome == static_cast<std::uint64_t>(RoundOutcome::kVerified) &&
                 rt.attempts <= 1;
    if (only_problem_rounds && clean) continue;
    if (!out.empty()) out += '\n';
    out += explain_round(journal, rt);
  }
  return out;
}

std::string render_journal_summary(const EventJournal& journal) {
  std::string out;
  if (journal.empty()) return out;
  TimeNs origin = journal.at(0).time;
  for (std::size_t i = 0; i < journal.size(); ++i) {
    append_event_line(out, journal.at(i), origin, journal);
  }
  return out;
}

}  // namespace rasc::obs
