#pragma once
/// \file timeline.hpp
/// Round timelines: reconstruct the per-(device, round) causal chain of an
/// attestation round from the flight-recorder journal, and render it as a
/// human-readable "explain" transcript —
///
///   round 3 on prv-0: timeout after 4 attempts, 1.204 ms wasted MP
///     +0.000 ms  session.start        max_attempts=4
///     +0.000 ms  session.attempt      #1
///     +0.013 ms  link.send            msg=17 (42 B)
///     +0.013 ms  link.drop            msg=17
///     ...
///
/// so any misjudged round in a campaign artifact can be explained from its
/// journal instead of re-run under a debugger.

#include <string>
#include <vector>

#include "src/obs/journal.hpp"

namespace rasc::obs {

/// One reconstructed round: the session-tagged events plus every untagged
/// event (link, cache, app) that happened inside the round's time window.
/// Window association assumes rounds on one journal do not overlap in
/// time, which holds for the sequential ReliableSession driver; concurrent
/// multi-session journals keep exact attribution for session-tagged events
/// and best-effort attribution for the rest.
struct RoundTimeline {
  std::uint32_t session = 0;
  std::uint64_t round = 0;
  std::uint32_t actor = 0;   ///< prover actor id of the session events
  TimeNs t_start = 0;        ///< time of session.start
  TimeNs t_resolved = 0;     ///< time of session.resolved
  std::uint64_t attempts = 0;
  /// RoundOutcome numeric value from session.resolved (arg a); ~0ull when
  /// the round never resolved inside the journal window.
  std::uint64_t outcome = ~0ull;
  std::uint64_t wasted_measure_ns = 0;  ///< session.resolved arg b
  std::vector<JournalEvent> events;     ///< time-ordered

  bool resolved() const noexcept { return outcome != ~0ull; }
};

/// All rounds found in the journal, ordered by (time of session.start).
/// Rounds whose session.start was overwritten by ring wrap-around are
/// reconstructed from their first surviving event.
std::vector<RoundTimeline> build_round_timelines(const EventJournal& journal);

/// Render one round as an explain transcript (header + one line per event,
/// offsets relative to the round start).
std::string explain_round(const EventJournal& journal, const RoundTimeline& round);

/// Render every round in the journal; `only_problem_rounds` keeps just the
/// ones that did not verify on the first attempt.
std::string explain(const EventJournal& journal, bool only_problem_rounds = false);

/// Flat transcript of every journal event (no round grouping) — used by
/// app-level journals (fire_alarm_demo) that have no sessions.
std::string render_journal_summary(const EventJournal& journal);

}  // namespace rasc::obs
