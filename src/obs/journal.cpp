#include "src/obs/journal.hpp"

#include <fstream>

#include "src/obs/json.hpp"

namespace rasc::obs {

std::string_view journal_event_kind_name(JournalEventKind kind) {
  switch (kind) {
    case JournalEventKind::kLinkSend: return "link.send";
    case JournalEventKind::kLinkDeliver: return "link.deliver";
    case JournalEventKind::kLinkDrop: return "link.drop";
    case JournalEventKind::kLinkPartitionDrop: return "link.partition_drop";
    case JournalEventKind::kLinkDuplicate: return "link.duplicate";
    case JournalEventKind::kLinkCorrupt: return "link.corrupt";
    case JournalEventKind::kLinkReorder: return "link.reorder";
    case JournalEventKind::kSessionStart: return "session.start";
    case JournalEventKind::kSessionAttempt: return "session.attempt";
    case JournalEventKind::kSessionAttemptTimeout: return "session.attempt_timeout";
    case JournalEventKind::kSessionBackoff: return "session.backoff";
    case JournalEventKind::kSessionReplayRejected: return "session.replay_rejected";
    case JournalEventKind::kSessionCorruptReport: return "session.corrupt_report";
    case JournalEventKind::kSessionLateReport: return "session.late_report";
    case JournalEventKind::kSessionResolved: return "session.resolved";
    case JournalEventKind::kCacheHit: return "cache.hit";
    case JournalEventKind::kCacheMiss: return "cache.miss";
    case JournalEventKind::kCacheInvalidate: return "cache.invalidate";
    case JournalEventKind::kDeadlineHit: return "app.deadline_hit";
    case JournalEventKind::kDeadlineMiss: return "app.deadline_miss";
    case JournalEventKind::kAlarmRaised: return "app.alarm_raised";
    case JournalEventKind::kMtreeRehash: return "mtree.rehash";
    case JournalEventKind::kMtreeProof: return "mtree.proof";
    case JournalEventKind::kFleetHibernate: return "fleet.hibernate";
    case JournalEventKind::kFleetWake: return "fleet.wake";
  }
  return "?";
}

EventJournal::EventJournal(std::size_t capacity) { set_capacity(capacity); }

void EventJournal::set_capacity(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, JournalEvent{});
  tail_ = 0;
  size_ = 0;
  appended_ = 0;
  dropped_ = 0;
}

std::uint32_t EventJournal::intern(std::string_view name) {
  if (names_.empty()) names_.emplace_back("?");
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

const std::string& EventJournal::actor_name(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  if (id >= names_.size()) return kUnknown;
  return names_[id];
}

void EventJournal::append(const JournalEvent& ev) noexcept {
  const std::size_t cap = ring_.size();
  if (size_ == cap) {
    ring_[tail_] = ev;
    tail_ = (tail_ + 1) % cap;
    ++dropped_;
  } else {
    ring_[(tail_ + size_) % cap] = ev;
    ++size_;
  }
  ++appended_;
}

void EventJournal::clear() {
  tail_ = 0;
  size_ = 0;
  appended_ = 0;
  dropped_ = 0;
}

std::vector<JournalEvent> EventJournal::select(const JournalFilter& filter) const {
  std::vector<JournalEvent> out;
  for (std::size_t i = 0; i < size_; ++i) {
    const JournalEvent& ev = at(i);
    if (filter.matches(ev)) out.push_back(ev);
  }
  return out;
}

std::size_t EventJournal::count(const JournalFilter& filter) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    if (filter.matches(at(i))) ++n;
  }
  return n;
}

std::optional<JournalEvent> EventJournal::first(const JournalFilter& filter) const {
  for (std::size_t i = 0; i < size_; ++i) {
    const JournalEvent& ev = at(i);
    if (filter.matches(ev)) return ev;
  }
  return std::nullopt;
}

std::string EventJournal::to_ndjson() const {
  std::string out;
  out.reserve(size_ * 96);
  for (std::size_t i = 0; i < size_; ++i) {
    const JournalEvent& ev = at(i);
    out += "{\"t\":";
    out += std::to_string(ev.time);
    out += ",\"actor\":\"";
    out += json_escape(actor_name(ev.actor));
    out += "\",\"kind\":\"";
    out += journal_event_kind_name(ev.kind);
    out += "\",\"session\":";
    out += std::to_string(ev.session);
    out += ",\"round\":";
    out += std::to_string(ev.round);
    out += ",\"a\":";
    out += std::to_string(ev.a);
    out += ",\"b\":";
    out += std::to_string(ev.b);
    out += "}\n";
  }
  return out;
}

bool EventJournal::write_ndjson(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << to_ndjson();
  return static_cast<bool>(f);
}

}  // namespace rasc::obs
