#include "src/obs/bench_diff.hpp"

#include <cmath>
#include <cstdio>

#include "src/obs/json.hpp"

namespace rasc::obs {
namespace {

void flatten_into(const JsonValue& node, std::string& path,
                  std::vector<BenchLeaf>& out) {
  switch (node.type()) {
    case JsonValue::Type::kObject:
      for (const auto& [key, value] : node.members()) {
        std::size_t len = path.size();
        if (!path.empty()) path += '.';
        path += key;
        flatten_into(value, path, out);
        path.resize(len);
      }
      return;
    case JsonValue::Type::kArray: {
      std::size_t index = 0;
      for (const JsonValue& item : node.items()) {
        std::size_t len = path.size();
        path += '[';
        path += std::to_string(index++);
        path += ']';
        flatten_into(item, path, out);
        path.resize(len);
      }
      return;
    }
    default:
      out.push_back(BenchLeaf{path, node});
      return;
  }
}

std::string scalar_text(const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return v.as_bool() ? "true" : "false";
    case JsonValue::Type::kNumber: return json_number(v.as_number());
    case JsonValue::Type::kString: return "\"" + v.as_string() + "\"";
    default: return "<container>";
  }
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

double tolerance_for(const std::string& path, const BenchDiffOptions& options) {
  double tol = options.default_tolerance;
  for (const BenchDiffRule& rule : options.rules) {
    if (contains(path, rule.pattern)) tol = rule.tolerance;
  }
  return tol;
}

bool is_ignored(const std::string& path, const BenchDiffOptions& options) {
  for (const std::string& pattern : options.ignore) {
    if (contains(path, pattern)) return true;
  }
  return false;
}

}  // namespace

std::vector<BenchLeaf> flatten_bench_json(const JsonValue& root) {
  std::vector<BenchLeaf> out;
  std::string path;
  flatten_into(root, path, out);
  return out;
}

BenchDiffResult diff_bench(const JsonValue& baseline, const JsonValue& current,
                           const BenchDiffOptions& options) {
  BenchDiffResult result;
  std::vector<BenchLeaf> base_leaves = flatten_bench_json(baseline);
  std::vector<BenchLeaf> cur_leaves = flatten_bench_json(current);

  // Document order matches between same-schema artifacts, but index the
  // current side by path so renames/reorders degrade to missing+added
  // instead of comparing unrelated leaves.
  std::vector<bool> cur_used(cur_leaves.size(), false);
  auto find_current = [&](const std::string& path) -> std::size_t {
    for (std::size_t i = 0; i < cur_leaves.size(); ++i) {
      if (!cur_used[i] && cur_leaves[i].path == path) return i;
    }
    return cur_leaves.size();
  };

  for (const BenchLeaf& base : base_leaves) {
    if (is_ignored(base.path, options)) {
      ++result.ignored;
      continue;
    }
    std::size_t ci = find_current(base.path);
    if (ci == cur_leaves.size()) {
      BenchDiffEntry e;
      e.path = base.path;
      e.status = BenchDiffStatus::kMissing;
      e.baseline_text = scalar_text(base.value);
      result.entries.push_back(std::move(e));
      continue;
    }
    cur_used[ci] = true;
    const BenchLeaf& cur = cur_leaves[ci];
    ++result.compared;

    if (base.value.type() != cur.value.type()) {
      BenchDiffEntry e;
      e.path = base.path;
      e.status = BenchDiffStatus::kTypeMismatch;
      e.baseline_text = scalar_text(base.value);
      e.current_text = scalar_text(cur.value);
      result.entries.push_back(std::move(e));
      continue;
    }

    if (base.value.is_number()) {
      double b = base.value.as_number();
      double c = cur.value.as_number();
      double denom = std::max(std::fabs(b), std::fabs(c));
      double rel = denom == 0.0 ? 0.0 : std::fabs(c - b) / denom;
      double tol = tolerance_for(base.path, options);
      if (rel > tol) {
        BenchDiffEntry e;
        e.path = base.path;
        e.status = BenchDiffStatus::kRegression;
        e.baseline = b;
        e.current = c;
        e.rel_delta = rel;
        e.tolerance = tol;
        result.entries.push_back(std::move(e));
      }
      continue;
    }

    // Non-numeric scalars (names, flags) must match exactly.
    if (scalar_text(base.value) != scalar_text(cur.value)) {
      BenchDiffEntry e;
      e.path = base.path;
      e.status = BenchDiffStatus::kRegression;
      e.baseline_text = scalar_text(base.value);
      e.current_text = scalar_text(cur.value);
      result.entries.push_back(std::move(e));
    }
  }

  for (std::size_t i = 0; i < cur_leaves.size(); ++i) {
    if (cur_used[i] || is_ignored(cur_leaves[i].path, options)) continue;
    BenchDiffEntry e;
    e.path = cur_leaves[i].path;
    e.status = BenchDiffStatus::kAdded;
    e.current_text = scalar_text(cur_leaves[i].value);
    result.entries.push_back(std::move(e));
    ++result.added;
  }
  return result;
}

std::string format_bench_diff(const BenchDiffResult& result) {
  std::string out;
  char buf[256];
  for (const BenchDiffEntry& e : result.entries) {
    switch (e.status) {
      case BenchDiffStatus::kRegression:
        if (e.baseline_text.empty()) {
          std::snprintf(buf, sizeof(buf), "REGRESS %s: %s -> %s (rel %.4g > tol %.4g)\n",
                        e.path.c_str(), json_number(e.baseline).c_str(),
                        json_number(e.current).c_str(), e.rel_delta, e.tolerance);
        } else {
          std::snprintf(buf, sizeof(buf), "REGRESS %s: %s -> %s\n", e.path.c_str(),
                        e.baseline_text.c_str(), e.current_text.c_str());
        }
        out += buf;
        break;
      case BenchDiffStatus::kMissing:
        out += "MISSING " + e.path + ": baseline had " + e.baseline_text + "\n";
        break;
      case BenchDiffStatus::kTypeMismatch:
        out += "TYPE    " + e.path + ": " + e.baseline_text + " -> " + e.current_text +
               "\n";
        break;
      case BenchDiffStatus::kAdded:
        out += "ADDED   " + e.path + ": " + e.current_text + "\n";
        break;
      case BenchDiffStatus::kOk:
        break;
    }
  }
  std::snprintf(buf, sizeof(buf), "%zu compared, %zu ignored, %zu added: %s\n",
                result.compared, result.ignored, result.added,
                result.ok() ? "OK" : "REGRESSION");
  out += buf;
  return out;
}

}  // namespace rasc::obs
