#include "src/obs/json_parse.hpp"

#include <cctype>
#include <cstdlib>

namespace rasc::obs {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    std::optional<JsonValue> v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after JSON value");
        v = std::nullopt;
      }
    }
    if (!v && error) *error = error_ + " at offset " + std::to_string(pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        std::string s;
        if (!parse_string(s)) return std::nullopt;
        return JsonValue::make_string(std::move(s));
      }
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        break;
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        break;
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        break;
      default:
        return parse_number();
    }
    fail("invalid literal");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::make_object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<JsonValue> value = parse_value();
      if (!value) return std::nullopt;
      obj.members().emplace_back(std::move(key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::make_array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      std::optional<JsonValue> value = parse_value();
      if (!value) return std::nullopt;
      arr.items().push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // UTF-8 encode the code point.  Surrogate pairs are not needed by
          // our writers (json_escape only \u-escapes control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  std::optional<JsonValue> parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
      return std::nullopt;
    }
    std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace rasc::obs
