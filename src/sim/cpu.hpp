#pragma once
/// \file cpu.hpp
/// Single-core CPU with priority dispatch at *segment* granularity.
///
/// Every piece of work executes as a sequence of non-preemptible segments.
/// This captures the paper's execution modalities exactly:
///   - SMART-style atomic attestation  = the whole measurement is ONE
///     segment (interrupts disabled), so a critical task arriving mid-way
///     waits for the full measurement;
///   - TrustLite/SMARM-style interruptible attestation = one segment per
///     memory block, so the wait is bounded by a block measurement;
///   - the application's sensor poll = one short segment.
/// When a segment ends, the highest-priority ready process is dispatched
/// (larger number = more important), so a higher-priority arrival
/// effectively preempts at the next segment boundary.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"

namespace rasc::sim {

/// One non-preemptible unit of CPU work.
struct Segment {
  Duration duration = 0;
  /// Invoked when the segment finishes (simulated time has advanced).
  std::function<void()> on_complete;
};

/// A schedulable entity.  The CPU calls next_segment() whenever it grants
/// the process the core; returning std::nullopt parks the process (it must
/// be made ready again to run).  Processes are owned by the scenario and
/// must outlive the Cpu.
class Process {
 public:
  Process(std::string name, int priority) : name_(std::move(name)), priority_(priority) {}
  virtual ~Process() = default;

  virtual std::optional<Segment> next_segment() = 0;

  const std::string& name() const noexcept { return name_; }
  int priority() const noexcept { return priority_; }
  void set_priority(int p) noexcept { priority_ = p; }

 private:
  std::string name_;
  int priority_;
};

/// Record of one executed segment (for timelines and availability stats).
struct ExecutionRecord {
  Time start;
  Time end;
  std::string process;
};

class Cpu {
 public:
  explicit Cpu(Simulator& sim) : sim_(sim) {}

  /// Add a process to the ready set (no-op if already ready) and dispatch
  /// as soon as the core is free.
  void make_ready(Process& p);

  /// Remove from the ready set without running (e.g. task cancelled).  A
  /// currently-running segment still completes.
  void remove(Process& p);

  bool busy() const noexcept { return running_ != nullptr; }
  Process* running() const noexcept { return running_; }
  /// End time of the current segment (valid when busy()).
  Time busy_until() const noexcept { return busy_until_; }

  /// Total CPU time consumed per process name.
  Duration consumed(const std::string& name) const;

  /// Enable recording of every executed segment.
  void enable_trace(bool on) { trace_enabled_ = on; }
  const std::vector<ExecutionRecord>& trace() const noexcept { return trace_; }

 private:
  void schedule_dispatch();
  void dispatch();

  Simulator& sim_;
  std::vector<Process*> ready_;
  Process* running_ = nullptr;
  Time busy_until_ = 0;
  bool dispatch_pending_ = false;
  std::unordered_map<std::string, Duration> consumed_;
  bool trace_enabled_ = false;
  std::vector<ExecutionRecord> trace_;
};

}  // namespace rasc::sim
