#pragma once
/// \file cpu.hpp
/// Single-core CPU with priority dispatch at *segment* granularity.
///
/// Every piece of work executes as a sequence of non-preemptible segments.
/// This captures the paper's execution modalities exactly:
///   - SMART-style atomic attestation  = the whole measurement is ONE
///     segment (interrupts disabled), so a critical task arriving mid-way
///     waits for the full measurement;
///   - TrustLite/SMARM-style interruptible attestation = one segment per
///     memory block, so the wait is bounded by a block measurement;
///   - the application's sensor poll = one short segment.
/// When a segment ends, the highest-priority ready process is dispatched
/// (larger number = more important), so a higher-priority arrival
/// effectively preempts at the next segment boundary.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"

namespace rasc::sim {

/// One non-preemptible unit of CPU work.
struct Segment {
  Duration duration = 0;
  /// Invoked when the segment finishes (simulated time has advanced).
  std::function<void()> on_complete;
};

/// A schedulable entity.  The CPU calls next_segment() whenever it grants
/// the process the core; returning std::nullopt parks the process (it must
/// be made ready again to run).  Processes are owned by the scenario and
/// must outlive the Cpu.
class Process {
 public:
  Process(std::string name, int priority) : name_(std::move(name)), priority_(priority) {}
  virtual ~Process() = default;

  virtual std::optional<Segment> next_segment() = 0;

  const std::string& name() const noexcept { return name_; }
  int priority() const noexcept { return priority_; }
  void set_priority(int p) noexcept { priority_ = p; }

 private:
  std::string name_;
  int priority_;
};

/// Record of one executed segment (for timelines and availability stats).
struct ExecutionRecord {
  Time start;
  Time end;
  std::string process;
};

class Cpu {
 public:
  explicit Cpu(Simulator& sim) : sim_(sim) {}

  /// Add a process to the ready set (no-op if already ready) and dispatch
  /// as soon as the core is free.
  void make_ready(Process& p);

  /// Remove from the ready set without running (e.g. task cancelled).  A
  /// currently-running segment still completes.
  void remove(Process& p);

  bool busy() const noexcept { return running_ != nullptr; }
  Process* running() const noexcept { return running_; }
  /// End time of the current segment (valid when busy()).
  Time busy_until() const noexcept { return busy_until_; }

  /// Total CPU time consumed per process name.  At most
  /// kMaxConsumedEntries distinct names are tracked; beyond that, time is
  /// aggregated under "(other)" so dynamically-named processes cannot grow
  /// the map without bound in long-running scenarios.
  Duration consumed(const std::string& name) const;

  /// Enable recording of every executed segment (the legacy
  /// ExecutionRecord path, kept for API compatibility — new code should
  /// attach an obs::TraceSink to the Simulator instead, which receives a
  /// complete span per segment regardless of this switch).
  ///
  /// The record log is bounded by set_trace_capacity(); unbounded by
  /// default.  In long-running scenarios set a capacity: once full, the
  /// OLDEST records are evicted first.
  void enable_trace(bool on) { trace_enabled_ = on; }
  const std::vector<ExecutionRecord>& trace() const noexcept { return trace_; }

  /// Cap the ExecutionRecord log at `cap` entries (0 = unbounded), with
  /// oldest-first eviction.  Evicted records are counted.
  void set_trace_capacity(std::size_t cap);
  std::size_t trace_evicted() const noexcept { return trace_evicted_; }

  /// Track label used for segment spans on an attached obs::TraceSink
  /// (default "cpu"; a Device sets "cpu/<device-id>" so multi-device
  /// simulations keep one row per core).
  void set_trace_track(std::string track) { trace_track_ = std::move(track); }
  const std::string& trace_track() const noexcept { return trace_track_; }

  static constexpr std::size_t kMaxConsumedEntries = 4096;

 private:
  void schedule_dispatch();
  void dispatch();
  void record_segment(Time start, const Process& p, Duration duration);

  Simulator& sim_;
  std::vector<Process*> ready_;
  Process* running_ = nullptr;
  Time busy_until_ = 0;
  bool dispatch_pending_ = false;
  std::unordered_map<std::string, Duration> consumed_;
  /// Processes waiting for the core while it is busy: arrival time of the
  /// make_ready that found the CPU occupied, for preemption-wait spans.
  std::unordered_map<const Process*, Time> ready_since_;
  bool trace_enabled_ = false;
  std::vector<ExecutionRecord> trace_;
  std::size_t trace_capacity_ = 0;
  std::size_t trace_evicted_ = 0;
  std::string trace_track_ = "cpu";
};

}  // namespace rasc::sim
