#pragma once
/// \file cpu_model.hpp
/// Calibrated timing model of the prover CPU.  The default constants are
/// fitted to the paper's ODROID-XU4 numbers (Figure 2 and Section 2.4/2.5):
/// SHA-256 over 2 GB ~= 14 s, 100 MB ~= 0.9 s, 1 GB ~= 7 s, with signature
/// costs flat in input size.  Absolute values only need to be plausible;
/// the experiments depend on ratios and orders of magnitude.

#include <cstdint>

#include "src/crypto/hash.hpp"
#include "src/crypto/sig.hpp"
#include "src/sim/time.hpp"

namespace rasc::sim {

class CpuModel {
 public:
  /// Default: ODROID-XU4-calibrated.
  CpuModel() = default;

  /// Time to hash `bytes` bytes with `kind` (per-byte cost + fixed setup).
  Duration hash_time(crypto::HashKind kind, std::uint64_t bytes) const;

  /// Time to produce / verify a signature over a fixed-size digest.
  Duration sign_time(crypto::SigKind kind) const;
  Duration verify_time(crypto::SigKind kind) const;

  /// Time to MAC `bytes` bytes with HMAC of the given hash (inner hash
  /// dominates; outer hash folded into the fixed term).
  Duration mac_time(crypto::HashKind kind, std::uint64_t bytes) const;

  /// Time to MAC `bytes` bytes with AES-CBC-MAC (the paper's
  /// encryption-based F; software AES on a Cortex-class core).
  Duration cbcmac_time(std::uint64_t bytes) const;

  /// memcpy-style block move (used by self-relocating malware).
  Duration copy_time(std::uint64_t bytes) const;

  /// Fixed scheduling overheads.
  Duration context_switch() const noexcept { return context_switch_; }
  Duration interrupt_latency() const noexcept { return interrupt_latency_; }

  /// Per-block bookkeeping during a measurement (lock syscall, order
  /// lookup, state save/restore when interruptible).
  Duration measurement_block_overhead() const noexcept { return block_overhead_; }

  // -- calibration knobs (ns per byte / ns per op) -------------------------
  void set_hash_ns_per_byte(crypto::HashKind kind, double ns_per_byte);
  void set_sign_cost(crypto::SigKind kind, Duration sign, Duration verify);
  void set_copy_ns_per_byte(double ns_per_byte) { copy_ns_per_byte_ = ns_per_byte; }
  /// Multiplier applied to hashing/MAC time only.  Lets a scenario model a
  /// memory N times larger than what is physically allocated in the host
  /// process (e.g. the paper's 1 GB prover backed by 16 MB of real bytes).
  void set_hash_time_scale(double scale) { hash_time_scale_ = scale; }
  double hash_time_scale() const noexcept { return hash_time_scale_; }
  void set_context_switch(Duration d) { context_switch_ = d; }
  void set_interrupt_latency(Duration d) { interrupt_latency_ = d; }
  void set_measurement_block_overhead(Duration d) { block_overhead_ = d; }

  double hash_ns_per_byte(crypto::HashKind kind) const;

 private:
  // Per-byte hashing costs (ns/byte), ODROID-XU4 ballpark.
  double sha256_nspb_ = 7.0;   // 2 GB -> ~14.0 s ; 1 GB -> ~7.0 s
  double sha512_nspb_ = 4.6;   // 64-bit pipeline: faster per byte
  double blake2b_nspb_ = 3.6;  // paper: well suited for embedded
  double blake2s_nspb_ = 5.4;
  Duration hash_setup_ = 2 * kMicrosecond;
  double aes_cbcmac_nspb_ = 12.0;  // table-based software AES

  // Flat signature costs over a digest (sign, verify).
  Duration rsa1024_sign_ = 2700 * kMicrosecond;
  Duration rsa1024_verify_ = 130 * kMicrosecond;
  Duration rsa2048_sign_ = 17 * kMillisecond;
  Duration rsa2048_verify_ = 430 * kMicrosecond;
  Duration rsa4096_sign_ = 115 * kMillisecond;
  Duration rsa4096_verify_ = 1600 * kMicrosecond;
  Duration ecdsa160_sign_ = 1100 * kMicrosecond;
  Duration ecdsa160_verify_ = 2200 * kMicrosecond;
  Duration ecdsa224_sign_ = 1900 * kMicrosecond;
  Duration ecdsa224_verify_ = 3800 * kMicrosecond;
  Duration ecdsa256_sign_ = 2400 * kMicrosecond;
  Duration ecdsa256_verify_ = 4700 * kMicrosecond;

  double hash_time_scale_ = 1.0;
  double copy_ns_per_byte_ = 0.8;  // DRAM-to-DRAM copy
  Duration context_switch_ = 5 * kMicrosecond;
  Duration interrupt_latency_ = 1 * kMicrosecond;
  Duration block_overhead_ = 3 * kMicrosecond;
};

}  // namespace rasc::sim
