#include "src/sim/cpu.hpp"

#include <algorithm>

namespace rasc::sim {

void Cpu::make_ready(Process& p) {
  if (std::find(ready_.begin(), ready_.end(), &p) == ready_.end()) {
    ready_.push_back(&p);
    // The core is occupied: remember when this process started waiting so
    // the eventual dispatch can report the preemption wait.
    if (running_ != nullptr && ready_since_.find(&p) == ready_since_.end()) {
      ready_since_.emplace(&p, sim_.now());
    }
  }
  schedule_dispatch();
}

void Cpu::remove(Process& p) {
  ready_.erase(std::remove(ready_.begin(), ready_.end(), &p), ready_.end());
  ready_since_.erase(&p);
}

Duration Cpu::consumed(const std::string& name) const {
  const auto it = consumed_.find(name);
  return it == consumed_.end() ? 0 : it->second;
}

void Cpu::set_trace_capacity(std::size_t cap) {
  trace_capacity_ = cap;
  if (cap != 0 && trace_.size() > cap) {
    trace_evicted_ += trace_.size() - cap;
    trace_.erase(trace_.begin(),
                 trace_.begin() + static_cast<std::ptrdiff_t>(trace_.size() - cap));
  }
}

void Cpu::schedule_dispatch() {
  if (dispatch_pending_ || running_ != nullptr) return;
  dispatch_pending_ = true;
  sim_.schedule_at(sim_.now(), [this] {
    dispatch_pending_ = false;
    dispatch();
  });
}

void Cpu::record_segment(Time start, const Process& p, Duration duration) {
  // consumed_ is bounded: once kMaxConsumedEntries distinct names exist,
  // new names aggregate under "(other)".
  auto it = consumed_.find(p.name());
  if (it != consumed_.end()) {
    it->second += duration;
  } else if (consumed_.size() < kMaxConsumedEntries) {
    consumed_.emplace(p.name(), duration);
  } else {
    consumed_["(other)"] += duration;
  }

  if (trace_enabled_) {
    if (trace_capacity_ != 0 && trace_.size() >= trace_capacity_) {
      trace_.erase(trace_.begin());
      ++trace_evicted_;
    }
    trace_.push_back(ExecutionRecord{start, sim_.now(), p.name()});
  }

  if (auto* sink = sim_.trace_sink()) {
    sink->complete(start, duration, trace_track_, p.name());
  }
}

void Cpu::dispatch() {
  while (running_ == nullptr && !ready_.empty()) {
    // Highest priority wins; FIFO among equals (stable selection).
    auto best = ready_.begin();
    for (auto it = ready_.begin() + 1; it != ready_.end(); ++it) {
      if ((*it)->priority() > (*best)->priority()) best = it;
    }
    Process* p = *best;
    auto segment = p->next_segment();
    if (!segment) {
      // Parked: out of work until made ready again.
      ready_.erase(best);
      ready_since_.erase(p);
      continue;
    }
    running_ = p;
    busy_until_ = sim_.now() + segment->duration;
    const Time start = sim_.now();
    // Report how long this process waited for the core (segment-boundary
    // preemption latency, the paper's interrupt-latency axis).
    if (auto waited = ready_since_.find(p); waited != ready_since_.end()) {
      if (auto* sink = sim_.trace_sink()) {
        sink->complete(waited->second, start - waited->second, trace_track_ + "/wait",
                       p->name());
      }
      ready_since_.erase(waited);
    }
    sim_.schedule_at(busy_until_, [this, p, start, seg = std::move(*segment)]() mutable {
      record_segment(start, *p, seg.duration);
      running_ = nullptr;
      if (seg.on_complete) seg.on_complete();
      dispatch();
    });
    return;
  }
}

}  // namespace rasc::sim
