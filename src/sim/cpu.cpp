#include "src/sim/cpu.hpp"

#include <algorithm>

namespace rasc::sim {

void Cpu::make_ready(Process& p) {
  if (std::find(ready_.begin(), ready_.end(), &p) == ready_.end()) {
    ready_.push_back(&p);
  }
  schedule_dispatch();
}

void Cpu::remove(Process& p) {
  ready_.erase(std::remove(ready_.begin(), ready_.end(), &p), ready_.end());
}

Duration Cpu::consumed(const std::string& name) const {
  const auto it = consumed_.find(name);
  return it == consumed_.end() ? 0 : it->second;
}

void Cpu::schedule_dispatch() {
  if (dispatch_pending_ || running_ != nullptr) return;
  dispatch_pending_ = true;
  sim_.schedule_at(sim_.now(), [this] {
    dispatch_pending_ = false;
    dispatch();
  });
}

void Cpu::dispatch() {
  while (running_ == nullptr && !ready_.empty()) {
    // Highest priority wins; FIFO among equals (stable selection).
    auto best = ready_.begin();
    for (auto it = ready_.begin() + 1; it != ready_.end(); ++it) {
      if ((*it)->priority() > (*best)->priority()) best = it;
    }
    Process* p = *best;
    auto segment = p->next_segment();
    if (!segment) {
      // Parked: out of work until made ready again.
      ready_.erase(best);
      continue;
    }
    running_ = p;
    busy_until_ = sim_.now() + segment->duration;
    const Time start = sim_.now();
    sim_.schedule_at(busy_until_, [this, p, start, seg = std::move(*segment)]() mutable {
      consumed_[p->name()] += seg.duration;
      if (trace_enabled_) trace_.push_back(ExecutionRecord{start, sim_.now(), p->name()});
      running_ = nullptr;
      if (seg.on_complete) seg.on_complete();
      dispatch();
    });
    return;
  }
}

}  // namespace rasc::sim
