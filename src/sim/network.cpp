#include "src/sim/network.hpp"

#include <cmath>
#include <limits>

namespace rasc::sim {

namespace {

obs::TraceArg bytes_arg(std::size_t size) {
  return obs::arg("bytes", static_cast<std::uint64_t>(size));
}

}  // namespace

void Link::count(const char* metric) const {
  if (metrics_ != nullptr) metrics_->counter(metric).inc();
}

void Link::journal(obs::JournalEventKind kind, std::uint64_t msg_id, std::uint64_t b) {
  if (auto* j = sim_.journal()) {
    j->append(sim_.now(), journal_actor_.get(*j, config_.name), 0, 0, kind, msg_id, b);
  }
}

void Link::reset_counters() noexcept {
  sent_ = 0;
  delivered_ = 0;
  dropped_ = 0;
  duplicated_ = 0;
  corrupted_ = 0;
  reordered_ = 0;
  partition_dropped_ = 0;
}

Link::State Link::save_state() const noexcept {
  State s;
  s.rng = rng_.state();
  s.next_msg_id = next_msg_id_;
  s.sent = sent_;
  s.delivered = delivered_;
  s.dropped = dropped_;
  s.duplicated = duplicated_;
  s.corrupted = corrupted_;
  s.reordered = reordered_;
  s.partition_dropped = partition_dropped_;
  return s;
}

void Link::restore_state(const State& s) noexcept {
  rng_.set_state(s.rng);
  next_msg_id_ = s.next_msg_id;
  sent_ = s.sent;
  delivered_ = s.delivered;
  dropped_ = s.dropped;
  duplicated_ = s.duplicated;
  corrupted_ = s.corrupted;
  reordered_ = s.reordered;
  partition_dropped_ = s.partition_dropped;
}

bool Link::in_partition(Time t) const noexcept {
  for (const PartitionWindow& window : config_.partitions) {
    if (t >= window.start && t < window.end) return true;
  }
  return false;
}

Duration Link::transit_time(std::size_t bytes) {
  Duration transit = config_.base_latency;
  if (config_.jitter > 0) {
    // below(jitter + 1) would wrap to the forbidden below(0) at the type
    // maximum; saturate the bound instead (the draw is then in [0, max)).
    const Duration bound = config_.jitter < std::numeric_limits<Duration>::max()
                               ? config_.jitter + 1
                               : config_.jitter;
    transit += rng_.below(bound);
  }
  if (config_.bytes_per_second > 0 && bytes > 0) {
    const double exact = static_cast<double>(bytes) / config_.bytes_per_second *
                         static_cast<double>(kSecond);
    auto serialization = static_cast<Duration>(std::llround(exact));
    // Round to nearest with a 1 ns floor: truncation made small payloads
    // on fast links free and aliased distinct sizes to equal transits.
    if (serialization == 0) serialization = 1;
    transit += serialization;
  }
  return transit;
}

void Link::deliver_after(Duration transit, support::Bytes payload, Handler handler,
                         std::uint64_t msg_id) {
  if (auto* sink = sim_.trace_sink()) {
    sink->complete(sim_.now(), transit, "net", "net.transit", {bytes_arg(payload.size())});
  }
  ++in_flight_;
  sim_.schedule_in(transit, [this, token = std::weak_ptr<bool>(alive_), msg_id,
                             payload = std::move(payload),
                             handler = std::move(handler)]() mutable {
    if (token.expired()) return;  // link destroyed while in flight
    --in_flight_;
    ++delivered_;
    count("net.delivered");
    journal(obs::JournalEventKind::kLinkDeliver, msg_id, payload.size());
    handler(std::move(payload));
  });
}

void Link::send(support::Bytes payload, Handler on_delivery) {
  ++sent_;
  count("net.sent");
  const std::uint64_t msg_id = ++next_msg_id_;
  const Time sent_at = sim_.now();
  obs::TraceSink* sink = sim_.trace_sink();
  journal(obs::JournalEventKind::kLinkSend, msg_id, payload.size());

  if (in_partition(sent_at)) {
    ++dropped_;
    ++partition_dropped_;
    count("net.dropped");
    count("net.partition_dropped");
    if (sink != nullptr) {
      sink->instant(sent_at, "net", "net.partition_drop", {bytes_arg(payload.size())});
    }
    journal(obs::JournalEventKind::kLinkPartitionDrop, msg_id, payload.size());
    return;
  }
  if (rng_.chance(config_.drop_probability)) {
    ++dropped_;
    count("net.dropped");
    if (sink != nullptr) {
      sink->instant(sent_at, "net", "net.drop", {bytes_arg(payload.size())});
    }
    journal(obs::JournalEventKind::kLinkDrop, msg_id, payload.size());
    return;
  }

  if (!payload.empty() && rng_.chance(config_.corrupt_probability)) {
    // Flip at least one bit of one byte; position and flip pattern come
    // from the link RNG so corruption is reproducible from the seed.
    const std::size_t at = rng_.below(payload.size());
    payload[at] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
    ++corrupted_;
    count("net.corrupted");
    if (sink != nullptr) {
      sink->instant(sent_at, "net", "net.corrupt",
                    {obs::arg("offset", static_cast<std::uint64_t>(at))});
    }
    journal(obs::JournalEventKind::kLinkCorrupt, msg_id, at);
  }

  Duration transit = transit_time(payload.size());
  if (rng_.chance(config_.reorder_probability)) {
    transit += config_.reorder_delay;
    ++reordered_;
    count("net.reordered");
    if (sink != nullptr) sink->instant(sent_at, "net", "net.reorder");
    journal(obs::JournalEventKind::kLinkReorder, msg_id, config_.reorder_delay);
  }

  const bool duplicate = rng_.chance(config_.duplicate_probability);
  if (duplicate) {
    const Duration copy_transit = transit + transit_time(payload.size());
    ++duplicated_;
    count("net.duplicated");
    if (sink != nullptr) sink->instant(sent_at, "net", "net.duplicate");
    journal(obs::JournalEventKind::kLinkDuplicate, msg_id, copy_transit);
    // The copy rides behind the original with its own second transit.
    deliver_after(copy_transit, payload, on_delivery, msg_id);
  }
  deliver_after(transit, std::move(payload), std::move(on_delivery), msg_id);
}

}  // namespace rasc::sim
