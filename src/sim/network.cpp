#include "src/sim/network.hpp"

namespace rasc::sim {

void Link::send(support::Bytes payload, Handler on_delivery) {
  ++sent_;
  const Time sent_at = sim_.now();
  obs::TraceSink* sink = sim_.trace_sink();
  if (rng_.chance(config_.drop_probability)) {
    ++dropped_;
    if (sink != nullptr) {
      sink->instant(sent_at, "net", "net.drop",
                    {obs::arg("bytes", static_cast<std::uint64_t>(payload.size()))});
    }
    return;
  }
  Duration transit = config_.base_latency;
  if (config_.jitter > 0) transit += rng_.below(config_.jitter + 1);
  if (config_.bytes_per_second > 0) {
    transit += static_cast<Duration>(static_cast<double>(payload.size()) /
                                     config_.bytes_per_second * kSecond);
  }
  if (sink != nullptr) {
    sink->complete(sent_at, transit, "net", "net.transit",
                   {obs::arg("bytes", static_cast<std::uint64_t>(payload.size()))});
  }
  sim_.schedule_in(transit, [this, payload = std::move(payload),
                             handler = std::move(on_delivery)]() mutable {
    ++delivered_;
    handler(std::move(payload));
  });
}

}  // namespace rasc::sim
