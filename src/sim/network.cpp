#include "src/sim/network.hpp"

namespace rasc::sim {

void Link::send(support::Bytes payload, Handler on_delivery) {
  ++sent_;
  if (rng_.chance(config_.drop_probability)) {
    ++dropped_;
    return;
  }
  Duration transit = config_.base_latency;
  if (config_.jitter > 0) transit += rng_.below(config_.jitter + 1);
  if (config_.bytes_per_second > 0) {
    transit += static_cast<Duration>(static_cast<double>(payload.size()) /
                                     config_.bytes_per_second * kSecond);
  }
  sim_.schedule_in(transit, [this, payload = std::move(payload),
                             handler = std::move(on_delivery)]() mutable {
    ++delivered_;
    handler(std::move(payload));
  });
}

}  // namespace rasc::sim
