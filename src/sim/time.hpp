#pragma once
/// \file time.hpp
/// Virtual time for the discrete-event device simulator.  One tick is one
/// nanosecond; 64 bits cover ~584 years of simulated time, ample for any
/// attestation schedule.

#include <cstdint>
#include <string>

namespace rasc::sim {

using Time = std::uint64_t;      ///< absolute simulated time, ns
using Duration = std::uint64_t;  ///< simulated time span, ns

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double to_millis(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Human-readable rendering ("1.500 s", "3.2 ms", "750 ns").
std::string format_duration(Duration d);

}  // namespace rasc::sim
