#include "src/sim/cpu_model.hpp"

#include <stdexcept>

namespace rasc::sim {

double CpuModel::hash_ns_per_byte(crypto::HashKind kind) const {
  switch (kind) {
    case crypto::HashKind::kSha256: return sha256_nspb_;
    case crypto::HashKind::kSha512: return sha512_nspb_;
    case crypto::HashKind::kBlake2b: return blake2b_nspb_;
    case crypto::HashKind::kBlake2s: return blake2s_nspb_;
  }
  throw std::invalid_argument("unknown HashKind");
}

void CpuModel::set_hash_ns_per_byte(crypto::HashKind kind, double ns_per_byte) {
  switch (kind) {
    case crypto::HashKind::kSha256: sha256_nspb_ = ns_per_byte; return;
    case crypto::HashKind::kSha512: sha512_nspb_ = ns_per_byte; return;
    case crypto::HashKind::kBlake2b: blake2b_nspb_ = ns_per_byte; return;
    case crypto::HashKind::kBlake2s: blake2s_nspb_ = ns_per_byte; return;
  }
  throw std::invalid_argument("unknown HashKind");
}

Duration CpuModel::hash_time(crypto::HashKind kind, std::uint64_t bytes) const {
  return hash_setup_ + static_cast<Duration>(hash_time_scale_ * hash_ns_per_byte(kind) *
                                             static_cast<double>(bytes));
}

Duration CpuModel::cbcmac_time(std::uint64_t bytes) const {
  return hash_setup_ + static_cast<Duration>(hash_time_scale_ * aes_cbcmac_nspb_ *
                                             static_cast<double>(bytes));
}

Duration CpuModel::mac_time(crypto::HashKind kind, std::uint64_t bytes) const {
  // HMAC = inner hash over (pad || data) + outer hash over a digest; the
  // outer contribution is one extra block, folded into a doubled setup.
  return hash_time(kind, bytes) + hash_setup_;
}

Duration CpuModel::sign_time(crypto::SigKind kind) const {
  switch (kind) {
    case crypto::SigKind::kRsa1024: return rsa1024_sign_;
    case crypto::SigKind::kRsa2048: return rsa2048_sign_;
    case crypto::SigKind::kRsa4096: return rsa4096_sign_;
    case crypto::SigKind::kEcdsa160: return ecdsa160_sign_;
    case crypto::SigKind::kEcdsa224: return ecdsa224_sign_;
    case crypto::SigKind::kEcdsa256: return ecdsa256_sign_;
  }
  throw std::invalid_argument("unknown SigKind");
}

Duration CpuModel::verify_time(crypto::SigKind kind) const {
  switch (kind) {
    case crypto::SigKind::kRsa1024: return rsa1024_verify_;
    case crypto::SigKind::kRsa2048: return rsa2048_verify_;
    case crypto::SigKind::kRsa4096: return rsa4096_verify_;
    case crypto::SigKind::kEcdsa160: return ecdsa160_verify_;
    case crypto::SigKind::kEcdsa224: return ecdsa224_verify_;
    case crypto::SigKind::kEcdsa256: return ecdsa256_verify_;
  }
  throw std::invalid_argument("unknown SigKind");
}

void CpuModel::set_sign_cost(crypto::SigKind kind, Duration sign, Duration verify) {
  switch (kind) {
    case crypto::SigKind::kRsa1024: rsa1024_sign_ = sign; rsa1024_verify_ = verify; return;
    case crypto::SigKind::kRsa2048: rsa2048_sign_ = sign; rsa2048_verify_ = verify; return;
    case crypto::SigKind::kRsa4096: rsa4096_sign_ = sign; rsa4096_verify_ = verify; return;
    case crypto::SigKind::kEcdsa160: ecdsa160_sign_ = sign; ecdsa160_verify_ = verify; return;
    case crypto::SigKind::kEcdsa224: ecdsa224_sign_ = sign; ecdsa224_verify_ = verify; return;
    case crypto::SigKind::kEcdsa256: ecdsa256_sign_ = sign; ecdsa256_verify_ = verify; return;
  }
  throw std::invalid_argument("unknown SigKind");
}

Duration CpuModel::copy_time(std::uint64_t bytes) const {
  return static_cast<Duration>(copy_ns_per_byte_ * static_cast<double>(bytes)) + kMicrosecond;
}

}  // namespace rasc::sim
