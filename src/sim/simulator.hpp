#pragma once
/// \file simulator.hpp
/// Discrete-event simulator core: a virtual clock plus an ordered event
/// queue.  Everything in the device model (task arrivals, measurement
/// steps, network deliveries, malware moves) is an event.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/obs/journal.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/time.hpp"

namespace rasc::sim {

/// Handle used to cancel a scheduled event.  Default-constructed handles
/// are inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const noexcept { return alive_ && *alive_; }

  /// Cancel the event if still pending (idempotent).
  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now; earlier times are clamped
  /// to now).  Events at equal times fire in scheduling order.
  EventHandle schedule_at(Time t, Callback fn);

  /// Schedule `fn` after `delay`.
  EventHandle schedule_in(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue is empty or `limit` events fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run events with time <= t_end; afterwards now() == max(now, t_end).
  std::size_t run_until(Time t_end);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::size_t events_fired() const noexcept { return events_fired_; }

  /// Attach a trace sink (not owned; may be nullptr to detach).  All
  /// simulation components reach the sink through their Simulator, so one
  /// call instruments the whole device: CPU segments, memory locks,
  /// network transits, attestation phases.  The dispatcher itself samples
  /// queue depth onto the "sim" track every few thousand events.
  void set_trace_sink(obs::TraceSink* sink) noexcept { trace_ = sink; }
  obs::TraceSink* trace_sink() const noexcept { return trace_; }

  /// Attach a flight-recorder journal (not owned; nullptr to detach).
  /// Same plumbing pattern as the trace sink: components query
  /// `sim.journal()` at each event site, so the disabled path is one null
  /// check and the simulation is bit-identical with or without it.
  void set_journal(obs::EventJournal* journal) noexcept { journal_ = journal; }
  obs::EventJournal* journal() const noexcept { return journal_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool fire_next();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_fired_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::EventJournal* journal_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace rasc::sim
