#include "src/sim/simulator.hpp"

#include <cstdio>

namespace rasc::sim {

std::string format_duration(Duration d) {
  char buf[64];
  if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", to_seconds(d));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(d) / kMillisecond);
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3f us", static_cast<double>(d) / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu ns", static_cast<unsigned long long>(d));
  }
  return buf;
}

EventHandle Simulator::schedule_at(Time t, Callback fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    *ev.alive = false;
    now_ = ev.time;
    ++events_fired_;
    if (trace_ != nullptr && events_fired_ % 4096 == 0) {
      trace_->counter(now_, "sim", "sim.queue_depth",
                      static_cast<double>(queue_.size()));
    }
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(Time t_end) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Peek: skip cancelled entries without advancing time.
    const Event& top = queue_.top();
    if (!*top.alive) {
      queue_.pop();
      continue;
    }
    if (top.time > t_end) break;
    if (fire_next()) ++fired;
  }
  if (now_ < t_end) now_ = t_end;
  return fired;
}

}  // namespace rasc::sim
