#include "src/sim/memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasc::sim {

std::string actor_name(Actor actor) {
  switch (actor) {
    case Actor::kApplication: return "app";
    case Actor::kMalware: return "malware";
    case Actor::kMeasurement: return "mp";
    case Actor::kSystem: return "system";
  }
  return "?";
}

DeviceMemory::DeviceMemory(std::size_t size, std::size_t block_size)
    : block_size_(block_size) {
  if (block_size == 0 || size == 0 || size % block_size != 0) {
    throw std::invalid_argument("DeviceMemory: size must be a positive multiple of block_size");
  }
  data_.assign(size, 0);
  block_count_ = size / block_size;
  lock_words_.assign((block_count_ + kBitsPerWord - 1) / kBitsPerWord, 0);
  generations_.assign(block_count_, 0);
}

void DeviceMemory::check_range(std::size_t addr, std::size_t len) const {
  if (addr > data_.size() || len > data_.size() - addr) {
    throw std::out_of_range("DeviceMemory access out of range");
  }
}

support::ByteView DeviceMemory::read(std::size_t addr, std::size_t len) const {
  check_range(addr, len);
  return support::ByteView(data_.data() + addr, len);
}

support::ByteView DeviceMemory::block_view(std::size_t block) const {
  if (block >= block_count_) throw std::out_of_range("block index out of range");
  return support::ByteView(data_.data() + block * block_size_, block_size_);
}

void DeviceMemory::bump_generation(std::size_t first_block, std::size_t last_block) {
  for (std::size_t b = first_block; b <= last_block; ++b) {
    ++generations_[b];
    if (generation_observer_) generation_observer_(b);
  }
  ++global_generation_;
}

void DeviceMemory::append_write_record(const WriteRecord& record) {
  ++total_write_count_;
  if (record.blocked) ++blocked_write_count_;
  if (write_log_capacity_ != 0 && write_log_.size() >= write_log_capacity_) {
    // Drop the oldest half in one amortized move instead of shifting the
    // whole log on every append.
    const std::size_t drop = std::max<std::size_t>(1, write_log_capacity_ / 2);
    write_log_.erase(write_log_.begin(),
                     write_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_write_records_ += drop;
  }
  write_log_.push_back(record);
  if (write_observer_) write_observer_(record);
}

bool DeviceMemory::write(std::size_t addr, support::ByteView bytes, Time now, Actor actor) {
  if (bytes.empty()) return true;
  check_range(addr, bytes.size());
  const std::size_t first = block_of(addr);
  const std::size_t last = block_of(addr + bytes.size() - 1);
  bool any_locked = false;
  for (std::size_t b = first; b <= last; ++b) any_locked |= locked(b);
  for (std::size_t b = first; b <= last; ++b) {
    append_write_record(WriteRecord{now, b, actor, any_locked});
  }
  if (any_locked) return false;  // MPU rejection: contents (and generations) unchanged
  std::copy(bytes.begin(), bytes.end(), data_.begin() + static_cast<std::ptrdiff_t>(addr));
  bump_generation(first, last);
  return true;
}

bool DeviceMemory::zero_region(std::size_t addr, std::size_t len, Time now, Actor actor) {
  const support::Bytes zeros(len, 0);
  return write(addr, zeros, now, actor);
}

void DeviceMemory::load(support::ByteView image, std::size_t addr) {
  if (image.empty()) return;
  check_range(addr, image.size());
  std::copy(image.begin(), image.end(), data_.begin() + static_cast<std::ptrdiff_t>(addr));
  bump_generation(block_of(addr), block_of(addr + image.size() - 1));
}

std::uint64_t DeviceMemory::block_generation(std::size_t block) const {
  if (block >= block_count_) throw std::out_of_range("block_generation out of range");
  return generations_[block];
}

void DeviceMemory::notify_locks() {
  if (lock_observer_) lock_observer_(locked_count_);
}

void DeviceMemory::lock_block(std::size_t block) {
  if (block >= block_count_) throw std::out_of_range("lock_block out of range");
  const std::uint64_t bit = std::uint64_t{1} << (block % kBitsPerWord);
  std::uint64_t& word = lock_words_[block / kBitsPerWord];
  if (!(word & bit)) {
    word |= bit;
    ++locked_count_;
  }
  notify_locks();
}

void DeviceMemory::unlock_block(std::size_t block) {
  if (block >= block_count_) throw std::out_of_range("unlock_block out of range");
  const std::uint64_t bit = std::uint64_t{1} << (block % kBitsPerWord);
  std::uint64_t& word = lock_words_[block / kBitsPerWord];
  if (word & bit) {
    word &= ~bit;
    --locked_count_;
  }
  notify_locks();
}

bool DeviceMemory::locked(std::size_t block) const {
  if (block >= block_count_) throw std::out_of_range("locked out of range");
  return (lock_words_[block / kBitsPerWord] >> (block % kBitsPerWord)) & 1u;
}

void DeviceMemory::lock_all() {
  std::fill(lock_words_.begin(), lock_words_.end(), ~std::uint64_t{0});
  // Clear padding bits past block_count_ so popcount-style invariants hold.
  if (const std::size_t tail = block_count_ % kBitsPerWord; tail != 0) {
    lock_words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  locked_count_ = block_count_;
  notify_locks();
}

void DeviceMemory::unlock_all() {
  std::fill(lock_words_.begin(), lock_words_.end(), 0);
  locked_count_ = 0;
  notify_locks();
}

void DeviceMemory::clear_write_log() {
  write_log_.clear();
  dropped_write_records_ = 0;
  blocked_write_count_ = 0;
  total_write_count_ = 0;
}

void DeviceMemory::set_write_log_capacity(std::size_t capacity) {
  write_log_capacity_ = capacity;
  if (capacity != 0 && write_log_.size() > capacity) {
    const std::size_t drop = write_log_.size() - capacity;
    write_log_.erase(write_log_.begin(),
                     write_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_write_records_ += drop;
  }
}

}  // namespace rasc::sim
