#include "src/sim/memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasc::sim {

std::string actor_name(Actor actor) {
  switch (actor) {
    case Actor::kApplication: return "app";
    case Actor::kMalware: return "malware";
    case Actor::kMeasurement: return "mp";
    case Actor::kSystem: return "system";
  }
  return "?";
}

DeviceMemory::DeviceMemory(std::size_t size, std::size_t block_size)
    : block_size_(block_size) {
  if (block_size == 0 || size == 0 || size % block_size != 0) {
    throw std::invalid_argument("DeviceMemory: size must be a positive multiple of block_size");
  }
  data_.assign(size, 0);
  locks_.assign(size / block_size, false);
}

void DeviceMemory::check_range(std::size_t addr, std::size_t len) const {
  if (addr > data_.size() || len > data_.size() - addr) {
    throw std::out_of_range("DeviceMemory access out of range");
  }
}

support::ByteView DeviceMemory::read(std::size_t addr, std::size_t len) const {
  check_range(addr, len);
  return support::ByteView(data_.data() + addr, len);
}

support::ByteView DeviceMemory::block_view(std::size_t block) const {
  if (block >= block_count()) throw std::out_of_range("block index out of range");
  return support::ByteView(data_.data() + block * block_size_, block_size_);
}

bool DeviceMemory::write(std::size_t addr, support::ByteView bytes, Time now, Actor actor) {
  if (bytes.empty()) return true;
  check_range(addr, bytes.size());
  const std::size_t first = block_of(addr);
  const std::size_t last = block_of(addr + bytes.size() - 1);
  bool any_locked = false;
  for (std::size_t b = first; b <= last; ++b) any_locked |= locks_[b];
  for (std::size_t b = first; b <= last; ++b) {
    write_log_.push_back(WriteRecord{now, b, actor, any_locked});
    if (write_observer_) write_observer_(write_log_.back());
  }
  if (any_locked) return false;
  std::copy(bytes.begin(), bytes.end(), data_.begin() + static_cast<std::ptrdiff_t>(addr));
  return true;
}

bool DeviceMemory::zero_region(std::size_t addr, std::size_t len, Time now, Actor actor) {
  const support::Bytes zeros(len, 0);
  return write(addr, zeros, now, actor);
}

void DeviceMemory::load(support::ByteView image, std::size_t addr) {
  check_range(addr, image.size());
  std::copy(image.begin(), image.end(), data_.begin() + static_cast<std::ptrdiff_t>(addr));
}

void DeviceMemory::notify_locks() {
  if (lock_observer_) lock_observer_(locked_block_count());
}

void DeviceMemory::lock_block(std::size_t block) {
  if (block >= block_count()) throw std::out_of_range("lock_block out of range");
  locks_[block] = true;
  notify_locks();
}

void DeviceMemory::unlock_block(std::size_t block) {
  if (block >= block_count()) throw std::out_of_range("unlock_block out of range");
  locks_[block] = false;
  notify_locks();
}

bool DeviceMemory::locked(std::size_t block) const {
  if (block >= block_count()) throw std::out_of_range("locked out of range");
  return locks_[block];
}

void DeviceMemory::lock_all() {
  std::fill(locks_.begin(), locks_.end(), true);
  notify_locks();
}

void DeviceMemory::unlock_all() {
  std::fill(locks_.begin(), locks_.end(), false);
  notify_locks();
}

std::size_t DeviceMemory::locked_block_count() const noexcept {
  return static_cast<std::size_t>(std::count(locks_.begin(), locks_.end(), true));
}

std::size_t DeviceMemory::blocked_write_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(write_log_.begin(), write_log_.end(),
                    [](const WriteRecord& r) { return r.blocked; }));
}

}  // namespace rasc::sim
