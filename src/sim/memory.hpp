#pragma once
/// \file memory.hpp
/// Block-granular prover memory with an MPU-style lock model and a write
/// log.  Locks make blocks read-only (the HYDRA/seL4 capability mechanism
/// the paper's memory-locking solutions rely on); the write log lets the
/// consistency analyzer replay what changed during a measurement.
///
/// Every block also carries a monotonically increasing *generation
/// counter*, bumped whenever its contents change (write, zero_region,
/// load).  This models RATA-style hardware that records when memory was
/// last modified: a measurement layer can compare a block's generation
/// against the one it hashed last time and skip rehashing untouched
/// blocks (see attest::DigestCache).  MPU-rejected writes do NOT bump a
/// generation — the contents did not change.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/time.hpp"
#include "src/support/bytes.hpp"

namespace rasc::sim {

/// Who performed a memory access (for the write log and lock bypass:
/// the measurement process itself never writes attested memory).
enum class Actor : std::uint8_t {
  kApplication,
  kMalware,
  kMeasurement,
  kSystem,
};

/// Short label for logs and traces ("app", "malware", "mp", "system").
std::string actor_name(Actor actor);

struct WriteRecord {
  Time time;
  std::size_t block;
  Actor actor;
  bool blocked;  ///< true if the MPU rejected the write (block locked)
};

class DeviceMemory {
 public:
  /// `size` must be a positive multiple of `block_size`.
  DeviceMemory(std::size_t size, std::size_t block_size);

  std::size_t size() const noexcept { return data_.size(); }
  std::size_t block_size() const noexcept { return block_size_; }
  std::size_t block_count() const noexcept { return block_count_; }

  std::size_t block_of(std::size_t addr) const noexcept { return addr / block_size_; }

  // -- data access ----------------------------------------------------------
  support::ByteView read(std::size_t addr, std::size_t len) const;
  support::ByteView block_view(std::size_t block) const;

  /// Attempt a write at `now` by `actor`.  Fails atomically (no partial
  /// write, returns false, logs a blocked record per touched block) if any
  /// touched block is locked.
  bool write(std::size_t addr, support::ByteView bytes, Time now, Actor actor);

  /// Zero a whole region (the paper's D-region policy before measuring).
  bool zero_region(std::size_t addr, std::size_t len, Time now, Actor actor);

  /// Full copy of memory contents (golden images, snapshots).
  support::Bytes snapshot() const { return data_; }

  /// Restore contents without logging (test setup / device provisioning).
  /// Still bumps the touched blocks' generations: the contents changed.
  void load(support::ByteView image, std::size_t addr = 0);

  // -- generations -------------------------------------------------------------
  /// Content generation of one block: starts at 0, +1 per content change.
  std::uint64_t block_generation(std::size_t block) const;
  /// Global generation: bumped once per mutating operation that changed at
  /// least one block.  Cheap "anything changed since X?" check.
  std::uint64_t generation() const noexcept { return global_generation_; }

  // -- MPU locks --------------------------------------------------------------
  void lock_block(std::size_t block);
  void unlock_block(std::size_t block);
  bool locked(std::size_t block) const;
  void lock_all();
  void unlock_all();
  /// Maintained counter — O(1), not a scan.
  std::size_t locked_block_count() const noexcept { return locked_count_; }

  // -- observability -----------------------------------------------------------
  /// Invoked after every lock-state change with the new locked-block
  /// count (per-block and bulk operations alike).  The Device wires this
  /// to the trace sink as a "mem.locked_blocks" counter series, making
  /// each locking policy's t_s/t_e/t_r transitions visible on the
  /// timeline.
  using LockObserver = std::function<void(std::size_t locked_blocks)>;
  void set_lock_observer(LockObserver observer) { lock_observer_ = std::move(observer); }

  /// Invoked for every write-log record as it is appended (one per
  /// touched block, including MPU-rejected writes).
  using WriteObserver = std::function<void(const WriteRecord&)>;
  void set_write_observer(WriteObserver observer) {
    write_observer_ = std::move(observer);
  }

  /// Invoked once per block whose *content* actually changed (write,
  /// zero_region, load) — i.e. exactly when that block's generation is
  /// bumped, so MPU-rejected writes never fire it.  This is the RATA-style
  /// last-modified signal the Merkle measurement layer subscribes to
  /// (mtree::IncrementalTree::note_block_changed): it turns dirty-block
  /// discovery from an O(n) generation scan into O(writes).
  using GenerationObserver = std::function<void(std::size_t block)>;
  void set_generation_observer(GenerationObserver observer) {
    generation_observer_ = std::move(observer);
  }

  // -- write log ---------------------------------------------------------------
  /// Oldest-first; bounded at write_log_capacity() records (the oldest
  /// half is dropped on overflow so long campaigns stop growing memory).
  /// The running counters below are NOT affected by truncation.
  const std::vector<WriteRecord>& write_log() const noexcept { return write_log_; }
  void clear_write_log();
  /// Maximum records retained; 0 = unbounded.  Lowering the capacity
  /// truncates an over-full log immediately (oldest records first).
  void set_write_log_capacity(std::size_t capacity);
  std::size_t write_log_capacity() const noexcept { return write_log_capacity_; }
  /// Records dropped from the log by the capacity bound since the last
  /// clear_write_log().
  std::size_t dropped_write_records() const noexcept { return dropped_write_records_; }

  /// Running counters since the log was last cleared (availability
  /// metrics for the locking mechanisms).  Maintained on append — O(1)
  /// and immune to ring-buffer truncation.
  std::size_t blocked_write_count() const noexcept { return blocked_write_count_; }
  std::size_t total_write_count() const noexcept { return total_write_count_; }

 private:
  void check_range(std::size_t addr, std::size_t len) const;

  void notify_locks();
  void append_write_record(const WriteRecord& record);
  void bump_generation(std::size_t first_block, std::size_t last_block);

  static constexpr std::size_t kBitsPerWord = 64;
  static constexpr std::size_t kDefaultWriteLogCapacity = 1u << 18;

  std::size_t block_size_;
  std::size_t block_count_ = 0;
  support::Bytes data_;
  /// Word-packed lock bitset (bit b of word b/64 = block b locked) with a
  /// maintained population count.
  std::vector<std::uint64_t> lock_words_;
  std::size_t locked_count_ = 0;
  std::vector<std::uint64_t> generations_;
  std::uint64_t global_generation_ = 0;
  std::vector<WriteRecord> write_log_;
  std::size_t write_log_capacity_ = kDefaultWriteLogCapacity;
  std::size_t dropped_write_records_ = 0;
  std::size_t blocked_write_count_ = 0;
  std::size_t total_write_count_ = 0;
  LockObserver lock_observer_;
  WriteObserver write_observer_;
  GenerationObserver generation_observer_;
};

}  // namespace rasc::sim
