#pragma once
/// \file memory.hpp
/// Block-granular prover memory with an MPU-style lock model and a write
/// log.  Locks make blocks read-only (the HYDRA/seL4 capability mechanism
/// the paper's memory-locking solutions rely on); the write log lets the
/// consistency analyzer replay what changed during a measurement.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/time.hpp"
#include "src/support/bytes.hpp"

namespace rasc::sim {

/// Who performed a memory access (for the write log and lock bypass:
/// the measurement process itself never writes attested memory).
enum class Actor : std::uint8_t {
  kApplication,
  kMalware,
  kMeasurement,
  kSystem,
};

/// Short label for logs and traces ("app", "malware", "mp", "system").
std::string actor_name(Actor actor);

struct WriteRecord {
  Time time;
  std::size_t block;
  Actor actor;
  bool blocked;  ///< true if the MPU rejected the write (block locked)
};

class DeviceMemory {
 public:
  /// `size` must be a positive multiple of `block_size`.
  DeviceMemory(std::size_t size, std::size_t block_size);

  std::size_t size() const noexcept { return data_.size(); }
  std::size_t block_size() const noexcept { return block_size_; }
  std::size_t block_count() const noexcept { return locks_.size(); }

  std::size_t block_of(std::size_t addr) const noexcept { return addr / block_size_; }

  // -- data access ----------------------------------------------------------
  support::ByteView read(std::size_t addr, std::size_t len) const;
  support::ByteView block_view(std::size_t block) const;

  /// Attempt a write at `now` by `actor`.  Fails atomically (no partial
  /// write, returns false, logs a blocked record per touched block) if any
  /// touched block is locked.
  bool write(std::size_t addr, support::ByteView bytes, Time now, Actor actor);

  /// Zero a whole region (the paper's D-region policy before measuring).
  bool zero_region(std::size_t addr, std::size_t len, Time now, Actor actor);

  /// Full copy of memory contents (golden images, snapshots).
  support::Bytes snapshot() const { return data_; }

  /// Restore contents without logging (test setup / device provisioning).
  void load(support::ByteView image, std::size_t addr = 0);

  // -- MPU locks --------------------------------------------------------------
  void lock_block(std::size_t block);
  void unlock_block(std::size_t block);
  bool locked(std::size_t block) const;
  void lock_all();
  void unlock_all();
  std::size_t locked_block_count() const noexcept;

  // -- observability -----------------------------------------------------------
  /// Invoked after every lock-state change with the new locked-block
  /// count (per-block and bulk operations alike).  The Device wires this
  /// to the trace sink as a "mem.locked_blocks" counter series, making
  /// each locking policy's t_s/t_e/t_r transitions visible on the
  /// timeline.
  using LockObserver = std::function<void(std::size_t locked_blocks)>;
  void set_lock_observer(LockObserver observer) { lock_observer_ = std::move(observer); }

  /// Invoked for every write-log record as it is appended (one per
  /// touched block, including MPU-rejected writes).
  using WriteObserver = std::function<void(const WriteRecord&)>;
  void set_write_observer(WriteObserver observer) {
    write_observer_ = std::move(observer);
  }

  // -- write log ---------------------------------------------------------------
  const std::vector<WriteRecord>& write_log() const noexcept { return write_log_; }
  void clear_write_log() { write_log_.clear(); }
  /// Count of rejected writes since the log was last cleared (availability
  /// metric for the locking mechanisms).
  std::size_t blocked_write_count() const noexcept;

 private:
  void check_range(std::size_t addr, std::size_t len) const;

  void notify_locks();

  std::size_t block_size_;
  support::Bytes data_;
  std::vector<bool> locks_;
  std::vector<WriteRecord> write_log_;
  LockObserver lock_observer_;
  WriteObserver write_observer_;
};

}  // namespace rasc::sim
