#pragma once
/// \file network.hpp
/// Point-to-point link between verifier and prover with latency, jitter,
/// serialization delay and a deterministic fault model — loss, duplication,
/// reordering, payload corruption and timed partition windows — enough to
/// model the paper's networking delays (Fig. 1 deferral), SeED's
/// dropped-response false positives, and the lossy-fleet scenarios the
/// reliable session layer (attest::ReliableSession) is built to survive.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/obs/journal.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/bytes.hpp"
#include "src/support/rng.hpp"

namespace rasc::sim {

/// Total outage interval [start, end): every message *sent* inside the
/// window is dropped (messages already in flight still arrive — the model
/// is a sender-side blackout, e.g. a gateway reboot).
struct PartitionWindow {
  Time start = 0;
  Time end = 0;
};

struct LinkConfig {
  /// Label for observability (journal actor, e.g. "vrf->prv").  Links with
  /// distinct names stay distinguishable in one journal.
  std::string name = "net";
  Duration base_latency = 2 * kMillisecond;
  Duration jitter = 500 * kMicrosecond;  ///< uniform extra delay in [0, jitter]
  double drop_probability = 0.0;
  /// Probability that a delivered message arrives twice; the duplicate
  /// takes an independently drawn second transit after the original.
  double duplicate_probability = 0.0;
  /// Probability that one byte of the payload is flipped in transit (the
  /// flip is drawn from the link RNG, so runs are reproducible).
  double corrupt_probability = 0.0;
  /// Probability that a message is held back by `reorder_delay`, letting
  /// later messages overtake it.
  double reorder_probability = 0.0;
  Duration reorder_delay = 10 * kMillisecond;
  double bytes_per_second = 1e6;  ///< serialization rate (1 MB/s default)
  std::uint64_t seed = 0x11ce;
  /// Timed blackout windows (see PartitionWindow); checked at send time.
  std::vector<PartitionWindow> partitions;
};

class Link {
 public:
  using Handler = std::function<void(support::Bytes)>;

  Link(Simulator& sim, LinkConfig config = {})
      : sim_(sim), config_(config), rng_(config.seed) {}

  /// Queue a message; the handler fires after the simulated transit time
  /// for every delivered copy (possibly twice under duplication, possibly
  /// with a flipped byte under corruption) unless the message is dropped.
  /// In-flight deliveries hold only a weak reference to the link, so
  /// destroying a Link cancels them instead of dereferencing freed memory.
  /// Each send is assigned a per-link message id (1, 2, ...) that tags
  /// every journal event of its fate, so a flight recording names the
  /// exact message that was dropped/duplicated/corrupted.
  void send(support::Bytes payload, Handler on_delivery);

  std::size_t sent() const noexcept { return sent_; }
  /// Delivered handler invocations; duplicates count once each, so after
  /// the queue drains: delivered() == sent() - dropped() + duplicated().
  std::size_t delivered() const noexcept { return delivered_; }
  std::size_t dropped() const noexcept { return dropped_; }
  std::size_t duplicated() const noexcept { return duplicated_; }
  std::size_t corrupted() const noexcept { return corrupted_; }
  std::size_t reordered() const noexcept { return reordered_; }
  /// Subset of dropped(): losses caused by a partition window.
  std::size_t partition_dropped() const noexcept { return partition_dropped_; }

  /// Zero every per-fault counter (sent/delivered/dropped/duplicated/
  /// corrupted/reordered/partition_dropped) so a harness reusing one link
  /// across trials can assert the delivered == sent - dropped + duplicated
  /// invariant per trial instead of cumulatively.  Message ids keep
  /// counting up (they tag journal events, and a restart would alias
  /// fates across trials); the fault RNG is likewise not rewound.
  void reset_counters() noexcept;

  /// Attach a metrics registry (not owned; nullptr to detach).  The link
  /// then accounts "net.sent", "net.delivered", "net.dropped",
  /// "net.duplicated", "net.corrupted", "net.reordered" and
  /// "net.partition_dropped".
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  const LinkConfig& config() const noexcept { return config_; }

  /// Deliveries scheduled but not yet fired.  A link is quiescent (safe to
  /// hibernate) only when this is zero; tearing it down earlier would
  /// silently cancel in-flight messages and change delivery outcomes.
  std::size_t in_flight() const noexcept { return in_flight_; }

  /// Serializable fault-model state: the RNG position, the message-id
  /// counter, and every lifetime fault counter.  Restoring a snapshot into
  /// a freshly constructed Link (same config) resumes the fault stream
  /// exactly, so the fates of all future messages are unchanged.
  struct State {
    support::Xoshiro256::State rng{};
    std::uint64_t next_msg_id = 0;
    std::size_t sent = 0;
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    std::size_t duplicated = 0;
    std::size_t corrupted = 0;
    std::size_t reordered = 0;
    std::size_t partition_dropped = 0;
  };

  State save_state() const noexcept;
  void restore_state(const State& s) noexcept;

 private:
  /// base latency + jitter draw + rounded-to-nearest serialization delay
  /// (>= 1 ns for any nonzero payload so distinct sizes never alias to a
  /// free transit).
  Duration transit_time(std::size_t bytes);
  bool in_partition(Time t) const noexcept;
  void deliver_after(Duration transit, support::Bytes payload, Handler handler,
                     std::uint64_t msg_id);
  void count(const char* metric) const;
  void journal(obs::JournalEventKind kind, std::uint64_t msg_id, std::uint64_t b);

  Simulator& sim_;
  LinkConfig config_;
  support::Xoshiro256 rng_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t sent_ = 0;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
  std::size_t duplicated_ = 0;
  std::size_t corrupted_ = 0;
  std::size_t reordered_ = 0;
  std::size_t partition_dropped_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t next_msg_id_ = 0;
  obs::ActorId journal_actor_;
  /// Lifetime token observed (weakly) by in-flight delivery events.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace rasc::sim
