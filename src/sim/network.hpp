#pragma once
/// \file network.hpp
/// Point-to-point link between verifier and prover with latency, jitter,
/// serialization delay and loss — enough to model the paper's networking
/// delays (Fig. 1 deferral) and SeED's dropped-response false positives.

#include <cstdint>
#include <functional>

#include "src/sim/simulator.hpp"
#include "src/support/bytes.hpp"
#include "src/support/rng.hpp"

namespace rasc::sim {

struct LinkConfig {
  Duration base_latency = 2 * kMillisecond;
  Duration jitter = 500 * kMicrosecond;  ///< uniform extra delay in [0, jitter]
  double drop_probability = 0.0;
  double bytes_per_second = 1e6;  ///< serialization rate (1 MB/s default)
  std::uint64_t seed = 0x11ce;
};

class Link {
 public:
  using Handler = std::function<void(support::Bytes)>;

  Link(Simulator& sim, LinkConfig config = {})
      : sim_(sim), config_(config), rng_(config.seed) {}

  /// Queue a message; the handler fires after the simulated transit time
  /// unless the message is dropped.
  void send(support::Bytes payload, Handler on_delivery);

  std::size_t sent() const noexcept { return sent_; }
  std::size_t delivered() const noexcept { return delivered_; }
  std::size_t dropped() const noexcept { return dropped_; }

  const LinkConfig& config() const noexcept { return config_; }

 private:
  Simulator& sim_;
  LinkConfig config_;
  support::Xoshiro256 rng_;
  std::size_t sent_ = 0;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace rasc::sim
