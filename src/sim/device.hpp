#pragma once
/// \file device.hpp
/// The simulated prover: memory + CPU + timing model + the ROM-protected
/// attestation key (SMART's hard-wired access rule is modeled by the key
/// simply not being reachable from application/malware code).

#include <memory>
#include <string>

#include "src/sim/cpu.hpp"
#include "src/sim/cpu_model.hpp"
#include "src/sim/memory.hpp"
#include "src/sim/simulator.hpp"

namespace rasc::sim {

struct DeviceConfig {
  std::string id = "prv-0";
  std::size_t memory_size = 1 << 20;  ///< 1 MiB default
  std::size_t block_size = 4096;
  support::Bytes attestation_key;  ///< shared symmetric key with Vrf
};

class Device {
 public:
  Device(Simulator& sim, DeviceConfig config)
      : sim_(sim),
        config_(std::move(config)),
        memory_(config_.memory_size, config_.block_size),
        cpu_(sim) {
    // Observability wiring: one trace row per component, labeled by
    // device id so multi-device simulations stay readable.  All hooks are
    // no-ops until a sink is attached to the simulator.
    cpu_.set_trace_track("cpu/" + config_.id);
    memory_.set_lock_observer([this](std::size_t locked) {
      if (auto* sink = sim_.trace_sink()) {
        sink->counter(sim_.now(), "mem/" + config_.id, "mem.locked_blocks",
                      static_cast<double>(locked));
      }
    });
    memory_.set_write_observer([this](const WriteRecord& record) {
      if (!record.blocked) return;  // admitted writes are too hot to trace
      if (auto* sink = sim_.trace_sink()) {
        sink->instant(record.time, "mem/" + config_.id, "mem.blocked_write",
                      {obs::arg("block", static_cast<std::uint64_t>(record.block)),
                       obs::arg("actor", actor_name(record.actor))});
      }
    });
  }

  Simulator& sim() noexcept { return sim_; }
  const std::string& id() const noexcept { return config_.id; }
  DeviceMemory& memory() noexcept { return memory_; }
  const DeviceMemory& memory() const noexcept { return memory_; }
  Cpu& cpu() noexcept { return cpu_; }
  CpuModel& model() noexcept { return model_; }
  const CpuModel& model() const noexcept { return model_; }
  const support::Bytes& attestation_key() const noexcept { return config_.attestation_key; }

 private:
  Simulator& sim_;
  DeviceConfig config_;
  DeviceMemory memory_;
  CpuModel model_;
  Cpu cpu_;
};

}  // namespace rasc::sim
