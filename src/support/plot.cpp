#include "src/support/plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rasc::support {

namespace {
constexpr char kGlyphs[] = "*o+x#@%&sd";

double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(std::max(v, 1e-300));
}
}  // namespace

std::string render_plot(const std::vector<Series>& series, const PlotOptions& opt) {
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double tx = transform(s.x[i], opt.log_x);
      const double ty = transform(s.y[i], opt.log_y);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty);
      ymax = std::max(ymax, ty);
    }
  }
  if (!(xmin <= xmax) || !(ymin <= ymax)) return "(empty plot)\n";
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(opt.height),
                                std::string(static_cast<std::size_t>(opt.width), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double tx = transform(s.x[i], opt.log_x);
      const double ty = transform(s.y[i], opt.log_y);
      int col = static_cast<int>(std::lround((tx - xmin) / (xmax - xmin) * (opt.width - 1)));
      int row = static_cast<int>(std::lround((ty - ymin) / (ymax - ymin) * (opt.height - 1)));
      col = std::clamp(col, 0, opt.width - 1);
      row = std::clamp(row, 0, opt.height - 1);
      // Row 0 of the grid is the top of the chart.
      grid[static_cast<std::size_t>(opt.height - 1 - row)][static_cast<std::size_t>(col)] = glyph;
    }
  }

  auto fmt_tick = [](double v, bool log_scale) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", log_scale ? std::pow(10.0, v) : v);
    return std::string(buf);
  };

  std::string out;
  if (!opt.y_label.empty()) out += opt.y_label + "\n";
  for (int r = 0; r < opt.height; ++r) {
    std::string prefix = "          ";
    if (r == 0) {
      prefix = fmt_tick(ymax, opt.log_y);
      prefix.resize(10, ' ');
    } else if (r == opt.height - 1) {
      prefix = fmt_tick(ymin, opt.log_y);
      prefix.resize(10, ' ');
    }
    out += prefix + "|" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  out += std::string(10, ' ') + "+" + std::string(static_cast<std::size_t>(opt.width), '-') + "\n";
  std::string xticks = std::string(11, ' ') + fmt_tick(xmin, opt.log_x);
  std::string right = fmt_tick(xmax, opt.log_x);
  const std::size_t pad_to = 11 + static_cast<std::size_t>(opt.width) - right.size();
  if (xticks.size() < pad_to) xticks.append(pad_to - xticks.size(), ' ');
  xticks += right;
  out += xticks + "\n";
  if (!opt.x_label.empty()) out += std::string(11, ' ') + opt.x_label + "\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += "  ";
    out += kGlyphs[si % (sizeof(kGlyphs) - 1)];
    out += " = " + series[si].name + "\n";
  }
  return out;
}

}  // namespace rasc::support
