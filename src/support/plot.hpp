#pragma once
/// \file plot.hpp
/// Terminal line-plot renderer for figure-style benchmark output.
/// Renders one or more (x, y) series on a shared log/linear grid so the
/// *shape* of a paper figure (linearity, flatness, crossover) is visible
/// directly in the bench output.

#include <string>
#include <vector>

namespace rasc::support {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  int width = 72;          ///< plot area columns
  int height = 20;         ///< plot area rows
  bool log_x = false;
  bool log_y = false;
  std::string x_label;
  std::string y_label;
};

/// Render series as an ASCII scatter/line chart; each series is drawn with
/// its own glyph and listed in a legend below the chart.
std::string render_plot(const std::vector<Series>& series, const PlotOptions& opt);

}  // namespace rasc::support
