#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random generators for *simulation* purposes
/// (event jitter, Monte-Carlo adversary moves).  Cryptographic randomness
/// lives in src/crypto/drbg.hpp; never use this generator for keys.

#include <array>
#include <cstdint>
#include <limits>

namespace rasc::support {

/// SplitMix64: used to expand a user seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** — fast, high-quality, deterministic PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Unbiased integer in [0, bound) via Lemire rejection; bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Raw generator state, for checkpoint/restore (fleet hibernation).
  using State = std::array<std::uint64_t, 4>;

  State state() const noexcept { return {s_[0], s_[1], s_[2], s_[3]}; }

  void set_state(const State& s) noexcept {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace rasc::support
