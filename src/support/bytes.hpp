#pragma once
/// \file bytes.hpp
/// Byte-buffer aliases and small utilities shared across the library.

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rasc::support {

/// Owning byte buffer used throughout the library.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning views.
using ByteView = std::span<const std::uint8_t>;
using MutableByteView = std::span<std::uint8_t>;

/// Build a byte buffer from a string literal / std::string payload.
Bytes to_bytes(std::string_view s);

/// Interpret a byte buffer as text (for tests and diagnostics).
std::string to_string(ByteView b);

/// Constant-time equality check: runs in time that depends only on the
/// lengths, never on the contents.  Returns false for mismatched lengths.
bool ct_equal(ByteView a, ByteView b) noexcept;

/// Best-effort secure wipe that the optimizer cannot elide.
void secure_wipe(MutableByteView b) noexcept;

/// Concatenate buffers (variadic helper for message construction).
Bytes concat(std::initializer_list<ByteView> parts);

/// Little/big-endian scalar (de)serialization helpers.
void put_u32_be(MutableByteView out, std::uint32_t v) noexcept;
void put_u64_be(MutableByteView out, std::uint64_t v) noexcept;
std::uint32_t get_u32_be(ByteView in) noexcept;
std::uint64_t get_u64_be(ByteView in) noexcept;
void put_u32_le(MutableByteView out, std::uint32_t v) noexcept;
void put_u64_le(MutableByteView out, std::uint64_t v) noexcept;
std::uint32_t get_u32_le(ByteView in) noexcept;
std::uint64_t get_u64_le(ByteView in) noexcept;

/// Append scalar values to a growing buffer (used by report serialization).
void append_u32_be(Bytes& out, std::uint32_t v);
void append_u64_be(Bytes& out, std::uint64_t v);
void append(Bytes& out, ByteView b);

}  // namespace rasc::support
