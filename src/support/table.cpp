#include "src/support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace rasc::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("Table row has more cells than header");
  }
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(width[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::string rule = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule.append(width[c] + 2, '-');
    rule += '|';
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace rasc::support
