#include "src/support/rng.hpp"

#include <bit>
#include <cmath>

namespace rasc::support {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Xoshiro256::exponential(double mean) noexcept {
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace rasc::support
