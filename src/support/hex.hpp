#pragma once
/// \file hex.hpp
/// Hexadecimal encoding/decoding for test vectors and diagnostics.

#include <optional>
#include <string>

#include "src/support/bytes.hpp"

namespace rasc::support {

/// Lowercase hex encoding of a byte buffer.
std::string hex_encode(ByteView data);

/// Decode a hex string (case-insensitive, even length, no separators).
/// Returns std::nullopt on malformed input.
std::optional<Bytes> hex_decode(std::string_view hex);

/// Decode a hex string that is known-good at the call site (test vectors);
/// throws std::invalid_argument on malformed input.
Bytes hex_decode_or_throw(std::string_view hex);

}  // namespace rasc::support
