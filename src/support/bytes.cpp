#include "src/support/bytes.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace rasc::support {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

bool ct_equal(ByteView a, ByteView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

void secure_wipe(MutableByteView b) noexcept {
  // A volatile write loop plus a compiler fence keeps the stores alive.
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
  std::atomic_signal_fence(std::memory_order_seq_cst);
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void put_u32_be(MutableByteView out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

void put_u64_be(MutableByteView out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

std::uint32_t get_u32_be(ByteView in) noexcept {
  return (std::uint32_t{in[0]} << 24) | (std::uint32_t{in[1]} << 16) |
         (std::uint32_t{in[2]} << 8) | std::uint32_t{in[3]};
}

std::uint64_t get_u64_be(ByteView in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

void put_u32_le(MutableByteView out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64_le(MutableByteView out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32_le(ByteView in) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

std::uint64_t get_u64_le(ByteView in) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

void append_u32_be(Bytes& out, std::uint32_t v) {
  std::uint8_t tmp[4];
  put_u32_be(tmp, v);
  out.insert(out.end(), tmp, tmp + 4);
}

void append_u64_be(Bytes& out, std::uint64_t v) {
  std::uint8_t tmp[8];
  put_u64_be(tmp, v);
  out.insert(out.end(), tmp, tmp + 8);
}

void append(Bytes& out, ByteView b) {
  out.insert(out.end(), b.begin(), b.end());
}

}  // namespace rasc::support
