#pragma once
/// \file table.hpp
/// Minimal ASCII table renderer used by the benchmark harnesses to print
/// paper tables/figure series in a uniform format.

#include <string>
#include <vector>

namespace rasc::support {

/// Column-aligned ASCII table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Renders with single-space-padded `|` separators and a rule under the
  /// header, e.g. for terminal and EXPERIMENTS.md consumption.
  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt_double(double v, int precision = 3);
std::string fmt_sci(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace rasc::support
