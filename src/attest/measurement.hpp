#pragma once
/// \file measurement.hpp
/// The integrity-ensuring function F at the heart of the measurement
/// process MP (paper Section 2.2).  Memory is measured block-by-block:
/// each visited block yields a per-block digest recorded at visit time;
/// finalize() combines the per-block digests *in index order* under an
/// HMAC keyed with the attestation key and bound to the challenge, device
/// id and counter.
///
/// Recording per-block digests makes the result independent of traversal
/// order, which is what lets one code path serve sequential, atomic and
/// SMARM-shuffled measurements (and is the "additional memory to store the
/// permutation/state" cost the paper attributes to SMARM).
///
/// Hot-path design (PR 4): per-block digests are fixed-capacity Digest
/// values (no heap allocation per block), the CBC-MAC derived block key
/// is computed once at construction, the per-block hash/MAC engine is
/// reused across blocks, and — when a DigestCache is attached — blocks
/// whose generation counter is unchanged since their digest was last
/// computed are served from the cache, bit-identically.

#include <optional>
#include <vector>

#include "src/attest/digest.hpp"
#include "src/attest/digest_cache.hpp"
#include "src/attest/mac_engine.hpp"
#include "src/obs/journal.hpp"
#include "src/crypto/hash.hpp"
#include "src/crypto/hmac.hpp"
#include "src/sim/memory.hpp"
#include "src/support/bytes.hpp"

namespace rasc::attest {

/// Coverage descriptor: which blocks of prover memory are attested.
struct Coverage {
  std::size_t first_block = 0;
  std::size_t block_count = 0;  ///< 0 = all blocks from first_block

  std::size_t resolve_count(const sim::DeviceMemory& mem) const {
    return block_count == 0 ? mem.block_count() - first_block : block_count;
  }
};

/// Header binding a measurement to its context.
struct MeasurementContext {
  std::string device_id;
  support::Bytes challenge;    ///< Vrf nonce (empty for self-measurements)
  std::uint64_t counter = 0;   ///< monotonic counter / schedule index
};

/// Reusable per-block digest engine.  Hoists the work that the naive
/// per-block path repeated on every block: the CBC-MAC key derivation
/// (concat(key, "/block")) happens once at construction, and the
/// hash/MAC state is reset and reused instead of re-instantiated.
class BlockDigester {
 public:
  BlockDigester(MacKind mac, crypto::HashKind hash, support::ByteView key);

  /// Digest one block's content into `out` — no heap allocation.
  void digest(support::ByteView block, Digest& out);

  /// Digest many independent blocks at once (blocks[i] -> *outs[i]).
  /// Hash-based F over a lane-capable hash packs the blocks into multi-lane
  /// SIMD waves (byte-identical to digest(), enforced in tests); other
  /// configurations fall back to the scalar loop.  Allocation-free after
  /// the first call at a given batch size (reused scratch).
  void digest_batch(std::span<const support::ByteView> blocks,
                    std::span<Digest* const> outs);

  std::size_t digest_size() const noexcept { return digest_size_; }

  /// True when digest_batch packs lanes rather than looping the scalar
  /// engine (benchmarks label rows with this).
  bool batch_uses_lanes() const noexcept;

 private:
  MacKind mac_;
  crypto::HashKind hash_kind_;
  std::size_t digest_size_;
  std::unique_ptr<crypto::Hash> hash_;  ///< hash-based F (unkeyed per-block hash)
  std::optional<MacEngine> engine_;     ///< encryption-based F (keyed CBC-MAC)
  std::vector<support::MutableByteView> batch_views_;  ///< digest_batch scratch
};

class Measurement {
 public:
  Measurement(const sim::DeviceMemory& memory, crypto::HashKind hash,
              support::ByteView key, MeasurementContext context, Coverage coverage = {},
              MacKind mac = MacKind::kHmac);

  /// Attach a digest cache (not owned; must outlive the measurement).
  /// Cached digests are consulted only for blocks read from live device
  /// memory (snapshot-redirected reads bypass the cache) and only when
  /// the block's generation matches — results are bit-identical to the
  /// uncached path.
  void set_digest_cache(DigestCache* cache);

  /// Attach a flight-recorder journal (not owned; nullptr to detach):
  /// cache hits and misses are then journaled under `actor` with the
  /// visit time.  One null-check branch when detached — the measurement
  /// hot path stays allocation-free either way.
  void set_journal(obs::EventJournal* journal, std::uint32_t actor) noexcept {
    journal_ = journal;
    journal_actor_ = actor;
  }

  /// Digest one block (index relative to memory, must lie inside the
  /// coverage).  May be called in any order; re-visiting overwrites the
  /// previous digest and records the new visit time.
  void visit_block(std::size_t block, sim::Time now);

  /// As above but digesting the supplied content instead of live memory
  /// (snapshot-based locking redirects reads through the policy).
  void visit_block(std::size_t block, sim::Time now, support::ByteView content);

  /// Batch visitation: exactly equivalent to calling visit_block(b, now)
  /// for each b in order — same cache lookups, same journal events in the
  /// same order, same stored digests — but cache misses are digested in
  /// multi-lane waves through BlockDigester::digest_batch.  Callers that
  /// already know their dirty set (tree-mode collect/flush, golden
  /// pre-digesting, fleet shard waves) use this instead of the scalar
  /// loop.  Blocks must be distinct within one call.
  void visit_blocks(std::span<const std::size_t> blocks, sim::Time now);

  /// As above with per-block content redirection (contents[i] is digested
  /// for blocks[i]; snapshot views bypass the cache exactly as in the
  /// scalar overload).
  void visit_blocks(std::span<const std::size_t> blocks, sim::Time now,
                    std::span<const support::ByteView> contents);

  /// Number of blocks visited so far / total to visit.
  std::size_t visited() const noexcept { return visited_count_; }
  std::size_t total_blocks() const noexcept { return block_digests_.size(); }
  bool complete() const noexcept { return visited_count_ == block_digests_.size(); }

  /// Digest recorded for `block` (absolute index) by a prior visit_block.
  /// The tree-mode prover routes per-block digests through visit_block —
  /// so the cache and journal behave identically to flat mode — then
  /// reads them back here to feed the Merkle tree.
  const Digest& visited_digest(std::size_t block) const {
    return block_digests_.at(block - coverage_.first_block);
  }

  /// Visit times per covered block (for the consistency analyzer);
  /// nullopt for unvisited blocks.
  const std::vector<std::optional<sim::Time>>& visit_times() const noexcept {
    return visit_times_;
  }

  /// Combine per-block digests into the final authenticated measurement.
  /// Requires complete(); throws std::logic_error otherwise.
  support::Bytes finalize() const;

  const MeasurementContext& context() const noexcept { return context_; }
  const Coverage& coverage() const noexcept { return coverage_; }
  crypto::HashKind hash_kind() const noexcept { return hash_; }
  MacKind mac_kind() const noexcept { return mac_; }

  /// Compute the expected measurement for a golden memory image (what the
  /// verifier compares against).  `image` must be block_size * n bytes.
  /// Per-context cost is O(image); a verifier validating many reports
  /// against one image should hold a GoldenMeasurement instead.
  static support::Bytes expected(support::ByteView image, std::size_t block_size,
                                 crypto::HashKind hash, support::ByteView key,
                                 const MeasurementContext& context,
                                 MacKind mac = MacKind::kHmac);

  /// Per-block digest primitive: an (unkeyed) hash for the hash-based F,
  /// or a keyed AES-CBC-MAC for the encryption-based F of Section 2.4.
  static support::Bytes block_digest(MacKind mac, crypto::HashKind hash,
                                     support::ByteView key, support::ByteView block);

  /// Combine per-block digests (index order) into the authenticated
  /// measurement.  Shared by finalize(), expected() and GoldenMeasurement.
  static support::Bytes combine(const std::vector<Digest>& digests,
                                crypto::HashKind hash, support::ByteView key,
                                const MeasurementContext& context, MacKind mac);

  /// Tree-mode combiner: MAC the context header and the Merkle root
  /// instead of all n block digests — O(1) in the block count, which is
  /// what makes tree-mode finalization constant-cost.  Domain-separated
  /// from combine() by an explicit tag, so a flat measurement can never
  /// collide with a tree measurement over the same memory.
  static support::Bytes combine_root(support::ByteView tree_root,
                                     crypto::HashKind hash, support::ByteView key,
                                     const MeasurementContext& context, MacKind mac);

 private:
  const sim::DeviceMemory& memory_;
  crypto::HashKind hash_;
  support::Bytes key_;
  MeasurementContext context_;
  Coverage coverage_;
  MacKind mac_;
  BlockDigester digester_;
  DigestCache* cache_ = nullptr;
  obs::EventJournal* journal_ = nullptr;
  std::uint32_t journal_actor_ = 0;
  std::uint64_t key_fp_ = 0;  ///< computed when a cache is attached
  std::vector<Digest> block_digests_;
  std::vector<std::optional<sim::Time>> visit_times_;
  std::size_t visited_count_ = 0;

  void visit_blocks_impl(std::span<const std::size_t> blocks, sim::Time now,
                         std::span<const support::ByteView> contents);

  /// visit_blocks scratch (cleared per call, capacity reused).
  struct PendingStore {
    std::size_t block;
    std::uint64_t generation;
    bool store;  ///< false for snapshot content / detached cache
  };
  std::vector<support::ByteView> batch_contents_;
  std::vector<Digest*> batch_outs_;
  std::vector<PendingStore> batch_stores_;
};

}  // namespace rasc::attest
