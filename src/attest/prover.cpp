#include "src/attest/prover.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rasc::attest {

std::string execution_mode_name(ExecutionMode mode) {
  return mode == ExecutionMode::kAtomic ? "atomic" : "interruptible";
}

std::string traversal_order_name(TraversalOrder order) {
  return order == TraversalOrder::kSequential ? "sequential" : "shuffled";
}

AttestationProcess::AttestationProcess(sim::Device& device, ProverConfig config,
                                       LockPolicy* policy)
    : sim::Process("attest/" + execution_mode_name(config.mode), config.priority),
      device_(device),
      config_(config),
      policy_(policy),
      trace_track_("attest/" + device.id()) {}

sim::Duration AttestationProcess::block_cost() const {
  const std::size_t block_size = device_.memory().block_size();
  const sim::Duration digest_cost =
      config_.mac == MacKind::kCbcMac
          ? device_.model().cbcmac_time(block_size)
          : device_.model().hash_time(config_.hash, block_size);
  return digest_cost + device_.model().measurement_block_overhead();
}

sim::Duration AttestationProcess::finalize_cost() const {
  const std::size_t digest_size = config_.mac == MacKind::kCbcMac
                                      ? crypto::CbcMac::kTagSize
                                      : crypto::hash_digest_size(config_.hash);
  sim::Duration cost;
  if (config_.use_merkle_tree) {
    // Re-hash the invalidated tree paths (each node hash covers a 1-byte
    // domain prefix plus two child digests), then MAC the root — O(dirty
    // * log n) instead of the flat combiner's O(n).
    cost = device_.model().hash_time(config_.hash,
                                     planned_nodes_ * (2 * digest_size + 1));
    cost += config_.mac == MacKind::kCbcMac
                ? device_.model().cbcmac_time(digest_size)
                : device_.model().mac_time(config_.hash, digest_size);
  } else {
    const std::size_t n = config_.coverage.resolve_count(device_.memory());
    cost = config_.mac == MacKind::kCbcMac
               ? device_.model().cbcmac_time(n * digest_size)
               : device_.model().mac_time(config_.hash, n * digest_size);
  }
  if (config_.signature) cost += device_.model().sign_time(*config_.signature);
  return cost;
}

void AttestationProcess::ensure_tree() {
  if (tree_) return;
  tree_digester_.emplace(config_.mac, config_.hash, device_.attestation_key());
  tree_.emplace(device_.memory(), config_.hash,
                [this](std::size_t block, support::ByteView content, Digest& out) {
                  if (measurement_) {
                    // In-round path: route through the measurement so the
                    // digest cache and journal see exactly what flat mode
                    // would (hits/misses are bit-identical).
                    measurement_->visit_block(block, tree_now_);
                    out = measurement_->visited_digest(block);
                  } else {
                    // Host-side priming (provisioning), outside sim time.
                    tree_digester_->digest(content, out);
                  }
                });
}

void AttestationProcess::clear_proof_backlog() noexcept {
  for (std::uint32_t block : proof_backlog_) proof_backlog_flag_[block] = false;
  proof_backlog_.clear();
}

AttestationProcess::ProcessState AttestationProcess::save_process_state() const {
  if (busy()) {
    throw std::logic_error("save_process_state while a measurement is in flight");
  }
  return {measurements_completed_, total_measure_time_, proof_backlog_};
}

void AttestationProcess::restore_process_state(const ProcessState& s) {
  if (busy()) {
    throw std::logic_error("restore_process_state while a measurement is in flight");
  }
  measurements_completed_ = s.measurements_completed;
  total_measure_time_ = s.total_measure_time;
  proof_backlog_flag_.assign(device_.memory().block_count(), false);
  proof_backlog_.clear();
  for (std::uint32_t block : s.proof_backlog) {
    if (block < proof_backlog_flag_.size() && !proof_backlog_flag_[block]) {
      proof_backlog_flag_[block] = true;
      proof_backlog_.push_back(block);
    }
  }
}

void AttestationProcess::prime_tree() {
  if (!config_.use_merkle_tree) {
    throw std::logic_error("prime_tree without use_merkle_tree");
  }
  if (busy()) throw std::logic_error("prime_tree while a measurement is in flight");
  ensure_tree();
  tree_->rebuild();
  device_.memory().set_generation_observer(
      [this](std::size_t block) { tree_->note_block_changed(block); });
  tree_->use_observed_dirty(true);
}

void AttestationProcess::prime_tree_from(std::span<const Digest> leaves) {
  if (!config_.use_merkle_tree) {
    throw std::logic_error("prime_tree_from without use_merkle_tree");
  }
  if (busy()) throw std::logic_error("prime_tree_from while a measurement is in flight");
  ensure_tree();
  tree_->prime_with(leaves);
  device_.memory().set_generation_observer(
      [this](std::size_t block) { tree_->note_block_changed(block); });
  tree_->use_observed_dirty(true);
}

std::vector<std::size_t> AttestationProcess::make_order() {
  std::vector<std::size_t> order;
  if (config_.use_merkle_tree && tree_->primed()) {
    // Incremental round: only the blocks written since the last round.
    order = tree_->collect_dirty();
  } else {
    const std::size_t first = config_.coverage.first_block;
    const std::size_t n = config_.coverage.resolve_count(device_.memory());
    order.resize(n);
    std::iota(order.begin(), order.end(), first);
  }
  const std::size_t n = order.size();
  if (config_.order == TraversalOrder::kShuffledSecret) {
    // Secret permutation derived from the attestation key and counter.
    // Stored state is what SMARM keeps in secure memory.
    support::Bytes seed = device_.attestation_key();
    support::append(seed, support::to_bytes("smarm-permutation"));
    support::append_u64_be(seed, measurement_->context().counter);
    crypto::HmacDrbg drbg(seed);
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = drbg.below(i);
      std::swap(order[i - 1], order[j]);
    }
  }
  return order;
}

void AttestationProcess::start(MeasurementContext context,
                               std::function<void(AttestationResult)> done) {
  if (busy()) throw std::logic_error("AttestationProcess::start while busy");
  if (config_.use_merkle_tree) {
    if (config_.coverage.first_block != 0 ||
        (config_.coverage.block_count != 0 &&
         config_.coverage.block_count != device_.memory().block_count())) {
      throw std::invalid_argument("tree mode requires full memory coverage");
    }
    if (policy_ != nullptr && policy_->snapshots_at_start()) {
      throw std::invalid_argument(
          "tree mode is incompatible with snapshotting lock policies");
    }
    if (config_.zero_region) {
      throw std::invalid_argument("tree mode is incompatible with zero_region");
    }
    ensure_tree();
  }
  measurement_.emplace(device_.memory(), config_.hash, device_.attestation_key(),
                       std::move(context), config_.coverage, config_.mac);
  if (config_.use_digest_cache) {
    DigestCache& cache =
        shared_digest_cache_ != nullptr ? *shared_digest_cache_ : digest_cache_;
    cache.resize(device_.memory().block_count());
    measurement_->set_digest_cache(&cache);
    if (auto* j = device_.sim().journal()) {
      const std::uint32_t actor = j->intern(device_.id());
      measurement_->set_journal(j, actor);
      cache.set_journal(j, actor);
    } else {
      measurement_->set_journal(nullptr, 0);
      cache.set_journal(nullptr, 0);
    }
  }
  order_ = make_order();
  if (config_.use_merkle_tree) planned_nodes_ = tree_->tree().plan_rehash(order_);
  next_index_ = 0;
  result_ = AttestationResult{};
  result_.order = order_;
  done_ = std::move(done);
  stage_ = Stage::kLock;
  if (auto* sink = device_.sim().trace_sink()) {
    sink->begin(device_.sim().now(), trace_track(), "attest.session",
                {obs::arg("counter", measurement_->context().counter),
                 obs::arg("mode", execution_mode_name(config_.mode)),
                 obs::arg("order", traversal_order_name(config_.order)),
                 obs::arg("blocks", static_cast<std::uint64_t>(order_.size()))});
  }
  device_.cpu().make_ready(*this);
}

std::optional<sim::Segment> AttestationProcess::next_segment() {
  switch (stage_) {
    case Stage::kIdle:
      return std::nullopt;
    case Stage::kLock: {
      // Engaging the MPU lock (a syscall on HYDRA) costs a fixed overhead;
      // t_s is the instant the lock is in place.  Zeroing the data region
      // (when configured) happens in the same segment.
      sim::Duration cost = device_.model().measurement_block_overhead();
      if (policy_) {
        const std::size_t covered =
            config_.coverage.resolve_count(device_.memory()) *
            device_.memory().block_size();
        cost += policy_->start_cost(device_.model(), covered);
      }
      if (config_.zero_region) {
        cost += device_.model().copy_time(
            config_.zero_region->resolve_count(device_.memory()) *
            device_.memory().block_size());
      }
      return sim::Segment{cost, [this] { complete_lock(); }};
    }
    case Stage::kBlocks:
      if (config_.mode == ExecutionMode::kAtomic) {
        const std::size_t n = order_.size();
        const sim::Duration total = block_cost() * n + finalize_cost();
        return sim::Segment{total, [this] { complete_atomic(); }};
      }
      return sim::Segment{block_cost(), [this] { complete_block(); }};
    case Stage::kCombine:
      return sim::Segment{finalize_cost(), [this] { complete_combine(); }};
  }
  return std::nullopt;
}

void AttestationProcess::complete_lock() {
  result_.t_s = device_.sim().now();
  if (auto* sink = device_.sim().trace_sink()) {
    sink->instant(result_.t_s, trace_track(), "attest.t_s");
    sink->begin(result_.t_s, trace_track(), "attest.measure");
  }
  if (config_.zero_region) {
    // Zero before the lock engages (attestation code scrubbing D).
    auto& mem = device_.memory();
    const std::size_t n = config_.zero_region->resolve_count(mem);
    const std::size_t first = config_.zero_region->first_block;
    mem.zero_region(first * mem.block_size(), n * mem.block_size(), result_.t_s,
                    sim::Actor::kMeasurement);
  }
  if (policy_) policy_->on_start(device_.memory(), config_.coverage);
  // A fully clean tree-mode round has nothing to visit: skip straight to
  // the (root-MAC only) finalization segment.
  stage_ = order_.empty() ? Stage::kCombine : Stage::kBlocks;
}

void AttestationProcess::visit_one(std::size_t block, sim::Time visit_time) {
  auto& mem = device_.memory();
  if (config_.use_merkle_tree) {
    tree_now_ = visit_time;
    tree_->refresh_one(block);  // leaf fn -> measurement_->visit_block
  } else {
    measurement_->visit_block(block, visit_time,
                              policy_ ? policy_->block_source(mem, block)
                                      : mem.block_view(block));
  }
  if (policy_) policy_->on_block_visited(mem, block);
}

void AttestationProcess::complete_atomic() {
  // Nothing else ran between t_s and now, so reading all blocks at the end
  // of the segment observes exactly the memory state throughout.  That
  // also means the whole visit set is known up front at one visit time —
  // the batch path digests cache misses in multi-lane waves.  Lock-state
  // hooks (on_block_visited) run after the visits; they only flip MPU
  // bits, which cannot affect digests inside an atomic segment.
  const sim::Time now = device_.sim().now();
  const sim::Time visit_time =
      (policy_ && policy_->snapshots_at_start()) ? result_.t_s : now;
  auto& mem = device_.memory();
  if (config_.use_merkle_tree) {
    // Tree mode reads live memory (snapshot policies are rejected at
    // start): batch-visit through the measurement — cache lookups and
    // journal events are bit-identical to the per-block path — then land
    // each digest in the tree exactly as refresh_one would have.
    measurement_->visit_blocks(order_, visit_time);
    for (std::size_t block : order_) {
      tree_->apply_digest(block, measurement_->visited_digest(block));
    }
  } else if (policy_ != nullptr) {
    batch_contents_.clear();
    batch_contents_.reserve(order_.size());
    for (std::size_t block : order_) {
      batch_contents_.push_back(policy_->block_source(mem, block));
    }
    measurement_->visit_blocks(order_, visit_time, batch_contents_);
  } else {
    measurement_->visit_blocks(order_, visit_time);
  }
  if (policy_ != nullptr) {
    for (std::size_t block : order_) policy_->on_block_visited(mem, block);
  }
  if (observer_) observer_(order_.size(), order_.size());
  finish();
}

void AttestationProcess::complete_block() {
  const std::size_t block = order_[next_index_];
  const sim::Time visit_time =
      (policy_ && policy_->snapshots_at_start()) ? result_.t_s : device_.sim().now();
  visit_one(block, visit_time);
  ++next_index_;
  if (observer_) observer_(next_index_, order_.size());
  if (next_index_ == order_.size()) stage_ = Stage::kCombine;
}

void AttestationProcess::complete_combine() { finish(); }

void AttestationProcess::finish() {
  auto& mem = device_.memory();
  result_.t_e = device_.sim().now();
  if (auto* sink = device_.sim().trace_sink()) {
    // Close "attest.measure" (innermost), then "attest.session".
    sink->end(result_.t_e, trace_track());
    sink->instant(result_.t_e, trace_track(), "attest.t_e");
    sink->end(result_.t_e, trace_track());
  }
  if (policy_) policy_->on_end(mem, config_.coverage);

  Report report;
  report.device_id = measurement_->context().device_id;
  report.challenge = measurement_->context().challenge;
  report.counter = measurement_->context().counter;
  report.t_start = result_.t_s;
  report.t_end = result_.t_e;
  report.hash = config_.hash;
  if (config_.use_merkle_tree) {
    const mtree::RehashStats stats = tree_->flush_tree();
    auto* journal = device_.sim().journal();
    const std::uint32_t actor = journal ? journal->intern(device_.id()) : 0;
    if (journal) {
      journal->append(result_.t_e, actor, 0, 0, obs::JournalEventKind::kMtreeRehash,
                      stats.dirty_leaves, stats.nodes_rehashed);
    }
    report.tree_root = tree_->root_bytes();
    report.measurement =
        Measurement::combine_root(report.tree_root, config_.hash,
                                  device_.attestation_key(),
                                  measurement_->context(), config_.mac);
    // Prove the whole backlog — every block dirtied since the last
    // decisive round, not just this round's visits — one subtree proof
    // per contiguous run, split at max_proof_leaves (the verifier
    // re-merges).  A report lost in transit therefore cannot lose
    // localization: the retry proves the same blocks again.
    if (proof_backlog_flag_.size() != device_.memory().block_count()) {
      proof_backlog_flag_.assign(device_.memory().block_count(), false);
      proof_backlog_.clear();
    }
    for (std::size_t block : order_) {
      if (!proof_backlog_flag_[block]) {
        proof_backlog_flag_[block] = true;
        proof_backlog_.push_back(static_cast<std::uint32_t>(block));
      }
    }
    std::vector<std::size_t> visited(proof_backlog_.begin(), proof_backlog_.end());
    std::sort(visited.begin(), visited.end());
    std::size_t i = 0;
    while (i < visited.size()) {
      std::size_t j = i + 1;
      while (j < visited.size() && visited[j] == visited[j - 1] + 1 &&
             j - i < config_.max_proof_leaves) {
        ++j;
      }
      const std::size_t first = visited[i];
      const std::size_t count = j - i;
      report.proofs.push_back(tree_->prove_range(first, count));
      if (journal) {
        journal->append(result_.t_e, actor, 0, 0, obs::JournalEventKind::kMtreeProof,
                        first, count);
      }
      i = j;
    }
  } else {
    report.measurement = measurement_->finalize();
  }
  authenticate_report(report, device_.attestation_key());
  if (signer_ != nullptr && config_.signature) sign_report(report, *signer_);

  result_.report = std::move(report);
  result_.visit_times = measurement_->visit_times();

  const sim::Duration delay = policy_ ? policy_->release_delay() : 0;
  result_.t_r = result_.t_e + delay;
  if (auto* sink = device_.sim().trace_sink()) {
    if (delay == 0) {
      sink->instant(result_.t_r, trace_track(), "attest.t_r");
    } else {
      device_.sim().schedule_in(delay, [this] {
        if (auto* s = device_.sim().trace_sink()) {
          s->instant(device_.sim().now(), trace_track(), "attest.t_r");
        }
      });
    }
  }
  if (policy_) {
    if (delay == 0) {
      policy_->on_release(mem, config_.coverage);
    } else {
      device_.sim().schedule_in(delay, [this] {
        policy_->on_release(device_.memory(), config_.coverage);
      });
    }
  }

  stage_ = Stage::kIdle;
  ++measurements_completed_;
  total_measure_time_ += result_.t_e - result_.t_s;
  measurement_.reset();
  if (done_) {
    // Move out first: the callback may start a new measurement.
    auto done = std::move(done_);
    done_ = nullptr;
    done(result_);
  }
}

}  // namespace rasc::attest
