#pragma once
/// \file golden.hpp
/// Immutable pre-digested golden image.  The verifier compares every
/// report against the expected measurement of its golden image; computing
/// that expectation naively rehashes the whole image per report.  A
/// GoldenMeasurement hashes every block exactly once at construction and
/// then serves expected() for any context with only the O(blocks)
/// combiner MAC — the per-block digests are context-independent.
///
/// The object is deeply immutable after construction, so one instance can
/// be shared by const reference across campaign trial workers (computed
/// once per campaign *cell*, not once per trial) — concurrent expected()
/// calls are thread-safe because each builds its own combiner MAC state.

#include <cstdint>
#include <vector>

#include "src/attest/measurement.hpp"

namespace rasc::attest {

class GoldenMeasurement {
 public:
  /// Digest `image` (block_size * n bytes) once.  Throws
  /// std::invalid_argument on a ragged image.
  GoldenMeasurement(support::ByteView image, std::size_t block_size,
                    crypto::HashKind hash, support::ByteView key,
                    MacKind mac = MacKind::kHmac);

  /// Expected measurement for a context — combiner MAC only, no hashing.
  /// Bit-identical to Measurement::expected on the same image.
  support::Bytes expected(const MeasurementContext& context) const;

  std::size_t block_count() const noexcept { return digests_.size(); }
  std::size_t block_size() const noexcept { return block_size_; }
  crypto::HashKind hash_kind() const noexcept { return hash_; }
  MacKind mac_kind() const noexcept { return mac_; }
  const Digest& block_digest(std::size_t block) const { return digests_.at(block); }

 private:
  crypto::HashKind hash_;
  MacKind mac_;
  support::Bytes key_;
  std::size_t block_size_;
  std::vector<Digest> digests_;
};

}  // namespace rasc::attest
