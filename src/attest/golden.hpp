#pragma once
/// \file golden.hpp
/// Immutable pre-digested golden image.  The verifier compares every
/// report against the expected measurement of its golden image; computing
/// that expectation naively rehashes the whole image per report.  A
/// GoldenMeasurement hashes every block exactly once at construction and
/// then serves expected() for any context with only the O(blocks)
/// combiner MAC — the per-block digests are context-independent.
///
/// The object is deeply immutable after construction, so one instance can
/// be shared by const reference across campaign trial workers (computed
/// once per campaign *cell*, not once per trial) — concurrent expected()
/// calls are thread-safe because each builds its own combiner MAC state.

#include <cstdint>
#include <optional>
#include <vector>

#include "src/attest/measurement.hpp"
#include "src/mtree/mtree.hpp"

namespace rasc::attest {

class GoldenMeasurement {
 public:
  /// Digest `image` (block_size * n bytes) once.  Throws
  /// std::invalid_argument on a ragged image.
  GoldenMeasurement(support::ByteView image, std::size_t block_size,
                    crypto::HashKind hash, support::ByteView key,
                    MacKind mac = MacKind::kHmac);

  /// Expected measurement for a context — combiner MAC only, no hashing.
  /// Bit-identical to Measurement::expected on the same image.
  support::Bytes expected(const MeasurementContext& context) const;

  /// Expected *tree-mode* measurement for a context: the MAC of the
  /// golden Merkle root under the context header
  /// (Measurement::combine_root).  Bit-identical to what a tree-mode
  /// prover over pristine memory produces.
  support::Bytes expected_tree(const MeasurementContext& context) const;

  std::size_t block_count() const noexcept { return digests_.size(); }
  std::size_t block_size() const noexcept { return block_size_; }
  crypto::HashKind hash_kind() const noexcept { return hash_; }
  MacKind mac_kind() const noexcept { return mac_; }
  const Digest& block_digest(std::size_t block) const { return digests_.at(block); }
  /// All per-block digests in block order — the fleet verifier primes a
  /// whole shard wave of tree-mode provers from these
  /// (AttestationProcess::prime_tree_from) instead of re-digesting the
  /// identical provisioned image once per device.
  const std::vector<Digest>& block_digests() const noexcept { return digests_; }

  /// Golden Merkle tree over the per-block digests, built once at
  /// construction like the digests themselves.  The root is what shard /
  /// fleet aggregation combines, and the interior nodes are what the
  /// verifier-side memory accounting charges per shard.
  const mtree::MerkleTree& tree() const noexcept { return *tree_; }
  support::Bytes tree_root() const { return tree_->root_bytes(); }
  std::size_t tree_memory_bytes() const noexcept { return tree_->memory_bytes(); }

 private:
  crypto::HashKind hash_;
  MacKind mac_;
  support::Bytes key_;
  std::size_t block_size_;
  std::vector<Digest> digests_;
  std::optional<mtree::MerkleTree> tree_;  ///< engaged in every constructor
};

}  // namespace rasc::attest
