#include "src/attest/measurement.hpp"

#include <stdexcept>

namespace rasc::attest {

namespace {

/// Domain-separated CBC-MAC key for the encryption-based per-block F
/// (separated from the combiner key).
support::Bytes derive_block_key(support::ByteView key) {
  return support::concat({key, support::to_bytes("/block")});
}

}  // namespace

BlockDigester::BlockDigester(MacKind mac, crypto::HashKind hash, support::ByteView key)
    : mac_(mac) {
  if (mac_ == MacKind::kHmac) {
    hash_ = crypto::make_hash(hash);
    digest_size_ = hash_->digest_size();
  } else {
    // Derived once here instead of per block.
    auto block_key = derive_block_key(key);
    engine_.emplace(MacKind::kCbcMac, hash, block_key);
    support::secure_wipe(block_key);
    digest_size_ = engine_->tag_size();
  }
}

void BlockDigester::digest(support::ByteView block, Digest& out) {
  if (mac_ == MacKind::kHmac) {
    hash_->update(block);
    hash_->finalize_into(out.prepare(digest_size_));
  } else {
    engine_->update(block);
    engine_->finalize_into(out.prepare(digest_size_));
  }
}

Measurement::Measurement(const sim::DeviceMemory& memory, crypto::HashKind hash,
                         support::ByteView key, MeasurementContext context,
                         Coverage coverage, MacKind mac)
    : memory_(memory),
      hash_(hash),
      key_(key.begin(), key.end()),
      context_(std::move(context)),
      coverage_(coverage),
      mac_(mac),
      digester_(mac, hash, key) {
  const std::size_t n = coverage_.resolve_count(memory);
  if (coverage_.first_block + n > memory.block_count()) {
    throw std::out_of_range("Measurement coverage exceeds memory");
  }
  block_digests_.assign(n, {});
  visit_times_.assign(n, std::nullopt);
}

void Measurement::set_digest_cache(DigestCache* cache) {
  cache_ = cache;
  if (cache_ != nullptr) key_fp_ = DigestCache::key_fingerprint(key_);
}

void Measurement::visit_block(std::size_t block, sim::Time now) {
  visit_block(block, now, memory_.block_view(block));
}

void Measurement::visit_block(std::size_t block, sim::Time now,
                              support::ByteView content) {
  if (block < coverage_.first_block ||
      block >= coverage_.first_block + block_digests_.size()) {
    throw std::out_of_range("visit_block outside coverage");
  }
  const std::size_t rel = block - coverage_.first_block;
  if (!visit_times_[rel]) ++visited_count_;
  visit_times_[rel] = now;

  // The cache is keyed on live-memory generations, so it only applies
  // when the content being digested IS the live block (snapshot-based
  // lock policies redirect reads to their copy and bypass it here).
  const bool live = cache_ != nullptr && content.size() == memory_.block_size() &&
                    content.data() == memory_.block_view(block).data();
  if (live) {
    const std::uint64_t generation = memory_.block_generation(block);
    if (const Digest* hit = cache_->lookup(block, generation, hash_, mac_, key_fp_)) {
      if (journal_ != nullptr) {
        journal_->append(now, journal_actor_, 0, 0, obs::JournalEventKind::kCacheHit,
                         block, generation);
      }
      block_digests_[rel] = *hit;
      return;
    }
    if (journal_ != nullptr) {
      journal_->append(now, journal_actor_, 0, 0, obs::JournalEventKind::kCacheMiss,
                       block, generation);
    }
    digester_.digest(content, block_digests_[rel]);
    cache_->store(block, generation, hash_, mac_, key_fp_, block_digests_[rel]);
    return;
  }
  digester_.digest(content, block_digests_[rel]);
}

support::Bytes Measurement::block_digest(MacKind mac, crypto::HashKind hash,
                                         support::ByteView key,
                                         support::ByteView block) {
  BlockDigester digester(mac, hash, key);
  Digest out;
  digester.digest(block, out);
  return out.to_bytes();
}

namespace {

/// Context header shared by both combiners.
support::Bytes combine_header(const MeasurementContext& context) {
  support::Bytes header;
  support::append(header, support::to_bytes(context.device_id));
  support::append_u32_be(header, static_cast<std::uint32_t>(context.challenge.size()));
  support::append(header, context.challenge);
  support::append_u64_be(header, context.counter);
  return header;
}

}  // namespace

support::Bytes Measurement::combine(const std::vector<Digest>& digests,
                                    crypto::HashKind hash, support::ByteView key,
                                    const MeasurementContext& context, MacKind mac_kind) {
  MacEngine mac(mac_kind, hash, key);
  support::Bytes header = combine_header(context);
  support::append_u64_be(header, digests.size());
  mac.update(header);
  for (const auto& d : digests) mac.update(d.view());
  return mac.finalize();
}

support::Bytes Measurement::combine_root(support::ByteView tree_root,
                                         crypto::HashKind hash, support::ByteView key,
                                         const MeasurementContext& context,
                                         MacKind mac_kind) {
  MacEngine mac(mac_kind, hash, key);
  mac.update(support::to_bytes("mtree-root/v1"));
  mac.update(combine_header(context));
  mac.update(tree_root);
  return mac.finalize();
}

support::Bytes Measurement::finalize() const {
  if (!complete()) throw std::logic_error("Measurement::finalize before all blocks visited");
  return combine(block_digests_, hash_, key_, context_, mac_);
}

support::Bytes Measurement::expected(support::ByteView image, std::size_t block_size,
                                     crypto::HashKind hash, support::ByteView key,
                                     const MeasurementContext& context, MacKind mac) {
  if (block_size == 0 || image.size() % block_size != 0) {
    throw std::invalid_argument("golden image size must be a multiple of block_size");
  }
  const std::size_t n = image.size() / block_size;
  BlockDigester digester(mac, hash, key);
  std::vector<Digest> digests(n);
  for (std::size_t i = 0; i < n; ++i) {
    digester.digest(image.subspan(i * block_size, block_size), digests[i]);
  }
  return combine(digests, hash, key, context, mac);
}

}  // namespace rasc::attest
