#include "src/attest/measurement.hpp"

#include <stdexcept>

#include "src/crypto/lanes.hpp"

namespace rasc::attest {

namespace {

/// Domain-separated CBC-MAC key for the encryption-based per-block F
/// (separated from the combiner key).
support::Bytes derive_block_key(support::ByteView key) {
  return support::concat({key, support::to_bytes("/block")});
}

}  // namespace

BlockDigester::BlockDigester(MacKind mac, crypto::HashKind hash, support::ByteView key)
    : mac_(mac), hash_kind_(hash) {
  if (mac_ == MacKind::kHmac) {
    hash_ = crypto::make_hash(hash);
    digest_size_ = hash_->digest_size();
  } else {
    // Derived once here instead of per block.
    auto block_key = derive_block_key(key);
    engine_.emplace(MacKind::kCbcMac, hash, block_key);
    support::secure_wipe(block_key);
    digest_size_ = engine_->tag_size();
  }
}

void BlockDigester::digest(support::ByteView block, Digest& out) {
  if (mac_ == MacKind::kHmac) {
    hash_->update(block);
    hash_->finalize_into(out.prepare(digest_size_));
  } else {
    engine_->update(block);
    engine_->finalize_into(out.prepare(digest_size_));
  }
}

bool BlockDigester::batch_uses_lanes() const noexcept {
  return mac_ == MacKind::kHmac && crypto::lanes_supported(hash_kind_);
}

void BlockDigester::digest_batch(std::span<const support::ByteView> blocks,
                                 std::span<Digest* const> outs) {
  if (blocks.size() != outs.size()) {
    throw std::invalid_argument("digest_batch: blocks/outs size mismatch");
  }
  if (!batch_uses_lanes()) {
    for (std::size_t i = 0; i < blocks.size(); ++i) digest(blocks[i], *outs[i]);
    return;
  }
  batch_views_.clear();
  batch_views_.reserve(blocks.size());
  for (Digest* out : outs) batch_views_.push_back(out->prepare(digest_size_));
  crypto::digest_many(hash_kind_, blocks, batch_views_);
}

Measurement::Measurement(const sim::DeviceMemory& memory, crypto::HashKind hash,
                         support::ByteView key, MeasurementContext context,
                         Coverage coverage, MacKind mac)
    : memory_(memory),
      hash_(hash),
      key_(key.begin(), key.end()),
      context_(std::move(context)),
      coverage_(coverage),
      mac_(mac),
      digester_(mac, hash, key) {
  const std::size_t n = coverage_.resolve_count(memory);
  if (coverage_.first_block + n > memory.block_count()) {
    throw std::out_of_range("Measurement coverage exceeds memory");
  }
  block_digests_.assign(n, {});
  visit_times_.assign(n, std::nullopt);
}

void Measurement::set_digest_cache(DigestCache* cache) {
  cache_ = cache;
  if (cache_ != nullptr) key_fp_ = DigestCache::key_fingerprint(key_);
}

void Measurement::visit_block(std::size_t block, sim::Time now) {
  visit_block(block, now, memory_.block_view(block));
}

void Measurement::visit_block(std::size_t block, sim::Time now,
                              support::ByteView content) {
  if (block < coverage_.first_block ||
      block >= coverage_.first_block + block_digests_.size()) {
    throw std::out_of_range("visit_block outside coverage");
  }
  const std::size_t rel = block - coverage_.first_block;
  if (!visit_times_[rel]) ++visited_count_;
  visit_times_[rel] = now;

  // The cache is keyed on live-memory generations, so it only applies
  // when the content being digested IS the live block (snapshot-based
  // lock policies redirect reads to their copy and bypass it here).
  const bool live = cache_ != nullptr && content.size() == memory_.block_size() &&
                    content.data() == memory_.block_view(block).data();
  if (live) {
    const std::uint64_t generation = memory_.block_generation(block);
    if (const Digest* hit = cache_->lookup(block, generation, hash_, mac_, key_fp_)) {
      if (journal_ != nullptr) {
        journal_->append(now, journal_actor_, 0, 0, obs::JournalEventKind::kCacheHit,
                         block, generation);
      }
      block_digests_[rel] = *hit;
      return;
    }
    if (journal_ != nullptr) {
      journal_->append(now, journal_actor_, 0, 0, obs::JournalEventKind::kCacheMiss,
                       block, generation);
    }
    digester_.digest(content, block_digests_[rel]);
    cache_->store(block, generation, hash_, mac_, key_fp_, block_digests_[rel]);
    return;
  }
  digester_.digest(content, block_digests_[rel]);
}

void Measurement::visit_blocks(std::span<const std::size_t> blocks, sim::Time now) {
  visit_blocks_impl(blocks, now, {});
}

void Measurement::visit_blocks(std::span<const std::size_t> blocks, sim::Time now,
                               std::span<const support::ByteView> contents) {
  if (contents.size() != blocks.size()) {
    throw std::invalid_argument("visit_blocks: blocks/contents size mismatch");
  }
  visit_blocks_impl(blocks, now, contents);
}

void Measurement::visit_blocks_impl(std::span<const std::size_t> blocks, sim::Time now,
                                    std::span<const support::ByteView> contents) {
  batch_contents_.clear();
  batch_outs_.clear();
  batch_stores_.clear();
  batch_contents_.reserve(blocks.size());
  batch_outs_.reserve(blocks.size());
  batch_stores_.reserve(blocks.size());

  // Classification pass in caller order: bookkeeping, cache lookups and
  // journal events happen here, exactly as the scalar loop would emit
  // them; only the digesting of the misses is deferred into the batch.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const std::size_t block = blocks[i];
    if (block < coverage_.first_block ||
        block >= coverage_.first_block + block_digests_.size()) {
      throw std::out_of_range("visit_block outside coverage");
    }
    const support::ByteView content =
        contents.empty() ? memory_.block_view(block) : contents[i];
    const std::size_t rel = block - coverage_.first_block;
    if (!visit_times_[rel]) ++visited_count_;
    visit_times_[rel] = now;

    const bool live = cache_ != nullptr && content.size() == memory_.block_size() &&
                      content.data() == memory_.block_view(block).data();
    if (live) {
      const std::uint64_t generation = memory_.block_generation(block);
      if (const Digest* hit = cache_->lookup(block, generation, hash_, mac_, key_fp_)) {
        if (journal_ != nullptr) {
          journal_->append(now, journal_actor_, 0, 0, obs::JournalEventKind::kCacheHit,
                           block, generation);
        }
        block_digests_[rel] = *hit;
        continue;
      }
      if (journal_ != nullptr) {
        journal_->append(now, journal_actor_, 0, 0, obs::JournalEventKind::kCacheMiss,
                         block, generation);
      }
      batch_contents_.push_back(content);
      batch_outs_.push_back(&block_digests_[rel]);
      batch_stores_.push_back({block, generation, true});
      continue;
    }
    batch_contents_.push_back(content);
    batch_outs_.push_back(&block_digests_[rel]);
    batch_stores_.push_back({block, 0, false});
  }

  digester_.digest_batch(batch_contents_, batch_outs_);

  for (std::size_t i = 0; i < batch_stores_.size(); ++i) {
    const PendingStore& ps = batch_stores_[i];
    if (ps.store) {
      cache_->store(ps.block, ps.generation, hash_, mac_, key_fp_, *batch_outs_[i]);
    }
  }
}

support::Bytes Measurement::block_digest(MacKind mac, crypto::HashKind hash,
                                         support::ByteView key,
                                         support::ByteView block) {
  BlockDigester digester(mac, hash, key);
  Digest out;
  digester.digest(block, out);
  return out.to_bytes();
}

namespace {

/// Context header shared by both combiners.
support::Bytes combine_header(const MeasurementContext& context) {
  support::Bytes header;
  support::append(header, support::to_bytes(context.device_id));
  support::append_u32_be(header, static_cast<std::uint32_t>(context.challenge.size()));
  support::append(header, context.challenge);
  support::append_u64_be(header, context.counter);
  return header;
}

}  // namespace

support::Bytes Measurement::combine(const std::vector<Digest>& digests,
                                    crypto::HashKind hash, support::ByteView key,
                                    const MeasurementContext& context, MacKind mac_kind) {
  MacEngine mac(mac_kind, hash, key);
  support::Bytes header = combine_header(context);
  support::append_u64_be(header, digests.size());
  mac.update(header);
  for (const auto& d : digests) mac.update(d.view());
  return mac.finalize();
}

support::Bytes Measurement::combine_root(support::ByteView tree_root,
                                         crypto::HashKind hash, support::ByteView key,
                                         const MeasurementContext& context,
                                         MacKind mac_kind) {
  MacEngine mac(mac_kind, hash, key);
  mac.update(support::to_bytes("mtree-root/v1"));
  mac.update(combine_header(context));
  mac.update(tree_root);
  return mac.finalize();
}

support::Bytes Measurement::finalize() const {
  if (!complete()) throw std::logic_error("Measurement::finalize before all blocks visited");
  return combine(block_digests_, hash_, key_, context_, mac_);
}

support::Bytes Measurement::expected(support::ByteView image, std::size_t block_size,
                                     crypto::HashKind hash, support::ByteView key,
                                     const MeasurementContext& context, MacKind mac) {
  if (block_size == 0 || image.size() % block_size != 0) {
    throw std::invalid_argument("golden image size must be a multiple of block_size");
  }
  const std::size_t n = image.size() / block_size;
  BlockDigester digester(mac, hash, key);
  std::vector<Digest> digests(n);
  std::vector<support::ByteView> views;
  std::vector<Digest*> outs;
  views.reserve(n);
  outs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    views.push_back(image.subspan(i * block_size, block_size));
    outs.push_back(&digests[i]);
  }
  digester.digest_batch(views, outs);
  return combine(digests, hash, key, context, mac);
}

}  // namespace rasc::attest
