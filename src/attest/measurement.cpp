#include "src/attest/measurement.hpp"

#include <stdexcept>

namespace rasc::attest {

Measurement::Measurement(const sim::DeviceMemory& memory, crypto::HashKind hash,
                         support::ByteView key, MeasurementContext context,
                         Coverage coverage, MacKind mac)
    : memory_(memory),
      hash_(hash),
      key_(key.begin(), key.end()),
      context_(std::move(context)),
      coverage_(coverage),
      mac_(mac) {
  const std::size_t n = coverage_.resolve_count(memory);
  if (coverage_.first_block + n > memory.block_count()) {
    throw std::out_of_range("Measurement coverage exceeds memory");
  }
  block_digests_.assign(n, {});
  visit_times_.assign(n, std::nullopt);
}

void Measurement::visit_block(std::size_t block, sim::Time now) {
  visit_block(block, now, memory_.block_view(block));
}

void Measurement::visit_block(std::size_t block, sim::Time now,
                              support::ByteView content) {
  if (block < coverage_.first_block ||
      block >= coverage_.first_block + block_digests_.size()) {
    throw std::out_of_range("visit_block outside coverage");
  }
  const std::size_t rel = block - coverage_.first_block;
  if (!visit_times_[rel]) ++visited_count_;
  visit_times_[rel] = now;
  block_digests_[rel] = block_digest(mac_, hash_, key_, content);
}

support::Bytes Measurement::block_digest(MacKind mac, crypto::HashKind hash,
                                         support::ByteView key,
                                         support::ByteView block) {
  if (mac == MacKind::kHmac) return crypto::hash_oneshot(hash, block);
  // Encryption-based F: a per-block CBC-MAC under a key derived from the
  // attestation key (domain-separated from the combiner key).
  const auto block_key = support::concat({key, support::to_bytes("/block")});
  return MacEngine::compute(MacKind::kCbcMac, hash, block_key, block);
}

support::Bytes Measurement::combine(const std::vector<support::Bytes>& digests,
                                    crypto::HashKind hash, support::ByteView key,
                                    const MeasurementContext& context, MacKind mac_kind) {
  MacEngine mac(mac_kind, hash, key);
  support::Bytes header;
  support::append(header, support::to_bytes(context.device_id));
  support::append_u32_be(header, static_cast<std::uint32_t>(context.challenge.size()));
  support::append(header, context.challenge);
  support::append_u64_be(header, context.counter);
  support::append_u64_be(header, digests.size());
  mac.update(header);
  for (const auto& d : digests) mac.update(d);
  return mac.finalize();
}

support::Bytes Measurement::finalize() const {
  if (!complete()) throw std::logic_error("Measurement::finalize before all blocks visited");
  return combine(block_digests_, hash_, key_, context_, mac_);
}

support::Bytes Measurement::expected(support::ByteView image, std::size_t block_size,
                                     crypto::HashKind hash, support::ByteView key,
                                     const MeasurementContext& context, MacKind mac) {
  if (block_size == 0 || image.size() % block_size != 0) {
    throw std::invalid_argument("golden image size must be a multiple of block_size");
  }
  const std::size_t n = image.size() / block_size;
  std::vector<support::Bytes> digests(n);
  for (std::size_t i = 0; i < n; ++i) {
    digests[i] = block_digest(mac, hash, key, image.subspan(i * block_size, block_size));
  }
  return combine(digests, hash, key, context, mac);
}

}  // namespace rasc::attest
