#include "src/attest/verifier.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasc::attest {

namespace {

crypto::HmacDrbg make_challenge_drbg(std::uint64_t challenge_seed) {
  support::Bytes seed(8);
  support::put_u64_be(seed, challenge_seed);
  return crypto::HmacDrbg(seed);
}

}  // namespace

Verifier::Verifier(crypto::HashKind hash, support::Bytes key, support::Bytes golden_image,
                   std::size_t block_size, std::uint64_t challenge_seed, MacKind mac)
    : hash_(hash),
      mac_(mac),
      key_(std::move(key)),
      block_size_(block_size),
      challenge_drbg_(make_challenge_drbg(challenge_seed)) {
  if (block_size_ == 0 || golden_image.size() % block_size_ != 0) {
    throw std::invalid_argument("Verifier: golden image must be whole blocks");
  }
  golden_ = std::make_shared<const GoldenMeasurement>(golden_image, block_size_, hash_,
                                                      key_, mac_);
}

Verifier::Verifier(std::shared_ptr<const GoldenMeasurement> golden, support::Bytes key,
                   std::uint64_t challenge_seed)
    : hash_(golden->hash_kind()),
      mac_(golden->mac_kind()),
      key_(std::move(key)),
      golden_(std::move(golden)),
      block_size_(golden_->block_size()),
      challenge_drbg_(make_challenge_drbg(challenge_seed)) {}

support::Bytes Verifier::issue_challenge(std::size_t size) {
  outstanding_challenge_ = challenge_drbg_.generate(size);
  return *outstanding_challenge_;
}

support::Bytes Verifier::expected_measurement(const MeasurementContext& context) const {
  return golden_->expected(context);
}

VerifyOutcome Verifier::verify(const Report& report, bool expect_challenge) {
  VerifyOutcome out;
  out.mac_ok = report_mac_valid(report, key_);

  if (expect_challenge) {
    out.challenge_ok = outstanding_challenge_.has_value() &&
                       support::ct_equal(report.challenge, *outstanding_challenge_);
  } else {
    out.counter_ok = !last_counter_seen_ || report.counter > last_counter_;
  }

  MeasurementContext context{report.device_id, report.challenge, report.counter};
  if (report.tree_root.empty()) {
    out.digest_ok = support::ct_equal(report.measurement, expected_measurement(context));
  } else {
    out.used_tree = true;
    out.total_blocks = golden_->block_count();
    // Tree mode compares against the MAC of the *golden* root — same
    // verdict as the flat comparison (both are injective in the memory
    // content), different domain.
    out.digest_ok =
        support::ct_equal(report.measurement, golden_->expected_tree(context));
    // Is the carried root the one the measurement was computed from?  If
    // not, the proofs prove statements about some other tree and must not
    // steer localization.
    out.tree_root_bound = support::ct_equal(
        report.measurement,
        Measurement::combine_root(report.tree_root, hash_, key_, context, mac_));
    if (out.mac_ok && out.tree_root_bound) {
      for (const auto& proof : report.proofs) {
        if (proof.total_leaves != golden_->block_count() ||
            !proof.verify(report.tree_root)) {
          out.proofs_ok = false;  // tampered / mis-shaped proof: discard
          continue;
        }
        // Proof is sound relative to the device's root; any leaf digest
        // differing from the golden digest localizes a divergent block.
        std::size_t run_start = 0;
        std::size_t run_len = 0;
        for (std::size_t i = 0; i < proof.leaves.size(); ++i) {
          const std::size_t block = proof.first_leaf + i;
          if (proof.leaves[i] == golden_->block_digest(block)) {
            if (run_len != 0) out.localized.push_back({run_start, run_len});
            run_len = 0;
          } else {
            if (run_len == 0) run_start = block;
            ++run_len;
          }
        }
        if (run_len != 0) out.localized.push_back({run_start, run_len});
      }
      // Proofs arrive in leaf order but may split one divergent region at
      // a proof boundary — merge touching ranges so the caller sees each
      // infected region once.
      std::sort(out.localized.begin(), out.localized.end(),
                [](const BlockRange& a, const BlockRange& b) { return a.first < b.first; });
      std::vector<BlockRange> merged;
      for (const auto& range : out.localized) {
        if (!merged.empty() && range.first <= merged.back().first + merged.back().count) {
          const std::size_t end =
              std::max(merged.back().first + merged.back().count, range.first + range.count);
          merged.back().count = end - merged.back().first;
        } else {
          merged.push_back(range);
        }
      }
      out.localized = std::move(merged);
    }
  }

  if (out.ok()) {
    last_counter_seen_ = true;
    last_counter_ = report.counter;
    if (expect_challenge) outstanding_challenge_.reset();
  }
  if (metrics_ != nullptr) {
    metrics_->counter("verifier.verify_total").inc();
    if (!out.ok()) metrics_->counter("verifier.verify_fail").inc();
    if (!out.mac_ok) metrics_->counter("verifier.fail_mac").inc();
    if (!out.digest_ok) metrics_->counter("verifier.fail_digest").inc();
    if (!out.challenge_ok) metrics_->counter("verifier.fail_challenge").inc();
    if (!out.counter_ok) metrics_->counter("verifier.fail_counter").inc();
    if (out.used_tree) {
      if (!out.tree_root_bound) metrics_->counter("verifier.fail_tree_binding").inc();
      if (!out.proofs_ok) metrics_->counter("verifier.fail_proof").inc();
      if (!out.localized.empty()) {
        metrics_->counter("verifier.localized_ranges").inc(out.localized.size());
      }
    }
  }
  return out;
}

void Verifier::set_golden_image(support::Bytes image) {
  if (image.size() % block_size_ != 0) {
    throw std::invalid_argument("golden image must be whole blocks");
  }
  golden_ = std::make_shared<const GoldenMeasurement>(image, block_size_, hash_, key_, mac_);
}

}  // namespace rasc::attest
