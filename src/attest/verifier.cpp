#include "src/attest/verifier.hpp"

#include <stdexcept>

namespace rasc::attest {

namespace {

crypto::HmacDrbg make_challenge_drbg(std::uint64_t challenge_seed) {
  support::Bytes seed(8);
  support::put_u64_be(seed, challenge_seed);
  return crypto::HmacDrbg(seed);
}

}  // namespace

Verifier::Verifier(crypto::HashKind hash, support::Bytes key, support::Bytes golden_image,
                   std::size_t block_size, std::uint64_t challenge_seed, MacKind mac)
    : hash_(hash),
      mac_(mac),
      key_(std::move(key)),
      block_size_(block_size),
      challenge_drbg_(make_challenge_drbg(challenge_seed)) {
  if (block_size_ == 0 || golden_image.size() % block_size_ != 0) {
    throw std::invalid_argument("Verifier: golden image must be whole blocks");
  }
  golden_ = std::make_shared<const GoldenMeasurement>(golden_image, block_size_, hash_,
                                                      key_, mac_);
}

Verifier::Verifier(std::shared_ptr<const GoldenMeasurement> golden, support::Bytes key,
                   std::uint64_t challenge_seed)
    : hash_(golden->hash_kind()),
      mac_(golden->mac_kind()),
      key_(std::move(key)),
      golden_(std::move(golden)),
      block_size_(golden_->block_size()),
      challenge_drbg_(make_challenge_drbg(challenge_seed)) {}

support::Bytes Verifier::issue_challenge(std::size_t size) {
  outstanding_challenge_ = challenge_drbg_.generate(size);
  return *outstanding_challenge_;
}

support::Bytes Verifier::expected_measurement(const MeasurementContext& context) const {
  return golden_->expected(context);
}

VerifyOutcome Verifier::verify(const Report& report, bool expect_challenge) {
  VerifyOutcome out;
  out.mac_ok = report_mac_valid(report, key_);

  if (expect_challenge) {
    out.challenge_ok = outstanding_challenge_.has_value() &&
                       support::ct_equal(report.challenge, *outstanding_challenge_);
  } else {
    out.counter_ok = !last_counter_seen_ || report.counter > last_counter_;
  }

  MeasurementContext context{report.device_id, report.challenge, report.counter};
  out.digest_ok = support::ct_equal(report.measurement, expected_measurement(context));

  if (out.ok()) {
    last_counter_seen_ = true;
    last_counter_ = report.counter;
    if (expect_challenge) outstanding_challenge_.reset();
  }
  if (metrics_ != nullptr) {
    metrics_->counter("verifier.verify_total").inc();
    if (!out.ok()) metrics_->counter("verifier.verify_fail").inc();
    if (!out.mac_ok) metrics_->counter("verifier.fail_mac").inc();
    if (!out.digest_ok) metrics_->counter("verifier.fail_digest").inc();
    if (!out.challenge_ok) metrics_->counter("verifier.fail_challenge").inc();
    if (!out.counter_ok) metrics_->counter("verifier.fail_counter").inc();
  }
  return out;
}

void Verifier::set_golden_image(support::Bytes image) {
  if (image.size() % block_size_ != 0) {
    throw std::invalid_argument("golden image must be whole blocks");
  }
  golden_ = std::make_shared<const GoldenMeasurement>(image, block_size_, hash_, key_, mac_);
}

}  // namespace rasc::attest
