#include "src/attest/mac_engine.hpp"

#include <stdexcept>

#include "src/crypto/hash.hpp"

namespace rasc::attest {

std::string mac_kind_name(MacKind kind) {
  switch (kind) {
    case MacKind::kHmac: return "HMAC";
    case MacKind::kCbcMac: return "AES-CBC-MAC";
  }
  return "?";
}

MacEngine::MacEngine(MacKind kind, crypto::HashKind hash, support::ByteView key)
    : kind_(kind) {
  switch (kind) {
    case MacKind::kHmac:
      hmac_ = std::make_unique<crypto::Hmac>(hash, key);
      return;
    case MacKind::kCbcMac: {
      if (key.size() == 16 || key.size() == 24 || key.size() == 32) {
        cbc_ = std::make_unique<crypto::CbcMac>(key);
      } else {
        // Derive a 16-byte AES key from arbitrary provisioning material.
        auto derived = crypto::hash_oneshot(crypto::HashKind::kSha256, key);
        derived.resize(16);
        cbc_ = std::make_unique<crypto::CbcMac>(derived);
        support::secure_wipe(derived);
      }
      return;
    }
  }
  throw std::invalid_argument("unknown MacKind");
}

void MacEngine::update(support::ByteView data) {
  if (hmac_) {
    hmac_->update(data);
  } else {
    cbc_->update(data);
  }
}

support::Bytes MacEngine::finalize() {
  return hmac_ ? hmac_->finalize() : cbc_->finalize();
}

void MacEngine::finalize_into(support::MutableByteView out) {
  if (hmac_) {
    hmac_->finalize_into(out);
  } else {
    cbc_->finalize_into(out);
  }
}

void MacEngine::reset() {
  if (hmac_) {
    hmac_->reset();
  } else {
    cbc_->reset();
  }
}

std::size_t MacEngine::tag_size() const noexcept {
  return hmac_ ? hmac_->tag_size() : crypto::CbcMac::kTagSize;
}

support::Bytes MacEngine::compute(MacKind kind, crypto::HashKind hash,
                                  support::ByteView key, support::ByteView message) {
  MacEngine engine(kind, hash, key);
  engine.update(message);
  return engine.finalize();
}

}  // namespace rasc::attest
