#include "src/attest/remediation.hpp"

namespace rasc::attest {

/// The ROM update routine: rewriting flash occupies the CPU like any
/// other work, as one non-preemptible segment (updates are atomic —
/// half-written firmware is worse than infected firmware).
class RemediationService::UpdateProcess final : public sim::Process {
 public:
  explicit UpdateProcess(sim::Device& device)
      : sim::Process("rom/update", /*priority=*/200), device_(device) {}

  void begin(support::Bytes image, std::function<void()> on_done) {
    image_ = std::move(image);
    on_done_ = std::move(on_done);
    pending_ = true;
    device_.cpu().make_ready(*this);
  }

  std::optional<sim::Segment> next_segment() override {
    if (!pending_) return std::nullopt;
    pending_ = false;
    const sim::Duration cost = device_.model().copy_time(image_.size());
    return sim::Segment{cost, [this] {
                          // The ROM routine bypasses MPU locks (it IS the
                          // trusted code base); model by unlocking first.
                          device_.memory().unlock_all();
                          (void)device_.memory().write(0, image_, device_.sim().now(),
                                                       sim::Actor::kSystem);
                          if (on_done_) on_done_();
                        }};
  }

 private:
  sim::Device& device_;
  support::Bytes image_;
  std::function<void()> on_done_;
  bool pending_ = false;
};

RemediationService::RemediationService(sim::Device& device, Verifier& verifier,
                                       AttestationProcess& mp, sim::Link& vrf_to_prv,
                                       sim::Link& prv_to_vrf, support::Bytes golden)
    : device_(device),
      verifier_(verifier),
      protocol_(device, verifier, mp, vrf_to_prv, prv_to_vrf),
      vrf_to_prv_(vrf_to_prv),
      golden_(std::move(golden)),
      updater_(std::make_unique<UpdateProcess>(device)) {}

RemediationService::~RemediationService() = default;

void RemediationService::run(std::uint64_t counter,
                             std::function<void(RemediationOutcome)> done) {
  auto outcome = std::make_shared<RemediationOutcome>();
  protocol_.run(counter, [this, outcome, counter,
                          done = std::move(done)](OnDemandTimings first) mutable {
    outcome->first_verdict = first.outcome;
    if (first.outcome.ok()) {
      outcome->final_verdict = first.outcome;
      outcome->reattested_ok = true;
      outcome->finished_at = device_.sim().now();
      done(*outcome);
      return;
    }
    // Compromised: ship the golden image (its size dominates the wire
    // time) and re-flash on arrival.
    outcome->attempted = true;
    vrf_to_prv_.send(golden_, [this, outcome, counter,
                               done = std::move(done)](support::Bytes image) mutable {
      updater_->begin(std::move(image), [this, outcome, counter,
                                         done = std::move(done)]() mutable {
        protocol_.run(counter + 1, [this, outcome, done = std::move(done)](
                                       OnDemandTimings second) mutable {
          outcome->final_verdict = second.outcome;
          outcome->reattested_ok = second.outcome.ok();
          outcome->finished_at = device_.sim().now();
          done(*outcome);
        });
      });
    });
  });
}

}  // namespace rasc::attest
