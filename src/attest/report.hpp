#pragma once
/// \file report.hpp
/// Attestation report: the measurement output plus its binding metadata,
/// authenticated with the shared attestation key (MAC) and optionally a
/// digital signature when non-repudiation is required (Section 2.4).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/hash.hpp"
#include "src/crypto/sig.hpp"
#include "src/mtree/mtree.hpp"
#include "src/sim/time.hpp"
#include "src/support/bytes.hpp"

namespace rasc::attest {

struct Report {
  std::string device_id;
  support::Bytes challenge;       ///< empty for self-measurements
  std::uint64_t counter = 0;      ///< monotonic counter / schedule slot
  sim::Time t_start = 0;          ///< t_s of the measurement
  sim::Time t_end = 0;            ///< t_e of the measurement
  crypto::HashKind hash = crypto::HashKind::kSha256;
  support::Bytes measurement;     ///< output of Measurement::finalize()

  /// Tree-mode extension (empty in flat mode).  When tree_root is
  /// non-empty the serialized body grows a magic-tagged trailer carrying
  /// the root and the subtree proofs for this round's re-measured leaf
  /// ranges — all covered by the report MAC, so tampering with a proof is
  /// indistinguishable from tampering with the measurement itself.  A
  /// flat-mode report serializes byte-identically to the pre-tree wire.
  support::Bytes tree_root;
  std::vector<mtree::MtreeProof> proofs;

  support::Bytes mac;             ///< HMAC over the serialized body
  support::Bytes signature;       ///< optional hash-and-sign signature

  /// Canonical serialization of everything the MAC/signature covers.
  support::Bytes serialize_body() const;
};

/// Compute the report MAC with the shared attestation key.
support::Bytes report_mac(const Report& report, support::ByteView key);

/// MAC the report in place.
void authenticate_report(Report& report, support::ByteView key);

/// Attach a signature (non-repudiation mode).
void sign_report(Report& report, crypto::Signer& signer);

/// Constant-time MAC check.
bool report_mac_valid(const Report& report, support::ByteView key);

/// Signature check (false if the report carries no signature).
bool report_signature_valid(const Report& report, const crypto::Signer& signer);

/// Full wire encoding: serialize_body() followed by the length-prefixed
/// MAC and signature.  This is what actually crosses the simulated link,
/// so in-transit corruption is observable on the verifier side.
support::Bytes serialize_report_wire(const Report& report);

/// Parse a wire-encoded report.  Returns std::nullopt on truncated or
/// structurally malformed input (a corrupted length field, trailing
/// garbage, ...); a corrupted but well-formed wire parses fine and fails
/// MAC verification instead.
std::optional<Report> parse_report_wire(support::ByteView wire);

}  // namespace rasc::attest
