#pragma once
/// \file prover.hpp
/// The measurement process MP as a schedulable CPU process, covering the
/// paper's execution modalities:
///
///  - ExecutionMode::kAtomic       — SMART/HYDRA style: the entire
///    measurement (plus finalization) is one non-preemptible segment;
///    nothing else runs between t_s and t_e.
///  - ExecutionMode::kInterruptible — TrustLite/SMARM style: one segment
///    per memory block; higher-priority tasks run between blocks.
///
///  - TraversalOrder::kSequential     — blocks 0..n-1 in order.
///  - TraversalOrder::kShuffledSecret — SMARM: a fresh secret permutation
///    per measurement, derived from the attestation key and counter via
///    HMAC-DRBG (malware can observe *progress* but not the order).
///
/// A LockPolicy receives the Figure 4 timeline hooks (t_s, per-block, t_e,
/// t_r).  An observer callback reports per-block progress — that is the
/// only measurement-internal information the adversary models receive.

#include <functional>
#include <optional>

#include "src/attest/lock_policy.hpp"
#include "src/attest/measurement.hpp"
#include "src/attest/report.hpp"
#include "src/crypto/drbg.hpp"
#include "src/mtree/incremental.hpp"
#include "src/sim/device.hpp"

namespace rasc::attest {

enum class ExecutionMode { kAtomic, kInterruptible };
enum class TraversalOrder { kSequential, kShuffledSecret };

std::string execution_mode_name(ExecutionMode mode);
std::string traversal_order_name(TraversalOrder order);

struct ProverConfig {
  crypto::HashKind hash = crypto::HashKind::kSha256;
  /// Hash-based (HMAC) or encryption-based (AES-CBC-MAC) F (Section 2.4).
  MacKind mac = MacKind::kHmac;
  ExecutionMode mode = ExecutionMode::kAtomic;
  TraversalOrder order = TraversalOrder::kSequential;
  int priority = 10;
  Coverage coverage{};
  /// Optional signature scheme for non-repudiation; adds sign_time to the
  /// finalization segment and attaches a signature when a Signer is set.
  std::optional<crypto::SigKind> signature;
  /// Section 2.3 policy for high-entropy data regions: zero the given
  /// blocks at t_s so malware cannot hide in them and the verifier can
  /// expect zeros instead of enumerating volatile states.
  std::optional<Coverage> zero_region;
  /// Consult the generation-keyed digest cache for unmodified blocks.
  /// Accelerates host wall-clock only — simulated timing and results are
  /// identical either way (cache hits are bit-identical by construction).
  bool use_digest_cache = true;
  /// Merkle-tree incremental measurement (ROADMAP item 2).  The process
  /// maintains an IncrementalTree across rounds: each round visits only
  /// the blocks written since the last one, re-hashes O(dirty * log n)
  /// tree nodes, MACs the *root* (Measurement::combine_root) and attaches
  /// subtree proofs for the re-measured ranges so the verifier can
  /// localize divergent blocks.  Requires full coverage and rejects
  /// snapshotting lock policies and zero_region (both would decouple the
  /// measured bytes from the generation counters the tree keys on).
  /// Changing this changes the report wire format — see report.hpp.
  bool use_merkle_tree = false;
  /// Leaves carried per subtree proof; longer dirty runs are split (the
  /// verifier re-merges adjacent localized ranges).
  std::size_t max_proof_leaves = 64;
};

struct AttestationResult {
  Report report;
  sim::Time t_s = 0;  ///< measurement start (lock engaged)
  sim::Time t_e = 0;  ///< measurement end (report ready)
  sim::Time t_r = 0;  ///< lock release (== t_e without an -Ext policy)
  std::vector<std::size_t> order;                    ///< traversal actually used
  std::vector<std::optional<sim::Time>> visit_times;  ///< per covered block
};

class AttestationProcess final : public sim::Process {
 public:
  /// `policy` may be nullptr (No-Lock).  The device, policy and signer
  /// must outlive the process.
  AttestationProcess(sim::Device& device, ProverConfig config,
                     LockPolicy* policy = nullptr);

  /// Per-block progress hook: called as (blocks_done, total_blocks) after
  /// every visited block in interruptible mode, and once with (n, n) after
  /// an atomic measurement completes.
  void set_observer(std::function<void(std::size_t, std::size_t)> observer) {
    observer_ = std::move(observer);
  }

  void set_signer(crypto::Signer* signer) { signer_ = signer; }

  /// The process-owned digest cache (persists across measurements, so a
  /// second ERASMUS round only rehashes blocks written since the first).
  /// Attach a MetricsRegistry via cache.set_metrics() for hit/miss export.
  DigestCache& digest_cache() noexcept { return digest_cache_; }

  /// Use an externally owned digest cache instead of the process-owned
  /// one (nullptr reverts).  The fleet verifier shares one cache across
  /// every prover of a shard whose provisioned content is identical —
  /// generation-per-content must hold for all sharers, which a shard
  /// guarantees by construction (same image, same key, same infection
  /// patch).  The cache must outlive the process; it is resized to this
  /// device's block count on the next start().
  void set_shared_digest_cache(DigestCache* cache) noexcept {
    shared_digest_cache_ = cache;
  }

  /// Begin a measurement; `done` fires at t_e with the full result.
  /// Throws std::logic_error if a measurement is already in flight.
  void start(MeasurementContext context, std::function<void(AttestationResult)> done);

  /// Tree mode only: build the tree from current memory host-side (a
  /// provisioning step, outside simulated time), wire the memory's
  /// generation observer to it, and switch dirty discovery to observed
  /// mode.  After priming, a round with no intervening writes visits zero
  /// blocks.  Claims the device memory's single observer slot.
  void prime_tree();

  /// As prime_tree(), but seed the leaves from externally computed digests
  /// (one per block, block order) instead of re-digesting memory — the
  /// fleet verifier primes a whole shard wave from the shard's golden
  /// digests in one multi-lane batch.  The caller must guarantee
  /// leaves[b] digests block b's *current* content under this prover's
  /// (mac, hash, key) configuration.
  void prime_tree_from(std::span<const Digest> leaves);

  /// The incremental tree (tree mode, after the first round or
  /// prime_tree(); nullptr otherwise) — exposed for benches and the fleet
  /// aggregation layer.
  const mtree::IncrementalTree* tree() const noexcept {
    return tree_ ? &*tree_ : nullptr;
  }

  /// Tree mode: drop the proof backlog.  Reports prove every block dirtied
  /// since this was last called — not just since the previous report — so
  /// a report lost in transit cannot lose localization; the session calls
  /// this once a round resolves decisively (some report reached Vrf).
  void clear_proof_backlog() noexcept;

  bool busy() const noexcept { return stage_ != Stage::kIdle; }

  /// Lifetime totals across all measurements this process completed —
  /// the session layer diffs these around a round to price retries
  /// (prover CPU time spent on measurements whose reports never decided
  /// anything).
  std::size_t measurements_completed() const noexcept { return measurements_completed_; }
  sim::Duration total_measure_time() const noexcept { return total_measure_time_; }

  /// Cross-round process state for hibernation: the lifetime totals the
  /// session layer diffs, plus the unacknowledged proof backlog (tree
  /// mode).  Capture only while idle; restore into a freshly constructed
  /// process after re-provisioning (and, in tree mode, after the tree is
  /// re-primed from the rebuilt memory).
  struct ProcessState {
    std::size_t measurements_completed = 0;
    sim::Duration total_measure_time = 0;
    std::vector<std::uint32_t> proof_backlog;
  };

  ProcessState save_process_state() const;
  void restore_process_state(const ProcessState& s);

  /// Cost of measuring one block / finalizing, from the device model
  /// (exposed so benches can report the theoretical interrupt latency).
  sim::Duration block_cost() const;
  sim::Duration finalize_cost() const;

  /// Trace row for this prover's session/measure spans and the t_s, t_e,
  /// t_r instants: "attest/<device-id>".
  const std::string& trace_track() const noexcept { return trace_track_; }

  // sim::Process
  std::optional<sim::Segment> next_segment() override;

 private:
  enum class Stage { kIdle, kLock, kBlocks, kCombine };

  void complete_lock();
  void complete_atomic();
  void complete_block();
  void complete_combine();
  void finish();
  std::vector<std::size_t> make_order();
  void ensure_tree();
  void visit_one(std::size_t block, sim::Time visit_time);

  sim::Device& device_;
  ProverConfig config_;
  LockPolicy* policy_;
  DigestCache digest_cache_;
  DigestCache* shared_digest_cache_ = nullptr;
  std::string trace_track_;
  crypto::Signer* signer_ = nullptr;
  std::function<void(std::size_t, std::size_t)> observer_;

  Stage stage_ = Stage::kIdle;
  std::size_t measurements_completed_ = 0;
  sim::Duration total_measure_time_ = 0;
  std::optional<Measurement> measurement_;
  std::optional<mtree::IncrementalTree> tree_;     ///< persists across rounds
  std::optional<BlockDigester> tree_digester_;     ///< host-side priming path
  std::size_t planned_nodes_ = 0;  ///< tree nodes this round will re-hash
  sim::Time tree_now_ = 0;         ///< visit time plumbed into the leaf fn
  std::vector<bool> proof_backlog_flag_;       ///< block -> in backlog
  std::vector<std::uint32_t> proof_backlog_;   ///< unacknowledged dirty blocks
  std::vector<std::size_t> order_;
  std::vector<support::ByteView> batch_contents_;  ///< complete_atomic scratch
  std::size_t next_index_ = 0;
  AttestationResult result_;
  std::function<void(AttestationResult)> done_;
};

}  // namespace rasc::attest
