#include "src/attest/report.hpp"

#include "src/crypto/hmac.hpp"

namespace rasc::attest {

namespace {
constexpr crypto::HashKind kReportMacHash = crypto::HashKind::kSha256;

/// Tag opening the tree-mode trailer ('MTRE').  A legacy wire can never
/// start a MAC section with it: the value is far above any real MAC
/// length, so the parser's peek is unambiguous.
constexpr std::uint32_t kMtreeMagic = 0x4d545245;
}

support::Bytes Report::serialize_body() const {
  support::Bytes out;
  support::append_u32_be(out, static_cast<std::uint32_t>(device_id.size()));
  support::append(out, support::to_bytes(device_id));
  support::append_u32_be(out, static_cast<std::uint32_t>(challenge.size()));
  support::append(out, challenge);
  support::append_u64_be(out, counter);
  support::append_u64_be(out, t_start);
  support::append_u64_be(out, t_end);
  support::append_u32_be(out, static_cast<std::uint32_t>(hash));
  support::append_u32_be(out, static_cast<std::uint32_t>(measurement.size()));
  support::append(out, measurement);
  if (!tree_root.empty()) {
    support::append_u32_be(out, kMtreeMagic);
    support::append_u32_be(out, static_cast<std::uint32_t>(tree_root.size()));
    support::append(out, tree_root);
    support::append_u32_be(out, static_cast<std::uint32_t>(proofs.size()));
    for (const auto& proof : proofs) {
      const support::Bytes wire = proof.serialize();
      support::append_u32_be(out, static_cast<std::uint32_t>(wire.size()));
      support::append(out, wire);
    }
  }
  return out;
}

support::Bytes report_mac(const Report& report, support::ByteView key) {
  return crypto::Hmac::compute(kReportMacHash, key, report.serialize_body());
}

void authenticate_report(Report& report, support::ByteView key) {
  report.mac = report_mac(report, key);
}

void sign_report(Report& report, crypto::Signer& signer) {
  report.signature = signer.sign(crypto::HashKind::kSha256, report.serialize_body());
}

bool report_mac_valid(const Report& report, support::ByteView key) {
  return support::ct_equal(report_mac(report, key), report.mac);
}

bool report_signature_valid(const Report& report, const crypto::Signer& signer) {
  if (report.signature.empty()) return false;
  return signer.verify(crypto::HashKind::kSha256, report.serialize_body(),
                       report.signature);
}

support::Bytes serialize_report_wire(const Report& report) {
  support::Bytes out = report.serialize_body();
  support::append_u32_be(out, static_cast<std::uint32_t>(report.mac.size()));
  support::append(out, report.mac);
  support::append_u32_be(out, static_cast<std::uint32_t>(report.signature.size()));
  support::append(out, report.signature);
  return out;
}

namespace {

/// Bounds-checked sequential reader over a wire buffer.
struct WireReader {
  support::ByteView wire;
  std::size_t pos = 0;
  bool ok = true;

  bool has(std::size_t n) const noexcept { return ok && wire.size() - pos >= n; }

  std::uint32_t u32() noexcept {
    if (!has(4)) {
      ok = false;
      return 0;
    }
    const std::uint32_t v = support::get_u32_be(wire.subspan(pos, 4));
    pos += 4;
    return v;
  }

  std::uint64_t u64() noexcept {
    if (!has(8)) {
      ok = false;
      return 0;
    }
    const std::uint64_t v = support::get_u64_be(wire.subspan(pos, 8));
    pos += 8;
    return v;
  }

  support::Bytes bytes(std::size_t n) noexcept {
    if (!has(n)) {
      ok = false;
      return {};
    }
    support::Bytes out(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                       wire.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }
};

}  // namespace

std::optional<Report> parse_report_wire(support::ByteView wire) {
  WireReader r{wire};
  Report report;
  const std::uint32_t id_len = r.u32();
  report.device_id = support::to_string(r.bytes(id_len));
  const std::uint32_t challenge_len = r.u32();
  report.challenge = r.bytes(challenge_len);
  report.counter = r.u64();
  report.t_start = r.u64();
  report.t_end = r.u64();
  report.hash = static_cast<crypto::HashKind>(r.u32());
  const std::uint32_t measurement_len = r.u32();
  report.measurement = r.bytes(measurement_len);
  // Tree-mode trailer?  A peek is safe because a MAC length can never
  // equal the magic (MACs are tens of bytes, the magic is > 10^9).
  if (r.has(4) && support::get_u32_be(r.wire.subspan(r.pos, 4)) == kMtreeMagic) {
    r.pos += 4;
    const std::uint32_t root_len = r.u32();
    report.tree_root = r.bytes(root_len);
    const std::uint32_t proof_count = r.u32();
    for (std::uint32_t i = 0; r.ok && i < proof_count; ++i) {
      const std::uint32_t proof_len = r.u32();
      if (!r.has(proof_len)) {
        r.ok = false;
        break;
      }
      std::size_t proof_pos = 0;
      auto proof =
          mtree::MtreeProof::parse(r.wire.subspan(r.pos, proof_len), proof_pos);
      if (!proof || proof_pos != proof_len) {
        r.ok = false;
        break;
      }
      report.proofs.push_back(std::move(*proof));
      r.pos += proof_len;
    }
    if (report.tree_root.empty()) r.ok = false;  // would not round-trip
  }
  const std::uint32_t mac_len = r.u32();
  report.mac = r.bytes(mac_len);
  const std::uint32_t sig_len = r.u32();
  report.signature = r.bytes(sig_len);
  if (!r.ok || r.pos != wire.size()) return std::nullopt;
  return report;
}

}  // namespace rasc::attest
