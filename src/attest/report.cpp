#include "src/attest/report.hpp"

#include "src/crypto/hmac.hpp"

namespace rasc::attest {

namespace {
constexpr crypto::HashKind kReportMacHash = crypto::HashKind::kSha256;
}

support::Bytes Report::serialize_body() const {
  support::Bytes out;
  support::append_u32_be(out, static_cast<std::uint32_t>(device_id.size()));
  support::append(out, support::to_bytes(device_id));
  support::append_u32_be(out, static_cast<std::uint32_t>(challenge.size()));
  support::append(out, challenge);
  support::append_u64_be(out, counter);
  support::append_u64_be(out, t_start);
  support::append_u64_be(out, t_end);
  support::append_u32_be(out, static_cast<std::uint32_t>(hash));
  support::append_u32_be(out, static_cast<std::uint32_t>(measurement.size()));
  support::append(out, measurement);
  return out;
}

support::Bytes report_mac(const Report& report, support::ByteView key) {
  return crypto::Hmac::compute(kReportMacHash, key, report.serialize_body());
}

void authenticate_report(Report& report, support::ByteView key) {
  report.mac = report_mac(report, key);
}

void sign_report(Report& report, crypto::Signer& signer) {
  report.signature = signer.sign(crypto::HashKind::kSha256, report.serialize_body());
}

bool report_mac_valid(const Report& report, support::ByteView key) {
  return support::ct_equal(report_mac(report, key), report.mac);
}

bool report_signature_valid(const Report& report, const crypto::Signer& signer) {
  if (report.signature.empty()) return false;
  return signer.verify(crypto::HashKind::kSha256, report.serialize_body(),
                       report.signature);
}

}  // namespace rasc::attest
