#pragma once
/// \file lock_policy.hpp
/// Strategy interface for the memory-locking mechanisms of Section 3.1.
/// The attestation process invokes the hooks at the paper's three timeline
/// points (Figure 4): t_s (measurement start), each block visit, t_e
/// (measurement end) and t_r (explicit release).  Implementations live in
/// src/locking; the default NullLockPolicy is the paper's No-Lock strawman.

#include <string>

#include "src/attest/measurement.hpp"
#include "src/sim/cpu_model.hpp"
#include "src/sim/memory.hpp"
#include "src/sim/time.hpp"

namespace rasc::attest {

class LockPolicy {
 public:
  virtual ~LockPolicy() = default;

  virtual std::string name() const = 0;

  /// Extra time the lock is held past t_e (t_r - t_e); 0 means release at
  /// t_e ("-Ext" variants return a positive delay).
  virtual sim::Duration release_delay() const { return 0; }

  /// t_s: measurement is about to read its first block.
  virtual void on_start(sim::DeviceMemory&, const Coverage&) {}

  /// A block has just been digested.
  virtual void on_block_visited(sim::DeviceMemory&, std::size_t /*block*/) {}

  /// t_e: the final digest has been computed.
  virtual void on_end(sim::DeviceMemory&, const Coverage&) {}

  /// t_r: the verifier-visible release point (== t_e when
  /// release_delay() == 0).
  virtual void on_release(sim::DeviceMemory&, const Coverage&) {}

  /// Extra one-time CPU cost charged inside the lock segment (e.g.
  /// Cpy-Lock's copy of the covered region).
  virtual sim::Duration start_cost(const sim::CpuModel&,
                                   std::uint64_t /*covered_bytes*/) const {
    return 0;
  }

  /// Where the measurement reads a block from.  Snapshot-based policies
  /// (Cpy-Lock) redirect reads to their copy; everyone else reads live
  /// memory.
  virtual support::ByteView block_source(const sim::DeviceMemory& memory,
                                         std::size_t block) const {
    return memory.block_view(block);
  }

  /// True when every read is effectively taken at t_s (snapshot
  /// semantics); the prover then records t_s as the visit time so the
  /// consistency analyzer sees the right instants.
  virtual bool snapshots_at_start() const { return false; }
};

/// No-Lock: memory stays writable throughout; no consistency guarantees.
class NullLockPolicy final : public LockPolicy {
 public:
  std::string name() const override { return "No-Lock"; }
};

}  // namespace rasc::attest
