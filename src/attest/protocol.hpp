#pragma once
/// \file protocol.hpp
/// On-demand RA protocol (paper Section 2.2, Figure 1):
///   (1) Vrf sends a challenge-bearing request,
///   (2) Prv receives it, authenticates it, and starts MP (deferral),
///   (3) Prv finishes MP and returns the report,
///   (4) Vrf receives and verifies.
/// Produces the full event timeline the figure illustrates.
///
/// Both legs cross the simulated link as authenticated wire payloads:
/// requests are sealed with the shared attestation key (the "authenticate
/// the request" step made explicit) and reports travel as their canonical
/// serialization, so dropped, duplicated or corrupted messages behave the
/// way they would on a real network.  The prover rejects requests that
/// fail authentication, replay an old counter, or arrive while a
/// measurement is already running — a retry layer above (ReliableSession)
/// can therefore re-send challenges without tripping the single-flight
/// measurement process.

#include <cstdint>
#include <functional>
#include <optional>

#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/sim/network.hpp"

namespace rasc::attest {

/// Challenge request as it crosses the wire: counter + challenge nonce,
/// authenticated with an HMAC under the shared attestation key so the
/// prover can drop forged or corrupted requests (Section 2.2 step 2).
struct ChallengeRequest {
  std::uint64_t counter = 0;
  support::Bytes challenge;
};

support::Bytes seal_challenge_request(const ChallengeRequest& request,
                                      support::ByteView key);
/// Verify and decode a request wire; std::nullopt when truncated or the
/// MAC does not check out.
std::optional<ChallengeRequest> open_challenge_request(support::ByteView wire,
                                                       support::ByteView key);

struct OnDemandTimings {
  sim::Time t_challenge_sent = 0;   ///< Vrf emits the request
  sim::Time t_request_received = 0; ///< request reaches Prv
  sim::Time t_mp_started = 0;       ///< MP dispatched (after auth/deferral)
  sim::Time t_s = 0;                ///< measurement start
  sim::Time t_e = 0;                ///< measurement end
  sim::Time t_r = 0;                ///< lock release
  sim::Time t_report_received = 0;  ///< report reaches Vrf
  sim::Time t_verified = 0;         ///< Vrf verdict ready
  /// False when the delivered report wire failed to parse (in-transit
  /// corruption garbled the structure); `outcome` is then all-fail.
  bool report_wire_ok = true;
  VerifyOutcome outcome;
  AttestationResult attestation;
};

struct OnDemandConfig {
  /// Request-authentication / task-teardown deferral on Prv before MP
  /// starts (the Figure 1 gap between arrival and t_s).
  sim::Duration request_auth_delay = 300 * sim::kMicrosecond;
  /// Vrf-side verification latency.
  sim::Duration verify_delay = 500 * sim::kMicrosecond;
  std::size_t challenge_size = 16;
};

class OnDemandProtocol {
 public:
  using Config = OnDemandConfig;

  /// All references must outlive the protocol object.
  OnDemandProtocol(sim::Device& prover_device, Verifier& verifier,
                   AttestationProcess& mp, sim::Link& vrf_to_prv,
                   sim::Link& prv_to_vrf, Config config = {});

  /// Run one attestation round; `done` fires at t_verified with the
  /// verdict of the wire-delivered report.  Counters must be strictly
  /// increasing across calls on one protocol instance — the prover
  /// silently discards stale-counter requests as replays.  If the network
  /// drops a message the round never completes at this layer; wrap the
  /// protocol in a ReliableSession (session.hpp) for timeout/retry.
  void run(std::uint64_t counter, std::function<void(OnDemandTimings)> done);

  /// Prover-side request rejections (diagnostics for the session layer).
  std::size_t requests_rejected_auth() const noexcept { return rejected_auth_; }
  std::size_t requests_rejected_replay() const noexcept { return rejected_replay_; }
  std::size_t requests_ignored_busy() const noexcept { return ignored_busy_; }

  /// Protocol-internal deferral events (request-auth delay, verify delay)
  /// scheduled but not yet fired.  These lambdas capture `this`, so the
  /// protocol must not be destroyed while any is outstanding — a fleet
  /// only hibernates a stack when this is zero.
  std::size_t pending_events() const noexcept { return pending_events_; }

  /// Prover-side replay-protection state plus rejection counters, for
  /// hibernation.  The wiring (device/verifier/mp/links) is reconstructed
  /// from the shard seed; only this survives across the teardown.
  struct State {
    bool prover_counter_seen = false;
    std::uint64_t prover_last_counter = 0;
    std::size_t rejected_auth = 0;
    std::size_t rejected_replay = 0;
    std::size_t ignored_busy = 0;
  };

  State save_state() const noexcept {
    return {prover_counter_seen_, prover_last_counter_, rejected_auth_,
            rejected_replay_, ignored_busy_};
  }

  void restore_state(const State& s) noexcept {
    prover_counter_seen_ = s.prover_counter_seen;
    prover_last_counter_ = s.prover_last_counter;
    rejected_auth_ = s.rejected_auth;
    rejected_replay_ = s.rejected_replay;
    ignored_busy_ = s.ignored_busy;
  }

 private:
  sim::Device& device_;
  Verifier& verifier_;
  AttestationProcess& mp_;
  sim::Link& vrf_to_prv_;
  sim::Link& prv_to_vrf_;
  Config config_;
  bool prover_counter_seen_ = false;
  std::uint64_t prover_last_counter_ = 0;
  std::size_t rejected_auth_ = 0;
  std::size_t rejected_replay_ = 0;
  std::size_t ignored_busy_ = 0;
  std::size_t pending_events_ = 0;
};

}  // namespace rasc::attest
