#pragma once
/// \file protocol.hpp
/// On-demand RA protocol (paper Section 2.2, Figure 1):
///   (1) Vrf sends a challenge-bearing request,
///   (2) Prv receives it, authenticates it, and starts MP (deferral),
///   (3) Prv finishes MP and returns the report,
///   (4) Vrf receives and verifies.
/// Produces the full event timeline the figure illustrates.

#include <functional>

#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/sim/network.hpp"

namespace rasc::attest {

struct OnDemandTimings {
  sim::Time t_challenge_sent = 0;   ///< Vrf emits the request
  sim::Time t_request_received = 0; ///< request reaches Prv
  sim::Time t_mp_started = 0;       ///< MP dispatched (after auth/deferral)
  sim::Time t_s = 0;                ///< measurement start
  sim::Time t_e = 0;                ///< measurement end
  sim::Time t_r = 0;                ///< lock release
  sim::Time t_report_received = 0;  ///< report reaches Vrf
  sim::Time t_verified = 0;         ///< Vrf verdict ready
  VerifyOutcome outcome;
  AttestationResult attestation;
};

struct OnDemandConfig {
  /// Request-authentication / task-teardown deferral on Prv before MP
  /// starts (the Figure 1 gap between arrival and t_s).
  sim::Duration request_auth_delay = 300 * sim::kMicrosecond;
  /// Vrf-side verification latency.
  sim::Duration verify_delay = 500 * sim::kMicrosecond;
  std::size_t challenge_size = 16;
};

class OnDemandProtocol {
 public:
  using Config = OnDemandConfig;

  /// All references must outlive the protocol object.
  OnDemandProtocol(sim::Device& prover_device, Verifier& verifier,
                   AttestationProcess& mp, sim::Link& vrf_to_prv,
                   sim::Link& prv_to_vrf, Config config = {});

  /// Run one attestation round; `done` fires at t_verified.  If the
  /// network drops a message the round silently never completes (callers
  /// model timeouts; SeED's handling of drops lives in selfmeasure).
  void run(std::uint64_t counter, std::function<void(OnDemandTimings)> done);

 private:
  sim::Device& device_;
  Verifier& verifier_;
  AttestationProcess& mp_;
  sim::Link& vrf_to_prv_;
  sim::Link& prv_to_vrf_;
  Config config_;
};

}  // namespace rasc::attest
