#include "src/attest/digest_cache.hpp"

#include "src/support/bytes.hpp"

namespace rasc::attest {

void DigestCache::resize(std::size_t block_count) {
  if (slots_.size() != block_count) slots_.resize(block_count);
}

const Digest* DigestCache::lookup(std::size_t block, std::uint64_t generation,
                                  crypto::HashKind hash, MacKind mac,
                                  std::uint64_t key_fp) {
  const Slot* slot = block < slots_.size() ? &slots_[block] : nullptr;
  if (slot != nullptr && slot->valid && slot->generation == generation &&
      slot->hash == hash && slot->mac == mac && slot->key_fp == key_fp) {
    ++hits_;
    if (metrics_ != nullptr) metrics_->counter("digest_cache.hit").inc();
    return &slot->digest;
  }
  ++misses_;
  if (metrics_ != nullptr) metrics_->counter("digest_cache.miss").inc();
  return nullptr;
}

void DigestCache::store(std::size_t block, std::uint64_t generation,
                        crypto::HashKind hash, MacKind mac, std::uint64_t key_fp,
                        const Digest& digest) {
  if (block >= slots_.size()) return;  // cache sized for a smaller coverage
  Slot& slot = slots_[block];
  slot.valid = true;
  slot.generation = generation;
  slot.hash = hash;
  slot.mac = mac;
  slot.key_fp = key_fp;
  slot.digest = digest;
  ++stores_;
  if (metrics_ != nullptr) metrics_->counter("digest_cache.store").inc();
}

void DigestCache::invalidate_block(std::size_t block, obs::TimeNs now) {
  if (block >= slots_.size()) return;
  const bool flushed = slots_[block].valid;
  slots_[block].valid = false;
  if (journal_ != nullptr) {
    journal_->append(now, journal_actor_, 0, 0, obs::JournalEventKind::kCacheInvalidate,
                     block, flushed ? 1 : 0);
  }
}

void DigestCache::invalidate_all(obs::TimeNs now) {
  std::uint64_t flushed = 0;
  for (Slot& slot : slots_) {
    if (slot.valid) ++flushed;
    slot.valid = false;
  }
  if (journal_ != nullptr) {
    journal_->append(now, journal_actor_, 0, 0, obs::JournalEventKind::kCacheInvalidate,
                     ~0ull, flushed);
  }
}

std::uint64_t DigestCache::key_fingerprint(support::ByteView key) {
  const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha256, key);
  return support::get_u64_be(digest);
}

}  // namespace rasc::attest
