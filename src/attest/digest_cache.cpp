#include "src/attest/digest_cache.hpp"

#include "src/support/bytes.hpp"

namespace rasc::attest {

void DigestCache::resize(std::size_t block_count) {
  if (slots_.size() != block_count) slots_.resize(block_count);
}

const Digest* DigestCache::lookup(std::size_t block, std::uint64_t generation,
                                  crypto::HashKind hash, MacKind mac,
                                  std::uint64_t key_fp) {
  const Slot* slot = block < slots_.size() ? &slots_[block] : nullptr;
  if (slot != nullptr && slot->valid && slot->generation == generation &&
      slot->hash == hash && slot->mac == mac && slot->key_fp == key_fp) {
    ++hits_;
    if (metrics_ != nullptr) metrics_->counter("digest_cache.hit").inc();
    return &slot->digest;
  }
  ++misses_;
  if (metrics_ != nullptr) metrics_->counter("digest_cache.miss").inc();
  return nullptr;
}

void DigestCache::store(std::size_t block, std::uint64_t generation,
                        crypto::HashKind hash, MacKind mac, std::uint64_t key_fp,
                        const Digest& digest) {
  if (block >= slots_.size()) return;  // cache sized for a smaller coverage
  Slot& slot = slots_[block];
  slot.valid = true;
  slot.generation = generation;
  slot.hash = hash;
  slot.mac = mac;
  slot.key_fp = key_fp;
  slot.digest = digest;
  ++stores_;
  if (metrics_ != nullptr) metrics_->counter("digest_cache.store").inc();
}

void DigestCache::invalidate_block(std::size_t block) {
  if (block < slots_.size()) slots_[block].valid = false;
}

void DigestCache::invalidate_all() {
  for (Slot& slot : slots_) slot.valid = false;
}

std::uint64_t DigestCache::key_fingerprint(support::ByteView key) {
  const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha256, key);
  return support::get_u64_be(digest);
}

}  // namespace rasc::attest
