#pragma once
/// \file verifier.hpp
/// The trusted verifier Vrf: holds the golden image of the prover's
/// attested memory and the shared attestation key, issues challenges, and
/// validates reports (Section 2.2's step 4).

#include <memory>
#include <optional>

#include "src/attest/golden.hpp"
#include "src/attest/measurement.hpp"
#include "src/attest/report.hpp"
#include "src/crypto/drbg.hpp"
#include "src/obs/metrics.hpp"

namespace rasc::attest {

/// Contiguous block range the verifier localized as divergent from the
/// golden image (tree-mode reports only).
struct BlockRange {
  std::size_t first = 0;
  std::size_t count = 0;
};

struct VerifyOutcome {
  bool mac_ok = false;        ///< report authentication (key possession)
  bool digest_ok = false;     ///< measurement matches the golden image
  bool challenge_ok = true;   ///< matches the expected challenge, if any
  bool counter_ok = true;     ///< strictly increasing counter
  bool ok() const noexcept { return mac_ok && digest_ok && challenge_ok && counter_ok; }

  // --- tree-mode diagnostics (untouched for flat reports) ---
  bool used_tree = false;       ///< report carried the tree trailer
  bool tree_root_bound = false; ///< measurement is the MAC of the carried root
  bool proofs_ok = true;        ///< every carried proof verified against the root
  std::size_t total_blocks = 0; ///< golden block count, for normalizing ranges
  /// Mismatching block ranges localized from verified subtree proofs.
  /// Only populated when the MAC held and the root was bound — a forged
  /// report never steers localization.
  std::vector<BlockRange> localized;
};

class Verifier {
 public:
  /// `golden_image` is the expected content of the covered region
  /// (block_size * n bytes).
  Verifier(crypto::HashKind hash, support::Bytes key, support::Bytes golden_image,
           std::size_t block_size, std::uint64_t challenge_seed = 0xc0ffee,
           MacKind mac = MacKind::kHmac);

  /// Share a pre-digested golden image across verifiers (one
  /// GoldenMeasurement per campaign cell instead of one full-image rehash
  /// per verify).  The golden carries hash/MAC kind and block size.
  Verifier(std::shared_ptr<const GoldenMeasurement> golden, support::Bytes key,
           std::uint64_t challenge_seed = 0xc0ffee);

  /// Fresh random challenge (also remembered as the expected one).
  support::Bytes issue_challenge(std::size_t size = 16);

  /// Validate a report.  If `expect_challenge` is true the report must
  /// carry the most recently issued challenge (on-demand RA); if false
  /// (self-measurement collection) the challenge field is not checked but
  /// the counter must exceed the last accepted one.
  VerifyOutcome verify(const Report& report, bool expect_challenge = true);

  /// Expected measurement for an arbitrary context (exposed for tests).
  support::Bytes expected_measurement(const MeasurementContext& context) const;

  /// Update the golden image (e.g. after an authorized software update).
  /// Re-digests the image once.
  void set_golden_image(support::Bytes image);

  const GoldenMeasurement& golden() const noexcept { return *golden_; }

  std::uint64_t last_counter() const noexcept { return last_counter_; }
  void reset_counter() noexcept { last_counter_seen_ = false; }

  /// Attach a metrics registry (not owned; nullptr to detach).  verify()
  /// then accounts "verifier.verify_total", "verifier.verify_fail" and a
  /// per-cause breakdown ("verifier.fail_mac", "verifier.fail_digest",
  /// "verifier.fail_challenge", "verifier.fail_counter"); tree-mode
  /// reports additionally account "verifier.fail_tree_binding",
  /// "verifier.fail_proof" and "verifier.localized_ranges".
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  /// Per-session verifier state for hibernation: the challenge DRBG
  /// position, the outstanding challenge (if a round is mid-flight when
  /// captured — normally absent at quiescence), and the replay-protection
  /// counter watermark.  Everything else (golden, key, kinds) is immutable
  /// configuration recreated from the shard seed on wake.
  struct SessionState {
    crypto::HmacDrbg::State drbg;
    std::optional<support::Bytes> outstanding_challenge;
    bool last_counter_seen = false;
    std::uint64_t last_counter = 0;
  };

  SessionState save_session_state() const {
    return {challenge_drbg_.state(), outstanding_challenge_, last_counter_seen_,
            last_counter_};
  }

  void restore_session_state(SessionState s) {
    challenge_drbg_.restore(std::move(s.drbg));
    outstanding_challenge_ = std::move(s.outstanding_challenge);
    last_counter_seen_ = s.last_counter_seen;
    last_counter_ = s.last_counter;
  }

 private:
  crypto::HashKind hash_;
  MacKind mac_;
  support::Bytes key_;
  std::shared_ptr<const GoldenMeasurement> golden_;
  std::size_t block_size_;
  crypto::HmacDrbg challenge_drbg_;
  std::optional<support::Bytes> outstanding_challenge_;
  bool last_counter_seen_ = false;
  std::uint64_t last_counter_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace rasc::attest
