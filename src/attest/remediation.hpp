#pragma once
/// \file remediation.hpp
/// What happens *after* detection (paper Section 1): "if Vrf detects
/// malware presence, Prv's software can be re-set or rolled back".  This
/// service implements the roll-back: on a failed attestation the verifier
/// pushes the golden image over the link, the prover's ROM update routine
/// rewrites memory (as a CPU-occupying operation), and a fresh attestation
/// round confirms the cure — the secure-code-update pattern of SCUBA [25].

#include <functional>

#include "src/attest/protocol.hpp"

namespace rasc::attest {

struct RemediationOutcome {
  bool attempted = false;      ///< a roll-back was pushed
  bool reattested_ok = false;  ///< the post-update attestation verdict
  VerifyOutcome first_verdict;
  VerifyOutcome final_verdict;
  sim::Time finished_at = 0;
};

/// Attest; if the verdict is bad, push the golden image and attest again.
class RemediationService {
 public:
  /// `golden` is the image the verifier is willing to restore.  All
  /// references must outlive the service.
  RemediationService(sim::Device& device, Verifier& verifier, AttestationProcess& mp,
                     sim::Link& vrf_to_prv, sim::Link& prv_to_vrf,
                     support::Bytes golden);
  ~RemediationService();  // out-of-line: UpdateProcess is incomplete here

  /// One detect-then-cure cycle; `done` fires after the final verdict.
  /// `counter` seeds the two protocol rounds (counter, counter + 1).
  void run(std::uint64_t counter, std::function<void(RemediationOutcome)> done);

 private:
  class UpdateProcess;

  sim::Device& device_;
  Verifier& verifier_;
  OnDemandProtocol protocol_;
  sim::Link& vrf_to_prv_;
  support::Bytes golden_;
  std::unique_ptr<UpdateProcess> updater_;
};

}  // namespace rasc::attest
