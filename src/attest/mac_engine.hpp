#pragma once
/// \file mac_engine.hpp
/// The two MAC constructions the paper names for the measurement function
/// F (Section 2.4): hash-based (HMAC, e.g. HMAC-SHA-2) and encryption-
/// based (AES-CBC-MAC per ISO 9797-1).  A small tagged engine lets the
/// measurement and report layers select either at run time.

#include <memory>
#include <string>

#include "src/crypto/cbcmac.hpp"
#include "src/crypto/hmac.hpp"

namespace rasc::attest {

enum class MacKind {
  kHmac,    ///< HMAC over the configured hash
  kCbcMac,  ///< AES-CBC-MAC (key must be 16/24/32 bytes)
};

std::string mac_kind_name(MacKind kind);

/// Streaming MAC with a uniform interface over both constructions.
class MacEngine {
 public:
  /// For kHmac, `hash` selects the underlying hash; ignored for kCbcMac.
  /// CBC-MAC keys must be valid AES keys (16/24/32 bytes) — the key is
  /// hashed down to 16 bytes otherwise, mirroring common practice on
  /// devices provisioned with odd-sized secrets.
  MacEngine(MacKind kind, crypto::HashKind hash, support::ByteView key);

  void update(support::ByteView data);
  support::Bytes finalize();
  /// Allocation-free finalize: write the tag into `out` (>= tag_size()
  /// bytes) and reset to the keyed initial state.
  void finalize_into(support::MutableByteView out);
  /// Discard any partial stream and return to the keyed initial state —
  /// the engine is reusable across messages (per-block MACs in the
  /// measurement hot path) without re-deriving key material.
  void reset();
  std::size_t tag_size() const noexcept;
  MacKind kind() const noexcept { return kind_; }

  static support::Bytes compute(MacKind kind, crypto::HashKind hash,
                                support::ByteView key, support::ByteView message);

 private:
  MacKind kind_;
  std::unique_ptr<crypto::Hmac> hmac_;
  std::unique_ptr<crypto::CbcMac> cbc_;
};

}  // namespace rasc::attest
