#pragma once
/// \file digest_cache.hpp
/// Generation-tracked per-block digest cache.  "On the TOCTOU Problem in
/// Remote Attestation" (RATA) shows that hardware which records *when*
/// memory last changed lets a prover skip rehashing unmodified regions;
/// DeviceMemory models exactly that with per-block generation counters,
/// and this cache turns repeated measurements from O(memory) into
/// O(dirty blocks).
///
/// A cache entry is keyed on (block, generation, hash kind, MAC kind, key
/// fingerprint): a lookup hits only when the block's content generation
/// AND the digest parameters match what produced the stored value, so a
/// hit is bit-identical to recomputing.  Invalidation is therefore mostly
/// implicit — any content change bumps the generation and the stale entry
/// simply never matches again — but explicit invalidate_block()/
/// invalidate_all() are provided for key rotation and paranoia paths.
/// MPU-rejected writes never bump a generation, so they (correctly) do
/// not invalidate.
///
/// Hit/miss/store counters are kept locally and, when a MetricsRegistry
/// is attached, mirrored as "digest_cache.hit" / "digest_cache.miss" /
/// "digest_cache.store" counters.

#include <cstdint>
#include <vector>

#include "src/attest/digest.hpp"
#include "src/attest/mac_engine.hpp"
#include "src/crypto/hash.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/metrics.hpp"

namespace rasc::attest {

class DigestCache {
 public:
  DigestCache() = default;
  explicit DigestCache(std::size_t block_count) { resize(block_count); }

  /// Grow (or shrink) to `block_count` slots.  Existing entries survive a
  /// grow; a shrink drops the tail.  Idempotent at the same size.
  void resize(std::size_t block_count);

  std::size_t block_count() const noexcept { return slots_.size(); }

  /// Returns the cached digest for `block` iff it was stored under the
  /// same (generation, hash, mac, key fingerprint); nullptr on miss.
  /// Counts a hit or a miss either way.
  const Digest* lookup(std::size_t block, std::uint64_t generation,
                       crypto::HashKind hash, MacKind mac, std::uint64_t key_fp);

  /// Record the digest of `block` computed at `generation` under the
  /// given parameters (overwrites any previous entry for the block).
  void store(std::size_t block, std::uint64_t generation, crypto::HashKind hash,
             MacKind mac, std::uint64_t key_fp, const Digest& digest);

  /// Explicit invalidation (key rotation, defensive flushes).  `now` is
  /// the simulated time journaled with the flush when a journal is
  /// attached; the cache itself is clock-free.
  void invalidate_block(std::size_t block, obs::TimeNs now = 0);
  void invalidate_all(obs::TimeNs now = 0);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t stores() const noexcept { return stores_; }
  void reset_counters() noexcept { hits_ = misses_ = stores_ = 0; }

  /// Attach a metrics registry (not owned; nullptr to detach): hit/miss/
  /// store counters are then also accumulated there.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  /// Attach a flight-recorder journal (not owned; nullptr to detach):
  /// explicit invalidations are then journaled under `actor`.  Hits and
  /// misses are journaled by the Measurement (which knows the visit time).
  void set_journal(obs::EventJournal* journal, std::uint32_t actor) noexcept {
    journal_ = journal;
    journal_actor_ = actor;
  }

  /// Stable 64-bit fingerprint of key material (first 8 bytes of its
  /// SHA-256, big-endian) — cache keys never retain the key itself.
  static std::uint64_t key_fingerprint(support::ByteView key);

 private:
  struct Slot {
    bool valid = false;
    std::uint64_t generation = 0;
    crypto::HashKind hash = crypto::HashKind::kSha256;
    MacKind mac = MacKind::kHmac;
    std::uint64_t key_fp = 0;
    Digest digest;
  };

  std::vector<Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventJournal* journal_ = nullptr;
  std::uint32_t journal_actor_ = 0;
};

}  // namespace rasc::attest
