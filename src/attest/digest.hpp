#pragma once
/// \file digest.hpp
/// Fixed-capacity per-block digest value type for the measurement hot
/// path.  Every digest the library produces fits in 64 bytes (SHA-512 and
/// BLAKE2b are the largest), so storing them inline — instead of one heap
/// support::Bytes per block — removes an allocation per visited block and
/// keeps the per-block digest table contiguous in memory.

#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "src/support/bytes.hpp"

namespace rasc::attest {

class Digest {
 public:
  static constexpr std::size_t kMaxSize = 64;

  Digest() = default;

  explicit Digest(support::ByteView bytes) { assign(bytes); }

  void assign(support::ByteView bytes) {
    if (bytes.size() > kMaxSize) throw std::length_error("Digest: value exceeds 64 bytes");
    size_ = static_cast<std::uint8_t>(bytes.size());
    if (!bytes.empty()) std::memcpy(data_.data(), bytes.data(), bytes.size());
  }

  /// Set the size and expose a writable window for in-place finalization
  /// (crypto finalize_into writes straight into the stored value).
  support::MutableByteView prepare(std::size_t size) {
    if (size > kMaxSize) throw std::length_error("Digest: value exceeds 64 bytes");
    size_ = static_cast<std::uint8_t>(size);
    return support::MutableByteView(data_.data(), size);
  }

  support::ByteView view() const noexcept {
    return support::ByteView(data_.data(), size_);
  }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  support::Bytes to_bytes() const { return support::Bytes(view().begin(), view().end()); }

  friend bool operator==(const Digest& a, const Digest& b) noexcept {
    return a.size_ == b.size_ && std::memcmp(a.data_.data(), b.data_.data(), a.size_) == 0;
  }
  friend bool operator!=(const Digest& a, const Digest& b) noexcept { return !(a == b); }

 private:
  std::array<std::uint8_t, kMaxSize> data_{};
  std::uint8_t size_ = 0;
};

}  // namespace rasc::attest
