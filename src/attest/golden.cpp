#include "src/attest/golden.hpp"

#include <stdexcept>

namespace rasc::attest {

GoldenMeasurement::GoldenMeasurement(support::ByteView image, std::size_t block_size,
                                     crypto::HashKind hash, support::ByteView key,
                                     MacKind mac)
    : hash_(hash), mac_(mac), key_(key.begin(), key.end()), block_size_(block_size) {
  if (block_size == 0 || image.size() % block_size != 0) {
    throw std::invalid_argument("golden image size must be a multiple of block_size");
  }
  const std::size_t n = image.size() / block_size;
  BlockDigester digester(mac, hash, key);
  digests_.resize(n);
  std::vector<support::ByteView> views;
  std::vector<Digest*> outs;
  views.reserve(n);
  outs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    views.push_back(image.subspan(i * block_size, block_size));
    outs.push_back(&digests_[i]);
  }
  digester.digest_batch(views, outs);
  tree_.emplace(n, hash);
  for (std::size_t i = 0; i < n; ++i) tree_->set_leaf(i, digests_[i]);
  tree_->flush();
}

support::Bytes GoldenMeasurement::expected(const MeasurementContext& context) const {
  return Measurement::combine(digests_, hash_, key_, context, mac_);
}

support::Bytes GoldenMeasurement::expected_tree(const MeasurementContext& context) const {
  return Measurement::combine_root(tree_root(), hash_, key_, context, mac_);
}

}  // namespace rasc::attest
