#include "src/attest/protocol.hpp"

#include <memory>

namespace rasc::attest {

OnDemandProtocol::OnDemandProtocol(sim::Device& prover_device, Verifier& verifier,
                                   AttestationProcess& mp, sim::Link& vrf_to_prv,
                                   sim::Link& prv_to_vrf, Config config)
    : device_(prover_device),
      verifier_(verifier),
      mp_(mp),
      vrf_to_prv_(vrf_to_prv),
      prv_to_vrf_(prv_to_vrf),
      config_(config) {}

void OnDemandProtocol::run(std::uint64_t counter,
                           std::function<void(OnDemandTimings)> done) {
  auto timings = std::make_shared<OnDemandTimings>();
  auto& sim = device_.sim();

  const support::Bytes challenge = verifier_.issue_challenge(config_.challenge_size);
  timings->t_challenge_sent = sim.now();
  if (auto* sink = sim.trace_sink()) {
    sink->begin(sim.now(), "vrf", "ra.round", {obs::arg("counter", counter)});
    sink->instant(sim.now(), "vrf", "vrf.challenge_sent");
  }

  vrf_to_prv_.send(challenge, [this, timings, counter, done = std::move(done)](
                                  support::Bytes challenge_bytes) mutable {
    auto& sim = device_.sim();
    timings->t_request_received = sim.now();

    // Deferral: authenticate the request / wind down the previous task.
    sim.schedule_in(config_.request_auth_delay, [this, timings, counter,
                                                 challenge_bytes = std::move(challenge_bytes),
                                                 done = std::move(done)]() mutable {
      timings->t_mp_started = device_.sim().now();
      MeasurementContext context{device_.id(), challenge_bytes, counter};
      mp_.start(std::move(context), [this, timings, done = std::move(done)](
                                        AttestationResult result) mutable {
        timings->t_s = result.t_s;
        timings->t_e = result.t_e;
        timings->t_r = result.t_r;
        timings->attestation = std::move(result);

        // Ship the report; payload mirrors the real wire size.
        support::Bytes payload = timings->attestation.report.serialize_body();
        support::append(payload, timings->attestation.report.mac);
        support::append(payload, timings->attestation.report.signature);
        prv_to_vrf_.send(std::move(payload), [this, timings,
                                              done = std::move(done)](support::Bytes) mutable {
          auto& sim = device_.sim();
          timings->t_report_received = sim.now();
          if (auto* sink = sim.trace_sink()) {
            sink->instant(sim.now(), "vrf", "vrf.report_received");
          }
          sim.schedule_in(config_.verify_delay, [this, timings,
                                                 done = std::move(done)]() mutable {
            timings->t_verified = device_.sim().now();
            timings->outcome =
                verifier_.verify(timings->attestation.report, /*expect_challenge=*/true);
            if (auto* sink = device_.sim().trace_sink()) {
              sink->end(timings->t_verified, "vrf",
                        {obs::arg("verdict",
                                  std::string(timings->outcome.ok() ? "ok" : "fail"))});
            }
            done(*timings);
          });
        });
      });
    });
  });
}

}  // namespace rasc::attest
