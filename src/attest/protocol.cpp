#include "src/attest/protocol.hpp"

#include <memory>

#include "src/crypto/hmac.hpp"

namespace rasc::attest {

namespace {

constexpr crypto::HashKind kRequestMacHash = crypto::HashKind::kSha256;
constexpr std::size_t kRequestMacSize = 32;

support::Bytes request_mac_input(const ChallengeRequest& request) {
  support::Bytes material = support::to_bytes("ra-challenge-request");
  support::append_u64_be(material, request.counter);
  support::append(material, request.challenge);
  return material;
}

}  // namespace

support::Bytes seal_challenge_request(const ChallengeRequest& request,
                                      support::ByteView key) {
  support::Bytes wire;
  support::append_u64_be(wire, request.counter);
  support::append_u32_be(wire, static_cast<std::uint32_t>(request.challenge.size()));
  support::append(wire, request.challenge);
  support::append(wire, crypto::Hmac::compute(kRequestMacHash, key,
                                              request_mac_input(request)));
  return wire;
}

std::optional<ChallengeRequest> open_challenge_request(support::ByteView wire,
                                                       support::ByteView key) {
  if (wire.size() < 8 + 4 + kRequestMacSize) return std::nullopt;
  ChallengeRequest request;
  request.counter = support::get_u64_be(wire.subspan(0, 8));
  const std::uint32_t challenge_len = support::get_u32_be(wire.subspan(8, 4));
  if (wire.size() != 8 + 4 + challenge_len + kRequestMacSize) return std::nullopt;
  request.challenge.assign(wire.begin() + 12, wire.begin() + 12 + challenge_len);
  const support::ByteView mac = wire.subspan(12 + challenge_len, kRequestMacSize);
  const support::Bytes expected =
      crypto::Hmac::compute(kRequestMacHash, key, request_mac_input(request));
  if (!support::ct_equal(mac, expected)) return std::nullopt;
  return request;
}

OnDemandProtocol::OnDemandProtocol(sim::Device& prover_device, Verifier& verifier,
                                   AttestationProcess& mp, sim::Link& vrf_to_prv,
                                   sim::Link& prv_to_vrf, Config config)
    : device_(prover_device),
      verifier_(verifier),
      mp_(mp),
      vrf_to_prv_(vrf_to_prv),
      prv_to_vrf_(prv_to_vrf),
      config_(config) {}

void OnDemandProtocol::run(std::uint64_t counter,
                           std::function<void(OnDemandTimings)> done) {
  auto timings = std::make_shared<OnDemandTimings>();
  auto& sim = device_.sim();

  const support::Bytes challenge = verifier_.issue_challenge(config_.challenge_size);
  timings->t_challenge_sent = sim.now();
  if (auto* sink = sim.trace_sink()) {
    sink->begin(sim.now(), "vrf", "ra.round", {obs::arg("counter", counter)});
    sink->instant(sim.now(), "vrf", "vrf.challenge_sent");
    // Flow arrow from this round's span to the measurement span it starts
    // on the prover track (finished at t_mp_started below).
    sink->flow_start(sim.now(), "vrf", "ra.challenge", counter);
  }

  support::Bytes request_wire =
      seal_challenge_request({counter, challenge}, device_.attestation_key());
  vrf_to_prv_.send(std::move(request_wire), [this, timings, done = std::move(done)](
                                                support::Bytes request_bytes) mutable {
    auto& sim = device_.sim();
    const auto request =
        open_challenge_request(request_bytes, device_.attestation_key());
    if (!request) {
      ++rejected_auth_;
      if (auto* sink = sim.trace_sink()) {
        sink->instant(sim.now(), "prv", "prv.request_rejected_auth");
      }
      return;
    }
    if (prover_counter_seen_ && request->counter <= prover_last_counter_) {
      ++rejected_replay_;
      if (auto* sink = sim.trace_sink()) {
        sink->instant(sim.now(), "prv", "prv.request_rejected_replay",
                      {obs::arg("counter", request->counter)});
      }
      return;
    }
    if (mp_.busy()) {
      // A measurement for an earlier request is still running; that
      // request's report will answer the verifier (or time out upstream).
      ++ignored_busy_;
      if (auto* sink = sim.trace_sink()) {
        sink->instant(sim.now(), "prv", "prv.request_ignored_busy",
                      {obs::arg("counter", request->counter)});
      }
      return;
    }
    prover_counter_seen_ = true;
    prover_last_counter_ = request->counter;
    timings->t_request_received = sim.now();

    // Deferral: authenticate the request / wind down the previous task.
    ++pending_events_;
    sim.schedule_in(config_.request_auth_delay, [this, timings,
                                                 request = *request,
                                                 done = std::move(done)]() mutable {
      --pending_events_;
      timings->t_mp_started = device_.sim().now();
      const std::uint64_t req_counter = request.counter;
      MeasurementContext context{device_.id(), std::move(request.challenge),
                                 request.counter};
      auto on_measured = [this, timings, done = std::move(done)](
                             AttestationResult result) mutable {
        timings->t_s = result.t_s;
        timings->t_e = result.t_e;
        timings->t_r = result.t_r;
        timings->attestation = std::move(result);

        // Ship the report; the wire bytes are what the verifier judges.
        // Flow arrow from the measurement span back to the verifier round
        // (finished at vrf.report_received).
        if (auto* sink = device_.sim().trace_sink()) {
          sink->flow_start(device_.sim().now(), mp_.trace_track(), "ra.report",
                           timings->attestation.report.counter);
        }
        prv_to_vrf_.send(serialize_report_wire(timings->attestation.report),
                         [this, timings, done = std::move(done)](
                             support::Bytes report_wire) mutable {
          auto& sim = device_.sim();
          timings->t_report_received = sim.now();
          if (auto* sink = sim.trace_sink()) {
            sink->instant(sim.now(), "vrf", "vrf.report_received");
            sink->flow_finish(sim.now(), "vrf", "ra.report",
                              timings->attestation.report.counter);
          }
          ++pending_events_;
          sim.schedule_in(config_.verify_delay,
                          [this, timings, report_wire = std::move(report_wire),
                           done = std::move(done)]() mutable {
            --pending_events_;
            timings->t_verified = device_.sim().now();
            const auto parsed = parse_report_wire(report_wire);
            if (parsed) {
              timings->outcome = verifier_.verify(*parsed, /*expect_challenge=*/true);
            } else {
              timings->report_wire_ok = false;
              timings->outcome = VerifyOutcome{};
              timings->outcome.challenge_ok = false;
              timings->outcome.counter_ok = false;
            }
            if (auto* sink = device_.sim().trace_sink()) {
              sink->end(timings->t_verified, "vrf",
                        {obs::arg("verdict",
                                  std::string(timings->outcome.ok() ? "ok" : "fail"))});
            }
            done(*timings);
          });
        });
      };
      mp_.start(std::move(context), std::move(on_measured));
      // The measurement span just opened on the prover track; land the
      // challenge flow arrow on it.
      if (auto* sink = device_.sim().trace_sink()) {
        sink->flow_finish(timings->t_mp_started, mp_.trace_track(), "ra.challenge",
                          req_counter);
      }
    });
  });
}

}  // namespace rasc::attest
