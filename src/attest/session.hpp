#pragma once
/// \file session.hpp
/// Verifier-side reliable RA session: a state machine around
/// OnDemandProtocol that guarantees every attestation round reaches a
/// terminal outcome on an unreliable network.  The paper's Section 2.2
/// protocol (and its SeED discussion) assumes messages arrive; on a real
/// link a dropped challenge or report would leave the verifier waiting
/// forever.  The session adds:
///
///   - a per-attempt response timeout;
///   - bounded retries with exponential backoff and deterministic jitter
///     (each retry is a fresh challenge + counter, so the prover's
///     replay guard never blocks a legitimate re-ask);
///   - rejection of stale and duplicate reports (a late answer to a
///     superseded challenge, or a link-duplicated copy of the winning
///     report, is counted and discarded — never double-judged);
///   - a terminal outcome taxonomy that distinguishes a *compromised*
///     device (valid MAC, wrong digest) from an *unreachable* one
///     (silence), a *garbled* one (MAC-failing or unparseable reports)
///     and pure staleness (only replays heard).
///
/// The session also prices reliability: how much prover CPU time went
/// into measurements whose reports never decided the round (the
/// retry-overhead metric of the lossy-link campaign).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/attest/protocol.hpp"
#include "src/obs/health.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/metrics.hpp"

namespace rasc::attest {

enum class SessionOutcome {
  kVerified,        ///< report verified: device healthy
  kCompromised,     ///< authentic report, digest mismatch: device infected
  kTimeout,         ///< retry budget exhausted in silence: unreachable
  kCorruptReport,   ///< budget exhausted; answers arrived but were garbled
  kReplayRejected,  ///< budget exhausted; only stale/duplicate reports heard
};

std::string session_outcome_name(SessionOutcome outcome);

/// Map a terminal outcome to its obs-layer mirror (health rollups and the
/// journal cannot depend on attest, so they carry obs::RoundOutcome).
obs::RoundOutcome session_outcome_rollup(SessionOutcome outcome);

struct SessionConfig {
  /// How long each attempt waits for a verified report before giving up.
  sim::Duration response_timeout = 500 * sim::kMillisecond;
  /// Total attempts per round (1 = no retries).  Must be >= 1.
  std::size_t max_attempts = 4;
  /// Backoff before retry k (1-based) is
  ///   backoff_base * backoff_factor^(k-1) * (1 + U[0, backoff_jitter])
  /// with U drawn from the session RNG — deterministic from `seed`.
  sim::Duration backoff_base = 50 * sim::kMillisecond;
  double backoff_factor = 2.0;
  double backoff_jitter = 0.2;
  /// Saturating cap on any single backoff wait.  The exponential product
  /// above is computed in double and clamped here *before* the cast to
  /// sim::Duration — without the clamp a deep retry budget or a large
  /// factor overflows the uint64 cast (undefined behavior) and can
  /// schedule a retry absurdly far into the simulated future.
  sim::Duration backoff_max = 60 * sim::kSecond;
  std::uint64_t seed = 0x5e5510;
  OnDemandConfig protocol;
};

/// Everything a resolved round reports back.
struct RoundResult {
  SessionOutcome outcome = SessionOutcome::kTimeout;
  VerifyOutcome verdict;            ///< decisive report (Verified/Compromised)
  std::size_t attempts = 0;         ///< challenges actually sent
  std::size_t attempt_timeouts = 0; ///< attempts that expired unanswered
  std::size_t replays_rejected = 0; ///< stale/duplicate reports discarded
  std::size_t corrupt_reports = 0;  ///< unparseable or MAC-failing reports
  sim::Time t_started = 0;
  sim::Time t_resolved = 0;
  sim::Duration backoff_total = 0;  ///< verifier time spent waiting to retry
  /// Prover CPU time consumed by this round's measurements, and the share
  /// of it that did not back the terminal verdict (wasted on attempts
  /// whose report was lost, stale or corrupted).
  sim::Duration measure_time = 0;
  sim::Duration wasted_measure_time = 0;
  OnDemandTimings timings;          ///< decisive attempt's Figure 1 timeline
};

class ReliableSession {
 public:
  /// All references must outlive the session; the session must outlive
  /// the simulator run it participates in (late network deliveries hold
  /// callbacks into it).
  ReliableSession(sim::Device& prover_device, Verifier& verifier,
                  AttestationProcess& mp, sim::Link& vrf_to_prv,
                  sim::Link& prv_to_vrf, SessionConfig config = {});

  /// Run one reliable round; `done` fires exactly once with a terminal
  /// outcome — there is no code path that leaks the callback.  Throws
  /// std::logic_error if a round is already in flight and
  /// std::invalid_argument on a zero-attempt config.
  void run(std::function<void(RoundResult)> done);

  bool busy() const noexcept { return state_ != nullptr; }

  /// True when no round is in flight and the wrapped protocol has no
  /// deferral event outstanding — the only state in which this session
  /// (and the device stack owning it) may be torn down for hibernation.
  bool quiescent() const noexcept {
    return state_ == nullptr && protocol_.pending_events() == 0;
  }

  /// Session-and-protocol state that must survive hibernation: the jitter
  /// RNG position, the monotonic counter/round sequences, the lifetime
  /// counters, and the prover's replay-protection watermark.  Capture only
  /// while quiescent(); restore into a freshly constructed session with
  /// the same config before its next run().
  struct State {
    support::Xoshiro256::State rng{};
    std::uint64_t next_counter = 1;
    std::uint64_t next_round_seq = 1;
    std::size_t rounds_resolved = 0;
    std::size_t retries = 0;
    std::size_t replays_rejected = 0;
    std::size_t corrupt_reports = 0;
    std::size_t late_reports = 0;
    OnDemandProtocol::State protocol;
  };

  State save_state() const;
  void restore_state(const State& s);

  /// Lifetime counters across rounds (also exported via set_metrics).
  std::size_t rounds_resolved() const noexcept { return rounds_resolved_; }
  std::size_t retries() const noexcept { return retries_; }
  std::size_t replays_rejected() const noexcept { return replays_rejected_; }
  std::size_t corrupt_reports() const noexcept { return corrupt_reports_; }
  /// Reports that arrived after their round resolved (e.g. a duplicated
  /// copy of the winning report) — rejected without re-judging.
  std::size_t late_reports() const noexcept { return late_reports_; }

  /// Attach a metrics registry (not owned; nullptr to detach).  Rounds
  /// then account "session.rounds", per-outcome counters
  /// ("session.verified", "session.compromised", "session.timeout",
  /// "session.corrupt_report", "session.replay_rejected"),
  /// "session.retries", "session.attempt_timeouts",
  /// "session.replays_rejected", "session.corrupt_reports",
  /// "session.late_reports" and the "session.round_latency_ms" histogram.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  /// Attach a fleet health rollup (not owned; nullptr to detach).  Every
  /// resolved round records outcome, retry depth, latency and wasted
  /// measurement time — the mergeable summary the exp shard pool folds
  /// across trials.
  void set_health(obs::HealthRollup* health) noexcept { health_ = health; }

 private:
  struct RoundState {
    std::uint64_t round_seq = 0;
    RoundResult result;
    bool waiting_response = false;  ///< an attempt is in flight (vs. backoff)
    bool saw_corrupt = false;
    bool saw_replay = false;
    sim::Duration measure_time_at_start = 0;
    sim::EventHandle timeout;
    sim::EventHandle retry;
    std::function<void(RoundResult)> done;
  };

  void start_attempt();
  void on_attempt_report(std::uint64_t round_seq, OnDemandTimings timings);
  void on_attempt_timeout(std::uint64_t round_seq);
  void schedule_retry();
  void resolve(SessionOutcome outcome);
  void count(const char* metric) const;
  /// Journal one session event (round = round_seq of the affected round).
  void journal(obs::JournalEventKind kind, std::uint64_t round, std::uint64_t a = 0,
               std::uint64_t b = 0);

  sim::Device& device_;
  AttestationProcess& mp_;
  SessionConfig config_;
  OnDemandProtocol protocol_;
  support::Xoshiro256 rng_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::HealthRollup* health_ = nullptr;
  std::string journal_label_;      ///< journal session name, "session/<device>"
  obs::ActorId journal_actor_;     ///< prover device id
  obs::ActorId journal_session_;   ///< this session's id (interned label)
  std::uint64_t next_counter_ = 1;
  std::uint64_t next_round_seq_ = 1;
  std::unique_ptr<RoundState> state_;  ///< null when idle

  std::size_t rounds_resolved_ = 0;
  std::size_t retries_ = 0;
  std::size_t replays_rejected_ = 0;
  std::size_t corrupt_reports_ = 0;
  std::size_t late_reports_ = 0;
};

}  // namespace rasc::attest
