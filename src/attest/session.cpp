#include "src/attest/session.hpp"

#include <cmath>
#include <stdexcept>

namespace rasc::attest {

std::string session_outcome_name(SessionOutcome outcome) {
  switch (outcome) {
    case SessionOutcome::kVerified: return "verified";
    case SessionOutcome::kCompromised: return "compromised";
    case SessionOutcome::kTimeout: return "timeout";
    case SessionOutcome::kCorruptReport: return "corrupt_report";
    case SessionOutcome::kReplayRejected: return "replay_rejected";
  }
  return "?";
}

obs::RoundOutcome session_outcome_rollup(SessionOutcome outcome) {
  // The obs mirror must track this enum one-to-one.
  static_assert(obs::kRoundOutcomeCount == 5);
  switch (outcome) {
    case SessionOutcome::kVerified: return obs::RoundOutcome::kVerified;
    case SessionOutcome::kCompromised: return obs::RoundOutcome::kCompromised;
    case SessionOutcome::kTimeout: return obs::RoundOutcome::kTimeout;
    case SessionOutcome::kCorruptReport: return obs::RoundOutcome::kCorruptReport;
    case SessionOutcome::kReplayRejected: return obs::RoundOutcome::kReplayRejected;
  }
  return obs::RoundOutcome::kTimeout;
}

ReliableSession::ReliableSession(sim::Device& prover_device, Verifier& verifier,
                                 AttestationProcess& mp, sim::Link& vrf_to_prv,
                                 sim::Link& prv_to_vrf, SessionConfig config)
    : device_(prover_device),
      mp_(mp),
      config_(std::move(config)),
      protocol_(prover_device, verifier, mp, vrf_to_prv, prv_to_vrf,
                config_.protocol),
      rng_(config_.seed),
      journal_label_("session/" + prover_device.id()) {}

void ReliableSession::count(const char* metric) const {
  if (metrics_ != nullptr) metrics_->counter(metric).inc();
}

void ReliableSession::journal(obs::JournalEventKind kind, std::uint64_t round,
                              std::uint64_t a, std::uint64_t b) {
  auto& sim = device_.sim();
  if (auto* j = sim.journal()) {
    j->append(sim.now(), journal_actor_.get(*j, device_.id()),
              journal_session_.get(*j, journal_label_), round, kind, a, b);
  }
}

void ReliableSession::run(std::function<void(RoundResult)> done) {
  if (state_ != nullptr) {
    throw std::logic_error("ReliableSession: a round is already in flight");
  }
  if (config_.max_attempts == 0) {
    throw std::invalid_argument("ReliableSession: max_attempts must be >= 1");
  }
  state_ = std::make_unique<RoundState>();
  state_->round_seq = next_round_seq_++;
  state_->result.t_started = device_.sim().now();
  state_->measure_time_at_start = mp_.total_measure_time();
  state_->done = std::move(done);
  journal(obs::JournalEventKind::kSessionStart, state_->round_seq,
          config_.max_attempts, config_.response_timeout);
  start_attempt();
}

void ReliableSession::start_attempt() {
  auto& sim = device_.sim();
  ++state_->result.attempts;
  state_->waiting_response = true;
  const std::uint64_t seq = state_->round_seq;
  if (auto* sink = sim.trace_sink()) {
    sink->instant(sim.now(), "session", "session.attempt",
                  {obs::arg("attempt",
                            static_cast<std::uint64_t>(state_->result.attempts))});
  }
  const std::uint64_t counter = next_counter_++;
  journal(obs::JournalEventKind::kSessionAttempt, seq, state_->result.attempts,
          counter);
  protocol_.run(counter, [this, seq](OnDemandTimings timings) {
    on_attempt_report(seq, std::move(timings));
  });
  state_->timeout = sim.schedule_in(config_.response_timeout,
                                    [this, seq] { on_attempt_timeout(seq); });
}

void ReliableSession::on_attempt_report(std::uint64_t round_seq,
                                        OnDemandTimings timings) {
  if (state_ == nullptr || state_->round_seq != round_seq) {
    // The round already resolved (e.g. a duplicated copy of the winning
    // report, or an answer that outlived its whole round): reject without
    // touching verifier state again.
    ++late_reports_;
    count("session.late_reports");
    journal(obs::JournalEventKind::kSessionLateReport, round_seq);
    return;
  }
  RoundResult& result = state_->result;

  if (!timings.report_wire_ok || !timings.outcome.mac_ok) {
    // Garbled in transit (or forged): the attempt's answer is consumed,
    // so retry immediately instead of waiting out the timer.
    ++result.corrupt_reports;
    ++corrupt_reports_;
    count("session.corrupt_reports");
    journal(obs::JournalEventKind::kSessionCorruptReport, round_seq,
            result.attempts);
    state_->saw_corrupt = true;
    if (!state_->waiting_response) return;  // already backing off
    state_->timeout.cancel();
    state_->waiting_response = false;
    if (result.attempts >= config_.max_attempts) {
      resolve(SessionOutcome::kCorruptReport);
    } else {
      schedule_retry();
    }
    return;
  }
  if (!timings.outcome.challenge_ok || !timings.outcome.counter_ok) {
    // Authentic but stale: an answer to a superseded challenge or an
    // old counter.  Keep waiting — the genuine response may still come.
    ++result.replays_rejected;
    ++replays_rejected_;
    count("session.replays_rejected");
    journal(obs::JournalEventKind::kSessionReplayRejected, round_seq,
            result.attempts);
    state_->saw_replay = true;
    return;
  }
  result.verdict = timings.outcome;
  result.timings = std::move(timings);
  resolve(result.verdict.digest_ok ? SessionOutcome::kVerified
                                   : SessionOutcome::kCompromised);
}

void ReliableSession::on_attempt_timeout(std::uint64_t round_seq) {
  if (state_ == nullptr || state_->round_seq != round_seq) return;
  if (!state_->waiting_response) return;  // superseded by a corrupt-retry
  RoundResult& result = state_->result;
  ++result.attempt_timeouts;
  count("session.attempt_timeouts");
  journal(obs::JournalEventKind::kSessionAttemptTimeout, round_seq,
          result.attempts);
  state_->waiting_response = false;
  if (auto* sink = device_.sim().trace_sink()) {
    sink->instant(device_.sim().now(), "session", "session.attempt_timeout");
  }
  if (result.attempts >= config_.max_attempts) {
    // Exhausted.  Classify by the best evidence heard this round: garbled
    // answers beat stale ones beat pure silence.
    if (state_->saw_corrupt) {
      resolve(SessionOutcome::kCorruptReport);
    } else if (state_->saw_replay) {
      resolve(SessionOutcome::kReplayRejected);
    } else {
      resolve(SessionOutcome::kTimeout);
    }
    return;
  }
  schedule_retry();
}

void ReliableSession::schedule_retry() {
  auto& sim = device_.sim();
  RoundResult& result = state_->result;
  const double scale =
      std::pow(config_.backoff_factor, static_cast<double>(result.attempts - 1));
  const double jitter_mult = 1.0 + config_.backoff_jitter * rng_.uniform();
  const double raw =
      static_cast<double>(config_.backoff_base) * scale * jitter_mult;
  // Saturating clamp before the integer cast: deep retry budgets or large
  // factors push `raw` past what sim::Duration holds, and casting an
  // out-of-range (or non-finite, or negative) double to uint64 is UB.
  sim::Duration backoff;
  if (!(raw > 0.0)) {
    backoff = 0;
  } else if (raw >= static_cast<double>(config_.backoff_max)) {
    backoff = config_.backoff_max;
  } else {
    backoff = static_cast<sim::Duration>(raw);
  }
  result.backoff_total += backoff;
  ++retries_;
  count("session.retries");
  journal(obs::JournalEventKind::kSessionBackoff, state_->round_seq,
          result.attempts, backoff);
  if (auto* sink = sim.trace_sink()) {
    sink->instant(sim.now(), "session", "session.retry_scheduled",
                  {obs::arg("backoff_ms", sim::to_millis(backoff))});
  }
  const std::uint64_t seq = state_->round_seq;
  state_->retry = sim.schedule_in(backoff, [this, seq] {
    if (state_ == nullptr || state_->round_seq != seq) return;
    start_attempt();
  });
}

ReliableSession::State ReliableSession::save_state() const {
  if (!quiescent()) {
    throw std::logic_error("ReliableSession: save_state while not quiescent");
  }
  State s;
  s.rng = rng_.state();
  s.next_counter = next_counter_;
  s.next_round_seq = next_round_seq_;
  s.rounds_resolved = rounds_resolved_;
  s.retries = retries_;
  s.replays_rejected = replays_rejected_;
  s.corrupt_reports = corrupt_reports_;
  s.late_reports = late_reports_;
  s.protocol = protocol_.save_state();
  return s;
}

void ReliableSession::restore_state(const State& s) {
  if (busy()) {
    throw std::logic_error("ReliableSession: restore_state while a round is in flight");
  }
  rng_.set_state(s.rng);
  next_counter_ = s.next_counter;
  next_round_seq_ = s.next_round_seq;
  rounds_resolved_ = s.rounds_resolved;
  retries_ = s.retries;
  replays_rejected_ = s.replays_rejected;
  corrupt_reports_ = s.corrupt_reports;
  late_reports_ = s.late_reports;
  protocol_.restore_state(s.protocol);
}

void ReliableSession::resolve(SessionOutcome outcome) {
  auto& sim = device_.sim();
  RoundState& state = *state_;
  state.timeout.cancel();
  state.retry.cancel();
  RoundResult& result = state.result;
  result.outcome = outcome;
  result.t_resolved = sim.now();
  result.measure_time = mp_.total_measure_time() - state.measure_time_at_start;
  const bool decisive = outcome == SessionOutcome::kVerified ||
                        outcome == SessionOutcome::kCompromised;
  // A decisive verdict means some report reached Vrf, and every report
  // carries the full proof backlog — safe to stop re-proving it.
  if (decisive) mp_.clear_proof_backlog();
  const sim::Duration useful =
      decisive ? result.timings.attestation.t_e - result.timings.attestation.t_s : 0;
  result.wasted_measure_time =
      result.measure_time > useful ? result.measure_time - useful : 0;

  ++rounds_resolved_;
  count("session.rounds");
  journal(obs::JournalEventKind::kSessionResolved, state.round_seq,
          static_cast<std::uint64_t>(session_outcome_rollup(outcome)),
          result.wasted_measure_time);
  if (health_ != nullptr) {
    health_->record_round(session_outcome_rollup(outcome), result.attempts,
                          result.t_resolved - result.t_started,
                          result.measure_time, result.wasted_measure_time);
    if (outcome == SessionOutcome::kCompromised && result.verdict.used_tree) {
      if (result.verdict.localized.empty()) {
        health_->record_unlocalized_compromise();
      } else {
        for (const auto& range : result.verdict.localized) {
          health_->record_localization(range.first, range.count,
                                       result.verdict.total_blocks);
        }
      }
    }
  }
  if (metrics_ != nullptr) {
    metrics_->counter("session." + session_outcome_name(outcome)).inc();
    metrics_
        ->histogram("session.round_latency_ms",
                    obs::Histogram::default_latency_bounds_ms())
        .record(sim::to_millis(result.t_resolved - result.t_started));
  }
  if (auto* sink = sim.trace_sink()) {
    sink->instant(result.t_resolved, "session", "session.resolved",
                  {obs::arg("outcome", session_outcome_name(outcome)),
                   obs::arg("attempts",
                            static_cast<std::uint64_t>(result.attempts))});
  }

  // Pop the state before invoking the callback so `done` may immediately
  // start the next round.
  auto done = std::move(state.done);
  RoundResult finished = std::move(result);
  state_.reset();
  done(std::move(finished));
}

}  // namespace rasc::attest
