#include "src/bignum/bignum.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <stdexcept>

namespace rasc::bn {

namespace {
using u128 = unsigned __int128;
constexpr std::uint64_t kLimbMax = ~std::uint64_t{0};
}  // namespace

Bignum::Bignum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void Bignum::normalize() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty()) throw std::invalid_argument("empty hex string");
  Bignum out;
  for (char c : hex) {
    int nib;
    if (c >= '0' && c <= '9') nib = c - '0';
    else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
    else throw std::invalid_argument("malformed hex digit");
    out = out.shifted_left(4);
    if (nib != 0) {
      if (out.limbs_.empty()) out.limbs_.push_back(0);
      out.limbs_[0] |= static_cast<std::uint64_t>(nib);
    }
  }
  return out;
}

Bignum Bignum::from_bytes_be(support::ByteView bytes) {
  Bignum out;
  const std::size_t nlimbs = (bytes.size() + 7) / 8;
  out.limbs_.assign(nlimbs, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // bytes[i] is the most significant remaining byte.
    const std::size_t bit_pos = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit_pos / 64] |= static_cast<std::uint64_t>(bytes[i]) << (bit_pos % 64);
  }
  out.normalize();
  return out;
}

support::Bytes Bignum::to_bytes_be(std::size_t len) const {
  if (bit_length() > len * 8) throw std::length_error("Bignum does not fit requested length");
  support::Bytes out(len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t bit_pos = (len - 1 - i) * 8;
    const std::size_t limb = bit_pos / 64;
    if (limb < limbs_.size()) {
      out[i] = static_cast<std::uint8_t>(limbs_[limb] >> (bit_pos % 64));
    }
  }
  return out;
}

support::Bytes Bignum::to_bytes_be() const {
  return to_bytes_be(std::max<std::size_t>(1, (bit_length() + 7) / 8));
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    char buf[17];
    if (i == limbs_.size() - 1) {
      std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(limbs_[i]));
    } else {
      std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(limbs_[i]));
    }
    out += buf;
  }
  return out;
}

std::size_t Bignum::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return limbs_.size() * 64 - static_cast<std::size_t>(std::countl_zero(limbs_.back()));
}

bool Bignum::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int Bignum::compare(const Bignum& a, const Bignum& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

Bignum operator+(const Bignum& a, const Bignum& b) {
  Bignum out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = i < a.limbs_.size() ? a.limbs_[i] : 0;
    const std::uint64_t y = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(x) + y + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  if (carry) out.limbs_.push_back(carry);
  return out;
}

Bignum operator-(const Bignum& a, const Bignum& b) {
  if (Bignum::compare(a, b) < 0) throw std::underflow_error("Bignum subtraction underflow");
  Bignum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t y = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const std::uint64_t x = a.limbs_[i];
    const std::uint64_t yb = y + borrow;
    // Detect wraparound of y + borrow as well as x < yb.
    const bool wrap = (yb < y);
    out.limbs_[i] = x - yb;
    borrow = (wrap || x < yb) ? 1 : 0;
  }
  out.normalize();
  return out;
}

Bignum operator*(const Bignum& a, const Bignum& b) {
  if (a.is_zero() || b.is_zero()) return Bignum{};
  Bignum out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(ai) * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] = carry;
  }
  out.normalize();
  return out;
}

Bignum Bignum::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    Bignum out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  Bignum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift) out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.normalize();
  return out;
}

Bignum Bignum::shifted_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return Bignum{};
  Bignum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift ? (limbs_[i + limb_shift] >> bit_shift) : limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.normalize();
  return out;
}

Bignum::DivMod Bignum::divmod(const Bignum& a, const Bignum& b) {
  if (b.is_zero()) throw std::domain_error("Bignum division by zero");
  if (compare(a, b) < 0) return {Bignum{}, a};
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const std::uint64_t d = b.limbs_[0];
    Bignum q;
    q.limbs_.assign(a.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | a.limbs_[i];
      q.limbs_[i] = static_cast<std::uint64_t>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {q, Bignum{static_cast<std::uint64_t>(rem)}};
  }

  // Knuth Algorithm D.  Normalize so the divisor's top bit is set.
  const int shift = std::countl_zero(b.limbs_.back());
  const Bignum u_norm = a.shifted_left(static_cast<std::size_t>(shift));
  const Bignum v_norm = b.shifted_left(static_cast<std::size_t>(shift));
  const std::size_t n = v_norm.limbs_.size();
  std::vector<std::uint64_t> u = u_norm.limbs_;
  // Extra high limb required by the algorithm; a >= b guarantees
  // u.size() >= n here, so m >= 1.
  u.push_back(0);
  const std::size_t m = u.size() - n;  // number of quotient limbs (upper bound)
  const std::vector<std::uint64_t>& v = v_norm.limbs_;

  Bignum q;
  q.limbs_.assign(m, 0);
  for (std::size_t j = m; j-- > 0;) {
    // Estimate qhat from the top two limbs of the current remainder window.
    const u128 numerator = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 qhat = numerator / v[n - 1];
    u128 rhat = numerator % v[n - 1];
    while (qhat > kLimbMax ||
           (n >= 2 && qhat * v[n - 2] > ((rhat << 64) | u[j + n - 2]))) {
      --qhat;
      rhat += v[n - 1];
      if (rhat > kLimbMax) break;
    }

    // Multiply-subtract: u[j..j+n] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 product = qhat * v[i] + carry;
      carry = product >> 64;
      const std::uint64_t plo = static_cast<std::uint64_t>(product);
      const u128 diff = static_cast<u128>(u[i + j]) - plo - borrow;
      u[i + j] = static_cast<std::uint64_t>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
    const u128 diff = static_cast<u128>(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<std::uint64_t>(diff);

    if (diff >> 64) {
      // qhat was one too large: add back.
      --qhat;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<std::uint64_t>(sum);
        c = sum >> 64;
      }
      u[j + n] = static_cast<std::uint64_t>(u[j + n] + c);
    }
    q.limbs_[j] = static_cast<std::uint64_t>(qhat);
  }
  q.normalize();

  Bignum r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.normalize();
  return {q, r.shifted_right(static_cast<std::size_t>(shift))};
}

Bignum operator/(const Bignum& a, const Bignum& b) { return Bignum::divmod(a, b).quotient; }
Bignum operator%(const Bignum& a, const Bignum& b) { return Bignum::divmod(a, b).remainder; }

Bignum Bignum::mod_add(const Bignum& a, const Bignum& b, const Bignum& m) {
  Bignum sum = a + b;
  if (compare(sum, m) >= 0) sum = sum - m;
  return sum;
}

Bignum Bignum::mod_sub(const Bignum& a, const Bignum& b, const Bignum& m) {
  if (compare(a, b) >= 0) return a - b;
  return (a + m) - b;
}

Bignum Bignum::mod_mul(const Bignum& a, const Bignum& b, const Bignum& m) {
  return (a * b) % m;
}

Bignum Bignum::mod_exp(const Bignum& base, const Bignum& exp, const Bignum& m) {
  if (m.is_zero()) throw std::domain_error("mod_exp modulus is zero");
  if (m.is_one()) return Bignum{};
  if (exp.is_zero()) return Bignum{1};

  // 4-bit fixed window: precompute base^0..base^15 mod m.
  Bignum table[16];
  table[0] = Bignum{1};
  table[1] = base % m;
  for (int i = 2; i < 16; ++i) table[i] = mod_mul(table[i - 1], table[1], m);

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  Bignum acc{1};
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) acc = mod_mul(acc, acc, m);
    unsigned digit = 0;
    for (int s = 3; s >= 0; --s) {
      digit = (digit << 1) | (exp.bit(w * 4 + static_cast<std::size_t>(s)) ? 1u : 0u);
    }
    if (digit != 0) acc = mod_mul(acc, table[digit], m);
  }
  return acc;
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
  while (!b.is_zero()) {
    Bignum r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Bignum Bignum::mod_inv(const Bignum& a, const Bignum& m) {
  if (m.is_zero() || m.is_one()) throw std::domain_error("mod_inv bad modulus");
  // Extended Euclid with sign tracking: old_s may go negative.
  Bignum old_r = a % m, r = m;
  Bignum old_s{1}, s{};
  bool old_s_neg = false, s_neg = false;
  while (!r.is_zero()) {
    const DivMod qr = divmod(old_r, r);
    // (old_s, s) <- (s, old_s - q * s), tracking signs.
    Bignum qs = qr.quotient * s;
    Bignum new_s;
    bool new_neg;
    if (old_s_neg == s_neg) {
      // Same sign: result sign depends on magnitudes.
      if (compare(old_s, qs) >= 0) {
        new_s = old_s - qs;
        new_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_neg = old_s_neg;
    }
    old_r = r;
    r = qr.remainder;
    old_s = s;
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_neg;
  }
  if (!old_r.is_one()) throw std::domain_error("mod_inv: value not invertible");
  Bignum result = old_s % m;
  if (old_s_neg && !result.is_zero()) result = m - result;
  return result;
}

Bignum Bignum::random_below(const Bignum& bound, const ByteSource& source) {
  if (bound.is_zero()) throw std::domain_error("random_below zero bound");
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  support::Bytes buf(nbytes);
  // Rejection sampling on the top byte mask keeps the distribution uniform.
  const unsigned top_bits = static_cast<unsigned>(((bits - 1) % 8) + 1);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << top_bits) - 1);
  for (;;) {
    source(buf);
    buf[0] &= mask;
    Bignum candidate = from_bytes_be(buf);
    if (compare(candidate, bound) < 0) return candidate;
  }
}

}  // namespace rasc::bn
