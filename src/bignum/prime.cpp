#include "src/bignum/prime.hpp"

#include <array>
#include <stdexcept>
#include <vector>

namespace rasc::bn {

namespace {

// Small primes for trial division (everything below 1000).
const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    std::vector<std::uint32_t> out;
    std::array<bool, 1000> composite{};
    for (std::uint32_t p = 2; p < composite.size(); ++p) {
      if (composite[p]) continue;
      out.push_back(p);
      for (std::uint32_t q = p * p; q < composite.size(); q += p) composite[q] = true;
    }
    return out;
  }();
  return primes;
}

}  // namespace

bool has_small_factor(const Bignum& n) {
  for (std::uint32_t p : small_primes()) {
    const Bignum bp{p};
    if (Bignum::compare(n, bp) <= 0) return false;  // n itself is small/prime
    if ((n % bp).is_zero()) return true;
  }
  return false;
}

bool is_probable_prime(const Bignum& n, int rounds, const Bignum::ByteSource& source) {
  if (n.is_zero() || n.is_one()) return false;
  for (std::uint32_t p : small_primes()) {
    const Bignum bp{p};
    const int cmp = Bignum::compare(n, bp);
    if (cmp == 0) return true;
    if (cmp < 0) return false;
    if ((n % bp).is_zero()) return false;
  }
  if (!n.is_odd()) return false;

  // Write n - 1 = d * 2^s with d odd.
  const Bignum n_minus_1 = n - Bignum{1};
  Bignum d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++s;
  }

  const Bignum two{2};
  const Bignum n_minus_3 = n - Bignum{3};
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    const Bignum a = Bignum::random_below(n_minus_3, source) + two;
    Bignum x = Bignum::mod_exp(a, d, n);
    if (x.is_one() || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t r = 1; r < s; ++r) {
      x = Bignum::mod_mul(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

Bignum generate_prime(std::size_t bits, const Bignum::ByteSource& source, int rounds) {
  if (bits < 8) throw std::invalid_argument("generate_prime: need at least 8 bits");
  const std::size_t nbytes = (bits + 7) / 8;
  support::Bytes buf(nbytes);
  for (;;) {
    source(buf);
    Bignum candidate = Bignum::from_bytes_be(buf);
    // Trim to exactly `bits` bits, then force top-two and low bits.
    const std::size_t excess = candidate.bit_length() > bits ? candidate.bit_length() - bits : 0;
    if (excess > 0) candidate = candidate.shifted_right(excess);
    Bignum top = Bignum{3}.shifted_left(bits - 2);
    // candidate | top | 1: realize with arithmetic since we lack bit-or.
    // Clear the top two bits by reducing mod 2^(bits-2), then add them back.
    Bignum low = candidate % Bignum{1}.shifted_left(bits - 2);
    candidate = top + low;
    if (!candidate.is_odd()) candidate = candidate + Bignum{1};

    if (has_small_factor(candidate)) continue;
    if (is_probable_prime(candidate, rounds, source)) return candidate;
  }
}

}  // namespace rasc::bn
