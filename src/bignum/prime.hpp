#pragma once
/// \file prime.hpp
/// Primality testing (Miller–Rabin with trial division) and random prime
/// generation for RSA key generation.

#include <cstddef>

#include "src/bignum/bignum.hpp"

namespace rasc::bn {

/// Miller–Rabin probable-prime test with `rounds` random bases drawn from
/// `source`; preceded by trial division against small primes.  Error
/// probability <= 4^-rounds for composite inputs.
bool is_probable_prime(const Bignum& n, int rounds, const Bignum::ByteSource& source);

/// Generate a random probable prime of exactly `bits` bits (top two bits
/// set so that the product of two such primes has exactly 2*bits bits;
/// low bit set).  Deterministic given a deterministic source.
Bignum generate_prime(std::size_t bits, const Bignum::ByteSource& source, int rounds = 20);

/// Trial-divide by the built-in small-prime table; true if a factor found.
/// Exposed for tests.
bool has_small_factor(const Bignum& n);

}  // namespace rasc::bn
