#pragma once
/// \file bignum.hpp
/// Arbitrary-precision unsigned integers for the cryptographic substrate
/// (RSA and ECDSA).  Little-endian 64-bit limbs, value-semantic, always
/// normalized (no leading zero limbs; zero is the empty limb vector).
///
/// This is a clarity-first implementation: schoolbook multiplication and
/// Knuth Algorithm D division, which are entirely adequate for the key
/// sizes the paper benchmarks (RSA up to 4096 bits, curves up to 256 bits).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/support/bytes.hpp"

namespace rasc::bn {

class Bignum {
 public:
  /// Zero.
  Bignum() = default;

  /// From a machine word.
  explicit Bignum(std::uint64_t v);

  /// Parse from hex (case-insensitive, optional "0x" prefix); throws
  /// std::invalid_argument on malformed input.
  static Bignum from_hex(std::string_view hex);

  /// Big-endian byte-string conversions (network/crypto order).
  static Bignum from_bytes_be(support::ByteView bytes);
  /// Serialize to exactly `len` big-endian bytes; throws std::length_error
  /// if the value does not fit.
  support::Bytes to_bytes_be(std::size_t len) const;
  /// Serialize to the minimal big-endian byte string ("0" -> one zero byte).
  support::Bytes to_bytes_be() const;

  std::string to_hex() const;

  // -- queries ------------------------------------------------------------
  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const noexcept { return limbs_.size() == 1 && limbs_[0] == 1; }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const noexcept;
  /// Bit i (0 = least significant); bits beyond bit_length() read as 0.
  bool bit(std::size_t i) const noexcept;
  /// Low 64 bits of the value.
  std::uint64_t low_u64() const noexcept { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Three-way comparison: negative, zero, positive.
  static int compare(const Bignum& a, const Bignum& b) noexcept;

  // -- arithmetic (unsigned; subtraction requires a >= b) ------------------
  friend Bignum operator+(const Bignum& a, const Bignum& b);
  /// Throws std::underflow_error if a < b.
  friend Bignum operator-(const Bignum& a, const Bignum& b);
  friend Bignum operator*(const Bignum& a, const Bignum& b);
  friend Bignum operator/(const Bignum& a, const Bignum& b);
  friend Bignum operator%(const Bignum& a, const Bignum& b);

  friend bool operator==(const Bignum& a, const Bignum& b) noexcept {
    return compare(a, b) == 0;
  }
  friend bool operator!=(const Bignum& a, const Bignum& b) noexcept {
    return compare(a, b) != 0;
  }
  friend bool operator<(const Bignum& a, const Bignum& b) noexcept {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const Bignum& a, const Bignum& b) noexcept {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const Bignum& a, const Bignum& b) noexcept {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const Bignum& a, const Bignum& b) noexcept {
    return compare(a, b) >= 0;
  }

  /// Quotient and remainder in one pass; divisor must be non-zero
  /// (throws std::domain_error otherwise).  Defined after the class body
  /// because its fields need the complete Bignum type.
  struct DivMod;
  static DivMod divmod(const Bignum& a, const Bignum& b);

  Bignum shifted_left(std::size_t bits) const;
  Bignum shifted_right(std::size_t bits) const;

  // -- modular arithmetic ---------------------------------------------------
  /// (a + b) mod m, inputs already reduced mod m.
  static Bignum mod_add(const Bignum& a, const Bignum& b, const Bignum& m);
  /// (a - b) mod m, inputs already reduced mod m.
  static Bignum mod_sub(const Bignum& a, const Bignum& b, const Bignum& m);
  /// (a * b) mod m.
  static Bignum mod_mul(const Bignum& a, const Bignum& b, const Bignum& m);
  /// base^exp mod m (m > 1); 4-bit fixed-window square-and-multiply.
  static Bignum mod_exp(const Bignum& base, const Bignum& exp, const Bignum& m);
  /// Multiplicative inverse of a mod m via extended Euclid; throws
  /// std::domain_error when gcd(a, m) != 1.
  static Bignum mod_inv(const Bignum& a, const Bignum& m);
  static Bignum gcd(Bignum a, Bignum b);

  /// Uniform value in [0, bound) using the supplied byte source
  /// (e.g. crypto::HmacDrbg::generate or a test stub); bound must be > 0.
  using ByteSource = std::function<void(support::MutableByteView)>;
  static Bignum random_below(const Bignum& bound, const ByteSource& source);

  const std::vector<std::uint64_t>& limbs() const noexcept { return limbs_; }

 private:
  void normalize() noexcept;

  std::vector<std::uint64_t> limbs_;  // little-endian
};

struct Bignum::DivMod {
  Bignum quotient;
  Bignum remainder;
};

}  // namespace rasc::bn
