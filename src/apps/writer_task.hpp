#pragma once
/// \file writer_task.hpp
/// A data-logging application that periodically writes into its own memory
/// region.  Used to measure the "writable memory availability" column of
/// the paper's Table 1: under each locking mechanism, what fraction of
/// application writes issued during a measurement actually succeed?

#include <optional>

#include "src/sim/device.hpp"
#include "src/support/rng.hpp"

namespace rasc::apps {

struct WriterConfig {
  sim::Duration period = 2 * sim::kMillisecond;
  sim::Duration write_cost = 5 * sim::kMicrosecond;
  std::size_t first_block = 0;   ///< region the app writes into
  std::size_t block_count = 0;   ///< 0 = whole memory
  std::size_t write_size = 64;   ///< bytes per write
  int priority = 100;
  std::uint64_t seed = 0xab1e;
};

class WriterTask final : public sim::Process {
 public:
  WriterTask(sim::Device& device, WriterConfig config = {});

  void arm(sim::Time until);

  std::size_t attempts() const noexcept { return attempts_; }
  std::size_t blocked() const noexcept { return blocked_; }
  /// Fraction of writes the MPU admitted (1.0 when nothing was locked).
  double availability() const noexcept {
    return attempts_ == 0 ? 1.0
                          : 1.0 - static_cast<double>(blocked_) /
                                      static_cast<double>(attempts_);
  }
  void reset_counters() noexcept {
    attempts_ = 0;
    blocked_ = 0;
  }

  // sim::Process
  std::optional<sim::Segment> next_segment() override;

 private:
  void do_write();

  sim::Device& device_;
  WriterConfig config_;
  support::Xoshiro256 rng_;
  std::size_t pending_ = 0;
  std::size_t attempts_ = 0;
  std::size_t blocked_ = 0;
};

}  // namespace rasc::apps
