#include "src/apps/fire_alarm.hpp"

namespace rasc::apps {

FireAlarmTask::FireAlarmTask(sim::Device& device, FireAlarmConfig config)
    : sim::Process("app/fire-alarm", config.priority), device_(device), config_(config) {}

void FireAlarmTask::arm(sim::Time until) {
  auto& sim = device_.sim();
  for (sim::Time t = sim.now() + config_.period; t <= until; t += config_.period) {
    sim.schedule_at(t, [this, t] {
      pending_.push_back(t);
      device_.cpu().make_ready(*this);
    });
  }
}

std::optional<sim::Segment> FireAlarmTask::next_segment() {
  if (pending_.empty()) return std::nullopt;
  const sim::Time scheduled_at = pending_.front();
  pending_.erase(pending_.begin());
  return sim::Segment{config_.sample_cost,
                      [this, scheduled_at] { complete_sample(scheduled_at); }};
}

void FireAlarmTask::complete_sample(sim::Time scheduled_at) {
  const sim::Time now = device_.sim().now();
  ++samples_taken_;
  const sim::Duration delay = now - scheduled_at;
  if (delay > max_delay_) max_delay_ = delay;
  const bool missed = delay > config_.deadline;
  if (missed) ++deadline_misses_;
  auto* sink = device_.sim().trace_sink();
  if (sink != nullptr && missed) {
    sink->instant(now, "app/" + device_.id(), "fire_alarm.deadline_miss",
                  {obs::arg("delay_ms", sim::to_millis(delay))});
  }
  if (auto* j = device_.sim().journal()) {
    j->append(now, journal_actor_.get(*j, device_.id()), 0, 0,
              missed ? obs::JournalEventKind::kDeadlineMiss
                     : obs::JournalEventKind::kDeadlineHit,
              delay, config_.deadline);
  }
  if (metrics_ != nullptr) {
    metrics_->counter("fire_alarm.samples").inc();
    metrics_->histogram("fire_alarm.sample_delay_ms").record(sim::to_millis(delay));
    if (missed) metrics_->counter("fire_alarm.deadline_miss").inc();
  }
  // The sensor reads the *current* ambient state: a fire that started any
  // time before this sample executes is seen now.
  if (fire_time_ && now >= *fire_time_ && !alarm_at_) {
    alarm_at_ = now;
    if (sink != nullptr) {
      sink->instant(now, "app/" + device_.id(), "fire_alarm.alarm_raised",
                    {obs::arg("latency_ms", sim::to_millis(now - *fire_time_))});
    }
    if (auto* j = device_.sim().journal()) {
      j->append(now, journal_actor_.get(*j, device_.id()), 0, 0,
                obs::JournalEventKind::kAlarmRaised, now - *fire_time_, 0);
    }
  }
}

std::optional<sim::Duration> FireAlarmTask::alarm_latency() const {
  if (!alarm_at_ || !fire_time_) return std::nullopt;
  return *alarm_at_ - *fire_time_;
}

}  // namespace rasc::apps
