#pragma once
/// \file fire_alarm.hpp
/// The paper's Section 2.5 safety-critical workload: a bare-metal
/// sensor-actuator fire alarm that samples a temperature sensor every
/// second and must raise the alarm promptly.  The task runs at high
/// priority, but a SMART-style atomic measurement still blocks it for the
/// whole measurement — the central conflict the paper examines.

#include <optional>
#include <vector>

#include "src/sim/device.hpp"

namespace rasc::apps {

struct FireAlarmConfig {
  sim::Duration period = sim::kSecond;            ///< sensor sampling period
  sim::Duration sample_cost = 50 * sim::kMicrosecond;  ///< CPU per sample
  int priority = 100;                             ///< above everything else
};

class FireAlarmTask final : public sim::Process {
 public:
  FireAlarmTask(sim::Device& device, FireAlarmConfig config = {});

  /// Schedule sensor sampling jobs until `until`.
  void arm(sim::Time until);

  /// The fire physically starts at `t` (the sensor reads "hot" from then
  /// on); the next *executed* sample raises the alarm.
  void set_fire_time(sim::Time t) { fire_time_ = t; }

  std::optional<sim::Time> alarm_raised_at() const noexcept { return alarm_at_; }

  /// Time from fire outbreak to alarm; nullopt if no alarm yet.
  std::optional<sim::Duration> alarm_latency() const;

  std::size_t samples_taken() const noexcept { return samples_taken_; }

  /// Worst observed delay between a sample's scheduled arrival and its
  /// completion (availability of the critical task under attestation).
  sim::Duration max_sample_delay() const noexcept { return max_delay_; }

  // sim::Process
  std::optional<sim::Segment> next_segment() override;

 private:
  void complete_sample(sim::Time scheduled_at);

  sim::Device& device_;
  FireAlarmConfig config_;
  std::vector<sim::Time> pending_;  ///< FIFO of arrival times awaiting CPU
  std::optional<sim::Time> fire_time_;
  std::optional<sim::Time> alarm_at_;
  std::size_t samples_taken_ = 0;
  sim::Duration max_delay_ = 0;
};

}  // namespace rasc::apps
