#pragma once
/// \file fire_alarm.hpp
/// The paper's Section 2.5 safety-critical workload: a bare-metal
/// sensor-actuator fire alarm that samples a temperature sensor every
/// second and must raise the alarm promptly.  The task runs at high
/// priority, but a SMART-style atomic measurement still blocks it for the
/// whole measurement — the central conflict the paper examines.

#include <optional>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/sim/device.hpp"

namespace rasc::apps {

struct FireAlarmConfig {
  sim::Duration period = sim::kSecond;            ///< sensor sampling period
  sim::Duration sample_cost = 50 * sim::kMicrosecond;  ///< CPU per sample
  int priority = 100;                             ///< above everything else
  /// A sample whose completion lags its scheduled arrival by more than
  /// this misses its deadline (the paper's "promptness" requirement for
  /// the safety-critical task).
  sim::Duration deadline = 100 * sim::kMillisecond;
};

class FireAlarmTask final : public sim::Process {
 public:
  FireAlarmTask(sim::Device& device, FireAlarmConfig config = {});

  /// Schedule sensor sampling jobs until `until`.
  void arm(sim::Time until);

  /// The fire physically starts at `t` (the sensor reads "hot" from then
  /// on); the next *executed* sample raises the alarm.
  void set_fire_time(sim::Time t) { fire_time_ = t; }

  std::optional<sim::Time> alarm_raised_at() const noexcept { return alarm_at_; }

  /// Time from fire outbreak to alarm; nullopt if no alarm yet.
  std::optional<sim::Duration> alarm_latency() const;

  std::size_t samples_taken() const noexcept { return samples_taken_; }

  /// Worst observed delay between a sample's scheduled arrival and its
  /// completion (availability of the critical task under attestation).
  sim::Duration max_sample_delay() const noexcept { return max_delay_; }

  /// Samples whose delay exceeded config.deadline.
  std::size_t deadline_misses() const noexcept { return deadline_misses_; }

  /// Attach a metrics registry (not owned).  Each executed sample records
  /// its delay into the "fire_alarm.sample_delay_ms" histogram (p50/p95/
  /// p99 response latency) and bumps "fire_alarm.samples"; misses bump
  /// "fire_alarm.deadline_miss".
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  // sim::Process
  std::optional<sim::Segment> next_segment() override;

 private:
  void complete_sample(sim::Time scheduled_at);

  sim::Device& device_;
  FireAlarmConfig config_;
  obs::ActorId journal_actor_;      ///< journal id of the host device
  std::vector<sim::Time> pending_;  ///< FIFO of arrival times awaiting CPU
  std::optional<sim::Time> fire_time_;
  std::optional<sim::Time> alarm_at_;
  std::size_t samples_taken_ = 0;
  sim::Duration max_delay_ = 0;
  std::size_t deadline_misses_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace rasc::apps
