#include "src/apps/campaign.hpp"

#include <numeric>
#include <stdexcept>

#include "src/attest/digest_cache.hpp"
#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/locking/policies.hpp"

namespace rasc::apps {

namespace {

attest::ExecutionMode parse_mode(const std::string& name) {
  for (attest::ExecutionMode mode :
       {attest::ExecutionMode::kAtomic, attest::ExecutionMode::kInterruptible}) {
    if (attest::execution_mode_name(mode) == name) return mode;
  }
  throw std::invalid_argument("unknown execution mode '" + name + "'");
}

locking::LockMechanism parse_lock(const std::string& name) {
  for (locking::LockMechanism mechanism : locking::kAllLockMechanisms) {
    if (locking::lock_mechanism_name(mechanism) == name) return mechanism;
  }
  throw std::invalid_argument("unknown lock mechanism '" + name + "'");
}

AdversaryKind parse_adversary(const std::string& name) {
  if (name == "transient") return AdversaryKind::kTransientLeaver;
  if (name == "chase") return AdversaryKind::kRelocChase;
  if (name == "roving") return AdversaryKind::kRelocRoving;
  if (name == "none") return AdversaryKind::kNone;
  throw std::invalid_argument("unknown adversary '" + name + "'");
}

}  // namespace

exp::CampaignSpec make_fire_alarm_campaign(const FireAlarmCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "sec25_fire_alarm";
  spec.grid.axis("mode", {std::string("atomic"), std::string("interruptible")});
  spec.grid.axis("memory_mb", {std::int64_t{100}, std::int64_t{512}, std::int64_t{1024}});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  // A trial simulates a full measurement with real hashing: chunky work
  // units, so shard small for load balance.
  spec.shard_size = 4;
  // Enough real blocks that one block measurement (~7 s / blocks at the
  // 1 GB calibration) stays under the 100 ms sample deadline, so the
  // interruptible mode's zero-miss claim is about the mechanism, not the
  // modeling granularity.
  static constexpr std::size_t kRealBlocks = 128;
  // All cells share one campaign-fixed firmware image (the sweep varies
  // timing, not contents), so the golden is digested exactly once and
  // every trial's verifier receives it by const reference.
  static constexpr std::uint64_t kProvisionSeed = 0xf12e0000;
  const auto golden = std::make_shared<const attest::GoldenMeasurement>(
      provision_image(kRealBlocks * kFireAlarmBlockSize, kProvisionSeed),
      kFireAlarmBlockSize, crypto::HashKind::kSha256,
      support::to_bytes("fire-alarm-key"));
  const bool use_digest_cache = options.use_digest_cache;
  spec.trial = [golden, use_digest_cache](const exp::GridPoint& point,
                                          exp::TrialContext& ctx) {
    FireAlarmScenarioConfig config;
    config.mode = parse_mode(point.str("mode"));
    config.modeled_memory_bytes = static_cast<std::uint64_t>(point.i64("memory_mb")) << 20;
    config.real_blocks = kRealBlocks;
    config.seed = ctx.seed;
    config.provision_seed = kProvisionSeed;
    config.golden = golden;
    config.use_digest_cache = use_digest_cache;
    // The interesting regime is a fire during the measurement: place it
    // uniformly inside the (memory-size-dependent) measurement window,
    // approximated by the paper's ~7 s/GB calibration.
    const double mp_estimate_ms =
        7000.0 * static_cast<double>(point.i64("memory_mb")) / 1024.0;
    config.fire_after_mp_start =
        static_cast<sim::Duration>(ctx.rng.uniform() * mp_estimate_ms * sim::kMillisecond);
    exp::TrialOutput out;
    config.metrics = &out.metrics;
    const FireAlarmScenarioOutcome outcome = run_fire_alarm_scenario(config);
    // Bernoulli channel: one attempt per executed sensor sample, success
    // when the sample missed its deadline (the paper's availability risk).
    out.successes = outcome.deadline_misses;
    out.attempts = outcome.samples_taken;
    out.value("alarm_latency_ms", sim::to_millis(outcome.alarm_latency));
    out.value("mp_duration_ms", sim::to_millis(outcome.measurement_duration));
    out.value("max_sample_delay_ms", sim::to_millis(outcome.max_sample_delay));
    out.value("attestation_ok", outcome.attestation_ok ? 1.0 : 0.0);
    return out;
  };
  return spec;
}

exp::CampaignSpec make_lock_matrix_campaign(const LockMatrixCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "lock_matrix";
  std::vector<exp::ParamValue> mechanisms;
  for (locking::LockMechanism mechanism : locking::kAllLockMechanisms) {
    mechanisms.emplace_back(locking::lock_mechanism_name(mechanism));
  }
  spec.grid.axis("lock", std::move(mechanisms));
  spec.grid.axis("adversary",
                 {std::string("transient"), std::string("chase"), std::string("roving")});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  spec.shard_size = 4;
  spec.trial = [](const exp::GridPoint& point, exp::TrialContext& ctx) {
    LockScenarioConfig config;
    config.blocks = 32;
    config.block_size = 512;
    config.lock = parse_lock(point.str("lock"));
    config.adversary = parse_adversary(point.str("adversary"));
    config.writer_enabled = true;
    config.seed = ctx.seed;
    const LockScenarioOutcome outcome = run_lock_scenario(config);
    exp::TrialOutput out;
    out.bernoulli(outcome.detected);
    out.value("writer_availability", outcome.writer_availability);
    out.value("measurement_ms", sim::to_millis(outcome.measurement_duration));
    out.value("malware_blocked_actions",
              static_cast<double>(outcome.malware_blocked_actions));
    return out;
  };
  return spec;
}

exp::CampaignSpec make_measurement_cache_campaign(
    const MeasurementCacheCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "measurement_cache";
  spec.grid.axis("dirty_pct", {std::int64_t{0}, std::int64_t{5}, std::int64_t{10},
                               std::int64_t{25}, std::int64_t{50}, std::int64_t{100}});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  spec.shard_size = 8;
  spec.trial = [](const exp::GridPoint& point, exp::TrialContext& ctx) {
    constexpr std::size_t kBlocks = 64;
    constexpr std::size_t kBlockSize = 1024;
    sim::DeviceMemory memory(kBlocks * kBlockSize, kBlockSize);
    memory.load(provision_image(memory.size(), 0xca11 + ctx.seed));
    const support::Bytes key = support::to_bytes("measurement-cache-key");

    attest::DigestCache cache;
    cache.resize(kBlocks);
    exp::TrialOutput out;
    cache.set_metrics(&out.metrics);

    const auto measure = [&](attest::DigestCache* c, std::uint64_t counter) {
      attest::Measurement m(memory, crypto::HashKind::kSha256, key,
                            attest::MeasurementContext{"prv-cache", {}, counter});
      m.set_digest_cache(c);
      for (std::size_t b = 0; b < kBlocks; ++b) m.visit_block(b, /*now=*/0);
      return m.finalize();
    };

    measure(&cache, /*counter=*/1);  // warm: every block is a miss+store

    // Dirty a deterministic random subset of blocks (partial Fisher-Yates).
    const std::size_t dirty =
        kBlocks * static_cast<std::size_t>(point.i64("dirty_pct")) / 100;
    std::vector<std::size_t> order(kBlocks);
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t i = 0; i < dirty; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(ctx.rng.below(kBlocks - i));
      std::swap(order[i], order[j]);
      const support::Bytes patch{static_cast<std::uint8_t>(ctx.rng.below(256))};
      memory.write(order[i] * kBlockSize, patch, /*now=*/1, sim::Actor::kApplication);
    }

    const std::uint64_t hits_before = cache.hits();
    const support::Bytes cached = measure(&cache, /*counter=*/2);
    const support::Bytes uncached = measure(nullptr, /*counter=*/2);
    const std::uint64_t round_hits = cache.hits() - hits_before;

    // The whole point: cache hits change nothing observable.
    out.bernoulli(cached == uncached);
    out.value("cache_hits", static_cast<double>(round_hits));
    out.value("expected_clean", static_cast<double>(kBlocks - dirty));
    out.value("hit_rate", static_cast<double>(round_hits) / kBlocks);
    return out;
  };
  return spec;
}

exp::CampaignSpec make_mtree_campaign(const MtreeCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "mtree";
  spec.grid.axis("dirty_pct", {std::int64_t{0}, std::int64_t{1}, std::int64_t{10}});
  spec.grid.axis("infected", {std::int64_t{0}, std::int64_t{1}});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  spec.shard_size = 8;
  spec.trial = [](const exp::GridPoint& point, exp::TrialContext& ctx) {
    constexpr std::size_t kBlocks = 64;
    constexpr std::size_t kBlockSize = 1024;
    constexpr std::size_t kInfectedFirst = kBlocks / 2;
    constexpr std::size_t kInfectedCount = 2;
    const support::Bytes key = support::to_bytes("mtree-campaign-key");

    sim::Simulator simulator;
    sim::Device device(simulator, sim::DeviceConfig{"dev-mtree", kBlocks * kBlockSize,
                                                    kBlockSize, key});
    const support::Bytes image =
        provision_image(kBlocks * kBlockSize, 0x7ee00000 + ctx.seed);
    device.memory().load(image);
    attest::Verifier verifier(crypto::HashKind::kSha256, key, image, kBlockSize);

    attest::ProverConfig config;
    config.mode = attest::ExecutionMode::kAtomic;
    config.use_merkle_tree = true;
    attest::AttestationProcess mp(device, config);
    mp.prime_tree();

    exp::TrialOutput out;

    // Healthy churn: rewrite dirty_pct% of the blocks with their *own*
    // bytes.  Generations bump and the tree re-hashes those leaves, but
    // every digest is unchanged, so this must stay Verified.
    sim::DeviceMemory& memory = device.memory();
    const std::size_t dirty =
        kBlocks * static_cast<std::size_t>(point.i64("dirty_pct")) / 100;
    std::vector<std::size_t> order(kBlocks);
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t i = 0; i < dirty; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(ctx.rng.below(kBlocks - i));
      std::swap(order[i], order[j]);
      const support::ByteView view = memory.block_view(order[i]);
      const support::Bytes same(view.begin(), view.end());
      memory.write(order[i] * kBlockSize, same, /*now=*/0, sim::Actor::kApplication);
    }

    const bool infected = point.i64("infected") != 0;
    if (infected) {
      for (std::size_t b = kInfectedFirst; b < kInfectedFirst + kInfectedCount; ++b) {
        const support::Bytes patch{
            static_cast<std::uint8_t>(memory.block_view(b)[0] ^ 0xff)};
        memory.write(b * kBlockSize, patch, /*now=*/0, sim::Actor::kMalware);
      }
    }

    attest::AttestationResult result;
    bool done = false;
    mp.start(attest::MeasurementContext{device.id(), verifier.issue_challenge(), 1},
             [&](attest::AttestationResult r) {
               result = std::move(r);
               done = true;
             });
    simulator.run();
    out.require(done, "tree-mode attestation round never completed");

    const attest::VerifyOutcome verdict = verifier.verify(result.report);
    out.require(verdict.used_tree, "report did not carry a Merkle root");

    // Bernoulli channel: the verdict is exactly right for this cell.
    const bool exact_localization =
        verdict.localized.size() == 1 &&
        verdict.localized.front().first == kInfectedFirst &&
        verdict.localized.front().count == kInfectedCount;
    const bool correct =
        infected ? (!verdict.ok() && exact_localization) : verdict.ok();
    out.bernoulli(correct);
    out.value("verified", verdict.ok() ? 1.0 : 0.0);
    out.value("localized_ranges", static_cast<double>(verdict.localized.size()));
    out.value("proof_leaves", [&] {
      std::size_t leaves = 0;
      for (const auto& proof : result.report.proofs) leaves += proof.leaf_count;
      return static_cast<double>(leaves);
    }());
    out.value("dirty_blocks", static_cast<double>(dirty));
    return out;
  };
  return spec;
}

NetworkScenarioConfig network_scenario_config(const exp::GridPoint& point,
                                              std::uint64_t trial_seed,
                                              std::size_t rounds) {
  NetworkScenarioConfig config;
  config.rounds = rounds;
  config.drop_probability = static_cast<double>(point.i64("drop_pct")) / 100.0;
  // Mild background faults so the duplicate/replay/corrupt machinery is
  // exercised in every cell, not just the ones the axes sweep.
  config.duplicate_probability = 0.05;
  config.reorder_probability = 0.05;
  config.corrupt_probability = 0.02;
  config.session.max_attempts =
      static_cast<std::size_t>(point.i64("max_attempts"));
  config.session.response_timeout =
      static_cast<sim::Duration>(point.i64("timeout_ms")) * sim::kMillisecond;
  config.session.backoff_base = 20 * sim::kMillisecond;
  config.seed = trial_seed;
  return config;
}

exp::CampaignSpec make_network_reliability_campaign(
    const NetworkReliabilityCampaignOptions& options) {
  exp::CampaignSpec spec;
  spec.name = "network";
  spec.grid.axis("drop_pct", {std::int64_t{0}, std::int64_t{10}, std::int64_t{30}});
  spec.grid.axis("max_attempts", {std::int64_t{1}, std::int64_t{3}, std::int64_t{6}});
  spec.grid.axis("timeout_ms", {std::int64_t{60}, std::int64_t{250}});
  spec.trials_per_point = options.trials;
  spec.base_seed = options.seed;
  spec.threads = options.threads;
  spec.shard_size = 8;
  const std::size_t rounds = options.rounds;
  spec.trial = [rounds](const exp::GridPoint& point, exp::TrialContext& ctx) {
    NetworkScenarioConfig config = network_scenario_config(point, ctx.seed, rounds);
    exp::TrialOutput out;
    config.metrics = &out.metrics;
    config.health = &out.health;
    const NetworkScenarioOutcome outcome = run_network_scenario(config);
    // The acceptance invariant: zero leaked done callbacks, asserted per
    // trial so a hang fails the whole campaign.
    out.require(outcome.all_resolved,
                "attestation round leaked its done callback");
    // Bernoulli channel: per-round false positive — this prover is
    // healthy, so any terminal outcome but Verified misjudges it.
    out.successes = outcome.rounds_resolved - outcome.verified;
    out.attempts = outcome.rounds_resolved;
    out.value("resolved", outcome.all_resolved ? 1.0 : 0.0);
    out.value("attempts_per_round",
              static_cast<double>(outcome.total_attempts) /
                  static_cast<double>(outcome.rounds_resolved));
    out.value("retries", static_cast<double>(outcome.retries));
    out.value("retry_backoff_ms", sim::to_millis(outcome.total_backoff));
    out.value("mp_ms", sim::to_millis(outcome.total_measure_time));
    out.value("wasted_mp_ms", sim::to_millis(outcome.wasted_measure_time));
    out.value("round_latency_ms",
              sim::to_millis(outcome.total_round_latency) /
                  static_cast<double>(outcome.rounds_resolved));
    out.value("max_round_latency_ms", sim::to_millis(outcome.max_round_latency));
    out.value("late_reports", static_cast<double>(outcome.late_reports));
    // Which trial campaign_runner --journal-out should replay: the lowest
    // trial index whose prover got misjudged (min() folds are exact, so
    // the pick is identical for every thread count).
    const bool misjudged = outcome.rounds_resolved != outcome.verified;
    out.value("first_misjudge_trial",
              misjudged ? static_cast<double>(ctx.trial_index) : kNoMisjudgeTrial);
    out.value("link_drop_rate",
              outcome.link_sent == 0
                  ? 0.0
                  : static_cast<double>(outcome.link_dropped) /
                        static_cast<double>(outcome.link_sent));
    return out;
  };
  return spec;
}

}  // namespace rasc::apps
