#include "src/apps/scenario.hpp"

#include "src/apps/fire_alarm.hpp"
#include "src/apps/writer_task.hpp"
#include "src/support/rng.hpp"

namespace rasc::apps {

support::Bytes provision_image(std::size_t size, std::uint64_t provision_seed) {
  support::Xoshiro256 rng(provision_seed);
  support::Bytes image(size);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  return image;
}

namespace {

void provision(sim::Device& device, std::uint64_t seed) {
  device.memory().load(provision_image(device.memory().size(), seed));
}

/// Decorrelate the verifier's challenge stream from the scenario seed so
/// independent Monte-Carlo trials issue independent challenges.
std::uint64_t challenge_seed_for(std::uint64_t scenario_seed) {
  std::uint64_t state = scenario_seed ^ 0xc0ffee;
  return support::splitmix64(state);
}

}  // namespace

std::string adversary_name(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kTransientLeaver: return "transient";
    case AdversaryKind::kRelocChase: return "self-relocating (chase)";
    case AdversaryKind::kRelocRoving: return "self-relocating (roving)";
  }
  return "?";
}

LockScenarioOutcome run_lock_scenario(const LockScenarioConfig& config) {
  sim::Simulator simulator;
  sim::DeviceConfig dev_config;
  dev_config.id = "prv-lock";
  dev_config.memory_size = config.blocks * config.block_size;
  dev_config.block_size = config.block_size;
  dev_config.attestation_key = support::to_bytes("table1-shared-key");
  sim::Device device(simulator, dev_config);
  provision(device, 0xface + config.seed);

  attest::Verifier verifier(config.hash, dev_config.attestation_key,
                            device.memory().snapshot(), config.block_size,
                            challenge_seed_for(config.seed));

  auto policy = locking::make_lock_policy(config.lock, config.release_delay);
  attest::ProverConfig prover_config;
  prover_config.hash = config.hash;
  prover_config.mode = config.mode;
  prover_config.order = config.order;
  prover_config.priority = 10;
  prover_config.use_digest_cache = config.use_digest_cache;
  attest::AttestationProcess mp(device, prover_config, policy.get());

  // Adversaries.
  std::optional<malware::TransientMalware> transient;
  std::optional<malware::SelfRelocatingMalware> reloc;
  const sim::Time t_mp = 10 * sim::kMillisecond;
  const sim::Duration block_cost = mp.block_cost();

  switch (config.adversary) {
    case AdversaryKind::kNone:
      break;
    case AdversaryKind::kTransientLeaver: {
      malware::TransientConfig mc;
      mc.block = config.blocks - 2;  // measured late under sequential order
      mc.infect_at = sim::kMillisecond;
      // Erase attempt lands a few blocks into the measurement: after t_s
      // but (for sequential order) well before its block is visited.
      mc.dwell = (t_mp - mc.infect_at) + 3 * block_cost;
      transient.emplace(device, mc);
      transient->arm();
      break;
    }
    case AdversaryKind::kRelocChase:
    case AdversaryKind::kRelocRoving: {
      malware::RelocatingConfig mc;
      mc.initial_block = config.blocks / 2;  // second half: chase textbook setup
      mc.strategy = config.adversary == AdversaryKind::kRelocChase
                        ? malware::RelocationStrategy::kChaseMeasured
                        : malware::RelocationStrategy::kRovingUniform;
      mc.priority = 50;
      mc.seed = 0x3100 + config.seed;
      reloc.emplace(device, mc);
      reloc->infect_initial();
      mp.set_observer([&reloc](std::size_t done, std::size_t total) {
        reloc->on_measurement_progress(done, total);
      });
      break;
    }
  }

  // Application workload (availability probe).
  std::optional<WriterTask> writer;
  if (config.writer_enabled) {
    WriterConfig wc;
    // Fast enough that a measurement of `blocks` blocks sees many writes.
    wc.period = 50 * sim::kMicrosecond;
    wc.seed = 0xd09 + config.seed;
    writer.emplace(device, wc);
    // Arm well past the longest plausible measurement.
    writer->arm(t_mp + 2 * block_cost * config.blocks + sim::kSecond);
  }

  LockScenarioOutcome outcome;
  outcome.malware_present_at_ts = config.adversary != AdversaryKind::kNone;

  simulator.schedule_at(t_mp, [&] {
    if (reloc) reloc->on_measurement_start();
    const support::Bytes challenge = verifier.issue_challenge();
    attest::MeasurementContext context{device.id(), challenge, 1};
    mp.start(std::move(context), [&](attest::AttestationResult result) {
      outcome.completed = true;
      outcome.verdict = verifier.verify(result.report, /*expect_challenge=*/true);
      outcome.detected = !outcome.verdict.ok();
      outcome.measurement_duration = result.t_e - result.t_s;
      locking::ConsistencyAnalyzer analyzer(result, device.memory().write_log(),
                                            /*first_block=*/0);
      outcome.consistency = analyzer.verdict();

      // Availability during [t_s, t_r].
      for (const auto& rec : device.memory().write_log()) {
        if (rec.actor != sim::Actor::kApplication) continue;
        if (rec.time >= result.t_s && rec.time <= result.t_r) {
          ++outcome.writer_attempts_during;
          if (rec.blocked) ++outcome.writer_blocked_during;
        }
      }
      outcome.writer_availability =
          outcome.writer_attempts_during == 0
              ? 1.0
              : 1.0 - static_cast<double>(outcome.writer_blocked_during) /
                          static_cast<double>(outcome.writer_attempts_during);
    });
  });

  simulator.run();

  if (transient) outcome.malware_blocked_actions = transient->failed_erase_attempts();
  if (reloc) outcome.malware_blocked_actions = reloc->blocked_relocations();
  outcome.malware_escaped = outcome.malware_present_at_ts && outcome.completed &&
                            outcome.verdict.ok();
  return outcome;
}

NetworkScenarioOutcome run_network_scenario(const NetworkScenarioConfig& config) {
  sim::Simulator simulator;
  simulator.set_trace_sink(config.trace);
  simulator.set_journal(config.journal);
  sim::DeviceConfig dev_config;
  dev_config.id = "prv-net";
  dev_config.memory_size = config.blocks * config.block_size;
  dev_config.block_size = config.block_size;
  dev_config.attestation_key = support::to_bytes("network-scenario-key");
  sim::Device device(simulator, dev_config);
  provision(device, 0x4e7 + config.seed);

  attest::Verifier verifier(config.hash, dev_config.attestation_key,
                            device.memory().snapshot(), config.block_size,
                            challenge_seed_for(config.seed));
  verifier.set_metrics(config.metrics);

  if (config.infected) {
    // Ground truth: one malware byte in the middle of memory, planted
    // before any round, so the correct terminal outcome is kCompromised.
    const std::size_t addr = device.memory().size() / 2;
    const std::size_t block = addr / device.memory().block_size();
    const std::uint8_t original =
        device.memory().block_view(block)[addr % device.memory().block_size()];
    const support::Bytes patch = {static_cast<std::uint8_t>(original ^ 0xff)};
    device.memory().write(addr, patch, 0, sim::Actor::kMalware);
  }

  attest::ProverConfig prover_config;
  prover_config.hash = config.hash;
  prover_config.mode = config.mode;
  prover_config.priority = 10;
  attest::AttestationProcess mp(device, prover_config);

  // One LinkConfig per direction: same fault model, decorrelated seeds.
  sim::LinkConfig link_config;
  link_config.base_latency = config.link_latency;
  link_config.jitter = config.link_jitter;
  link_config.drop_probability = config.drop_probability;
  link_config.duplicate_probability = config.duplicate_probability;
  link_config.corrupt_probability = config.corrupt_probability;
  link_config.reorder_probability = config.reorder_probability;
  link_config.partitions = config.partitions;
  std::uint64_t link_seed_state = config.seed ^ 0x11c4;
  link_config.name = "vrf->prv";
  link_config.seed = support::splitmix64(link_seed_state);
  sim::Link vrf_to_prv(simulator, link_config);
  link_config.name = "prv->vrf";
  link_config.seed = support::splitmix64(link_seed_state);
  sim::Link prv_to_vrf(simulator, link_config);
  vrf_to_prv.set_metrics(config.metrics);
  prv_to_vrf.set_metrics(config.metrics);

  attest::SessionConfig session_config = config.session;
  std::uint64_t session_seed_state = config.seed ^ 0x5e5510;
  session_config.seed = support::splitmix64(session_seed_state);
  attest::ReliableSession session(device, verifier, mp, vrf_to_prv, prv_to_vrf,
                                  session_config);
  session.set_metrics(config.metrics);
  session.set_health(config.health);

  NetworkScenarioOutcome outcome;
  outcome.rounds_requested = config.rounds;

  // Chain rounds through the done callback: each terminal result starts
  // the next round after a gap, so a hung round would leave the chain —
  // and rounds_resolved — visibly short.
  std::function<void()> start_round = [&] {
    session.run([&](attest::RoundResult result) {
      ++outcome.rounds_resolved;
      switch (result.outcome) {
        case attest::SessionOutcome::kVerified: ++outcome.verified; break;
        case attest::SessionOutcome::kCompromised: ++outcome.compromised; break;
        case attest::SessionOutcome::kTimeout: ++outcome.timeouts; break;
        case attest::SessionOutcome::kCorruptReport: ++outcome.corrupt_report; break;
        case attest::SessionOutcome::kReplayRejected: ++outcome.replay_rejected; break;
      }
      outcome.total_attempts += result.attempts;
      outcome.replays_rejected += result.replays_rejected;
      const sim::Duration latency = result.t_resolved - result.t_started;
      outcome.total_round_latency += latency;
      if (latency > outcome.max_round_latency) outcome.max_round_latency = latency;
      outcome.total_backoff += result.backoff_total;
      outcome.total_measure_time += result.measure_time;
      outcome.wasted_measure_time += result.wasted_measure_time;
      if (outcome.rounds_resolved < config.rounds) {
        simulator.schedule_in(config.inter_round_gap, start_round);
      }
    });
  };
  simulator.schedule_at(sim::kMillisecond, start_round);
  simulator.run();

  outcome.all_resolved = outcome.rounds_resolved == config.rounds;
  outcome.retries = session.retries();
  outcome.late_reports = session.late_reports();
  for (const sim::Link* link : {&vrf_to_prv, &prv_to_vrf}) {
    outcome.link_sent += link->sent();
    outcome.link_delivered += link->delivered();
    outcome.link_dropped += link->dropped();
    outcome.link_duplicated += link->duplicated();
    outcome.link_corrupted += link->corrupted();
    outcome.link_reordered += link->reordered();
    outcome.link_partition_dropped += link->partition_dropped();
  }
  return outcome;
}

FireAlarmScenarioOutcome run_fire_alarm_scenario(const FireAlarmScenarioConfig& config) {
  sim::Simulator simulator;
  sim::DeviceConfig dev_config;
  dev_config.id = "prv-fire";
  // Back the modeled memory with a small real buffer and scale hash time.
  const std::size_t real_block_size = kFireAlarmBlockSize;
  dev_config.memory_size = config.real_blocks * real_block_size;
  dev_config.block_size = real_block_size;
  dev_config.attestation_key = support::to_bytes("fire-alarm-key");
  sim::Device device(simulator, dev_config);
  simulator.set_trace_sink(config.trace);
  simulator.set_journal(config.journal);
  provision(device, config.provision_seed.value_or(0xf12e + config.seed));
  device.model().set_hash_time_scale(static_cast<double>(config.modeled_memory_bytes) /
                                     static_cast<double>(dev_config.memory_size));

  attest::Verifier verifier =
      config.golden != nullptr
          ? attest::Verifier(config.golden, dev_config.attestation_key,
                             challenge_seed_for(config.seed))
          : attest::Verifier(config.hash, dev_config.attestation_key,
                             device.memory().snapshot(), real_block_size,
                             challenge_seed_for(config.seed));

  attest::ProverConfig prover_config;
  prover_config.hash = config.hash;
  prover_config.mode = config.mode;
  prover_config.use_digest_cache = config.use_digest_cache;
  prover_config.priority = 10;  // below the safety-critical task
  attest::AttestationProcess mp(device, prover_config);

  FireAlarmConfig fa_config;
  fa_config.period = config.sensor_period;
  fa_config.deadline = config.sample_deadline;
  FireAlarmTask alarm(device, fa_config);
  alarm.set_metrics(config.metrics);

  FireAlarmScenarioOutcome outcome;
  const sim::Time t_mp = 2 * sim::kSecond;

  simulator.schedule_at(t_mp, [&] {
    const support::Bytes challenge = verifier.issue_challenge();
    attest::MeasurementContext context{device.id(), challenge, 1};
    mp.start(std::move(context), [&](attest::AttestationResult result) {
      outcome.measurement_duration = result.t_e - result.t_s;
      outcome.attestation_ok =
          verifier.verify(result.report, /*expect_challenge=*/true).ok();
    });
  });
  alarm.set_fire_time(t_mp + config.fire_after_mp_start);

  // Arm the sensor far enough to outlast the slowest atomic measurement.
  const sim::Duration horizon =
      t_mp + mp.block_cost() * config.real_blocks + mp.finalize_cost() + 30 * sim::kSecond;
  alarm.arm(horizon);
  simulator.run();

  outcome.alarm_latency = alarm.alarm_latency().value_or(0);
  outcome.max_sample_delay = alarm.max_sample_delay();
  outcome.samples_taken = alarm.samples_taken();
  outcome.deadline_misses = alarm.deadline_misses();
  return outcome;
}

}  // namespace rasc::apps
