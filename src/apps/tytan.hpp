#pragma once
/// \file tytan.hpp
/// TyTAN-style per-process measurement (paper Section 3.1): each process'
/// memory region is measured individually; higher-priority processes may
/// interrupt MP, but the process *being measured* may not.  This stops a
/// single-process malware from relocating — yet "malware that is spread
/// over several colluding processes can defeat this countermeasure" by
/// shuttling its body into whichever region is not currently frozen
/// (which requires violating process isolation, e.g. an OS bug).

#include <cstdint>

#include "src/crypto/hash.hpp"

namespace rasc::apps {

struct TytanConfig {
  std::size_t region_blocks = 16;  ///< blocks per process region (2 regions)
  std::size_t block_size = 512;
  crypto::HashKind hash = crypto::HashKind::kSha256;
  /// true: the malware has a colluding component in the other process and
  /// can cross the isolation boundary; false: single-process malware.
  bool colluding = false;
  std::uint64_t seed = 1;
};

struct TytanOutcome {
  bool completed = false;
  bool detected_in_a = false;  ///< process A's measurement failed
  bool detected_in_b = false;  ///< process B's measurement failed
  bool detected = false;
  bool malware_escaped = false;
  std::size_t relocations = 0;  ///< cross-process moves performed
};

/// Measure process A's region, then process B's, with malware initially
/// resident in A.  Detection emerges from the verifier's region digests.
TytanOutcome run_tytan_scenario(const TytanConfig& config);

}  // namespace rasc::apps
