#include "src/apps/writer_task.hpp"

namespace rasc::apps {

WriterTask::WriterTask(sim::Device& device, WriterConfig config)
    : sim::Process("app/writer", config.priority),
      device_(device),
      config_(config),
      rng_(config.seed) {}

void WriterTask::arm(sim::Time until) {
  auto& sim = device_.sim();
  for (sim::Time t = sim.now() + config_.period; t <= until; t += config_.period) {
    sim.schedule_at(t, [this] {
      ++pending_;
      device_.cpu().make_ready(*this);
    });
  }
}

std::optional<sim::Segment> WriterTask::next_segment() {
  if (pending_ == 0) return std::nullopt;
  --pending_;
  return sim::Segment{config_.write_cost, [this] { do_write(); }};
}

void WriterTask::do_write() {
  auto& mem = device_.memory();
  const std::size_t region_blocks =
      config_.block_count == 0 ? mem.block_count() - config_.first_block
                               : config_.block_count;
  const std::size_t block = config_.first_block + rng_.below(region_blocks);
  support::Bytes data(config_.write_size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng_.below(256));
  const std::size_t max_off = mem.block_size() - config_.write_size;
  const std::size_t addr = block * mem.block_size() + rng_.below(max_off + 1);
  ++attempts_;
  if (!mem.write(addr, data, device_.sim().now(), sim::Actor::kApplication)) {
    ++blocked_;
  }
}

}  // namespace rasc::apps
