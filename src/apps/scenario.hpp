#pragma once
/// \file scenario.hpp
/// End-to-end experiment drivers used by the Table 1 / Figure 4 benches,
/// the examples and the integration tests.  Each driver assembles a fresh
/// simulated device, verifier, measurement process, (optionally) an
/// application workload and an adversary, runs the simulation, and reports
/// what the *verifier* concluded alongside ground truth and availability
/// metrics.

#include <memory>
#include <optional>

#include "src/attest/golden.hpp"
#include "src/attest/prover.hpp"
#include "src/attest/session.hpp"
#include "src/attest/verifier.hpp"
#include "src/locking/consistency.hpp"
#include "src/locking/policies.hpp"
#include "src/malware/relocating.hpp"
#include "src/malware/transient.hpp"
#include "src/obs/health.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace rasc::apps {

enum class AdversaryKind {
  kNone,
  kTransientLeaver,  ///< present at t_s, tries to erase itself mid-measurement
  kRelocChase,       ///< half-copy attack on sequential interruptible MP
  kRelocRoving,      ///< SMARM's blind uniformly-roving malware
};

std::string adversary_name(AdversaryKind kind);

struct LockScenarioConfig {
  std::size_t blocks = 64;
  std::size_t block_size = 1024;
  crypto::HashKind hash = crypto::HashKind::kSha256;
  attest::ExecutionMode mode = attest::ExecutionMode::kInterruptible;
  attest::TraversalOrder order = attest::TraversalOrder::kSequential;
  locking::LockMechanism lock = locking::LockMechanism::kNoLock;
  sim::Duration release_delay = 0;  ///< t_r - t_e for the -Ext mechanisms
  AdversaryKind adversary = AdversaryKind::kNone;
  /// Run the data-logging application during the measurement and record
  /// how many of its writes the locks rejected (Table 1 availability).
  bool writer_enabled = false;
  std::uint64_t seed = 1;
  /// Host-side digest cache on the prover (simulated timing unchanged).
  bool use_digest_cache = true;
};

struct LockScenarioOutcome {
  bool completed = false;            ///< attestation round finished
  attest::VerifyOutcome verdict;     ///< what Vrf concluded
  bool detected = false;             ///< !verdict.ok()
  locking::ConsistencyVerdict consistency;
  sim::Duration measurement_duration = 0;  ///< t_e - t_s
  /// Application writes issued while the measurement (incl. extended
  /// lock) was in force, and how many the MPU rejected.
  std::size_t writer_attempts_during = 0;
  std::size_t writer_blocked_during = 0;
  double writer_availability = 1.0;
  /// Adversary ground truth.
  bool malware_present_at_ts = false;
  bool malware_escaped = false;  ///< present but verifier said OK
  std::size_t malware_blocked_actions = 0;
};

/// One attestation round under the given mechanism/adversary/workload.
LockScenarioOutcome run_lock_scenario(const LockScenarioConfig& config);

// ---------------------------------------------------------------------------

struct FireAlarmScenarioConfig {
  /// Modeled prover memory (timing-wise); backed by a small real buffer.
  std::uint64_t modeled_memory_bytes = 1ull << 30;  ///< the paper's 1 GB
  std::size_t real_blocks = 256;
  crypto::HashKind hash = crypto::HashKind::kSha256;
  attest::ExecutionMode mode = attest::ExecutionMode::kAtomic;
  /// The fire breaks out this long after the measurement starts.
  sim::Duration fire_after_mp_start = 100 * sim::kMillisecond;
  sim::Duration sensor_period = sim::kSecond;
  /// Deadline for each sensor sample (see FireAlarmConfig::deadline).
  sim::Duration sample_deadline = 100 * sim::kMillisecond;
  /// Varies provisioning and the verifier's challenge stream so
  /// Monte-Carlo trials are independent; every value is deterministic.
  std::uint64_t seed = 1;
  /// Provisioning seed override; defaults to a per-trial value derived
  /// from `seed`.  Campaign cells pin it so trials share one golden image.
  std::optional<std::uint64_t> provision_seed;
  /// Pre-digested golden shared across a cell's trials; must match the
  /// provisioned image.  Null = digest a device snapshot per trial.
  std::shared_ptr<const attest::GoldenMeasurement> golden;
  /// Host-side digest cache on the prover (simulated timing unchanged).
  bool use_digest_cache = true;
  /// Optional observability (not owned): `trace` captures the full device
  /// timeline (CPU segments, measurement spans, alarm instants); `metrics`
  /// accumulates fire_alarm.* counters and the sample-delay histogram.
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Flight recorder capturing deadline hits/misses, alarm raises and (with
  /// a digest cache) cache events.
  obs::EventJournal* journal = nullptr;
};

struct FireAlarmScenarioOutcome {
  sim::Duration measurement_duration = 0;
  sim::Duration alarm_latency = 0;
  sim::Duration max_sample_delay = 0;
  std::size_t samples_taken = 0;
  std::size_t deadline_misses = 0;
  bool attestation_ok = false;
};

/// The Section 2.5 worked example: fire during attestation of ~1 GB.
FireAlarmScenarioOutcome run_fire_alarm_scenario(const FireAlarmScenarioConfig& config);

// ---------------------------------------------------------------------------

/// A fleet-style reliability scenario: one verifier attests one prover
/// over a lossy bidirectional link, driving several sequential rounds
/// through an attest::ReliableSession.  The interesting outputs are the
/// terminal-outcome mix (does a healthy device get misjudged as
/// unreachable?), the retry overhead (wasted prover CPU time) and the
/// guarantee that every round resolves — no leaked callbacks.
struct NetworkScenarioConfig {
  std::size_t blocks = 32;
  std::size_t block_size = 512;
  crypto::HashKind hash = crypto::HashKind::kSha256;
  attest::ExecutionMode mode = attest::ExecutionMode::kInterruptible;
  /// Sequential attestation rounds per trial (each a full session).
  std::size_t rounds = 4;
  sim::Duration inter_round_gap = 20 * sim::kMillisecond;
  /// Fault model applied to *both* link directions (each direction draws
  /// from its own seed, so challenge loss and report loss decorrelate).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double corrupt_probability = 0.0;
  double reorder_probability = 0.0;
  std::vector<sim::PartitionWindow> partitions;
  sim::Duration link_latency = 2 * sim::kMillisecond;
  sim::Duration link_jitter = 500 * sim::kMicrosecond;
  /// Session knobs (timeout, retry budget, backoff); the session seed is
  /// overridden with a value derived from `seed`.
  attest::SessionConfig session;
  /// Ground truth: infect one block before the rounds start, so kVerified
  /// becomes a false negative and kCompromised the correct verdict.
  bool infected = false;
  std::uint64_t seed = 1;
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Flight recorder: link fates ("vrf->prv"/"prv->vrf" actors), session
  /// attempts/backoffs/outcomes — the raw material for explain timelines.
  obs::EventJournal* journal = nullptr;
  /// Fleet health rollup fed by the session (one record per round).
  obs::HealthRollup* health = nullptr;
};

struct NetworkScenarioOutcome {
  std::size_t rounds_requested = 0;
  std::size_t rounds_resolved = 0;
  /// Every round reached a terminal outcome (the no-leaked-callback
  /// invariant the session layer promises).
  bool all_resolved = false;
  std::size_t verified = 0;
  std::size_t compromised = 0;
  std::size_t timeouts = 0;
  std::size_t corrupt_report = 0;
  std::size_t replay_rejected = 0;
  std::size_t total_attempts = 0;   ///< challenges sent across all rounds
  std::size_t retries = 0;
  std::size_t replays_rejected = 0; ///< stale reports the session discarded
  std::size_t late_reports = 0;     ///< reports arriving after their round
  sim::Duration total_round_latency = 0;
  sim::Duration max_round_latency = 0;
  sim::Duration total_backoff = 0;
  sim::Duration total_measure_time = 0;
  sim::Duration wasted_measure_time = 0;
  /// Link counters summed over both directions.
  std::size_t link_sent = 0;
  std::size_t link_delivered = 0;
  std::size_t link_dropped = 0;
  std::size_t link_duplicated = 0;
  std::size_t link_corrupted = 0;
  std::size_t link_reordered = 0;
  std::size_t link_partition_dropped = 0;
};

/// Run `rounds` reliable attestation rounds over a faulty link.
NetworkScenarioOutcome run_network_scenario(const NetworkScenarioConfig& config);

/// Deterministic provisioning image used by both scenario drivers —
/// exposed so campaign factories can pre-digest a cell's golden image.
/// Fire-alarm block size is fixed at kFireAlarmBlockSize.
inline constexpr std::size_t kFireAlarmBlockSize = 4096;
support::Bytes provision_image(std::size_t size, std::uint64_t provision_seed);

}  // namespace rasc::apps
