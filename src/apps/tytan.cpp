#include "src/apps/tytan.hpp"

#include <algorithm>

#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/malware/malware.hpp"
#include "src/support/rng.hpp"

namespace rasc::apps {

TytanOutcome run_tytan_scenario(const TytanConfig& config) {
  sim::Simulator simulator;
  const std::size_t region = config.region_blocks;
  sim::DeviceConfig dev_config;
  dev_config.id = "prv-tytan";
  dev_config.memory_size = 2 * region * config.block_size;
  dev_config.block_size = config.block_size;
  dev_config.attestation_key = support::to_bytes("tytan-key");
  sim::Device device(simulator, dev_config);

  support::Xoshiro256 rng(0x717a + config.seed);
  support::Bytes image(device.memory().size());
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  device.memory().load(image);

  // Per-process golden images and verifiers.
  const auto golden = device.memory().snapshot();
  const auto region_bytes = region * config.block_size;
  attest::Verifier verifier_a(
      config.hash, dev_config.attestation_key,
      support::Bytes(golden.begin(), golden.begin() + static_cast<std::ptrdiff_t>(region_bytes)),
      config.block_size);
  attest::Verifier verifier_b(
      config.hash, dev_config.attestation_key,
      support::Bytes(golden.begin() + static_cast<std::ptrdiff_t>(region_bytes), golden.end()),
      config.block_size);

  attest::ProverConfig pc;
  pc.hash = config.hash;
  pc.mode = attest::ExecutionMode::kInterruptible;  // TyTAN allows interrupts
  attest::ProverConfig pc_a = pc;
  pc_a.coverage = attest::Coverage{0, region};
  attest::AttestationProcess mp_a(device, pc_a);
  attest::ProverConfig pc_b = pc;
  pc_b.coverage = attest::Coverage{region, region};
  attest::AttestationProcess mp_b(device, pc_b);

  // Malware state: one body, initially in process A's block 3.
  TytanOutcome outcome;
  const std::size_t home_a = std::min<std::size_t>(3, region - 1);
  const std::size_t home_b = region + std::min<std::size_t>(5, region - 1);
  std::size_t position = home_a;
  bool resident = true;
  support::Bytes clean_a(image.begin() + static_cast<std::ptrdiff_t>(home_a * config.block_size),
                         image.begin() + static_cast<std::ptrdiff_t>((home_a + 1) * config.block_size));
  support::Bytes clean_b(image.begin() + static_cast<std::ptrdiff_t>(home_b * config.block_size),
                         image.begin() + static_cast<std::ptrdiff_t>((home_b + 1) * config.block_size));
  (void)malware::write_body(device, home_a, 0x71);

  // The colluding component (running inside the *other*, unfrozen process)
  // shuttles the body away from whichever region is being measured.  A
  // single-process malware cannot do this: while its region is measured,
  // its only thread is frozen (TyTAN rule), so no observer action.
  auto move_to = [&](std::size_t dest, const support::Bytes& clean_src) {
    if (!resident || position == dest) return;
    if (!malware::write_body(device, dest, 0x71)) return;
    (void)device.memory().write(position * config.block_size, clean_src,
                                simulator.now(), sim::Actor::kMalware);
    position = dest;
    ++outcome.relocations;
  };

  if (config.colluding) {
    mp_a.set_observer([&](std::size_t done, std::size_t) {
      // B's component acts as soon as A's sweep starts (isolation broken).
      if (done == 1 && position < region) move_to(home_b, clean_a);
    });
    mp_b.set_observer([&](std::size_t done, std::size_t) {
      // A is runnable again while B is frozen: pull the body back.
      if (done == 1 && position >= region) move_to(home_a, clean_b);
    });
  }

  // Measure A, then B (TyTAN measures processes individually).
  simulator.schedule_at(10 * sim::kMillisecond, [&] {
    const auto challenge_a = verifier_a.issue_challenge();
    mp_a.start(attest::MeasurementContext{device.id(), challenge_a, 1},
                [&](attest::AttestationResult result_a) {
                  outcome.detected_in_a = !verifier_a.verify(result_a.report).ok();
                  const auto challenge_b = verifier_b.issue_challenge();
                  mp_b.start(attest::MeasurementContext{device.id(), challenge_b, 2},
                             [&](attest::AttestationResult result_b) {
                               outcome.detected_in_b =
                                   !verifier_b.verify(result_b.report).ok();
                               outcome.completed = true;
                             });
                });
  });
  simulator.run();

  outcome.detected = outcome.detected_in_a || outcome.detected_in_b;
  outcome.malware_escaped = resident && !outcome.detected;
  return outcome;
}

}  // namespace rasc::apps
