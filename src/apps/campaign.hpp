#pragma once
/// \file campaign.hpp
/// Application-scenario campaigns for the exp engine.
///
/// fire_alarm: Monte-Carlo over the Section 2.5 conflict.  Each trial
/// drops the fire at a uniformly random offset inside the measurement
/// window and reports per-sample deadline misses (Bernoulli channel) plus
/// alarm latency / measurement duration scalars, swept over execution
/// mode x modeled memory size.
///
/// lock_matrix: Table 1 as a statistical experiment.  Each trial runs one
/// attestation round under a locking mechanism x adversary cell; the
/// Bernoulli channel is "the verifier detected the malware", with writer
/// availability as a scalar.

#include "src/apps/scenario.hpp"
#include "src/exp/campaign.hpp"

namespace rasc::apps {

struct FireAlarmCampaignOptions {
  std::size_t trials = 100;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Prover-side digest cache (host wall-clock optimization).  Exposed so
  /// benches can assert cached == uncached aggregates byte-for-byte.
  bool use_digest_cache = true;
};

exp::CampaignSpec make_fire_alarm_campaign(const FireAlarmCampaignOptions& options = {});

struct LockMatrixCampaignOptions {
  std::size_t trials = 50;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
};

exp::CampaignSpec make_lock_matrix_campaign(const LockMatrixCampaignOptions& options = {});

struct MeasurementCacheCampaignOptions {
  std::size_t trials = 40;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
};

/// Dirty-fraction sweep for the generation-keyed digest cache: each trial
/// measures a device, dirties `dirty_pct`% of its blocks, then re-measures
/// with and without the cache.  Bernoulli channel = "cached and uncached
/// measurements are byte-identical" (must be 1.0); scalar channels count
/// cache hits against the expected clean-block count.  All values are
/// deterministic — host wall-clock never enters the aggregates.
exp::CampaignSpec make_measurement_cache_campaign(
    const MeasurementCacheCampaignOptions& options = {});

struct MtreeCampaignOptions {
  std::size_t trials = 40;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
};

/// Tree-mode attestation sweep (spec name "mtree", artifact
/// BENCH_mtree.json): dirty_pct x infected over a Merkle-tree prover.
/// Healthy trials churn dirty_pct% of the blocks by rewriting their own
/// bytes — generations bump and the tree re-hashes those leaves, but every
/// digest is unchanged, so the round must stay Verified.  Infected trials
/// additionally patch a known contiguous block range; the Bernoulli
/// channel is "the verifier's localized range is exactly the infected
/// range" (healthy: "the round verified"), which must hold in every trial.
/// All values are deterministic — identical aggregates for any --threads.
exp::CampaignSpec make_mtree_campaign(const MtreeCampaignOptions& options = {});

struct NetworkReliabilityCampaignOptions {
  std::size_t trials = 100;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  /// Sequential attestation rounds per trial.
  std::size_t rounds = 4;
};

/// Sentinel recorded in the "first_misjudge_trial" value channel when a
/// trial misjudged nothing; the per-cell min() is then either the lowest
/// misjudging trial index or this (thread-count independent either way,
/// which is what lets campaign_runner --journal-out replay the same trial
/// regardless of -j).
inline constexpr double kNoMisjudgeTrial = 1e18;

/// Build the scenario config for one (cell, trial seed) of the network
/// reliability campaign.  Shared by the campaign trial function and
/// campaign_runner's --journal-out replay, so a re-run with a journal
/// attached reproduces the selected trial event-for-event.
NetworkScenarioConfig network_scenario_config(const exp::GridPoint& point,
                                              std::uint64_t trial_seed,
                                              std::size_t rounds);

/// Lossy-link reliability sweep (spec name "network", so the artifact is
/// BENCH_network.json): drop_pct x retry budget x per-attempt timeout,
/// over a *healthy* prover with mild background duplication/reordering/
/// corruption.  Bernoulli channel = per-round false positive (healthy
/// device judged anything but Verified); scalars price the reliability
/// machinery (attempts per round, backoff, wasted prover CPU time on
/// measurements whose reports never decided a round).  Every trial
/// asserts that all rounds reached a terminal outcome — a leaked `done`
/// callback fails the campaign rather than skewing it.
exp::CampaignSpec make_network_reliability_campaign(
    const NetworkReliabilityCampaignOptions& options = {});

}  // namespace rasc::apps
