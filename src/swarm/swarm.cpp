#include "src/swarm/swarm.hpp"

#include <algorithm>

#include "src/crypto/hmac.hpp"

namespace rasc::swarm {

namespace {

using support::Bytes;

constexpr crypto::HashKind kMacHash = crypto::HashKind::kSha256;

Bytes node_key(const Bytes& group_key, std::size_t id) {
  Bytes material = support::to_bytes("node-key");
  support::append_u64_be(material, id);
  return crypto::Hmac::compute(kMacHash, group_key, material);
}

/// Per-node authenticated result: MAC(node_key, nonce || id || ok ||
/// child_tag_1 || ... ) — leaves have no child tags; in the star protocol
/// there are never child tags.
Bytes node_tag(const Bytes& key, const Bytes& nonce, std::size_t id, bool ok,
               const std::vector<Bytes>& child_tags) {
  crypto::Hmac mac(kMacHash, key);
  mac.update(nonce);
  Bytes header;
  support::append_u64_be(header, id);
  header.push_back(ok ? 1 : 0);
  support::append_u64_be(header, child_tags.size());
  mac.update(header);
  for (const auto& tag : child_tags) mac.update(tag);
  return mac.finalize();
}

struct Node {
  std::size_t id = 0;
  bool infected = false;
  bool removed = false;
  bool reported = false;
  bool measured = false;
  std::size_t children_pending = 0;
  std::vector<std::size_t> child_absent;  // absent ids aggregated from subtree
  /// (child id, tag) pairs; sorted by id before aggregation so the MAC
  /// chain is deterministic regardless of subtree completion order.
  std::vector<std::pair<std::size_t, Bytes>> child_tags;
  std::vector<std::size_t> child_failed;  // aggregated failed ids from subtree
  std::vector<std::size_t> children;
};

}  // namespace

std::string swarm_protocol_name(SwarmProtocol protocol) {
  switch (protocol) {
    case SwarmProtocol::kNaiveStar: return "naive star (one-by-one)";
    case SwarmProtocol::kCollectiveTree: return "collective tree (SEDA-style)";
    case SwarmProtocol::kForwardingTree: return "forwarding tree (LISA-style)";
  }
  return "?";
}

std::size_t tree_depth(std::size_t device_count, std::size_t branching) {
  // In the implicit complete b-ary tree, the deepest node is the last one;
  // walk its parent chain.
  std::size_t depth = 0;
  std::size_t i = device_count - 1;
  while (i > 0) {
    i = (i - 1) / branching;
    ++depth;
  }
  return depth;
}

namespace {

SwarmResult run_collective(const SwarmConfig& config,
                           const std::set<std::size_t>& infected,
                           const std::set<std::size_t>& removed) {
  sim::Simulator simulator;
  SwarmResult result;
  result.devices = config.device_count;

  std::vector<Node> nodes(config.device_count);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].id = i;
    nodes[i].infected = infected.count(i) > 0;
    nodes[i].removed = removed.count(i) > 0;
    for (std::size_t c = i * config.branching + 1;
         c <= i * config.branching + config.branching && c < nodes.size(); ++c) {
      nodes[i].children.push_back(c);
    }
    nodes[i].children_pending = nodes[i].children.size();
  }

  const Bytes nonce = support::to_bytes("swarm-nonce-1");

  // All device ids in the subtree rooted at `id`.
  std::function<void(std::size_t, std::vector<std::size_t>&)> subtree =
      [&](std::size_t id, std::vector<std::size_t>& out) {
        out.push_back(id);
        for (std::size_t child : nodes[id].children) subtree(child, out);
      };

  // Subtree heights: a parent must wait long enough for its child to time
  // out on the child's own children first, or timeouts cascade upwards
  // and a single missing leaf condemns whole healthy subtrees.
  std::vector<std::size_t> height(nodes.size(), 0);
  for (std::size_t i = nodes.size(); i-- > 0;) {
    for (std::size_t child : nodes[i].children) {
      height[i] = std::max(height[i], height[child] + 1);
    }
  }

  // Forward declaration of the "node finished" handler.
  std::function<void(std::size_t)> try_report;

  auto send_up = [&](std::size_t id) {
    Node& node = nodes[id];
    std::sort(node.child_tags.begin(), node.child_tags.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Bytes> ordered_tags;
    ordered_tags.reserve(node.child_tags.size());
    for (auto& [cid, t] : node.child_tags) ordered_tags.push_back(t);
    const Bytes tag = node_tag(node_key(config.group_key, id), nonce, id,
                               !node.infected, ordered_tags);
    std::vector<std::size_t> failed = node.child_failed;
    if (node.infected) failed.push_back(id);
    std::sort(failed.begin(), failed.end());
    std::vector<std::size_t> absent = node.child_absent;
    std::sort(absent.begin(), absent.end());

    node.reported = true;
    ++result.messages;
    if (id == 0) {
      // Root -> Vrf: verify the aggregate chain by recomputation.
      simulator.schedule_in(
          config.hop_latency + config.vrf_verify_time * nodes.size(),
          [&, tag, failed, absent] {
            // Recompute expected tags bottom-up for the claimed fail and
            // absent sets (absent subtrees contribute no tags).
            std::vector<Bytes> expected(nodes.size());
            for (std::size_t i = nodes.size(); i-- > 0;) {
              if (std::binary_search(absent.begin(), absent.end(), i)) continue;
              std::vector<Bytes> child_tags;
              for (std::size_t c : nodes[i].children) {
                if (!std::binary_search(absent.begin(), absent.end(), c)) {
                  child_tags.push_back(expected[c]);
                }
              }
              const bool ok =
                  !std::binary_search(failed.begin(), failed.end(), i);
              expected[i] =
                  node_tag(node_key(config.group_key, i), nonce, i, ok, child_tags);
            }
            result.aggregate_authentic = support::ct_equal(expected[0], tag);
            result.vrf_verifications = nodes.size();  // chain recomputation
            result.failed_ids = failed;
            result.absent_ids = absent;
            result.reported_good = nodes.size() - failed.size() - absent.size();
            result.total_time = simulator.now();
            result.completed = true;
          });
      return;
    }
    const std::size_t parent = (id - 1) / config.branching;
    simulator.schedule_in(config.hop_latency, [&, parent, id, tag, failed, absent] {
      Node& p = nodes[parent];
      p.child_tags.emplace_back(id, tag);
      p.child_failed.insert(p.child_failed.end(), failed.begin(), failed.end());
      p.child_absent.insert(p.child_absent.end(), absent.begin(), absent.end());
      --p.children_pending;
      try_report(parent);
    });
  };

  try_report = [&](std::size_t id) {
    Node& node = nodes[id];
    if (!node.measured || node.children_pending > 0) return;
    send_up(id);
  };

  // Request floods down; each node starts measuring on arrival.  A
  // removed device swallows the request: it neither forwards nor answers,
  // and its parent's timeout declares the whole subtree absent.
  std::function<void(std::size_t, sim::Time)> arrive = [&](std::size_t id,
                                                           sim::Time at) {
    simulator.schedule_at(at, [&, id] {
      ++result.messages;
      Node& node = nodes[id];
      if (node.removed) return;  // physically gone
      for (std::size_t c : node.children) {
        arrive(c, simulator.now() + config.hop_latency);
        simulator.schedule_in(config.child_timeout * (height[c] + 1), [&, id, c] {
          // Child subtree never reported: declare it absent.
          if (nodes[c].reported) return;
          Node& parent = nodes[id];
          std::vector<std::size_t> lost;
          subtree(c, lost);
          parent.child_absent.insert(parent.child_absent.end(), lost.begin(),
                                     lost.end());
          nodes[c].reported = true;  // so a late report is ignored
          --parent.children_pending;
          try_report(id);
        });
      }
      simulator.schedule_in(config.measurement_time, [&, id] {
        nodes[id].measured = true;
        try_report(id);
      });
    });
  };
  if (!nodes[0].removed) {
    arrive(0, config.hop_latency);  // Vrf -> root
  } else {
    // The root itself is gone: Vrf times out and declares everything absent.
    simulator.schedule_in(config.child_timeout, [&] {
      std::vector<std::size_t> lost;
      subtree(0, lost);
      std::sort(lost.begin(), lost.end());
      result.absent_ids = lost;
      result.reported_good = 0;
      result.aggregate_authentic = false;
      result.total_time = simulator.now();
      result.completed = true;
    });
  }

  simulator.run();
  return result;
}

SwarmResult run_star(const SwarmConfig& config, const std::set<std::size_t>& infected,
                     const std::set<std::size_t>& removed) {
  sim::Simulator simulator;
  SwarmResult result;
  result.devices = config.device_count;
  const Bytes nonce = support::to_bytes("swarm-nonce-1");

  // Vrf attests devices sequentially: request, wait for measurement,
  // verify, move on.
  sim::Time clock = 0;
  for (std::size_t id = 0; id < config.device_count; ++id) {
    clock += config.hop_latency;  // request out
    result.messages += 1;
    if (removed.count(id) > 0) {
      clock += config.child_timeout;  // Vrf waits out the silence
      result.absent_ids.push_back(id);
      continue;
    }
    clock += config.measurement_time;       // device measures
    clock += config.hop_latency;            // report back
    clock += config.vrf_verify_time;        // Vrf checks the report MAC
    result.messages += 1;
    ++result.vrf_verifications;
    const bool infected_device = infected.count(id) > 0;
    // Verify the per-device report MAC (real crypto, as the tree does).
    const Bytes tag =
        node_tag(node_key(config.group_key, id), nonce, id, !infected_device, {});
    const Bytes expected =
        node_tag(node_key(config.group_key, id), nonce, id, !infected_device, {});
    if (!support::ct_equal(tag, expected)) continue;  // never happens for honest MACs
    if (infected_device) {
      result.failed_ids.push_back(id);
    } else {
      ++result.reported_good;
    }
  }
  simulator.run_until(clock);
  result.aggregate_authentic = true;
  result.total_time = simulator.now();
  result.completed = true;
  return result;
}

/// LISA-style forwarding: the request floods down the tree, every device
/// measures in parallel and its *individual* report is forwarded hop by
/// hop to the verifier, which authenticates each one.  Same latency
/// parallelism as the aggregate, full per-device information, but O(n)
/// messages near the root and O(n) verifier work.
SwarmResult run_forwarding(const SwarmConfig& config,
                           const std::set<std::size_t>& infected,
                           const std::set<std::size_t>& removed) {
  sim::Simulator simulator;
  SwarmResult result;
  result.devices = config.device_count;
  const Bytes nonce = support::to_bytes("swarm-nonce-1");

  // Depth of each node (hops to the verifier = depth + 1).
  std::vector<std::size_t> depth(config.device_count, 0);
  for (std::size_t i = 1; i < config.device_count; ++i) {
    depth[i] = depth[(i - 1) / config.branching] + 1;
  }
  // A node is reachable iff no ancestor (or itself) was removed.
  std::vector<bool> reachable(config.device_count, true);
  for (std::size_t i = 0; i < config.device_count; ++i) {
    const bool parent_ok = i == 0 ? true : reachable[(i - 1) / config.branching];
    reachable[i] = parent_ok && removed.count(i) == 0;
  }

  sim::Time vrf_busy_until = 0;
  std::size_t reports_expected = 0;
  for (std::size_t id = 0; id < config.device_count; ++id) {
    if (!reachable[id]) {
      result.absent_ids.push_back(id);
      continue;
    }
    ++reports_expected;
    // Request reaches the node after depth+1 hops; it measures, then the
    // report travels depth+1 hops back (forwarded by each ancestor).
    const sim::Duration hops = config.hop_latency * (depth[id] + 1);
    const sim::Time report_at = hops + config.measurement_time + hops;
    result.messages += 2 * (depth[id] + 1);
    const bool bad = infected.count(id) > 0;
    simulator.schedule_at(report_at, [&, id, bad] {
      // Vrf authenticates the per-device report (serialized at Vrf).
      const Bytes tag =
          node_tag(node_key(config.group_key, id), nonce, id, !bad, {});
      const Bytes expected =
          node_tag(node_key(config.group_key, id), nonce, id, !bad, {});
      const sim::Time start = std::max(simulator.now(), vrf_busy_until);
      vrf_busy_until = start + config.vrf_verify_time;
      ++result.vrf_verifications;
      if (!support::ct_equal(tag, expected)) return;
      if (bad) {
        result.failed_ids.push_back(id);
      } else {
        ++result.reported_good;
      }
    });
  }
  simulator.run();
  simulator.run_until(vrf_busy_until);
  std::sort(result.failed_ids.begin(), result.failed_ids.end());
  std::sort(result.absent_ids.begin(), result.absent_ids.end());
  result.aggregate_authentic = true;  // every report individually checked
  result.total_time = simulator.now();
  result.completed = true;
  return result;
}

}  // namespace

SwarmResult run_swarm_attestation(const SwarmConfig& config, SwarmProtocol protocol,
                                  const std::set<std::size_t>& infected,
                                  const std::set<std::size_t>& removed) {
  if (config.device_count == 0 || config.branching == 0) {
    throw std::invalid_argument("swarm needs devices and branching >= 1");
  }
  switch (protocol) {
    case SwarmProtocol::kCollectiveTree: return run_collective(config, infected, removed);
    case SwarmProtocol::kForwardingTree: return run_forwarding(config, infected, removed);
    case SwarmProtocol::kNaiveStar: return run_star(config, infected, removed);
  }
  throw std::invalid_argument("unknown SwarmProtocol");
}

namespace {

/// Stand-in for device `id`'s attested-memory Merkle root: derived from
/// the group key and id, with an infected device's diverging.  A real
/// deployment would plug in each device's attest-layer tree root; the
/// aggregation above it is identical.
mtree::Digest device_root_digest(const SwarmConfig& config, std::size_t id,
                                 bool infected) {
  auto engine = crypto::make_hash(kMacHash);
  Bytes material = support::to_bytes("swarm-device-root/v1");
  support::append(material, config.group_key);
  support::append_u64_be(material, id);
  material.push_back(infected ? 1 : 0);
  engine->update(material);
  mtree::Digest out;
  engine->finalize_into(out.prepare(engine->digest_size()));
  return out;
}

/// Fold [own leaf, child subtree roots...] bottom-up.
mtree::Digest subtree_aggregate(const SwarmConfig& config, std::size_t id,
                                const std::set<std::size_t>& infected) {
  std::vector<mtree::Digest> parts;
  parts.push_back(device_root_digest(config, id, infected.count(id) != 0));
  for (std::size_t c = id * config.branching + 1;
       c <= id * config.branching + config.branching && c < config.device_count; ++c) {
    parts.push_back(subtree_aggregate(config, c, infected));
  }
  return mtree::MerkleTree::combine_roots(parts, kMacHash);
}

}  // namespace

SwarmRootAggregate aggregate_swarm_roots(const SwarmConfig& config,
                                         const std::set<std::size_t>& infected) {
  if (config.device_count == 0 || config.branching == 0) {
    throw std::invalid_argument("swarm needs devices and branching >= 1");
  }
  const std::set<std::size_t> clean;
  SwarmRootAggregate out;
  out.root = subtree_aggregate(config, 0, infected);
  out.expected_root = subtree_aggregate(config, 0, clean);
  out.matches = out.root == out.expected_root;
  if (device_root_digest(config, 0, infected.count(0) != 0) !=
      device_root_digest(config, 0, false)) {
    out.suspect_subtrees.push_back(0);
  }
  for (std::size_t c = 1; c <= config.branching && c < config.device_count; ++c) {
    out.child_roots.push_back(subtree_aggregate(config, c, infected));
    if (out.child_roots.back() != subtree_aggregate(config, c, clean)) {
      out.suspect_subtrees.push_back(c);
    }
  }
  return out;
}

}  // namespace rasc::swarm
