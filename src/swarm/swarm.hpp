#pragma once
/// \file swarm.hpp
/// Collective attestation of interconnected device swarms (paper Section
/// 2.1: SEDA, LISA, SANA).  Devices form a spanning tree; an attestation
/// request floods down, each device measures itself in parallel, and
/// authenticated results aggregate bottom-up so the verifier handles one
/// report instead of N round trips.
///
/// Two protocols are modeled:
///  - kNaiveStar:      the single-prover baseline — Vrf attests each
///                     device one after another (no swarm support);
///  - kCollectiveTree: SEDA-style — parallel measurement + per-hop
///                     aggregation with an HMAC chain (failed devices are
///                     reported by id, LISA-alpha style).
///
/// Aggregation MACs are real HMAC-SHA-256 chains over per-node keys
/// derived from a group key, and the verifier authenticates the root
/// aggregate by recomputing the chain.

#include <functional>
#include <set>
#include <vector>

#include "src/mtree/mtree.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/bytes.hpp"

namespace rasc::swarm {

enum class SwarmProtocol {
  kNaiveStar,       ///< Vrf attests each device one after another
  kCollectiveTree,  ///< SEDA-style aggregate: one authenticated result
  kForwardingTree,  ///< LISA-style: per-device reports forwarded up the
                    ///< tree, Vrf verifies each (full information, O(n)
                    ///< verifier work, parallel measurement)
};

std::string swarm_protocol_name(SwarmProtocol protocol);

struct SwarmConfig {
  std::size_t device_count = 15;
  std::size_t branching = 2;  ///< spanning-tree fan-out
  /// Per-device measurement time (SMART-style MP over its own memory).
  sim::Duration measurement_time = 50 * sim::kMillisecond;
  sim::Duration hop_latency = 2 * sim::kMillisecond;  ///< per tree edge / per star leg
  /// Vrf-side work per individually-verified report (naive star), and per
  /// node when recomputing the aggregate chain (collective).
  sim::Duration vrf_verify_time = 200 * sim::kMicrosecond;
  /// How long a parent waits for a child subtree before declaring it
  /// absent (DARPA-style detection of physically removed devices).
  sim::Duration child_timeout = sim::from_seconds(2);
  support::Bytes group_key = support::to_bytes("swarm-group-key");
};

struct SwarmResult {
  bool completed = false;
  std::size_t devices = 0;
  std::size_t vrf_verifications = 0;  ///< crypto checks performed by Vrf
  std::size_t reported_good = 0;
  std::vector<std::size_t> failed_ids;  ///< devices whose measurement failed
  /// Devices that never answered (physically removed / destroyed) —
  /// includes whole subtrees cut off by a removed parent (DARPA [13]
  /// treats prolonged absence as evidence of a physical attack).
  std::vector<std::size_t> absent_ids;
  bool aggregate_authentic = false;     ///< MAC chain / per-report MACs valid
  sim::Duration total_time = 0;         ///< request sent -> verdict ready
  std::size_t messages = 0;             ///< link-level messages exchanged
};

/// Run one swarm attestation round; `infected` lists compromised device
/// ids (their measurements fail) and `removed` lists devices physically
/// absent (they never respond; their subtrees become unreachable).
/// Device 0 is the tree root / first star target.  Returns after the
/// simulation quiesces.
SwarmResult run_swarm_attestation(const SwarmConfig& config, SwarmProtocol protocol,
                                  const std::set<std::size_t>& infected,
                                  const std::set<std::size_t>& removed = {});

/// Tree depth for a device count and branching factor (diagnostics).
std::size_t tree_depth(std::size_t device_count, std::size_t branching);

/// Merkle aggregation of per-device memory roots over the spanning tree —
/// the swarm-scale face of the mtree subsystem.  Each device contributes
/// one leaf digest (derived from the group key and its id; an infected
/// device's diverges), and every subtree folds [own leaf, child subtree
/// roots...] with MerkleTree::combine_roots, so the whole swarm condenses
/// to one digest with the same domain separation as a device's block
/// tree.  Comparing the root against the all-clean expectation detects
/// any compromise, and comparing the *top-level* child subtree roots
/// localizes which branch of the swarm holds it — the same
/// root-then-localize structure the tree-mode verifier applies to one
/// device's blocks, one tier up.
struct SwarmRootAggregate {
  mtree::Digest root;                       ///< aggregate over actual leaves
  mtree::Digest expected_root;              ///< aggregate over all-clean leaves
  bool matches = false;                     ///< root == expected_root
  /// Subtree roots of device 0's direct children, child-id order.
  std::vector<mtree::Digest> child_roots;
  /// Child ids (of device 0) whose subtree aggregate diverges from the
  /// clean expectation, plus the root device's own id (0) when its leaf
  /// diverges — which top-level branches to descend into.
  std::vector<std::size_t> suspect_subtrees;
};

/// Pure function of (config.device_count, config.branching,
/// config.group_key, infected) — no simulation involved.
SwarmRootAggregate aggregate_swarm_roots(const SwarmConfig& config,
                                         const std::set<std::size_t>& infected);

}  // namespace rasc::swarm
