#pragma once
/// \file mtree.hpp
/// Merkle hash tree over per-block digests — the incremental-measurement
/// core of ROADMAP item 2.  The flat measurement combiner (PR 4) MACs all
/// n block digests per round even when the digest cache served most of
/// them; a tree makes re-measurement O(dirty * log n): a dirty leaf
/// invalidates only its root-to-leaf path, and flush() re-hashes exactly
/// the invalidated nodes.  The root then stands in for the flat digest in
/// attest::Report, and contiguous leaf ranges can be *proved* against the
/// root with O(log n) sibling hashes (MtreeProof) — which is what lets a
/// verifier localize WHICH blocks diverged from the golden image instead
/// of returning a bare compromised verdict (the SAFE^d structure from
/// PAPERS.md).
///
/// Layout: a flat heap array of 2 * padded - 1 nodes where padded is the
/// leaf count rounded up to a power of two; node 0 is the root, node i's
/// children are 2i+1 / 2i+2, and leaf L lives at padded - 1 + L.  Domain
/// separation: stored leaf value = H(0x00 || block_digest), internal
/// value = H(0x01 || left || right), padding leaf = H(0x02), so a leaf
/// can never be confused with an interior node (second-preimage
/// structure attacks) and trees of different widths never collide.
///
/// Determinism: the tree is a pure function of (hash kind, leaf digests);
/// flush order does not matter and the incremental root always equals a
/// from-scratch rebuild (property-tested in tests/mtree).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/attest/digest.hpp"
#include "src/crypto/hash.hpp"
#include "src/support/bytes.hpp"

namespace rasc::mtree {

using attest::Digest;

/// Counts from one flush(): how many dirty leaves were folded in and how
/// many tree nodes (leaves + ancestors) were re-hashed for them.  These
/// are what the prover's simulated timing model and the mtree journal
/// events are built from.
struct RehashStats {
  std::size_t dirty_leaves = 0;
  std::size_t nodes_rehashed = 0;
};

/// Subtree proof for a contiguous leaf range [first_leaf, first_leaf +
/// leaf_count): the covered block digests themselves, the O(log n)
/// boundary siblings needed to recompute the root, and a generation
/// snapshot so the verifier can report *when* the covered blocks last
/// changed.  verify() recomputes the root from the carried data alone —
/// any single-bit tamper in a leaf digest or sibling hash changes the
/// recomputed root and fails the check.
struct MtreeProof {
  std::uint32_t first_leaf = 0;
  std::uint32_t leaf_count = 0;
  std::uint32_t total_leaves = 0;       ///< width of the proved tree
  crypto::HashKind hash = crypto::HashKind::kSha256;
  std::vector<Digest> leaves;           ///< block digests, leaf order
  std::vector<std::uint64_t> generations;  ///< per covered leaf
  std::vector<Digest> siblings;         ///< bottom-up, left before right

  /// Recompute the root implied by the carried leaves + siblings and
  /// compare against `root` (constant-time compare).  False on any
  /// structural mismatch (empty range, range outside total_leaves,
  /// sibling count not matching the range shape).
  bool verify(support::ByteView root) const;

  /// Wire encoding (fixed field order, big-endian lengths) — appended to
  /// the report body when present, so it is covered by the report MAC.
  support::Bytes serialize() const;
  /// Parse one proof; advances `pos` past it.  nullopt on malformed input.
  static std::optional<MtreeProof> parse(support::ByteView wire, std::size_t& pos);
};

class MerkleTree {
 public:
  /// Tree over `leaf_count` block digests (>= 1), all leaves initially
  /// the empty digest — call set_leaf + flush (or assign each leaf) to
  /// populate.
  MerkleTree(std::size_t leaf_count, crypto::HashKind hash);

  std::size_t leaf_count() const noexcept { return leaf_count_; }
  crypto::HashKind hash_kind() const noexcept { return hash_; }

  /// Install a leaf's block digest and mark its root-to-leaf path dirty.
  /// O(log n) amortized; the path walk stops at the first already-dirty
  /// ancestor, so k scattered dirty leaves mark at most k * log n nodes.
  void set_leaf(std::size_t leaf, const Digest& block_digest);

  /// Re-hash every node marked dirty since the last flush, children
  /// before parents.  O(dirty * log n) hash invocations; returns what was
  /// done for timing models and journals.
  RehashStats flush();

  /// Full from-scratch recompute of every node (tree priming, and the
  /// reference the incremental root is property-tested against).
  RehashStats rebuild();

  bool dirty() const noexcept { return !pending_.empty(); }
  /// Nodes that flush() would re-hash right now (dirty leaves included).
  std::size_t pending_nodes() const noexcept { return pending_.size(); }

  /// How many nodes a flush would re-hash if exactly `leaves` were set:
  /// the size of the union of their root-to-leaf paths.  Pure prediction —
  /// does not touch the dirty state.  The prover uses this to price the
  /// round's finalize cost before visiting a single block.
  std::size_t plan_rehash(const std::vector<std::size_t>& leaves) const;

  /// Root hash; throws std::logic_error while dirty (flush first).
  const Digest& root() const;
  support::Bytes root_bytes() const { return root().to_bytes(); }

  /// Stored node value by heap index (0 = root) — exposed for the fleet
  /// aggregation layer and for tests that tamper with interior nodes.
  const Digest& node(std::size_t index) const { return nodes_.at(index); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// The block digest last installed for a leaf (not the domain-separated
  /// stored leaf hash).
  const Digest& leaf_digest(std::size_t leaf) const { return leaf_digests_.at(leaf); }

  /// Build a proof for [first, first + count).  Requires a flushed tree;
  /// `generations` (when provided) must have leaf_count() entries and is
  /// sampled into the proof's snapshot.
  MtreeProof prove_range(std::size_t first, std::size_t count,
                         const std::vector<std::uint64_t>* generations = nullptr) const;

  /// Heap-allocated footprint (node array + leaf copies + dirty state) —
  /// feeds the fleet verifier's memory accounting.
  std::size_t memory_bytes() const noexcept;

  /// Combine an ordered list of child roots into one parent digest with
  /// the internal-node rule (pairwise, padding with the empty-leaf hash).
  /// Used by fleet/swarm to aggregate per-shard / per-subtree roots into
  /// one fleet root with the same domain separation as the tree itself.
  static Digest combine_roots(const std::vector<Digest>& roots,
                              crypto::HashKind hash);

 private:
  void hash_leaf(std::size_t leaf, Digest& out);
  void hash_internal(std::size_t index, Digest& out);
  void mark_path(std::size_t node_index);

  crypto::HashKind hash_;
  std::unique_ptr<crypto::Hash> engine_;  ///< reused across node hashes
  std::size_t leaf_count_;
  std::size_t padded_;       ///< leaves rounded up to a power of two
  std::vector<Digest> nodes_;        ///< 2 * padded_ - 1, heap order
  std::vector<Digest> leaf_digests_; ///< raw block digests, leaf order
  std::vector<bool> node_dirty_;
  std::vector<std::uint32_t> pending_;  ///< dirty node indices, unordered
};

}  // namespace rasc::mtree
