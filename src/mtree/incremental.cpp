#include "src/mtree/incremental.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasc::mtree {

IncrementalTree::IncrementalTree(const sim::DeviceMemory& memory,
                                 crypto::HashKind hash, LeafDigestFn leaf_fn)
    : memory_(memory),
      leaf_fn_(std::move(leaf_fn)),
      tree_(memory.block_count(), hash),
      hashed_generations_(memory.block_count(), 0),
      hashed_once_(memory.block_count(), false),
      observed_flag_(memory.block_count(), false) {}

void IncrementalTree::note_block_changed(std::size_t block) {
  if (block >= observed_flag_.size() || observed_flag_[block]) return;
  observed_flag_[block] = true;
  observed_.push_back(static_cast<std::uint32_t>(block));
}

std::vector<std::size_t> IncrementalTree::dirty_blocks() const {
  std::vector<std::size_t> dirty;
  for (std::size_t b = 0; b < hashed_generations_.size(); ++b) {
    if (!hashed_once_[b] || memory_.block_generation(b) != hashed_generations_[b]) {
      dirty.push_back(b);
    }
  }
  return dirty;
}

void IncrementalTree::refresh_block(std::size_t block) {
  Digest digest;
  leaf_fn_(block, memory_.block_view(block), digest);
  tree_.set_leaf(block, digest);
  hashed_generations_[block] = memory_.block_generation(block);
  hashed_once_[block] = true;
}

RehashStats IncrementalTree::refresh() {
  if (observed_mode_ && !scan_needed_) {
    // Deterministic ascending visit order regardless of write order.
    std::sort(observed_.begin(), observed_.end());
    for (std::uint32_t block : observed_) {
      observed_flag_[block] = false;
      if (!hashed_once_[block] ||
          memory_.block_generation(block) != hashed_generations_[block]) {
        refresh_block(block);
      }
    }
    observed_.clear();
  } else {
    for (std::size_t block : dirty_blocks()) refresh_block(block);
    for (std::uint32_t block : observed_) observed_flag_[block] = false;
    observed_.clear();
    scan_needed_ = false;
  }
  const RehashStats stats = tree_.flush();
  primed_ = true;
  return stats;
}

std::vector<std::size_t> IncrementalTree::collect_dirty() {
  if (!observed_mode_ || scan_needed_) {
    for (std::uint32_t block : observed_) observed_flag_[block] = false;
    observed_.clear();
    scan_needed_ = false;
    return dirty_blocks();
  }
  std::sort(observed_.begin(), observed_.end());
  std::vector<std::size_t> dirty;
  std::vector<std::uint32_t> keep;
  for (std::uint32_t block : observed_) {
    if (!hashed_once_[block] ||
        memory_.block_generation(block) != hashed_generations_[block]) {
      dirty.push_back(block);
      keep.push_back(block);  // note survives until refresh_one lands it
    } else {
      observed_flag_[block] = false;
    }
  }
  observed_ = std::move(keep);
  return dirty;
}

void IncrementalTree::refresh_one(std::size_t block) { refresh_block(block); }

void IncrementalTree::apply_digest(std::size_t block, const Digest& digest) {
  tree_.set_leaf(block, digest);
  hashed_generations_[block] = memory_.block_generation(block);
  hashed_once_[block] = true;
}

RehashStats IncrementalTree::prime_with(std::span<const Digest> leaves) {
  if (leaves.size() != hashed_generations_.size()) {
    throw std::invalid_argument("prime_with: one digest per block required");
  }
  for (std::size_t b = 0; b < leaves.size(); ++b) apply_digest(b, leaves[b]);
  for (std::uint32_t block : observed_) observed_flag_[block] = false;
  observed_.clear();
  scan_needed_ = false;
  const RehashStats stats = tree_.rebuild();
  primed_ = true;
  return stats;
}

RehashStats IncrementalTree::flush_tree() {
  const RehashStats stats = tree_.flush();
  primed_ = true;
  return stats;
}

RehashStats IncrementalTree::rebuild() {
  for (std::size_t b = 0; b < hashed_generations_.size(); ++b) refresh_block(b);
  for (std::uint32_t block : observed_) observed_flag_[block] = false;
  observed_.clear();
  scan_needed_ = false;
  const RehashStats stats = tree_.rebuild();
  primed_ = true;
  return stats;
}

std::size_t IncrementalTree::memory_bytes() const noexcept {
  return tree_.memory_bytes() +
         hashed_generations_.capacity() * sizeof(std::uint64_t) +
         hashed_once_.capacity() / 8 + observed_flag_.capacity() / 8 +
         observed_.capacity() * sizeof(std::uint32_t);
}

}  // namespace rasc::mtree
