#include "src/mtree/mtree.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasc::mtree {

namespace {

/// Domain-separation prefixes (see the file comment in mtree.hpp).
constexpr std::uint8_t kLeafPrefix = 0x00;
constexpr std::uint8_t kInternalPrefix = 0x01;
constexpr std::uint8_t kPaddingPrefix = 0x02;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void hash_padding(crypto::Hash& engine, Digest& out) {
  const std::uint8_t prefix = kPaddingPrefix;
  engine.update(support::ByteView(&prefix, 1));
  engine.finalize_into(out.prepare(engine.digest_size()));
}

void hash_pair(crypto::Hash& engine, const Digest& left, const Digest& right,
               Digest& out) {
  const std::uint8_t prefix = kInternalPrefix;
  engine.update(support::ByteView(&prefix, 1));
  engine.update(left.view());
  engine.update(right.view());
  engine.finalize_into(out.prepare(engine.digest_size()));
}

void hash_leaf_digest(crypto::Hash& engine, const Digest& block_digest, Digest& out) {
  const std::uint8_t prefix = kLeafPrefix;
  engine.update(support::ByteView(&prefix, 1));
  engine.update(block_digest.view());
  engine.finalize_into(out.prepare(engine.digest_size()));
}

}  // namespace

MerkleTree::MerkleTree(std::size_t leaf_count, crypto::HashKind hash)
    : hash_(hash), leaf_count_(leaf_count), padded_(next_pow2(leaf_count)) {
  if (leaf_count == 0) throw std::invalid_argument("MerkleTree: leaf_count == 0");
  engine_ = crypto::make_hash(hash_);
  nodes_.assign(2 * padded_ - 1, {});
  leaf_digests_.assign(leaf_count_, {});
  node_dirty_.assign(nodes_.size(), true);
  // Everything starts dirty: the first flush()/rebuild() computes the
  // whole tree (priming), and root() refuses to serve until then.
  pending_.resize(nodes_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    pending_[i] = static_cast<std::uint32_t>(i);
  }
}

void MerkleTree::mark_path(std::size_t node_index) {
  std::size_t i = node_index;
  while (true) {
    if (node_dirty_[i]) break;  // ancestors above are already marked
    node_dirty_[i] = true;
    pending_.push_back(static_cast<std::uint32_t>(i));
    if (i == 0) break;
    i = (i - 1) / 2;
  }
}

void MerkleTree::set_leaf(std::size_t leaf, const Digest& block_digest) {
  if (leaf >= leaf_count_) throw std::out_of_range("MerkleTree::set_leaf out of range");
  leaf_digests_[leaf] = block_digest;
  mark_path(padded_ - 1 + leaf);
}

void MerkleTree::hash_leaf(std::size_t leaf, Digest& out) {
  if (leaf < leaf_count_) {
    hash_leaf_digest(*engine_, leaf_digests_[leaf], out);
  } else {
    hash_padding(*engine_, out);
  }
}

void MerkleTree::hash_internal(std::size_t index, Digest& out) {
  hash_pair(*engine_, nodes_[2 * index + 1], nodes_[2 * index + 2], out);
}

RehashStats MerkleTree::flush() {
  RehashStats stats;
  if (pending_.empty()) return stats;
  // Heap order guarantees parent index < child index, so a descending
  // sweep re-hashes children before the parents that consume them.
  std::sort(pending_.begin(), pending_.end(), std::greater<>());
  for (std::uint32_t idx : pending_) {
    if (idx >= padded_ - 1) {
      const std::size_t leaf = idx - (padded_ - 1);
      hash_leaf(leaf, nodes_[idx]);
      if (leaf < leaf_count_) ++stats.dirty_leaves;
    } else {
      hash_internal(idx, nodes_[idx]);
    }
    node_dirty_[idx] = false;
  }
  stats.nodes_rehashed = pending_.size();
  pending_.clear();
  return stats;
}

RehashStats MerkleTree::rebuild() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!node_dirty_[i]) {
      node_dirty_[i] = true;
      pending_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return flush();
}

const Digest& MerkleTree::root() const {
  if (dirty()) throw std::logic_error("MerkleTree::root while dirty (flush first)");
  return nodes_[0];
}

MtreeProof MerkleTree::prove_range(
    std::size_t first, std::size_t count,
    const std::vector<std::uint64_t>* generations) const {
  if (dirty()) throw std::logic_error("MerkleTree::prove_range while dirty");
  if (count == 0 || first + count > leaf_count_) {
    throw std::out_of_range("MerkleTree::prove_range outside leaves");
  }
  MtreeProof proof;
  proof.first_leaf = static_cast<std::uint32_t>(first);
  proof.leaf_count = static_cast<std::uint32_t>(count);
  proof.total_leaves = static_cast<std::uint32_t>(leaf_count_);
  proof.hash = hash_;
  proof.leaves.assign(leaf_digests_.begin() + static_cast<std::ptrdiff_t>(first),
                      leaf_digests_.begin() + static_cast<std::ptrdiff_t>(first + count));
  proof.generations.resize(count, 0);
  if (generations != nullptr) {
    for (std::size_t i = 0; i < count; ++i) proof.generations[i] = (*generations)[first + i];
  }
  // Boundary siblings, bottom-up; left boundary before right boundary on
  // each level (the order verify() consumes them in).
  std::size_t lo = padded_ - 1 + first;
  std::size_t hi = padded_ - 1 + first + count - 1;
  while (lo != 0) {
    if (lo % 2 == 0) {  // right child: left boundary needs its sibling
      proof.siblings.push_back(nodes_[lo - 1]);
      --lo;
    }
    if (hi % 2 == 1) {  // left child: right boundary needs its sibling
      proof.siblings.push_back(nodes_[hi + 1]);
      ++hi;
    }
    lo = (lo - 1) / 2;
    hi = (hi - 1) / 2;
  }
  return proof;
}

std::size_t MerkleTree::plan_rehash(const std::vector<std::size_t>& leaves) const {
  std::vector<bool> marked(nodes_.size(), false);
  std::size_t count = 0;
  for (std::size_t leaf : leaves) {
    if (leaf >= leaf_count_) throw std::out_of_range("MerkleTree::plan_rehash");
    std::size_t i = padded_ - 1 + leaf;
    while (!marked[i]) {
      marked[i] = true;
      ++count;
      if (i == 0) break;
      i = (i - 1) / 2;
    }
  }
  return count;
}

std::size_t MerkleTree::memory_bytes() const noexcept {
  return nodes_.capacity() * sizeof(Digest) +
         leaf_digests_.capacity() * sizeof(Digest) + node_dirty_.capacity() / 8 +
         pending_.capacity() * sizeof(std::uint32_t);
}

Digest MerkleTree::combine_roots(const std::vector<Digest>& roots,
                                 crypto::HashKind hash) {
  auto engine = crypto::make_hash(hash);
  Digest padding;
  hash_padding(*engine, padding);
  if (roots.empty()) return padding;
  std::vector<Digest> level = roots;
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(padding);
    std::vector<Digest> next(level.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      hash_pair(*engine, level[2 * i], level[2 * i + 1], next[i]);
    }
    level = std::move(next);
  }
  return level[0];
}

bool MtreeProof::verify(support::ByteView root) const {
  if (leaf_count == 0 || total_leaves == 0 || first_leaf > total_leaves ||
      leaf_count > total_leaves - first_leaf || leaves.size() != leaf_count) {
    return false;
  }
  auto engine = crypto::make_hash(hash);
  const std::size_t padded = next_pow2(total_leaves);
  std::vector<Digest> cur(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    hash_leaf_digest(*engine, leaves[i], cur[i]);
  }
  std::size_t lo = padded - 1 + first_leaf;
  std::size_t hi = lo + leaf_count - 1;
  std::size_t sib = 0;
  while (lo != 0) {
    std::vector<Digest> row;
    row.reserve(cur.size() + 2);
    if (lo % 2 == 0) {
      if (sib >= siblings.size()) return false;
      row.push_back(siblings[sib++]);
      --lo;
    }
    row.insert(row.end(), cur.begin(), cur.end());
    if (hi % 2 == 1) {
      if (sib >= siblings.size()) return false;
      row.push_back(siblings[sib++]);
      ++hi;
    }
    if (row.size() % 2 != 0) return false;
    cur.resize(row.size() / 2);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      hash_pair(*engine, row[2 * i], row[2 * i + 1], cur[i]);
    }
    lo = (lo - 1) / 2;
    hi = (hi - 1) / 2;
  }
  if (sib != siblings.size()) return false;  // trailing garbage siblings
  return support::ct_equal(cur[0].view(), root);
}

support::Bytes MtreeProof::serialize() const {
  support::Bytes out;
  const std::size_t digest_size = crypto::hash_digest_size(hash);
  support::append_u32_be(out, first_leaf);
  support::append_u32_be(out, leaf_count);
  support::append_u32_be(out, total_leaves);
  support::append_u32_be(out, static_cast<std::uint32_t>(hash));
  support::append_u32_be(out, static_cast<std::uint32_t>(digest_size));
  for (const Digest& d : leaves) {
    if (d.size() != digest_size) throw std::logic_error("MtreeProof: ragged leaf digest");
    support::append(out, d.view());
  }
  for (std::uint64_t g : generations) support::append_u64_be(out, g);
  support::append_u32_be(out, static_cast<std::uint32_t>(siblings.size()));
  for (const Digest& d : siblings) {
    if (d.size() != digest_size) throw std::logic_error("MtreeProof: ragged sibling digest");
    support::append(out, d.view());
  }
  return out;
}

std::optional<MtreeProof> MtreeProof::parse(support::ByteView wire, std::size_t& pos) {
  const auto remaining = [&] { return wire.size() - pos; };
  const auto read_u32 = [&](std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = support::get_u32_be(wire.subspan(pos, 4));
    pos += 4;
    return true;
  };
  MtreeProof proof;
  std::uint32_t hash_raw = 0;
  std::uint32_t digest_size = 0;
  if (!read_u32(proof.first_leaf) || !read_u32(proof.leaf_count) ||
      !read_u32(proof.total_leaves) || !read_u32(hash_raw) || !read_u32(digest_size)) {
    return std::nullopt;
  }
  proof.hash = static_cast<crypto::HashKind>(hash_raw);
  if (digest_size == 0 || digest_size > Digest::kMaxSize) return std::nullopt;
  // Bound counts by the bytes actually present before reserving anything.
  if (proof.leaf_count == 0 ||
      remaining() / digest_size < proof.leaf_count) {
    return std::nullopt;
  }
  proof.leaves.resize(proof.leaf_count);
  for (Digest& d : proof.leaves) {
    d.assign(wire.subspan(pos, digest_size));
    pos += digest_size;
  }
  if (remaining() / 8 < proof.leaf_count) return std::nullopt;
  proof.generations.resize(proof.leaf_count);
  for (std::uint64_t& g : proof.generations) {
    g = support::get_u64_be(wire.subspan(pos, 8));
    pos += 8;
  }
  std::uint32_t sibling_count = 0;
  if (!read_u32(sibling_count)) return std::nullopt;
  if (remaining() / digest_size < sibling_count) return std::nullopt;
  proof.siblings.resize(sibling_count);
  for (Digest& d : proof.siblings) {
    d.assign(wire.subspan(pos, digest_size));
    pos += digest_size;
  }
  return proof;
}

}  // namespace rasc::mtree
