#pragma once
/// \file incremental.hpp
/// Binds a MerkleTree to a sim::DeviceMemory through the per-block
/// generation counters PR 4 introduced: refresh() re-digests exactly the
/// blocks whose generation moved since they were last hashed, feeds the
/// new digests into the tree, and flushes the invalidated paths —
/// O(dirty * log n) hashing per measurement round.
///
/// Dirty discovery has two modes:
///  - generation scan (default): refresh() compares all n stored
///    generations against the memory's — O(n) integer compares, zero
///    coupling to the memory's observer slot;
///  - observed: when wired to DeviceMemory::set_generation_observer via
///    note_block_changed(), refresh() walks only the noted blocks — true
///    O(dirty * log n) end to end (what the tree-mode prover uses).
/// Both modes produce bit-identical trees; which blocks are *re-hashed*
/// depends only on generations, never on the discovery mode.
///
/// The leaf digest function is injected so this module never depends on
/// attest (the prover passes its BlockDigester, optionally backed by the
/// shared DigestCache).

#include <functional>

#include "src/mtree/mtree.hpp"
#include "src/sim/memory.hpp"

namespace rasc::mtree {

class IncrementalTree {
 public:
  /// Digest one block's live content into `out` (same contract as
  /// attest::BlockDigester::digest, type-erased to avoid the dependency).
  using LeafDigestFn =
      std::function<void(std::size_t block, support::ByteView content, Digest& out)>;

  /// The memory must outlive the tree.  The tree starts unprimed: call
  /// refresh() (or rebuild()) once before root().
  IncrementalTree(const sim::DeviceMemory& memory, crypto::HashKind hash,
                  LeafDigestFn leaf_fn);

  /// Record an externally observed content change (wire this to
  /// DeviceMemory::set_generation_observer).  Cheap and idempotent.
  void note_block_changed(std::size_t block);

  /// Switch dirty discovery to the observed-blocks list.  Until the first
  /// refresh() after enabling, a full scan still runs (the list only
  /// covers changes observed since wiring).
  void use_observed_dirty(bool enabled) noexcept { observed_mode_ = enabled; }

  /// Blocks whose generation differs from the last-hashed one right now
  /// (ascending block order, independent of discovery mode).
  std::vector<std::size_t> dirty_blocks() const;

  /// Re-digest dirty blocks, update the tree, flush invalidated paths.
  RehashStats refresh();

  /// Ignore generations and re-digest everything (priming / reference).
  RehashStats rebuild();

  // --- split refresh, for callers that interleave per-block work (the
  // tree-mode prover visits blocks over simulated time, one per step) ---

  /// The blocks a refresh would re-digest right now, ascending.  In
  /// observed mode the note for each returned block *survives* until
  /// refresh_one() lands it, so an aborted round can never strand a stale
  /// leaf; notes for blocks whose generation already matches are dropped.
  std::vector<std::size_t> collect_dirty();

  /// Re-digest one block and mark its tree path dirty (no flush).
  void refresh_one(std::size_t block);

  /// Land an externally computed digest for `block` (no flush): exactly
  /// refresh_one() minus the leaf_fn call.  Callers that batch their leaf
  /// digests (multi-lane visit_blocks, golden-image priming) compute many
  /// digests at once and then land each here; the caller must guarantee
  /// `digest` is the digest of the block's current content.
  void apply_digest(std::size_t block, const Digest& digest);

  /// Prime every leaf from externally computed digests (one per block, in
  /// block order) and rebuild — rebuild() minus the n leaf_fn calls, with
  /// identical postconditions.  The caller must guarantee leaves[b] is the
  /// digest of block b's current content (fleet priming batches golden
  /// digests across a shard wave before any infection is applied).
  RehashStats prime_with(std::span<const Digest> leaves);

  /// Flush the tree paths dirtied by refresh_one() calls.
  RehashStats flush_tree();

  bool primed() const noexcept { return primed_; }
  const Digest& root() const { return tree_.root(); }
  support::Bytes root_bytes() const { return tree_.root_bytes(); }
  const MerkleTree& tree() const noexcept { return tree_; }

  /// Generation each leaf was last hashed at (leaf order) — the snapshot
  /// prove_range() embeds in proofs.
  const std::vector<std::uint64_t>& leaf_generations() const noexcept {
    return hashed_generations_;
  }
  MtreeProof prove_range(std::size_t first, std::size_t count) const {
    return tree_.prove_range(first, count, &hashed_generations_);
  }

  std::size_t memory_bytes() const noexcept;

 private:
  void refresh_block(std::size_t block);

  const sim::DeviceMemory& memory_;
  LeafDigestFn leaf_fn_;
  MerkleTree tree_;
  std::vector<std::uint64_t> hashed_generations_;
  std::vector<bool> hashed_once_;
  bool primed_ = false;
  bool observed_mode_ = false;
  bool scan_needed_ = true;  ///< observed list incomplete until next refresh
  std::vector<std::uint32_t> observed_;  ///< noted dirty blocks, deduplicated
  std::vector<bool> observed_flag_;
};

}  // namespace rasc::mtree
