#include "src/locking/policies.hpp"

#include <stdexcept>

namespace rasc::locking {

namespace {

using attest::Coverage;
using sim::DeviceMemory;

void lock_covered(DeviceMemory& mem, const Coverage& cov) {
  const std::size_t n = cov.resolve_count(mem);
  for (std::size_t b = cov.first_block; b < cov.first_block + n; ++b) mem.lock_block(b);
}

void unlock_covered(DeviceMemory& mem, const Coverage& cov) {
  const std::size_t n = cov.resolve_count(mem);
  for (std::size_t b = cov.first_block; b < cov.first_block + n; ++b) mem.unlock_block(b);
}

class AllLock : public attest::LockPolicy {
 public:
  explicit AllLock(bool extended, sim::Duration release_delay)
      : extended_(extended), release_delay_(release_delay) {}

  std::string name() const override { return extended_ ? "All-Lock-Ext" : "All-Lock"; }
  sim::Duration release_delay() const override { return extended_ ? release_delay_ : 0; }

  void on_start(DeviceMemory& mem, const Coverage& cov) override { lock_covered(mem, cov); }
  void on_end(DeviceMemory& mem, const Coverage& cov) override {
    if (!extended_) unlock_covered(mem, cov);
  }
  void on_release(DeviceMemory& mem, const Coverage& cov) override {
    if (extended_) unlock_covered(mem, cov);
  }

 private:
  bool extended_;
  sim::Duration release_delay_;
};

class DecLock : public attest::LockPolicy {
 public:
  std::string name() const override { return "Dec-Lock"; }
  void on_start(DeviceMemory& mem, const Coverage& cov) override { lock_covered(mem, cov); }
  void on_block_visited(DeviceMemory& mem, std::size_t block) override {
    mem.unlock_block(block);  // released as soon as F has processed it
  }
};

class IncLock : public attest::LockPolicy {
 public:
  explicit IncLock(bool extended, sim::Duration release_delay)
      : extended_(extended), release_delay_(release_delay) {}

  std::string name() const override { return extended_ ? "Inc-Lock-Ext" : "Inc-Lock"; }
  sim::Duration release_delay() const override { return extended_ ? release_delay_ : 0; }

  void on_block_visited(DeviceMemory& mem, std::size_t block) override {
    mem.lock_block(block);  // locked once processed, held until the end
  }
  void on_end(DeviceMemory& mem, const Coverage& cov) override {
    if (!extended_) unlock_covered(mem, cov);
  }
  void on_release(DeviceMemory& mem, const Coverage& cov) override {
    if (extended_) unlock_covered(mem, cov);
  }

 private:
  bool extended_;
  sim::Duration release_delay_;
};

class CpyLock : public attest::LockPolicy {
 public:
  std::string name() const override { return "Cpy-Lock"; }

  void on_start(DeviceMemory& mem, const Coverage& cov) override {
    first_block_ = cov.first_block;
    const std::size_t n = cov.resolve_count(mem);
    const auto view =
        mem.read(cov.first_block * mem.block_size(), n * mem.block_size());
    snapshot_.assign(view.begin(), view.end());
    block_size_ = mem.block_size();
  }

  void on_end(DeviceMemory&, const Coverage&) override {
    snapshot_.clear();
    snapshot_.shrink_to_fit();
  }

  sim::Duration start_cost(const sim::CpuModel& model,
                           std::uint64_t covered_bytes) const override {
    return model.copy_time(covered_bytes);
  }

  support::ByteView block_source(const DeviceMemory& memory,
                                 std::size_t block) const override {
    if (snapshot_.empty()) return memory.block_view(block);
    return support::ByteView(snapshot_.data() + (block - first_block_) * block_size_,
                             block_size_);
  }

  bool snapshots_at_start() const override { return true; }

 private:
  support::Bytes snapshot_;
  std::size_t first_block_ = 0;
  std::size_t block_size_ = 0;
};

}  // namespace

std::string lock_mechanism_name(LockMechanism mechanism) {
  switch (mechanism) {
    case LockMechanism::kNoLock: return "No-Lock";
    case LockMechanism::kAllLock: return "All-Lock";
    case LockMechanism::kAllLockExt: return "All-Lock-Ext";
    case LockMechanism::kDecLock: return "Dec-Lock";
    case LockMechanism::kIncLock: return "Inc-Lock";
    case LockMechanism::kIncLockExt: return "Inc-Lock-Ext";
    case LockMechanism::kCpyLock: return "Cpy-Lock";
  }
  return "?";
}

std::unique_ptr<attest::LockPolicy> make_lock_policy(LockMechanism mechanism,
                                                     sim::Duration release_delay) {
  switch (mechanism) {
    case LockMechanism::kNoLock:
      return std::make_unique<attest::NullLockPolicy>();
    case LockMechanism::kAllLock:
      return std::make_unique<AllLock>(false, 0);
    case LockMechanism::kAllLockExt:
      return std::make_unique<AllLock>(true, release_delay);
    case LockMechanism::kDecLock:
      return std::make_unique<DecLock>();
    case LockMechanism::kIncLock:
      return std::make_unique<IncLock>(false, 0);
    case LockMechanism::kIncLockExt:
      return std::make_unique<IncLock>(true, release_delay);
    case LockMechanism::kCpyLock:
      return std::make_unique<CpyLock>();
  }
  throw std::invalid_argument("unknown LockMechanism");
}

}  // namespace rasc::locking
