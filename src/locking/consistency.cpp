#include "src/locking/consistency.hpp"

#include <algorithm>

namespace rasc::locking {

ConsistencyAnalyzer::ConsistencyAnalyzer(const attest::AttestationResult& result,
                                         const std::vector<sim::WriteRecord>& write_log,
                                         std::size_t first_block)
    : result_(result), log_(write_log), first_block_(first_block) {}

bool ConsistencyAnalyzer::consistent_at(sim::Time t) const {
  for (const auto& rec : log_) {
    if (rec.blocked) continue;  // the MPU rejected it: memory unchanged
    if (rec.block < first_block_) continue;
    const std::size_t rel = rec.block - first_block_;
    if (rel >= result_.visit_times.size()) continue;
    const auto& visit = result_.visit_times[rel];
    if (!visit) continue;
    const sim::Time v = *visit;
    if (t == v) continue;
    // snapshot(t) includes writes <= t; the visit read includes writes
    // <= v.  The two contents differ iff a write lies in (min, max].
    const sim::Time lo = std::min(t, v);
    const sim::Time hi = std::max(t, v);
    if (rec.time > lo && rec.time <= hi) return false;
  }
  return true;
}

ConsistencyVerdict ConsistencyAnalyzer::verdict() const {
  ConsistencyVerdict out;
  out.at_ts = consistent_at(result_.t_s);
  out.at_te = consistent_at(result_.t_e);
  out.at_tr = consistent_at(result_.t_r);

  // Window: intersect, over all covered blocks, the interval between the
  // last effective write at-or-before the visit and the first one after.
  sim::Time begin = 0;
  sim::Time end = std::numeric_limits<sim::Time>::max();
  for (std::size_t rel = 0; rel < result_.visit_times.size(); ++rel) {
    const auto& visit = result_.visit_times[rel];
    if (!visit) continue;
    const sim::Time v = *visit;
    const std::size_t abs_block = first_block_ + rel;
    sim::Time last_before = 0;
    sim::Time first_after = std::numeric_limits<sim::Time>::max();
    for (const auto& rec : log_) {
      if (rec.blocked || rec.block != abs_block) continue;
      if (rec.time <= v) {
        last_before = std::max(last_before, rec.time);
      } else {
        first_after = std::min(first_after, rec.time);
      }
    }
    begin = std::max(begin, last_before);
    // Consistent strictly before the next write; the last consistent
    // instant is first_after - 1 when a later write exists.
    const sim::Time block_end =
        first_after == std::numeric_limits<sim::Time>::max() ? first_after : first_after - 1;
    end = std::min(end, block_end);
  }
  if (begin <= end) {
    out.window = std::make_pair(begin, end);
  }
  return out;
}

}  // namespace rasc::locking
