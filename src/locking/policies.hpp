#pragma once
/// \file policies.hpp
/// The memory-locking mechanisms of Section 3.1, as LockPolicy strategies:
///
///   No-Lock      — nothing locked; no consistency guarantee.
///   All-Lock     — whole region locked t_s..t_e; consistent on [t_s, t_e].
///   All-Lock-Ext — as All-Lock but held until t_r; consistent on [t_s, t_r].
///   Dec-Lock     — all locked at t_s, each block released once measured;
///                  consistent with M at t_s only (detects malware present
///                  at t_s, including transient).
///   Inc-Lock     — blocks locked as they are measured, all released at
///                  t_e; consistent with M at t_e only (detects
///                  self-relocating, not transient).
///   Inc-Lock-Ext — as Inc-Lock but released at t_r; constant on [t_e, t_r].

#include <memory>

#include "src/attest/lock_policy.hpp"

namespace rasc::locking {

enum class LockMechanism {
  kNoLock,
  kAllLock,
  kAllLockExt,
  kDecLock,
  kIncLock,
  kIncLockExt,
  /// Copy-based mechanism from [5]: the covered region is snapshotted at
  /// t_s and F runs over the snapshot while the application keeps writing
  /// live memory.  Full availability and t_s-consistency, at the price of
  /// the copy time and 2x transient memory.
  kCpyLock,
};

inline constexpr LockMechanism kAllLockMechanisms[] = {
    LockMechanism::kNoLock,  LockMechanism::kAllLock, LockMechanism::kAllLockExt,
    LockMechanism::kDecLock, LockMechanism::kIncLock, LockMechanism::kIncLockExt,
    LockMechanism::kCpyLock,
};

std::string lock_mechanism_name(LockMechanism mechanism);

/// Create a policy; `release_delay` is t_r - t_e and only meaningful for
/// the -Ext variants (ignored otherwise).
std::unique_ptr<attest::LockPolicy> make_lock_policy(
    LockMechanism mechanism, sim::Duration release_delay = 0);

}  // namespace rasc::locking
