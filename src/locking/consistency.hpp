#pragma once
/// \file consistency.hpp
/// Temporal-consistency analysis (paper Section 3.1 / Figure 4): given the
/// per-block visit times of a measurement and the memory write log, decide
/// with which instants of real memory state the report is consistent.
///
/// Block-level criterion: the report is consistent with the memory
/// snapshot at time t iff for every covered block b (visited at v_b) no
/// effective (non-blocked) write touched b strictly between t and v_b
/// (whichever order).  A write at exactly time t is part of the snapshot
/// at t, and a write at exactly v_b is part of what the visit read.

#include <limits>
#include <optional>
#include <vector>

#include "src/attest/prover.hpp"
#include "src/sim/memory.hpp"

namespace rasc::locking {

struct ConsistencyVerdict {
  bool at_ts = false;  ///< consistent with M at t_s (Dec/All-Lock property)
  bool at_te = false;  ///< consistent with M at t_e (Inc/All-Lock property)
  bool at_tr = false;  ///< consistent with M at t_r (-Ext property)
  /// The maximal window [begin, end] of instants the report is consistent
  /// with; nullopt when no instant qualifies (inconsistent measurement).
  std::optional<std::pair<sim::Time, sim::Time>> window;
};

class ConsistencyAnalyzer {
 public:
  /// `first_block` anchors the coverage in absolute block indices.
  ConsistencyAnalyzer(const attest::AttestationResult& result,
                      const std::vector<sim::WriteRecord>& write_log,
                      std::size_t first_block);

  /// Is the report consistent with the memory snapshot at time t?
  bool consistent_at(sim::Time t) const;

  /// Full verdict at the three canonical instants plus the window.
  ConsistencyVerdict verdict() const;

 private:
  const attest::AttestationResult& result_;
  const std::vector<sim::WriteRecord>& log_;
  std::size_t first_block_;
};

}  // namespace rasc::locking
