#pragma once
/// \file seed.hpp
/// SeED (paper Section 3.3): secure non-interactive attestation.  The
/// prover initiates attestation at times that are pseudorandom, derived
/// from a seed shared with the verifier, and kept secret from all software
/// on the prover (a dedicated timeout circuit).  Properties modeled here:
///   - replay resistance via a monotonic counter bound into the report;
///   - transient malware cannot predict attestation times (unlike a
///     public periodic schedule);
///   - Vrf knows when to *expect* a report, so a dropped or suppressed
///     response is noticed — at the cost of false positives on lossy
///     links, since the unidirectional protocol has no acknowledgements.

#include <functional>
#include <vector>

#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/sim/network.hpp"

namespace rasc::selfm {

/// Shared schedule computation: attestation k fires at
///   k*epoch + PRF(seed, k) mod (epoch - margin)
/// Both sides evaluate it; prover software (and malware) cannot, because
/// the seed sits in the timeout circuit.
sim::Time seed_attestation_time(support::ByteView seed, std::uint64_t index,
                                sim::Duration epoch);

struct SeedConfig {
  support::Bytes shared_seed;
  sim::Duration epoch = 30 * sim::kSecond;     ///< one attestation per epoch
  sim::Duration response_window = sim::kSecond;  ///< Vrf tolerance past the
                                                 ///< expected arrival
  crypto::HashKind hash = crypto::HashKind::kSha256;
  attest::ExecutionMode mode = attest::ExecutionMode::kInterruptible;
  int priority = 5;
  /// Host-side digest cache across epochs (simulated timing unchanged).
  bool use_digest_cache = true;
};

class SeedProver {
 public:
  SeedProver(sim::Device& device, SeedConfig config, sim::Link& to_vrf);

  /// Schedule attestations for all epochs starting before `until`.
  void start(sim::Time until);

  /// Invoked with the report when (and only when) the link delivers it;
  /// the scenario wires this to SeedVerifier::on_report.
  void set_delivery_handler(std::function<void(const attest::Report&)> handler) {
    on_delivered_ = std::move(handler);
  }

  std::uint64_t attestations_sent() const noexcept { return sent_; }
  const std::vector<sim::Time>& measurement_times() const noexcept {
    return measurement_times_;
  }

  attest::AttestationProcess& process() noexcept { return mp_; }

 private:
  void attest_epoch(std::uint64_t index);

  sim::Device& device_;
  SeedConfig config_;
  sim::Link& to_vrf_;
  attest::AttestationProcess mp_;
  std::function<void(const attest::Report&)> on_delivered_;
  std::uint64_t sent_ = 0;
  std::vector<sim::Time> measurement_times_;
};

/// Vrf side: awaits unsolicited reports at the shared pseudorandom times.
class SeedVerifier {
 public:
  struct EpochOutcome {
    std::uint64_t epoch = 0;
    sim::Time expected_at = 0;
    bool received = false;
    bool verified_ok = false;   ///< MAC + digest + counter all good
    bool missing = false;       ///< nothing arrived inside the window
  };

  SeedVerifier(sim::Simulator& sim, attest::Verifier& verifier, SeedConfig config);

  /// Arm expectation windows for all epochs starting before `until`.
  void start(sim::Time until);

  /// Wire as the delivery handler of the prover->verifier link.  A report
  /// for an epoch that already received one (a link-duplicated or replayed
  /// copy) or for an out-of-range epoch is discarded and counted — the
  /// unidirectional protocol's only replay defense is the epoch binding.
  void on_report(const attest::Report& report);

  const std::vector<EpochOutcome>& outcomes() const noexcept { return outcomes_; }
  std::size_t false_alarms() const noexcept;   ///< missing epochs
  std::size_t detections() const noexcept;     ///< bad reports received
  /// Duplicate or out-of-range reports discarded without re-judging.
  std::size_t replays_rejected() const noexcept { return replays_rejected_; }

  /// Attach a metrics registry (not owned; nullptr to detach): accounts
  /// "seed.epochs", "seed.reports_received", "seed.missing_epochs",
  /// "seed.bad_reports" and "seed.replays_rejected".
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

 private:
  void close_epoch(std::size_t slot);
  void count(const char* metric) const;

  sim::Simulator& sim_;
  attest::Verifier& verifier_;
  SeedConfig config_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t replays_rejected_ = 0;
  std::vector<EpochOutcome> outcomes_;
};

}  // namespace rasc::selfm
