#pragma once
/// \file qoa.hpp
/// Quality of Attestation (paper Section 3.3, Figure 5): QoA has two
/// components — how often memory is measured (T_M) and how often
/// measurements are verified (T_C).  These helpers analyze a transient
/// infection against a measurement/collection schedule and give the
/// analytic detection probability for the T_M sweep.

#include <optional>
#include <span>
#include <vector>

#include "src/sim/time.hpp"

namespace rasc::selfm {

struct InfectionAnalysis {
  bool detected = false;
  /// First measurement that caught the infection (lands inside [begin, end]).
  std::optional<sim::Time> measured_at;
  /// First collection at-or-after the catching measurement: when Vrf learns.
  std::optional<sim::Time> reported_at;
  /// reported_at - begin, the end-to-end detection latency.
  std::optional<sim::Duration> detection_latency;
};

/// Analyze one transient infection window [begin, end] against the times
/// at which measurements completed and collections were verified.
InfectionAnalysis analyze_infection(std::span<const sim::Time> measurement_times,
                                    std::span<const sim::Time> collection_times,
                                    sim::Time begin, sim::Time end);

/// Analytic detection probability of a transient infection of duration
/// `dwell` against period-T_M measurements with a uniformly random phase:
/// min(1, dwell / T_M).
double analytic_detection_probability(sim::Duration t_m, sim::Duration dwell);

/// Worst-case time from infection start to Vrf awareness for an infection
/// that IS detected: one full measurement period plus one collection
/// period (measurement just missed, then wait for the next collection).
sim::Duration worst_case_detection_latency(sim::Duration t_m, sim::Duration t_c);

// -- QoA planning (inverting the Figure 5 relationships) ---------------------

/// Largest T_M that detects a transient infection of duration `dwell`
/// with at least `target_probability` (0 < p <= 1):  T_M <= dwell / p.
sim::Duration recommended_t_m(sim::Duration dwell, double target_probability);

/// Largest T_C honoring a worst-case detection-latency budget for a given
/// T_M:  T_C <= budget - T_M.  Throws std::invalid_argument if the budget
/// cannot be met even with continuous collection.
sim::Duration recommended_t_c(sim::Duration latency_budget, sim::Duration t_m);

}  // namespace rasc::selfm
