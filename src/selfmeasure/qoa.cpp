#include "src/selfmeasure/qoa.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasc::selfm {

InfectionAnalysis analyze_infection(std::span<const sim::Time> measurement_times,
                                    std::span<const sim::Time> collection_times,
                                    sim::Time begin, sim::Time end) {
  InfectionAnalysis out;
  for (const sim::Time m : measurement_times) {
    if (m >= begin && m <= end) {
      out.detected = true;
      out.measured_at = m;
      break;
    }
  }
  if (!out.detected || !out.measured_at) return out;
  for (const sim::Time c : collection_times) {
    if (c >= *out.measured_at) {
      out.reported_at = c;
      out.detection_latency = c - begin;
      break;
    }
  }
  return out;
}

double analytic_detection_probability(sim::Duration t_m, sim::Duration dwell) {
  if (t_m == 0) return 1.0;
  return std::min(1.0, static_cast<double>(dwell) / static_cast<double>(t_m));
}

sim::Duration worst_case_detection_latency(sim::Duration t_m, sim::Duration t_c) {
  return t_m + t_c;
}

sim::Duration recommended_t_m(sim::Duration dwell, double target_probability) {
  if (target_probability <= 0.0 || target_probability > 1.0) {
    throw std::invalid_argument("target probability must be in (0, 1]");
  }
  return static_cast<sim::Duration>(static_cast<double>(dwell) / target_probability);
}

sim::Duration recommended_t_c(sim::Duration latency_budget, sim::Duration t_m) {
  if (latency_budget <= t_m) {
    throw std::invalid_argument("latency budget must exceed T_M");
  }
  return latency_budget - t_m;
}

}  // namespace rasc::selfm
