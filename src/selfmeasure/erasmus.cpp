#include "src/selfmeasure/erasmus.hpp"

namespace rasc::selfm {

namespace {
attest::ProverConfig to_prover_config(const ErasmusConfig& config) {
  attest::ProverConfig out;
  out.hash = config.hash;
  out.mode = config.mode;
  out.order = config.order;
  out.priority = config.priority;
  out.use_digest_cache = config.use_digest_cache;
  return out;
}
}  // namespace

ErasmusProver::ErasmusProver(sim::Device& device, ErasmusConfig config,
                             attest::LockPolicy* policy)
    : device_(device), config_(config), mp_(device, to_prover_config(config), policy) {}

void ErasmusProver::start(sim::Time until) {
  until_ = until;
  auto& sim = device_.sim();
  for (sim::Time t = sim.now(); t < until; t += config_.period) {
    sim.schedule_at(t, [this] { tick(); });
  }
}

void ErasmusProver::tick() {
  auto* sink = device_.sim().trace_sink();
  if (mp_.busy()) {
    ++deferrals_;  // previous measurement overran its slot
    if (sink != nullptr) {
      sink->instant(device_.sim().now(), "erasmus", "erasmus.deferral",
                    {obs::arg("cause", std::string("mp-busy"))});
    }
    return;
  }
  if (config_.context_aware && device_.cpu().busy()) {
    // Give way to the application: retry shortly instead of contending.
    ++deferrals_;
    if (sink != nullptr) {
      sink->instant(device_.sim().now(), "erasmus", "erasmus.deferral",
                    {obs::arg("cause", std::string("cpu-busy"))});
    }
    device_.sim().schedule_in(10 * sim::kMillisecond, [this] {
      if (device_.sim().now() < until_) tick();
    });
    return;
  }
  attest::MeasurementContext context{device_.id(), {}, ++counter_};
  mp_.start(std::move(context),
            [this](attest::AttestationResult result) { store(std::move(result.report)); });
}

void ErasmusProver::measure_on_demand(support::Bytes challenge,
                                      std::function<void(attest::Report)> done) {
  attest::MeasurementContext context{device_.id(), std::move(challenge), ++counter_};
  mp_.start(std::move(context),
            [this, done = std::move(done)](attest::AttestationResult result) {
              store(result.report);
              done(std::move(result.report));
            });
}

void ErasmusProver::store(attest::Report report) {
  measurement_times_.push_back(report.t_end);
  if (auto* sink = device_.sim().trace_sink()) {
    sink->instant(device_.sim().now(), "erasmus", "erasmus.stored",
                  {obs::arg("counter", report.counter),
                   obs::arg("history", static_cast<std::uint64_t>(history_.size() + 1))});
  }
  history_.push_back(std::move(report));
  if (history_.size() > config_.history_capacity) history_.pop_front();
}

Collector::Collector(attest::Verifier& verifier, ErasmusProver& prover, sim::Link& to_prv,
                     sim::Link& to_vrf, sim::Duration period)
    : verifier_(verifier), prover_(prover), to_prv_(to_prv), to_vrf_(to_vrf),
      period_(period) {}

void Collector::start(sim::Time until) {
  // First collection one period in, so measurements can accumulate.
  auto& sim_ref = prover_.simulator();
  for (sim::Time t = period_; t < until; t += period_) {
    sim_ref.schedule_at(t, [this] {
      to_prv_.send({}, [this](support::Bytes) { collect(); });
    });
  }
}

void Collector::collect() {
  // Snapshot the history and ship it back; payload size approximates the
  // real serialized size.
  auto reports = std::make_shared<std::vector<attest::Report>>(
      prover_.history().begin(), prover_.history().end());
  support::Bytes payload;
  for (const auto& r : *reports) {
    support::append(payload, r.serialize_body());
    support::append(payload, r.mac);
  }
  to_vrf_.send(std::move(payload), [this, reports](support::Bytes) {
    CollectionRecord record;
    record.at = prover_.simulator().now();
    for (const auto& report : *reports) {
      if (report.counter <= seen_up_to_) continue;
      seen_up_to_ = report.counter;
      ++record.reports_seen;
      const auto outcome = verifier_.verify(report, /*expect_challenge=*/false);
      if (!outcome.ok()) {
        ++record.reports_bad;
        record.detected = true;
        detection_times_.push_back(record.at);
      }
    }
    records_.push_back(record);
  });
}

}  // namespace rasc::selfm
