#include "src/selfmeasure/seed.hpp"

#include <algorithm>

#include "src/crypto/drbg.hpp"

namespace rasc::selfm {

sim::Time seed_attestation_time(support::ByteView seed, std::uint64_t index,
                                sim::Duration epoch) {
  support::Bytes material(seed.begin(), seed.end());
  support::append(material, support::to_bytes("seed-schedule"));
  support::append_u64_be(material, index);
  crypto::HmacDrbg drbg(material);
  // Leave a tail margin so the measurement itself fits inside the epoch.
  const sim::Duration margin = epoch / 8;
  const sim::Duration offset = drbg.below(epoch - margin);
  return index * epoch + offset;
}

SeedProver::SeedProver(sim::Device& device, SeedConfig config, sim::Link& to_vrf)
    : device_(device),
      config_(std::move(config)),
      to_vrf_(to_vrf),
      mp_(device,
          [this] {
            attest::ProverConfig pc;
            pc.hash = config_.hash;
            pc.mode = config_.mode;
            pc.priority = config_.priority;
            pc.use_digest_cache = config_.use_digest_cache;
            return pc;
          }()) {}

void SeedProver::start(sim::Time until) {
  auto& sim = device_.sim();
  for (std::uint64_t k = 0;; ++k) {
    const sim::Time t = seed_attestation_time(config_.shared_seed, k, config_.epoch);
    if (t >= until) break;
    sim.schedule_at(t, [this, k] { attest_epoch(k); });
  }
}

void SeedProver::attest_epoch(std::uint64_t index) {
  if (mp_.busy()) return;  // previous epoch's measurement overran
  if (auto* sink = device_.sim().trace_sink()) {
    sink->instant(device_.sim().now(), "seed", "seed.epoch_start",
                  {obs::arg("epoch", index)});
  }
  // Counter = epoch index + 1 binds the report to its slot (replay of an
  // older report carries a stale counter and fails verification).
  attest::MeasurementContext context{device_.id(), {}, index + 1};
  mp_.start(std::move(context), [this](attest::AttestationResult result) {
    measurement_times_.push_back(result.t_e);
    ++sent_;
    if (auto* sink = device_.sim().trace_sink()) {
      sink->instant(device_.sim().now(), "seed", "seed.report_sent",
                    {obs::arg("counter", result.report.counter)});
    }
    auto report = std::make_shared<attest::Report>(std::move(result.report));
    support::Bytes payload = report->serialize_body();
    support::append(payload, report->mac);
    to_vrf_.send(std::move(payload), [this, report](support::Bytes) {
      if (on_delivered_) on_delivered_(*report);
    });
  });
}

SeedVerifier::SeedVerifier(sim::Simulator& sim, attest::Verifier& verifier,
                           SeedConfig config)
    : sim_(sim), verifier_(verifier), config_(std::move(config)) {}

void SeedVerifier::start(sim::Time until) {
  for (std::uint64_t k = 0;; ++k) {
    const sim::Time expected = seed_attestation_time(config_.shared_seed, k, config_.epoch);
    if (expected >= until) break;
    EpochOutcome outcome;
    outcome.epoch = k;
    outcome.expected_at = expected;
    outcomes_.push_back(outcome);
    const std::size_t slot = outcomes_.size() - 1;
    // Expectation window: measurement duration + network are folded into
    // response_window; anything later counts as missing.
    sim_.schedule_at(expected + config_.response_window,
                     [this, slot] { close_epoch(slot); });
  }
}

void SeedVerifier::count(const char* metric) const {
  if (metrics_ != nullptr) metrics_->counter(metric).inc();
}

void SeedVerifier::on_report(const attest::Report& report) {
  if (report.counter == 0 || report.counter > outcomes_.size()) {
    ++replays_rejected_;
    count("seed.replays_rejected");
    return;
  }
  EpochOutcome& outcome = outcomes_[report.counter - 1];
  if (outcome.received) {  // duplicate/replay within the same epoch
    ++replays_rejected_;
    count("seed.replays_rejected");
    if (auto* sink = sim_.trace_sink()) {
      sink->instant(sim_.now(), "seed", "seed.replay_rejected",
                    {obs::arg("epoch", outcome.epoch)});
    }
    return;
  }
  outcome.received = true;
  count("seed.reports_received");
  const auto verdict = verifier_.verify(report, /*expect_challenge=*/false);
  outcome.verified_ok = verdict.ok();
  if (!outcome.verified_ok) {
    count("seed.bad_reports");
    if (auto* sink = sim_.trace_sink()) {
      sink->instant(sim_.now(), "seed", "seed.bad_report",
                    {obs::arg("epoch", outcome.epoch)});
    }
  }
}

void SeedVerifier::close_epoch(std::size_t slot) {
  EpochOutcome& outcome = outcomes_[slot];
  count("seed.epochs");
  if (!outcome.received) {
    outcome.missing = true;
    count("seed.missing_epochs");
    if (auto* sink = sim_.trace_sink()) {
      sink->instant(sim_.now(), "seed", "seed.missing_epoch",
                    {obs::arg("epoch", outcome.epoch)});
    }
  }
}

std::size_t SeedVerifier::false_alarms() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(outcomes_.begin(), outcomes_.end(),
                    [](const EpochOutcome& o) { return o.missing; }));
}

std::size_t SeedVerifier::detections() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(outcomes_.begin(), outcomes_.end(), [](const EpochOutcome& o) {
        return o.received && !o.verified_ok;
      }));
}

}  // namespace rasc::selfm
