#pragma once
/// \file erasmus.hpp
/// ERASMUS (paper Section 3.3): the prover performs recurrent
/// self-initiated measurements on a schedule T_M and stores them locally;
/// the verifier occasionally collects and verifies the stored history on a
/// schedule T_C.  Decoupling T_M from T_C is the QoA insight of Figure 5:
/// the window of opportunity for transient malware is T_M, independent of
/// how often the verifier shows up.

#include <deque>
#include <vector>

#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/sim/network.hpp"

namespace rasc::selfm {

struct ErasmusConfig {
  sim::Duration period = 10 * sim::kSecond;  ///< T_M
  std::size_t history_capacity = 64;         ///< measurement ring buffer
  crypto::HashKind hash = crypto::HashKind::kSha256;
  attest::ExecutionMode mode = attest::ExecutionMode::kInterruptible;
  attest::TraversalOrder order = attest::TraversalOrder::kSequential;
  int priority = 5;  ///< below the critical application
  /// Context awareness (paper compromise (2)): defer a due measurement
  /// while the CPU is busy with the application instead of contending.
  bool context_aware = false;
  /// Host-side digest cache across recurrent rounds: round k+1 only
  /// rehashes blocks written since round k (simulated timing unchanged).
  bool use_digest_cache = true;
};

class ErasmusProver {
 public:
  ErasmusProver(sim::Device& device, ErasmusConfig config,
                attest::LockPolicy* policy = nullptr);

  /// Schedule self-measurements at t0 + k*T_M for all k with time < until.
  void start(sim::Time until);

  /// Also measure right now on Vrf's request (ERASMUS coupled with
  /// on-demand attestation); `done` receives the fresh report.
  void measure_on_demand(support::Bytes challenge,
                         std::function<void(attest::Report)> done);

  /// Stored history, oldest first.
  const std::deque<attest::Report>& history() const noexcept { return history_; }

  /// Times at which measurements completed (for QoA analysis).
  const std::vector<sim::Time>& measurement_times() const noexcept {
    return measurement_times_;
  }

  std::uint64_t measurements_taken() const noexcept { return counter_; }
  std::size_t deferrals() const noexcept { return deferrals_; }

  attest::AttestationProcess& process() noexcept { return mp_; }
  sim::Simulator& simulator() noexcept { return device_.sim(); }

 private:
  void tick();
  void store(attest::Report report);

  sim::Device& device_;
  ErasmusConfig config_;
  attest::AttestationProcess mp_;
  std::deque<attest::Report> history_;
  std::vector<sim::Time> measurement_times_;
  std::uint64_t counter_ = 0;
  std::size_t deferrals_ = 0;
  sim::Time until_ = 0;
};

/// Vrf-side collector: every T_C it pulls the prover's stored history over
/// the link and verifies every previously-unseen report.
class Collector {
 public:
  struct CollectionRecord {
    sim::Time at = 0;               ///< when verification finished
    std::size_t reports_seen = 0;   ///< new reports in this collection
    std::size_t reports_bad = 0;    ///< failed verification
    bool detected = false;
  };

  Collector(attest::Verifier& verifier, ErasmusProver& prover, sim::Link& to_prv,
            sim::Link& to_vrf, sim::Duration period);

  /// Schedule collections every T_C until `until`.
  void start(sim::Time until);

  const std::vector<CollectionRecord>& records() const noexcept { return records_; }
  /// Times when a bad report was first seen by Vrf (detection latency).
  const std::vector<sim::Time>& detection_times() const noexcept {
    return detection_times_;
  }

 private:
  void collect();

  attest::Verifier& verifier_;
  ErasmusProver& prover_;
  sim::Link& to_prv_;
  sim::Link& to_vrf_;
  sim::Duration period_;
  std::uint64_t seen_up_to_ = 0;  ///< highest report counter verified
  std::vector<CollectionRecord> records_;
  std::vector<sim::Time> detection_times_;
};

}  // namespace rasc::selfm
