#include "src/crypto/hash.hpp"

#include <stdexcept>

#include "src/crypto/blake2b.hpp"
#include "src/crypto/blake2s.hpp"
#include "src/crypto/sha256.hpp"
#include "src/crypto/sha512.hpp"

namespace rasc::crypto {

void Hash::finalize_into(support::MutableByteView out) {
  const auto digest = finalize();
  if (out.size() < digest.size()) {
    throw std::invalid_argument("finalize_into: output buffer too small");
  }
  std::copy(digest.begin(), digest.end(), out.begin());
}

std::unique_ptr<Hash> make_hash(HashKind kind) {
  switch (kind) {
    case HashKind::kSha256: return std::make_unique<Sha256>();
    case HashKind::kSha512: return std::make_unique<Sha512>();
    case HashKind::kBlake2b: return std::make_unique<Blake2b>();
    case HashKind::kBlake2s: return std::make_unique<Blake2s>();
  }
  throw std::invalid_argument("unknown HashKind");
}

std::string hash_name(HashKind kind) {
  switch (kind) {
    case HashKind::kSha256: return "SHA-256";
    case HashKind::kSha512: return "SHA-512";
    case HashKind::kBlake2b: return "BLAKE2b";
    case HashKind::kBlake2s: return "BLAKE2s";
  }
  return "?";
}

std::size_t hash_digest_size(HashKind kind) {
  switch (kind) {
    case HashKind::kSha256: return 32;
    case HashKind::kSha512: return 64;
    case HashKind::kBlake2b: return 64;
    case HashKind::kBlake2s: return 32;
  }
  return 0;
}

support::Bytes hash_oneshot(HashKind kind, support::ByteView data) {
  auto h = make_hash(kind);
  h->update(data);
  return h->finalize();
}

void hash_oneshot_into(Hash& hasher, support::ByteView data,
                       support::MutableByteView out) {
  hasher.reset();
  hasher.update(data);
  hasher.finalize_into(out);
}

}  // namespace rasc::crypto
