#include "src/crypto/rsa.hpp"

#include <stdexcept>

#include "src/bignum/prime.hpp"

namespace rasc::crypto {

using bn::Bignum;

namespace {

// ASN.1 DigestInfo prefixes for EMSA-PKCS1-v1_5 (RFC 8017 section 9.2).
support::Bytes digest_info_prefix(HashKind hash) {
  switch (hash) {
    case HashKind::kSha256:
      return {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
              0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};
    case HashKind::kSha512:
      return {0x30, 0x51, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
              0x65, 0x03, 0x04, 0x02, 0x03, 0x05, 0x00, 0x04, 0x40};
    default:
      throw std::invalid_argument("RSA PKCS#1 v1.5: unsupported hash kind");
  }
}

support::Bytes emsa_pkcs1_v15_encode(HashKind hash, support::ByteView digest,
                                     std::size_t em_len) {
  const auto prefix = digest_info_prefix(hash);
  if (digest.size() != hash_digest_size(hash)) {
    throw std::invalid_argument("digest length does not match hash kind");
  }
  const std::size_t t_len = prefix.size() + digest.size();
  if (em_len < t_len + 11) throw std::invalid_argument("RSA modulus too small for hash");
  support::Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t_len - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), prefix.begin(), prefix.end());
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

}  // namespace

RsaKeyPair rsa_generate_key(std::size_t bits, HmacDrbg& drbg) {
  if (bits < 128 || bits % 2 != 0) {
    throw std::invalid_argument("RSA modulus bits must be even and >= 128");
  }
  const Bignum e{65537};
  auto source = drbg.byte_source();
  for (;;) {
    const Bignum p = bn::generate_prime(bits / 2, source);
    Bignum q = bn::generate_prime(bits / 2, source);
    if (p == q) continue;
    const Bignum n = p * q;
    if (n.bit_length() != bits) continue;  // top-two-bits trick makes this rare
    const Bignum p1 = p - Bignum{1};
    const Bignum q1 = q - Bignum{1};
    const Bignum phi = p1 * q1;
    if (!Bignum::gcd(e, phi).is_one()) continue;
    const Bignum d = Bignum::mod_inv(e, phi);

    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = d;
    // Keep p > q so q_inv = q^-1 mod p is well-defined.
    if (p > q) {
      priv.p = p;
      priv.q = q;
    } else {
      priv.p = q;
      priv.q = p;
    }
    priv.d_p = d % (priv.p - Bignum{1});
    priv.d_q = d % (priv.q - Bignum{1});
    priv.q_inv = Bignum::mod_inv(priv.q, priv.p);
    return RsaKeyPair{priv, priv.public_key()};
  }
}

Bignum rsa_private_op(const RsaPrivateKey& key, const Bignum& m) {
  if (m >= key.n) throw std::invalid_argument("RSA input out of range");
  // Garner's CRT recombination.
  const Bignum m1 = Bignum::mod_exp(m % key.p, key.d_p, key.p);
  const Bignum m2 = Bignum::mod_exp(m % key.q, key.d_q, key.q);
  const Bignum h = Bignum::mod_mul(key.q_inv, Bignum::mod_sub(m1, m2 % key.p, key.p), key.p);
  return m2 + key.q * h;
}

support::Bytes rsa_sign_digest(const RsaPrivateKey& key, HashKind hash,
                               support::ByteView digest) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const auto em = emsa_pkcs1_v15_encode(hash, digest, k);
  const Bignum s = rsa_private_op(key, Bignum::from_bytes_be(em));
  return s.to_bytes_be(k);
}

bool rsa_verify_digest(const RsaPublicKey& key, HashKind hash, support::ByteView digest,
                       support::ByteView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const Bignum s = Bignum::from_bytes_be(signature);
  if (s >= key.n) return false;
  const Bignum m = Bignum::mod_exp(s, key.e, key.n);
  support::Bytes em;
  try {
    em = emsa_pkcs1_v15_encode(hash, digest, k);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return support::ct_equal(m.to_bytes_be(k), em);
}

support::Bytes rsa_sign_message(const RsaPrivateKey& key, HashKind hash,
                                support::ByteView message) {
  return rsa_sign_digest(key, hash, hash_oneshot(hash, message));
}

bool rsa_verify_message(const RsaPublicKey& key, HashKind hash, support::ByteView message,
                        support::ByteView signature) {
  return rsa_verify_digest(key, hash, hash_oneshot(hash, message), signature);
}

}  // namespace rasc::crypto
