#pragma once
/// \file lanes_avx2.hpp
/// Private interface to the AVX2 8-lane translation unit (lanes_avx2.cpp,
/// compiled with -mavx2 when the toolchain supports it).  Only included by
/// lanes.cpp, and only when CMake defines RASC_CRYPTO_HAVE_AVX2; callers
/// must gate every entry point on avx2_runtime().

#include <cstddef>

#include "src/support/bytes.hpp"

namespace rasc::crypto::lane_detail {

/// True when the executing CPU reports AVX2 via CPUID.
bool avx2_runtime() noexcept;

void sha256_lanes8_avx2(const support::ByteView* msgs,
                        const support::MutableByteView* outs, std::size_t count);

void blake2s_lanes8_avx2(const support::ByteView* msgs,
                         const support::MutableByteView* outs, std::size_t count);

}  // namespace rasc::crypto::lane_detail
