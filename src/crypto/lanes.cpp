#include "src/crypto/lanes.hpp"

#include <cstring>
#include <stdexcept>

#define RASC_LANES_NS lanes_base
#include "src/crypto/lanes_kernels.hpp"

#if defined(RASC_CRYPTO_HAVE_AVX2)
#include "src/crypto/lanes_avx2.hpp"
#endif

// GNU vector extensions back the kSimd lane types; they need no ISA flags
// (the compiler lowers vector_size(16) to the baseline SIMD of the target,
// e.g. SSE2 on x86-64, and vector_size(32) to a pair of such ops unless the
// AVX2 TU takes over).
#if defined(RASC_CRYPTO_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define RASC_LANES_VEC 1
#endif

namespace rasc::crypto {

namespace lane_detail {

// Scalar lane finishers.  Deliberately compiled in this baseline TU only:
// the AVX2 TU calls back into these for divergent-length tails, so tails
// never execute AVX2 instructions.
void sha256_finish_scalar(std::uint32_t state[8], const std::uint8_t* p,
                          std::size_t rem, std::size_t total, std::uint8_t* out32) {
  while (rem >= 64) {
    detail::sha256_compress(state, p);
    p += 64;
    rem -= 64;
  }
  std::uint8_t tail[128];
  const std::size_t tail_blocks = rem < 56 ? 1 : 2;
  std::memset(tail, 0, tail_blocks * 64);
  std::memcpy(tail, p, rem);
  tail[rem] = 0x80;
  const std::uint64_t bits = static_cast<std::uint64_t>(total) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_blocks * 64 - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  for (std::size_t b = 0; b < tail_blocks; ++b) detail::sha256_compress(state, tail + 64 * b);
  for (int i = 0; i < 8; ++i) {
    support::put_u32_be(support::MutableByteView(out32 + 4 * i, 4), state[i]);
  }
}

void blake2s_finish_scalar(std::uint32_t h[8], const std::uint8_t* p, std::size_t rem,
                           std::size_t total, std::uint8_t* out32) {
  std::uint64_t t = static_cast<std::uint64_t>(total) - rem;
  while (rem > 64) {
    t += 64;
    detail::blake2s_compress(h, p, t, /*last=*/false);
    p += 64;
    rem -= 64;
  }
  std::uint8_t tail[64] = {};
  std::memcpy(tail, p, rem);
  detail::blake2s_compress(h, tail, total, /*last=*/true);
  for (int i = 0; i < 8; ++i) {
    support::put_u32_le(support::MutableByteView(out32 + 4 * i, 4), h[i]);
  }
}

}  // namespace lane_detail

namespace {

#if defined(RASC_LANES_VEC)
typedef std::uint32_t vu32x4 __attribute__((vector_size(16)));
typedef std::uint32_t vu32x8 __attribute__((vector_size(32)));
#endif

LaneBackend resolve_backend(LaneBackend backend) noexcept {
  if (backend == LaneBackend::kPortable) return LaneBackend::kPortable;
  return simd_compiled() ? LaneBackend::kSimd : LaneBackend::kPortable;
}

/// Run one pack of `count` (<= N) messages through the N-lane kernel for
/// the resolved backend.  `kind` must be a lanes_supported() kind.
template <std::size_t N>
void run_lanes(HashKind kind, LaneBackend resolved, const support::ByteView* msgs,
               const support::MutableByteView* outs, std::size_t count) {
  const bool sha = kind == HashKind::kSha256;
#if defined(RASC_LANES_VEC)
  if (resolved == LaneBackend::kSimd) {
    if constexpr (N == 8) {
#if defined(RASC_CRYPTO_HAVE_AVX2)
      if (lane_detail::avx2_runtime()) {
        if (sha) {
          lane_detail::sha256_lanes8_avx2(msgs, outs, count);
        } else {
          lane_detail::blake2s_lanes8_avx2(msgs, outs, count);
        }
        return;
      }
#endif
      if (sha) {
        lanes_base::sha256_digest_lanes<vu32x8>(msgs, outs, count);
      } else {
        lanes_base::blake2s_digest_lanes<vu32x8>(msgs, outs, count);
      }
      return;
    } else if constexpr (N == 4) {
      if (sha) {
        lanes_base::sha256_digest_lanes<vu32x4>(msgs, outs, count);
      } else {
        lanes_base::blake2s_digest_lanes<vu32x4>(msgs, outs, count);
      }
      return;
    }
    // N == 2: narrower than any SIMD kernel; fall through to portable.
  }
#endif
  if (sha) {
    lanes_base::sha256_digest_lanes<lanes_base::U32xN<N>>(msgs, outs, count);
  } else {
    lanes_base::blake2s_digest_lanes<lanes_base::U32xN<N>>(msgs, outs, count);
  }
}

void check_outs(HashKind kind, std::span<const support::ByteView> msgs,
                std::span<const support::MutableByteView> outs) {
  if (msgs.size() != outs.size()) {
    throw std::invalid_argument("lane digest: msgs/outs size mismatch");
  }
  const std::size_t want = hash_digest_size(kind);
  for (const auto& out : outs) {
    if (out.size() != want) {
      throw std::invalid_argument("lane digest: output view must be digest_size bytes");
    }
  }
}

}  // namespace

bool lanes_supported(HashKind kind) noexcept {
  return kind == HashKind::kSha256 || kind == HashKind::kBlake2s;
}

bool simd_compiled() noexcept {
#if defined(RASC_LANES_VEC)
  return true;
#else
  return false;
#endif
}

bool avx2_active() noexcept {
#if defined(RASC_CRYPTO_HAVE_AVX2)
  return lane_detail::avx2_runtime();
#else
  return false;
#endif
}

std::size_t preferred_lanes(LaneBackend backend) noexcept {
  // Portable packs 8-wide: the wider interleave both SLP-vectorizes better
  // and hides more of the dependency chain (measured on GCC 12 -O2, where
  // U32xN<8> BLAKE2s runs ~3.5x faster than U32xN<4>).  SIMD packs 8 only
  // when the AVX2 kernels can actually run; baseline vector codegen is
  // 128-bit, where 4 lanes avoid doubled register pressure.
  if (resolve_backend(backend) == LaneBackend::kSimd) return avx2_active() ? 8 : 4;
  return 8;
}

const char* lane_backend_name(LaneBackend backend) noexcept {
  if (resolve_backend(backend) == LaneBackend::kSimd) {
    return avx2_active() ? "avx2" : "simd";
  }
  return "portable";
}

template <std::size_t N>
LaneHasher<N>::LaneHasher(HashKind kind, LaneBackend backend)
    : kind_(kind), backend_(resolve_backend(backend)), digest_size_(hash_digest_size(kind)) {
  if (!lanes_supported(kind)) {
    throw std::invalid_argument("LaneHasher: no lane kernel for " + hash_name(kind));
  }
}

template <std::size_t N>
void LaneHasher<N>::digest(std::span<const support::ByteView> msgs,
                           std::span<const support::MutableByteView> outs) const {
  if (msgs.size() > N) {
    throw std::invalid_argument("LaneHasher: more messages than lanes");
  }
  check_outs(kind_, msgs, outs);
  if (msgs.empty()) return;
  run_lanes<N>(kind_, backend_, msgs.data(), outs.data(), msgs.size());
}

template class LaneHasher<2>;
template class LaneHasher<4>;
template class LaneHasher<8>;

void digest_many(HashKind kind, std::span<const support::ByteView> msgs,
                 std::span<const support::MutableByteView> outs, LaneBackend backend) {
  if (msgs.size() != outs.size()) {
    throw std::invalid_argument("digest_many: msgs/outs size mismatch");
  }
  if (!lanes_supported(kind)) {
    auto hasher = make_hash(kind);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      hash_oneshot_into(*hasher, msgs[i], outs[i]);
    }
    return;
  }
  check_outs(kind, msgs, outs);

  const LaneBackend resolved = resolve_backend(backend);
  const std::size_t width = preferred_lanes(resolved);
  std::size_t i = 0;
  const std::size_t n = msgs.size();
  while (n - i >= 2) {
    const std::size_t chunk = n - i < width ? n - i : width;
    if (chunk > 4) {
      run_lanes<8>(kind, resolved, msgs.data() + i, outs.data() + i, chunk);
    } else {
      run_lanes<4>(kind, resolved, msgs.data() + i, outs.data() + i, chunk);
    }
    i += chunk;
  }
  if (i < n) {
    // Single trailing message: the scalar path beats a mostly-idle pack.
    auto hasher = make_hash(kind);
    hash_oneshot_into(*hasher, msgs[i], outs[i]);
  }
}

}  // namespace rasc::crypto
