#pragma once
/// \file ecdsa.hpp
/// ECDSA (X9.62 / FIPS 186-4) over the library's EC curves, with
/// deterministic nonces in the style of RFC 6979 (HMAC-DRBG keyed by the
/// private key and message digest) so signing needs no external RNG.

#include <optional>

#include "src/crypto/drbg.hpp"
#include "src/crypto/ec.hpp"
#include "src/crypto/hash.hpp"

namespace rasc::crypto {

struct EcdsaSignature {
  bn::Bignum r;
  bn::Bignum s;
};

struct EcdsaKeyPair {
  CurveId curve;
  bn::Bignum private_key;  // d in [1, n-1]
  EcPoint public_key;      // Q = d*G
};

/// Generate a key pair using the supplied DRBG.
EcdsaKeyPair ecdsa_generate_key(CurveId curve, HmacDrbg& drbg);

/// Sign a message digest (any length; truncated/interpreted per X9.62).
EcdsaSignature ecdsa_sign(const EcdsaKeyPair& key, support::ByteView digest);

/// Verify a signature over a digest with the public key.
bool ecdsa_verify(CurveId curve, const EcPoint& public_key, support::ByteView digest,
                  const EcdsaSignature& sig);

/// Hash-and-sign convenience (the paper's standard signature measurement).
EcdsaSignature ecdsa_sign_message(const EcdsaKeyPair& key, HashKind hash,
                                  support::ByteView message);
bool ecdsa_verify_message(CurveId curve, const EcPoint& public_key, HashKind hash,
                          support::ByteView message, const EcdsaSignature& sig);

}  // namespace rasc::crypto
