#pragma once
/// \file blake2b.hpp
/// BLAKE2b (RFC 7693) with 512-bit digest; optionally keyed.  The paper
/// singles out BLAKE2b/BLAKE2s as "well suited for embedded systems".

#include <array>
#include <cstdint>

#include "src/crypto/hash.hpp"

namespace rasc::crypto {

class Blake2b final : public Hash {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;
  static constexpr std::size_t kMaxKeySize = 64;

  /// Unkeyed 512-bit BLAKE2b.
  Blake2b() { reset(); }

  /// Keyed BLAKE2b (prefix-MAC mode per RFC 7693); key <= 64 bytes,
  /// otherwise throws std::invalid_argument.
  explicit Blake2b(support::ByteView key);

  void update(support::ByteView data) override;
  support::Bytes finalize() override;
  void finalize_into(support::MutableByteView out) override;
  std::size_t digest_size() const noexcept override { return kDigestSize; }
  std::size_t block_size() const noexcept override { return kBlockSize; }
  std::unique_ptr<Hash> clone() const override { return std::make_unique<Blake2b>(*this); }
  void reset() override;

 private:
  void init(std::size_t key_len);
  void compress(bool last);

  std::array<std::uint64_t, 8> h_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t t0_ = 0;  // low word of the byte counter
  std::uint64_t t1_ = 0;  // high word of the byte counter
  support::Bytes key_;    // retained so reset() restores keyed state
};

}  // namespace rasc::crypto
