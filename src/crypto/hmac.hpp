#pragma once
/// \file hmac.hpp
/// HMAC (RFC 2104 / FIPS 198-1) over any library hash.  This is the
/// integrity-ensuring function F the paper's measurement process uses for
/// hash-based MACs (e.g. HMAC-SHA-2).

#include <memory>

#include "src/crypto/hash.hpp"

namespace rasc::crypto {

/// Streaming HMAC; clone()-able so interruptible measurements can
/// checkpoint MAC state mid-stream.
class Hmac {
 public:
  Hmac(HashKind kind, support::ByteView key);
  Hmac(const Hmac& other);
  Hmac& operator=(const Hmac& other);
  Hmac(Hmac&&) noexcept = default;
  Hmac& operator=(Hmac&&) noexcept = default;

  void update(support::ByteView data);

  /// Produce the tag and reset to the keyed initial state.
  support::Bytes finalize();

  /// Allocation-free finalize: write the tag into `out` (>= tag_size()
  /// bytes) and reset to the keyed initial state.
  void finalize_into(support::MutableByteView out);

  /// Discard any partial stream and return to the keyed initial state
  /// (reuse across messages without re-deriving the pads).
  void reset();

  std::size_t tag_size() const noexcept { return inner_->digest_size(); }
  HashKind kind() const noexcept { return kind_; }

  /// Allocation-free one-shot reusing this instance's keyed state: tag
  /// `message` into `out` (>= tag_size() bytes) and return to the keyed
  /// initial state.  The reusable counterpart of the static compute().
  void compute_into(support::ByteView message, support::MutableByteView out);

  /// One-shot convenience (allocates; hot paths hold an Hmac and use
  /// compute_into instead).
  static support::Bytes compute(HashKind kind, support::ByteView key,
                                support::ByteView message);

  /// Constant-time verification of a tag.
  static bool verify(HashKind kind, support::ByteView key, support::ByteView message,
                     support::ByteView tag);

 private:
  void rekey(support::ByteView key);

  HashKind kind_;
  std::unique_ptr<Hash> inner_;
  std::unique_ptr<Hash> outer_;
  support::Bytes ipad_key_;  // key xor ipad, block-sized
  support::Bytes opad_key_;  // key xor opad, block-sized
};

}  // namespace rasc::crypto
