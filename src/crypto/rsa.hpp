#pragma once
/// \file rsa.hpp
/// RSA with PKCS#1 v1.5 signatures (RFC 8017), CRT-accelerated private-key
/// operations, and deterministic key generation from an HMAC-DRBG seed —
/// the paper benchmarks RSA-1024/2048/4096 hash-and-sign measurements.

#include <optional>

#include "src/bignum/bignum.hpp"
#include "src/crypto/drbg.hpp"
#include "src/crypto/hash.hpp"

namespace rasc::crypto {

struct RsaPublicKey {
  bn::Bignum n;
  bn::Bignum e;
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaPrivateKey {
  bn::Bignum n;
  bn::Bignum e;
  bn::Bignum d;
  // CRT components.
  bn::Bignum p, q;
  bn::Bignum d_p, d_q;  // d mod (p-1), d mod (q-1)
  bn::Bignum q_inv;     // q^-1 mod p

  RsaPublicKey public_key() const { return RsaPublicKey{n, e}; }
};

struct RsaKeyPair {
  RsaPrivateKey priv;
  RsaPublicKey pub;
};

/// Generate an RSA key with modulus of exactly `bits` bits, e = 65537.
/// Deterministic given a deterministic DRBG.
RsaKeyPair rsa_generate_key(std::size_t bits, HmacDrbg& drbg);

/// PKCS#1 v1.5 signature over a pre-computed digest.  The DigestInfo
/// prefix identifies the hash (SHA-256/SHA-512 supported).
/// Throws std::invalid_argument for unsupported hash kinds.
support::Bytes rsa_sign_digest(const RsaPrivateKey& key, HashKind hash,
                               support::ByteView digest);
bool rsa_verify_digest(const RsaPublicKey& key, HashKind hash, support::ByteView digest,
                       support::ByteView signature);

/// Hash-and-sign convenience.
support::Bytes rsa_sign_message(const RsaPrivateKey& key, HashKind hash,
                                support::ByteView message);
bool rsa_verify_message(const RsaPublicKey& key, HashKind hash, support::ByteView message,
                        support::ByteView signature);

/// Raw RSA private-key operation m^d mod n using the CRT (exposed for
/// tests and benchmarks).
bn::Bignum rsa_private_op(const RsaPrivateKey& key, const bn::Bignum& m);

}  // namespace rasc::crypto
