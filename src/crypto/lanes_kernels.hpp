#pragma once
/// \file lanes_kernels.hpp
/// Lockstep lane kernels, templated over a vector-of-uint32 type V.  V only
/// needs element subscripting and element-wise `+ ^ & | ~ << >>`; both the
/// portable `U32xN` struct and GNU vector-extension types qualify, so one
/// kernel body serves every backend.
///
/// ODR note: this header is included by translation units compiled with
/// different ISA flags (lanes.cpp at baseline, lanes_avx2.cpp with -mavx2).
/// Everything here lives in a per-TU namespace chosen via RASC_LANES_NS so
/// the linker can never substitute an AVX2-compiled instantiation into the
/// baseline dispatch path.  The only cross-TU symbols are the constexpr
/// round-constant arrays (pure data) and the out-of-line scalar finishers
/// in rasc::crypto::lane_detail, which are defined exactly once in
/// lanes.cpp (baseline codegen) so divergent-length tails never execute
/// AVX2 instructions.

#ifndef RASC_LANES_NS
#error "define RASC_LANES_NS before including lanes_kernels.hpp"
#endif

#include <cstdint>
#include <cstring>

#include "src/crypto/blake2s_core.hpp"
#include "src/crypto/sha256_core.hpp"
#include "src/support/bytes.hpp"

namespace rasc::crypto::lane_detail {

/// Finish one SHA-256 lane on the scalar core: consume the `rem` bytes at
/// `p` (any remaining full blocks plus the tail), pad, and write the
/// big-endian digest.  `total` is the full message length for the bit count.
/// Defined in lanes.cpp.
void sha256_finish_scalar(std::uint32_t state[8], const std::uint8_t* p,
                          std::size_t rem, std::size_t total, std::uint8_t* out32);

/// Finish one BLAKE2s lane on the scalar core (same contract; little-endian
/// output).  Defined in lanes.cpp.
void blake2s_finish_scalar(std::uint32_t h[8], const std::uint8_t* p,
                           std::size_t rem, std::size_t total, std::uint8_t* out32);

}  // namespace rasc::crypto::lane_detail

namespace rasc::crypto::RASC_LANES_NS {

/// Portable lane vector: plain array with element-wise operators written as
/// fixed-trip loops, which GCC/Clang auto-vectorize at -O2 (and which still
/// buy instruction-level parallelism on compilers that don't).
template <std::size_t N>
struct alignas(sizeof(std::uint32_t) * N >= 16 ? 16 : sizeof(std::uint32_t) * N) U32xN {
  std::uint32_t v[N];

  std::uint32_t& operator[](std::size_t i) { return v[i]; }
  const std::uint32_t& operator[](std::size_t i) const { return v[i]; }

  friend U32xN operator+(U32xN a, U32xN b) {
    U32xN r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend U32xN operator^(U32xN a, U32xN b) {
    U32xN r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] ^ b.v[i];
    return r;
  }
  friend U32xN operator&(U32xN a, U32xN b) {
    U32xN r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] & b.v[i];
    return r;
  }
  friend U32xN operator|(U32xN a, U32xN b) {
    U32xN r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] | b.v[i];
    return r;
  }
  friend U32xN operator~(U32xN a) {
    U32xN r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = ~a.v[i];
    return r;
  }
  friend U32xN operator>>(U32xN a, int n) {
    U32xN r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] >> n;
    return r;
  }
  friend U32xN operator<<(U32xN a, int n) {
    U32xN r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] << n;
    return r;
  }
  U32xN& operator^=(U32xN b) { return *this = *this ^ b; }
};

template <class V>
inline constexpr std::size_t kLaneCount = sizeof(V) / sizeof(std::uint32_t);

template <class V>
inline V broadcast(std::uint32_t x) {
  V r{};
  for (std::size_t l = 0; l < kLaneCount<V>; ++l) r[l] = x;
  return r;
}

template <class V>
inline V vrotr(V x, int n) {
  return (x >> n) | (x << (32 - n));
}

// Local byte loads/stores (not the support:: inlines) so every instruction
// this TU executes under its own ISA flags is also *compiled* under them.
inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
inline std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}
inline void store_be32(std::uint8_t* p, std::uint32_t x) {
  p[0] = static_cast<std::uint8_t>(x >> 24);
  p[1] = static_cast<std::uint8_t>(x >> 16);
  p[2] = static_cast<std::uint8_t>(x >> 8);
  p[3] = static_cast<std::uint8_t>(x);
}
inline void store_le32(std::uint8_t* p, std::uint32_t x) {
  p[0] = static_cast<std::uint8_t>(x);
  p[1] = static_cast<std::uint8_t>(x >> 8);
  p[2] = static_cast<std::uint8_t>(x >> 16);
  p[3] = static_cast<std::uint8_t>(x >> 24);
}

/// One SHA-256 compression of kLaneCount<V> 64-byte blocks in lockstep.
template <class V>
void sha256_compress_lanes(V h[8], const std::uint8_t* const* blocks) {
  constexpr std::size_t L = kLaneCount<V>;
  V w[64];
  for (int i = 0; i < 16; ++i) {
    V x{};
    for (std::size_t l = 0; l < L; ++l) x[l] = load_be32(blocks[l] + 4 * i);
    w[i] = x;
  }
  for (int i = 16; i < 64; ++i) {
    const V s0 = vrotr(w[i - 15], 7) ^ vrotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const V s1 = vrotr(w[i - 2], 17) ^ vrotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  V a = h[0], b = h[1], c = h[2], d = h[3];
  V e = h[4], f = h[5], g = h[6], hh = h[7];
  for (int i = 0; i < 64; ++i) {
    const V s1 = vrotr(e, 6) ^ vrotr(e, 11) ^ vrotr(e, 25);
    const V ch = (e & f) ^ (~e & g);
    const V temp1 = hh + s1 + ch + broadcast<V>(detail::kSha256K[i]) + w[i];
    const V s0 = vrotr(a, 2) ^ vrotr(a, 13) ^ vrotr(a, 22);
    const V maj = (a & b) ^ (a & c) ^ (b & c);
    const V temp2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h[0] = h[0] + a;
  h[1] = h[1] + b;
  h[2] = h[2] + c;
  h[3] = h[3] + d;
  h[4] = h[4] + e;
  h[5] = h[5] + f;
  h[6] = h[6] + g;
  h[7] = h[7] + hh;
}

template <class V>
inline void blake2s_g_lanes(V& a, V& b, V& c, V& d, V x, V y) {
  a = a + b + x;
  d = vrotr(d ^ a, 16);
  c = c + d;
  b = vrotr(b ^ c, 12);
  a = a + b + y;
  d = vrotr(d ^ a, 8);
  c = c + d;
  b = vrotr(b ^ c, 7);
}

/// One BLAKE2s compression of kLaneCount<V> 64-byte blocks in lockstep.
/// `t` and `last` are shared: lockstep lanes have absorbed equal byte
/// counts by construction.
template <class V>
void blake2s_compress_lanes(V h[8], const std::uint8_t* const* blocks, std::uint64_t t,
                            bool last) {
  constexpr std::size_t L = kLaneCount<V>;
  V m[16];
  for (int i = 0; i < 16; ++i) {
    V x{};
    for (std::size_t l = 0; l < L; ++l) x[l] = load_le32(blocks[l] + 4 * i);
    m[i] = x;
  }

  V v[16];
  for (int i = 0; i < 8; ++i) v[i] = h[i];
  for (int i = 0; i < 8; ++i) v[8 + i] = broadcast<V>(detail::kBlake2sIv[i]);
  v[12] ^= broadcast<V>(static_cast<std::uint32_t>(t));
  v[13] ^= broadcast<V>(static_cast<std::uint32_t>(t >> 32));
  if (last) v[14] = ~v[14];

  for (int round = 0; round < 10; ++round) {
    const std::uint8_t* s = detail::kBlake2sSigma[round];
    blake2s_g_lanes(v[0], v[4], v[8], v[12], m[s[0]], m[s[1]]);
    blake2s_g_lanes(v[1], v[5], v[9], v[13], m[s[2]], m[s[3]]);
    blake2s_g_lanes(v[2], v[6], v[10], v[14], m[s[4]], m[s[5]]);
    blake2s_g_lanes(v[3], v[7], v[11], v[15], m[s[6]], m[s[7]]);
    blake2s_g_lanes(v[0], v[5], v[10], v[15], m[s[8]], m[s[9]]);
    blake2s_g_lanes(v[1], v[6], v[11], v[12], m[s[10]], m[s[11]]);
    blake2s_g_lanes(v[2], v[7], v[8], v[13], m[s[12]], m[s[13]]);
    blake2s_g_lanes(v[3], v[4], v[9], v[14], m[s[14]], m[s[15]]);
  }

  for (int i = 0; i < 8; ++i) h[i] ^= v[i] ^ v[8 + i];
}

inline constexpr std::uint8_t kDummyBlock[64] = {};

/// Digest up to kLaneCount<V> independent messages.  Full 64-byte blocks
/// common to every active lane run in lockstep; equal-length packs also
/// finish their padded final block(s) in lockstep, while divergent lanes
/// fall back to the scalar core (identical arithmetic, so identical bytes).
template <class V>
void sha256_digest_lanes(const support::ByteView* msgs,
                         const support::MutableByteView* outs, std::size_t count) {
  constexpr std::size_t L = kLaneCount<V>;
  V h[8];
  for (int i = 0; i < 8; ++i) h[i] = broadcast<V>(detail::kSha256Iv[i]);

  const std::uint8_t* ptr[L];
  std::size_t rem[L];
  bool uniform = true;
  for (std::size_t l = 0; l < L; ++l) {
    if (l < count) {
      ptr[l] = msgs[l].data();
      rem[l] = msgs[l].size();
      if (msgs[l].size() != msgs[0].size()) uniform = false;
    } else {
      ptr[l] = kDummyBlock;
      rem[l] = 0;
    }
  }

  // Lockstep over the full blocks every active lane still has.
  std::size_t common = SIZE_MAX;
  for (std::size_t l = 0; l < count; ++l) common = rem[l] < common ? rem[l] : common;
  std::size_t full = count == 0 ? 0 : common / 64;
  const std::uint8_t* blocks[L];
  while (full-- > 0) {
    for (std::size_t l = 0; l < L; ++l) blocks[l] = l < count ? ptr[l] : kDummyBlock;
    sha256_compress_lanes<V>(h, blocks);
    for (std::size_t l = 0; l < count; ++l) {
      ptr[l] += 64;
      rem[l] -= 64;
    }
  }

  if (uniform && count > 0) {
    // Every active lane has the same tail: pad once, compress in lockstep.
    const std::size_t r = rem[0];
    const std::size_t total = msgs[0].size();
    const std::size_t tail_blocks = r < 56 ? 1 : 2;
    const std::uint64_t bits = static_cast<std::uint64_t>(total) * 8;
    std::uint8_t tail[L][128];
    for (std::size_t l = 0; l < L; ++l) {
      std::memset(tail[l], 0, tail_blocks * 64);
      if (l < count) std::memcpy(tail[l], ptr[l], r);
      tail[l][r] = 0x80;
      for (int i = 0; i < 8; ++i) {
        tail[l][tail_blocks * 64 - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
      }
    }
    for (std::size_t b = 0; b < tail_blocks; ++b) {
      for (std::size_t l = 0; l < L; ++l) blocks[l] = tail[l] + 64 * b;
      sha256_compress_lanes<V>(h, blocks);
    }
    for (std::size_t l = 0; l < count; ++l) {
      for (int i = 0; i < 8; ++i) store_be32(outs[l].data() + 4 * i, h[i][l]);
    }
    return;
  }

  // Divergent lengths: pull each lane's column state out and finish it on
  // the scalar core.
  for (std::size_t l = 0; l < count; ++l) {
    std::uint32_t s[8];
    for (int i = 0; i < 8; ++i) s[i] = h[i][l];
    lane_detail::sha256_finish_scalar(s, ptr[l], rem[l], msgs[l].size(),
                                      outs[l].data());
  }
}

template <class V>
void blake2s_digest_lanes(const support::ByteView* msgs,
                          const support::MutableByteView* outs, std::size_t count) {
  constexpr std::size_t L = kLaneCount<V>;
  V h[8];
  for (int i = 0; i < 8; ++i) h[i] = broadcast<V>(detail::kBlake2sIv[i]);
  // Unkeyed parameter block: digest_length=32, fanout=depth=1.
  h[0] ^= broadcast<V>(0x01010000u ^ 32u);

  const std::uint8_t* ptr[L];
  std::size_t rem[L];
  bool uniform = true;
  for (std::size_t l = 0; l < L; ++l) {
    if (l < count) {
      ptr[l] = msgs[l].data();
      rem[l] = msgs[l].size();
      if (msgs[l].size() != msgs[0].size()) uniform = false;
    } else {
      ptr[l] = kDummyBlock;
      rem[l] = 0;
    }
  }

  // Lockstep over full blocks, keeping >= 1 byte back per active lane so
  // the final block (which carries the last-flag) is never consumed early.
  std::size_t common = SIZE_MAX;
  for (std::size_t l = 0; l < count; ++l) common = rem[l] < common ? rem[l] : common;
  std::size_t full = (count == 0 || common == 0) ? 0 : (common - 1) / 64;
  std::uint64_t t = 0;
  const std::uint8_t* blocks[L];
  while (full-- > 0) {
    for (std::size_t l = 0; l < L; ++l) blocks[l] = l < count ? ptr[l] : kDummyBlock;
    t += 64;
    blake2s_compress_lanes<V>(h, blocks, t, /*last=*/false);
    for (std::size_t l = 0; l < count; ++l) {
      ptr[l] += 64;
      rem[l] -= 64;
    }
  }

  if (uniform && count > 0) {
    // Equal tails (1..64 bytes, or 0 for empty messages): zero-pad and
    // compress once with the shared final counter and the last flag.
    const std::size_t r = rem[0];
    const std::uint64_t total = msgs[0].size();
    std::uint8_t tail[L][64];
    for (std::size_t l = 0; l < L; ++l) {
      std::memset(tail[l], 0, 64);
      if (l < count) std::memcpy(tail[l], ptr[l], r);
    }
    for (std::size_t l = 0; l < L; ++l) blocks[l] = tail[l];
    blake2s_compress_lanes<V>(h, blocks, total, /*last=*/true);
    for (std::size_t l = 0; l < count; ++l) {
      for (int i = 0; i < 8; ++i) store_le32(outs[l].data() + 4 * i, h[i][l]);
    }
    return;
  }

  for (std::size_t l = 0; l < count; ++l) {
    std::uint32_t s[8];
    for (int i = 0; i < 8; ++i) s[i] = h[i][l];
    lane_detail::blake2s_finish_scalar(s, ptr[l], rem[l], msgs[l].size(),
                                       outs[l].data());
  }
}

}  // namespace rasc::crypto::RASC_LANES_NS
