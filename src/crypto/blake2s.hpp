#pragma once
/// \file blake2s.hpp
/// BLAKE2s (RFC 7693) with 256-bit digest; optionally keyed.

#include <array>
#include <cstdint>

#include "src/crypto/hash.hpp"

namespace rasc::crypto {

class Blake2s final : public Hash {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  static constexpr std::size_t kMaxKeySize = 32;

  Blake2s() { reset(); }

  /// Keyed BLAKE2s; key <= 32 bytes, otherwise throws std::invalid_argument.
  explicit Blake2s(support::ByteView key);

  void update(support::ByteView data) override;
  support::Bytes finalize() override;
  void finalize_into(support::MutableByteView out) override;
  std::size_t digest_size() const noexcept override { return kDigestSize; }
  std::size_t block_size() const noexcept override { return kBlockSize; }
  std::unique_ptr<Hash> clone() const override { return std::make_unique<Blake2s>(*this); }
  void reset() override;

 private:
  void init(std::size_t key_len);
  void compress(bool last);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t t_ = 0;  // byte counter
  support::Bytes key_;
};

}  // namespace rasc::crypto
