#pragma once
/// \file drbg.hpp
/// HMAC-DRBG (NIST SP 800-90A) instantiated with HMAC-SHA-256.  All
/// cryptographic randomness in the library flows through this generator,
/// which makes every protocol run reproducible from its seed — the SMARM
/// secret permutation, ECDSA nonces, RSA prime search, and Vrf challenges.

#include "src/bignum/bignum.hpp"
#include "src/crypto/hmac.hpp"
#include "src/support/bytes.hpp"

namespace rasc::crypto {

class HmacDrbg {
 public:
  /// Instantiate from seed material (entropy || nonce || personalization).
  explicit HmacDrbg(support::ByteView seed);

  /// Fill `out` with pseudo-random bytes.
  void generate(support::MutableByteView out);

  /// Convenience: n fresh bytes.
  support::Bytes generate(std::size_t n);

  /// Mix additional entropy into the state.
  void reseed(support::ByteView seed);

  /// Uniform integer in [0, bound), rejection-sampled.
  std::uint64_t below(std::uint64_t bound);

  /// Adapter for Bignum::random_below / prime generation.
  bn::Bignum::ByteSource byte_source();

  /// Internal (K, V) working state, for checkpoint/restore.  Restoring a
  /// snapshot resumes the output stream exactly where it was captured.
  struct State {
    support::Bytes key;
    support::Bytes v;
  };

  State state() const { return {key_, v_}; }

  void restore(State s) {
    key_ = std::move(s.key);
    v_ = std::move(s.v);
  }

 private:
  void update(support::ByteView provided);

  support::Bytes key_;  // K
  support::Bytes v_;    // V
};

}  // namespace rasc::crypto
