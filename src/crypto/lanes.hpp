#pragma once
/// \file lanes.hpp
/// Multi-buffer ("multi-lane") hashing: N independent SHA-256 or BLAKE2s
/// states advanced in lockstep so the compression arithmetic runs
/// element-wise over vectors of lane words.  Independent per-block and
/// per-device digests — the dominant cost in every measurement bench —
/// batch naturally into lanes because there is no data dependency between
/// messages.
///
/// Guarantee: every lane digest is byte-identical to the scalar streaming
/// path (`hash_oneshot`).  Lockstep kernels share the compression constants
/// with the scalar cores, and any lane whose message length diverges from
/// the pack is finished on the very same scalar compression functions
/// (sha256_core.hpp / blake2s_core.hpp), so identity is structural.
///
/// Backends:
///  - kPortable: plain-array interleaving (`U32xN`) that auto-vectorizes
///    under `-O2`; works on any C++20 compiler, no ISA flags.
///  - kSimd: GNU vector-extension kernels (SSE2-class codegen at baseline
///    flags) plus an AVX2 8-lane translation unit compiled with `-mavx2`
///    when the toolchain supports it, selected at run time via CPUID.
///  - kAuto: kSimd when compiled in, else kPortable.

#include <cstddef>
#include <span>

#include "src/crypto/hash.hpp"
#include "src/support/bytes.hpp"

namespace rasc::crypto {

/// Kernel selection for the lane API.  kAuto resolves to the widest
/// implementation compiled into this binary and usable on this CPU.
enum class LaneBackend {
  kAuto,
  kPortable,
  kSimd,
};

/// True for the hash kinds with lane kernels (SHA-256, BLAKE2s).  Other
/// kinds fall back to the scalar streaming path inside digest_many().
bool lanes_supported(HashKind kind) noexcept;

/// True when a SIMD lane kernel is compiled in (vector extensions).
bool simd_compiled() noexcept;

/// True when the AVX2 8-lane translation unit is compiled in AND the CPU
/// reports AVX2 support at run time.
bool avx2_active() noexcept;

/// Lane width digest_many() packs with for the given backend: 8 when the
/// AVX2 path is active, 4 otherwise.
std::size_t preferred_lanes(LaneBackend backend = LaneBackend::kAuto) noexcept;

/// Human-readable backend name for bench labels: "avx2", "simd" (baseline
/// vector codegen) or "portable".
const char* lane_backend_name(LaneBackend backend = LaneBackend::kAuto) noexcept;

/// N-lane lockstep hasher.  One call digests up to N independent messages;
/// lanes may have differing lengths (divergent lanes finish on the scalar
/// core).  Stateless between calls — safe to share by value across threads.
template <std::size_t N>
class LaneHasher {
 public:
  static_assert(N == 2 || N == 4 || N == 8, "supported lane widths: 2, 4, 8");
  static constexpr std::size_t kLanes = N;

  explicit LaneHasher(HashKind kind, LaneBackend backend = LaneBackend::kAuto);

  HashKind kind() const noexcept { return kind_; }
  /// Backend the constructor resolved kAuto to (never kAuto itself).
  LaneBackend backend() const noexcept { return backend_; }
  std::size_t digest_size() const noexcept { return digest_size_; }

  /// Digest msgs[i] into outs[i] for i < msgs.size() <= N.  Each out view
  /// must be exactly digest_size() bytes.  Throws std::invalid_argument on
  /// size mismatches or an unsupported kind.
  void digest(std::span<const support::ByteView> msgs,
              std::span<const support::MutableByteView> outs) const;

 private:
  HashKind kind_;
  LaneBackend backend_;
  std::size_t digest_size_;
};

/// Digest any number of independent messages, packing preferred_lanes()-
/// wide waves (scalar for a trailing single message).  msgs and outs must
/// have equal sizes; outs[i] must be exactly hash_digest_size(kind) bytes.
/// Kinds without lane kernels are digested scalar, so callers need no
/// capability check.
void digest_many(HashKind kind, std::span<const support::ByteView> msgs,
                 std::span<const support::MutableByteView> outs,
                 LaneBackend backend = LaneBackend::kAuto);

extern template class LaneHasher<2>;
extern template class LaneHasher<4>;
extern template class LaneHasher<8>;

}  // namespace rasc::crypto
