#include "src/crypto/cbcmac.hpp"

#include <cstring>
#include <stdexcept>

namespace rasc::crypto {

CbcMac::CbcMac(support::ByteView key) : cipher_(key) {}

void CbcMac::absorb_block(const std::uint8_t block[Aes::kBlockSize]) {
  std::uint8_t x[Aes::kBlockSize];
  for (std::size_t i = 0; i < Aes::kBlockSize; ++i) x[i] = static_cast<std::uint8_t>(chain_[i] ^ block[i]);
  cipher_.encrypt_block(x, chain_);
}

void CbcMac::update(support::ByteView data) {
  if (data.empty()) return;  // empty spans may carry a null data()
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(Aes::kBlockSize - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == Aes::kBlockSize) {
      absorb_block(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + Aes::kBlockSize <= data.size()) {
    absorb_block(data.data() + offset);
    offset += Aes::kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

support::Bytes CbcMac::finalize() {
  support::Bytes tag(kTagSize);
  finalize_into(tag);
  return tag;
}

void CbcMac::finalize_into(support::MutableByteView out) {
  if (out.size() < kTagSize) {
    throw std::invalid_argument("CbcMac::finalize_into: output buffer too small");
  }
  // Padding method 2: append 0x80 then zeros to a full block.
  buffer_[buffered_] = 0x80;
  std::memset(buffer_ + buffered_ + 1, 0, Aes::kBlockSize - buffered_ - 1);
  absorb_block(buffer_);

  std::memcpy(out.data(), chain_, kTagSize);
  reset();
}

void CbcMac::reset() {
  std::memset(chain_, 0, sizeof(chain_));
  buffered_ = 0;
}

support::Bytes CbcMac::compute(support::ByteView key, support::ByteView message) {
  CbcMac mac(key);
  mac.update(message);
  return mac.finalize();
}

bool CbcMac::verify(support::ByteView key, support::ByteView message,
                    support::ByteView tag) {
  return support::ct_equal(compute(key, message), tag);
}

}  // namespace rasc::crypto
