#include "src/crypto/drbg.hpp"

#include <stdexcept>

namespace rasc::crypto {

namespace {
constexpr HashKind kKind = HashKind::kSha256;
constexpr std::size_t kOutLen = 32;
}  // namespace

HmacDrbg::HmacDrbg(support::ByteView seed) : key_(kOutLen, 0x00), v_(kOutLen, 0x01) {
  update(seed);
}

void HmacDrbg::update(support::ByteView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  Hmac mac(kKind, key_);
  mac.update(v_);
  const std::uint8_t zero = 0x00;
  mac.update(support::ByteView(&zero, 1));
  mac.update(provided);
  key_ = mac.finalize();
  v_ = Hmac::compute(kKind, key_, v_);
  if (provided.empty()) return;
  // K = HMAC(K, V || 0x01 || provided); V = HMAC(K, V)
  Hmac mac2(kKind, key_);
  mac2.update(v_);
  const std::uint8_t one = 0x01;
  mac2.update(support::ByteView(&one, 1));
  mac2.update(provided);
  key_ = mac2.finalize();
  v_ = Hmac::compute(kKind, key_, v_);
}

void HmacDrbg::generate(support::MutableByteView out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    v_ = Hmac::compute(kKind, key_, v_);
    const std::size_t take = std::min(kOutLen, out.size() - produced);
    std::copy(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(take),
              out.begin() + static_cast<std::ptrdiff_t>(produced));
    produced += take;
  }
  update({});
}

support::Bytes HmacDrbg::generate(std::size_t n) {
  support::Bytes out(n);
  generate(out);
  return out;
}

void HmacDrbg::reseed(support::ByteView seed) { update(seed); }

std::uint64_t HmacDrbg::below(std::uint64_t bound) {
  if (bound == 0) throw std::domain_error("HmacDrbg::below zero bound");
  // Rejection sampling over the smallest power-of-two mask >= bound.
  std::uint64_t mask = bound - 1;
  mask |= mask >> 1;
  mask |= mask >> 2;
  mask |= mask >> 4;
  mask |= mask >> 8;
  mask |= mask >> 16;
  mask |= mask >> 32;
  for (;;) {
    std::uint8_t buf[8];
    generate(buf);
    const std::uint64_t v = support::get_u64_be(buf) & mask;
    if (v < bound) return v;
  }
}

bn::Bignum::ByteSource HmacDrbg::byte_source() {
  return [this](support::MutableByteView out) { generate(out); };
}

}  // namespace rasc::crypto
