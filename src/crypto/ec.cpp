#include "src/crypto/ec.hpp"

#include <stdexcept>

namespace rasc::crypto {

using bn::Bignum;

bool operator==(const EcPoint& a, const EcPoint& b) {
  if (a.infinity || b.infinity) return a.infinity == b.infinity;
  return a.x == b.x && a.y == b.y;
}

EcCurve::EcCurve(std::string name, Bignum p, Bignum a, Bignum b, EcPoint g, Bignum n)
    : name_(std::move(name)),
      p_(std::move(p)),
      a_(std::move(a)),
      b_(std::move(b)),
      g_(std::move(g)),
      n_(std::move(n)) {
  if (!is_on_curve(g_)) throw std::invalid_argument("EcCurve: generator not on curve");
}

bool EcCurve::is_on_curve(const EcPoint& pt) const {
  if (pt.infinity) return true;
  const Bignum lhs = Bignum::mod_mul(pt.y, pt.y, p_);
  Bignum rhs = Bignum::mod_mul(Bignum::mod_mul(pt.x, pt.x, p_), pt.x, p_);
  rhs = Bignum::mod_add(rhs, Bignum::mod_mul(a_, pt.x, p_), p_);
  rhs = Bignum::mod_add(rhs, b_ % p_, p_);
  return lhs == rhs;
}

EcPoint EcCurve::double_point(const EcPoint& pt) const {
  if (pt.infinity) return pt;
  if (pt.y.is_zero()) return EcPoint::at_infinity();
  // lambda = (3 x^2 + a) / (2 y)
  const Bignum three{3};
  const Bignum two{2};
  Bignum num = Bignum::mod_mul(three, Bignum::mod_mul(pt.x, pt.x, p_), p_);
  num = Bignum::mod_add(num, a_ % p_, p_);
  const Bignum den = Bignum::mod_inv(Bignum::mod_mul(two, pt.y, p_), p_);
  const Bignum lambda = Bignum::mod_mul(num, den, p_);
  Bignum x3 = Bignum::mod_sub(Bignum::mod_mul(lambda, lambda, p_),
                              Bignum::mod_add(pt.x, pt.x, p_), p_);
  Bignum y3 = Bignum::mod_sub(Bignum::mod_mul(lambda, Bignum::mod_sub(pt.x, x3, p_), p_),
                              pt.y, p_);
  return EcPoint::affine(std::move(x3), std::move(y3));
}

EcPoint EcCurve::add(const EcPoint& p1, const EcPoint& p2) const {
  if (p1.infinity) return p2;
  if (p2.infinity) return p1;
  if (p1.x == p2.x) {
    if (p1.y == p2.y) return double_point(p1);
    return EcPoint::at_infinity();  // P + (-P)
  }
  const Bignum lambda = Bignum::mod_mul(Bignum::mod_sub(p2.y, p1.y, p_),
                                        Bignum::mod_inv(Bignum::mod_sub(p2.x, p1.x, p_), p_),
                                        p_);
  Bignum x3 = Bignum::mod_sub(Bignum::mod_mul(lambda, lambda, p_),
                              Bignum::mod_add(p1.x, p2.x, p_), p_);
  Bignum y3 = Bignum::mod_sub(Bignum::mod_mul(lambda, Bignum::mod_sub(p1.x, x3, p_), p_),
                              p1.y, p_);
  return EcPoint::affine(std::move(x3), std::move(y3));
}

EcPoint EcCurve::multiply(const Bignum& k, const EcPoint& pt) const {
  EcPoint acc = EcPoint::at_infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = double_point(acc);
    if (k.bit(i)) acc = add(acc, pt);
  }
  return acc;
}

namespace {

EcCurve make_secp160r1() {
  return EcCurve(
      "secp160r1",
      Bignum::from_hex("ffffffffffffffffffffffffffffffff7fffffff"),
      Bignum::from_hex("ffffffffffffffffffffffffffffffff7ffffffc"),
      Bignum::from_hex("1c97befc54bd7a8b65acf89f81d4d4adc565fa45"),
      EcPoint::affine(Bignum::from_hex("4a96b5688ef573284664698968c38bb913cbfc82"),
                      Bignum::from_hex("23a628553168947d59dcc912042351377ac5fb32")),
      Bignum::from_hex("0100000000000000000001f4c8f927aed3ca752257"));
}

EcCurve make_secp224r1() {
  return EcCurve(
      "secp224r1",
      Bignum::from_hex("ffffffffffffffffffffffffffffffff000000000000000000000001"),
      Bignum::from_hex("fffffffffffffffffffffffffffffffefffffffffffffffffffffffe"),
      Bignum::from_hex("b4050a850c04b3abf54132565044b0b7d7bfd8ba270b39432355ffb4"),
      EcPoint::affine(
          Bignum::from_hex("b70e0cbd6bb4bf7f321390b94a03c1d356c21122343280d6115c1d21"),
          Bignum::from_hex("bd376388b5f723fb4c22dfe6cd4375a05a07476444d5819985007e34")),
      Bignum::from_hex("ffffffffffffffffffffffffffff16a2e0b8f03e13dd29455c5c2a3d"));
}

EcCurve make_secp256r1() {
  return EcCurve(
      "secp256r1",
      Bignum::from_hex(
          "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"),
      Bignum::from_hex(
          "ffffffff00000001000000000000000000000000fffffffffffffffffffffffc"),
      Bignum::from_hex(
          "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"),
      EcPoint::affine(
          Bignum::from_hex(
              "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
          Bignum::from_hex(
              "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")),
      Bignum::from_hex(
          "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"));
}

}  // namespace

const EcCurve& get_curve(CurveId id) {
  static const EcCurve secp160r1 = make_secp160r1();
  static const EcCurve secp224r1 = make_secp224r1();
  static const EcCurve secp256r1 = make_secp256r1();
  switch (id) {
    case CurveId::kSecp160r1: return secp160r1;
    case CurveId::kSecp224r1: return secp224r1;
    case CurveId::kSecp256r1: return secp256r1;
  }
  throw std::invalid_argument("unknown CurveId");
}

std::string curve_name(CurveId id) { return get_curve(id).name(); }

}  // namespace rasc::crypto
