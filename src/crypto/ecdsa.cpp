#include "src/crypto/ecdsa.hpp"

#include <stdexcept>

namespace rasc::crypto {

using bn::Bignum;

namespace {

/// Convert a digest to an integer, keeping only the leftmost order-bits
/// bits (X9.62 bits2int).
Bignum bits2int(support::ByteView digest, std::size_t order_bits) {
  Bignum e = Bignum::from_bytes_be(digest);
  const std::size_t digest_bits = digest.size() * 8;
  if (digest_bits > order_bits) e = e.shifted_right(digest_bits - order_bits);
  return e;
}

}  // namespace

EcdsaKeyPair ecdsa_generate_key(CurveId curve, HmacDrbg& drbg) {
  const EcCurve& c = get_curve(curve);
  const Bignum n_minus_1 = c.order() - Bignum{1};
  const Bignum d = Bignum::random_below(n_minus_1, drbg.byte_source()) + Bignum{1};
  return EcdsaKeyPair{curve, d, c.multiply(d, c.generator())};
}

EcdsaSignature ecdsa_sign(const EcdsaKeyPair& key, support::ByteView digest) {
  const EcCurve& c = get_curve(key.curve);
  const Bignum& n = c.order();
  const Bignum e = bits2int(digest, n.bit_length()) % n;

  // Deterministic nonce derivation (RFC 6979 flavored): DRBG seeded with
  // d || digest yields k; retry by continuing the stream.
  auto seed = key.private_key.to_bytes_be((n.bit_length() + 7) / 8);
  support::Bytes drbg_seed(seed.begin(), seed.end());
  drbg_seed.insert(drbg_seed.end(), digest.begin(), digest.end());
  HmacDrbg nonce_drbg(drbg_seed);
  support::secure_wipe(seed);

  const Bignum n_minus_1 = n - Bignum{1};
  for (;;) {
    const Bignum k = Bignum::random_below(n_minus_1, nonce_drbg.byte_source()) + Bignum{1};
    const EcPoint kg = c.multiply(k, c.generator());
    if (kg.infinity) continue;
    const Bignum r = kg.x % n;
    if (r.is_zero()) continue;
    const Bignum k_inv = Bignum::mod_inv(k, n);
    const Bignum rd = Bignum::mod_mul(r, key.private_key % n, n);
    const Bignum s = Bignum::mod_mul(k_inv, Bignum::mod_add(e, rd, n), n);
    if (s.is_zero()) continue;
    return EcdsaSignature{r, s};
  }
}

bool ecdsa_verify(CurveId curve, const EcPoint& public_key, support::ByteView digest,
                  const EcdsaSignature& sig) {
  const EcCurve& c = get_curve(curve);
  const Bignum& n = c.order();
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (sig.r >= n || sig.s >= n) return false;
  if (public_key.infinity || !c.is_on_curve(public_key)) return false;

  const Bignum e = bits2int(digest, n.bit_length()) % n;
  const Bignum w = Bignum::mod_inv(sig.s, n);
  const Bignum u1 = Bignum::mod_mul(e, w, n);
  const Bignum u2 = Bignum::mod_mul(sig.r, w, n);
  const EcPoint point = c.add(c.multiply(u1, c.generator()), c.multiply(u2, public_key));
  if (point.infinity) return false;
  return (point.x % n) == sig.r;
}

EcdsaSignature ecdsa_sign_message(const EcdsaKeyPair& key, HashKind hash,
                                  support::ByteView message) {
  return ecdsa_sign(key, hash_oneshot(hash, message));
}

bool ecdsa_verify_message(CurveId curve, const EcPoint& public_key, HashKind hash,
                          support::ByteView message, const EcdsaSignature& sig) {
  return ecdsa_verify(curve, public_key, hash_oneshot(hash, message), sig);
}

}  // namespace rasc::crypto
