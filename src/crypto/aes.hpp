#pragma once
/// \file aes.hpp
/// AES-128/192/256 block cipher (FIPS 197), table-free byte-oriented
/// implementation.  Used by the CBC-MAC measurement option (the paper's
/// encryption-based MAC, AES-CBC-MAC per ISO 9797-1).

#include <array>
#include <cstdint>

#include "src/support/bytes.hpp"

namespace rasc::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(support::ByteView key);

  void encrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const;

  std::size_t key_size() const noexcept { return key_size_; }

 private:
  std::size_t key_size_ = 0;
  int rounds_ = 0;
  // Maximum schedule: AES-256 has 15 round keys of 16 bytes.
  std::array<std::uint8_t, 16 * 15> round_keys_{};
};

}  // namespace rasc::crypto
