#pragma once
/// \file cbcmac.hpp
/// AES-CBC-MAC (ISO/IEC 9797-1 MAC Algorithm 1 with padding method 2,
/// i.e. a mandatory 0x80 pad byte followed by zeros).  This is the paper's
/// encryption-based MAC option for the measurement function.
///
/// Note: raw CBC-MAC is only secure for fixed-length or prefix-free
/// messages; the attestation layer always MACs a fixed-format message
/// (header + digest) so this is adequate, and matches the cipher-based
/// construction the paper references.

#include "src/crypto/aes.hpp"
#include "src/support/bytes.hpp"

namespace rasc::crypto {

class CbcMac {
 public:
  static constexpr std::size_t kTagSize = Aes::kBlockSize;

  explicit CbcMac(support::ByteView key);

  void update(support::ByteView data);

  /// Produce the tag and reset to the keyed initial state.
  support::Bytes finalize();

  /// Allocation-free finalize: write the tag into `out` (>= kTagSize
  /// bytes) and reset to the keyed initial state.
  void finalize_into(support::MutableByteView out);

  /// Discard any partial stream and return to the keyed initial state.
  void reset();

  static support::Bytes compute(support::ByteView key, support::ByteView message);
  static bool verify(support::ByteView key, support::ByteView message,
                     support::ByteView tag);

 private:
  void absorb_block(const std::uint8_t block[Aes::kBlockSize]);

  Aes cipher_;
  std::uint8_t chain_[Aes::kBlockSize] = {};
  std::uint8_t buffer_[Aes::kBlockSize] = {};
  std::size_t buffered_ = 0;
};

}  // namespace rasc::crypto
