#include "src/crypto/blake2b.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace rasc::crypto {

namespace {
constexpr std::uint64_t kIv[8] = {
    0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
    0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
    0x1f83d9abfb41bd6bULL, 0x5be0cd19137e2179ULL};

constexpr std::uint8_t kSigma[10][16] = {
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
    {14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
    {11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
    {7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
    {9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
    {2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
    {12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
    {13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
    {6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
    {10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0}};

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void g(std::uint64_t& a, std::uint64_t& b, std::uint64_t& c, std::uint64_t& d,
              std::uint64_t x, std::uint64_t y) {
  a = a + b + x;
  d = std::rotr(d ^ a, 32);
  c = c + d;
  b = std::rotr(b ^ c, 24);
  a = a + b + y;
  d = std::rotr(d ^ a, 16);
  c = c + d;
  b = std::rotr(b ^ c, 63);
}
}  // namespace

Blake2b::Blake2b(support::ByteView key) : key_(key.begin(), key.end()) {
  if (key.size() > kMaxKeySize) throw std::invalid_argument("BLAKE2b key too long");
  reset();
}

void Blake2b::init(std::size_t key_len) {
  for (int i = 0; i < 8; ++i) h_[i] = kIv[i];
  h_[0] ^= 0x01010000ULL ^ (static_cast<std::uint64_t>(key_len) << 8) ^ kDigestSize;
  buffered_ = 0;
  t0_ = 0;
  t1_ = 0;
}

void Blake2b::reset() {
  init(key_.size());
  if (!key_.empty()) {
    // Keyed mode: the key, zero-padded to a full block, is block zero.
    buffer_.fill(0);
    std::memcpy(buffer_.data(), key_.data(), key_.size());
    buffered_ = kBlockSize;
  }
}

void Blake2b::compress(bool last) {
  std::uint64_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le64(buffer_.data() + 8 * i);

  std::uint64_t v[16];
  for (int i = 0; i < 8; ++i) v[i] = h_[i];
  for (int i = 0; i < 8; ++i) v[8 + i] = kIv[i];
  v[12] ^= t0_;
  v[13] ^= t1_;
  if (last) v[14] = ~v[14];

  for (int round = 0; round < 12; ++round) {
    const std::uint8_t* s = kSigma[round % 10];
    g(v[0], v[4], v[8], v[12], m[s[0]], m[s[1]]);
    g(v[1], v[5], v[9], v[13], m[s[2]], m[s[3]]);
    g(v[2], v[6], v[10], v[14], m[s[4]], m[s[5]]);
    g(v[3], v[7], v[11], v[15], m[s[6]], m[s[7]]);
    g(v[0], v[5], v[10], v[15], m[s[8]], m[s[9]]);
    g(v[1], v[6], v[11], v[12], m[s[10]], m[s[11]]);
    g(v[2], v[7], v[8], v[13], m[s[12]], m[s[13]]);
    g(v[3], v[4], v[9], v[14], m[s[14]], m[s[15]]);
  }

  for (int i = 0; i < 8; ++i) h_[i] ^= v[i] ^ v[8 + i];
}

void Blake2b::update(support::ByteView data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    if (buffered_ == kBlockSize) {
      // More input follows, so this buffered block is not the last one.
      t0_ += kBlockSize;
      if (t0_ < kBlockSize) ++t1_;
      compress(/*last=*/false);
      buffered_ = 0;
    }
    const std::size_t take = std::min(kBlockSize - buffered_, data.size() - offset);
    std::memcpy(buffer_.data() + buffered_, data.data() + offset, take);
    buffered_ += take;
    offset += take;
  }
}

void Blake2b::finalize_into(support::MutableByteView out) {
  if (out.size() < kDigestSize) {
    throw std::invalid_argument("Blake2b::finalize_into: output buffer too small");
  }
  t0_ += buffered_;
  if (t0_ < buffered_) ++t1_;
  std::memset(buffer_.data() + buffered_, 0, kBlockSize - buffered_);
  compress(/*last=*/true);

  for (int i = 0; i < 8; ++i) {
    support::put_u64_le(support::MutableByteView(out.data() + 8 * i, 8), h_[i]);
  }
  reset();
}

support::Bytes Blake2b::finalize() {
  support::Bytes digest(kDigestSize);
  finalize_into(digest);
  return digest;
}

}  // namespace rasc::crypto
