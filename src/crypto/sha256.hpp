#pragma once
/// \file sha256.hpp
/// SHA-256 (FIPS 180-4), streaming implementation.

#include <array>
#include <cstdint>

#include "src/crypto/hash.hpp"

namespace rasc::crypto {

class Sha256 final : public Hash {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() { reset(); }

  void update(support::ByteView data) override;
  support::Bytes finalize() override;
  void finalize_into(support::MutableByteView out) override;
  std::size_t digest_size() const noexcept override { return kDigestSize; }
  std::size_t block_size() const noexcept override { return kBlockSize; }
  std::unique_ptr<Hash> clone() const override { return std::make_unique<Sha256>(*this); }
  void reset() override;

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace rasc::crypto
