/// \file lanes_avx2.cpp
/// 8-lane kernels compiled with -mavx2 so the generic lockstep bodies lower
/// to 256-bit ops.  Lives in its own TU (and its own RASC_LANES_NS) so no
/// AVX2-compiled symbol can be ODR-merged into the baseline path; the
/// dispatcher only calls in after avx2_runtime() says the CPU is capable.

#include "src/crypto/lanes_avx2.hpp"

#define RASC_LANES_NS lanes_avx2_impl
#include "src/crypto/lanes_kernels.hpp"

namespace rasc::crypto::lane_detail {

namespace {
typedef std::uint32_t vu32x8 __attribute__((vector_size(32)));
}  // namespace

bool avx2_runtime() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

void sha256_lanes8_avx2(const support::ByteView* msgs,
                        const support::MutableByteView* outs, std::size_t count) {
  lanes_avx2_impl::sha256_digest_lanes<vu32x8>(msgs, outs, count);
}

void blake2s_lanes8_avx2(const support::ByteView* msgs,
                         const support::MutableByteView* outs, std::size_t count) {
  lanes_avx2_impl::blake2s_digest_lanes<vu32x8>(msgs, outs, count);
}

}  // namespace rasc::crypto::lane_detail
