#pragma once
/// \file sha256_core.hpp
/// SHA-256 compression primitive shared by the streaming Sha256 class and
/// the multi-lane kernels (lanes.hpp).  Factoring the round function out
/// lets the lane code finish staggered-length tails on the *same* scalar
/// arithmetic the one-message path uses, which is what makes the
/// lane-vs-scalar byte-identity guarantee structural rather than
/// coincidental.

#include <bit>
#include <cstdint>

namespace rasc::crypto::detail {

inline constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline constexpr std::uint32_t kSha256Iv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                               0xa54ff53a, 0x510e527f, 0x9b05688c,
                                               0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t sha256_load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

/// One FIPS 180-4 compression of a 64-byte block into `state`.
inline void sha256_compress(std::uint32_t state[8], const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = sha256_load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace rasc::crypto::detail
