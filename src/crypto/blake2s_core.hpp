#pragma once
/// \file blake2s_core.hpp
/// BLAKE2s compression primitive shared by the streaming Blake2s class and
/// the multi-lane kernels (lanes.hpp) — same rationale as sha256_core.hpp:
/// lane tails finish on the identical scalar arithmetic, so lane-vs-scalar
/// byte-identity holds by construction.

#include <bit>
#include <cstdint>

namespace rasc::crypto::detail {

inline constexpr std::uint32_t kBlake2sIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                                0xa54ff53a, 0x510e527f, 0x9b05688c,
                                                0x1f83d9ab, 0x5be0cd19};

inline constexpr std::uint8_t kBlake2sSigma[10][16] = {
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
    {14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
    {11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
    {7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
    {9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
    {2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
    {12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
    {13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
    {6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
    {10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0}};

inline std::uint32_t blake2s_load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

inline void blake2s_g(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                      std::uint32_t& d, std::uint32_t x, std::uint32_t y) {
  a = a + b + x;
  d = std::rotr(d ^ a, 16);
  c = c + d;
  b = std::rotr(b ^ c, 12);
  a = a + b + y;
  d = std::rotr(d ^ a, 8);
  c = c + d;
  b = std::rotr(b ^ c, 7);
}

/// One RFC 7693 compression of a 64-byte block into `h`.  `t` is the byte
/// counter *after* absorbing this block; `last` marks the final block.
inline void blake2s_compress(std::uint32_t h[8], const std::uint8_t* block,
                             std::uint64_t t, bool last) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = blake2s_load_le32(block + 4 * i);

  std::uint32_t v[16];
  for (int i = 0; i < 8; ++i) v[i] = h[i];
  for (int i = 0; i < 8; ++i) v[8 + i] = kBlake2sIv[i];
  v[12] ^= static_cast<std::uint32_t>(t);
  v[13] ^= static_cast<std::uint32_t>(t >> 32);
  if (last) v[14] = ~v[14];

  for (int round = 0; round < 10; ++round) {
    const std::uint8_t* s = kBlake2sSigma[round];
    blake2s_g(v[0], v[4], v[8], v[12], m[s[0]], m[s[1]]);
    blake2s_g(v[1], v[5], v[9], v[13], m[s[2]], m[s[3]]);
    blake2s_g(v[2], v[6], v[10], v[14], m[s[4]], m[s[5]]);
    blake2s_g(v[3], v[7], v[11], v[15], m[s[6]], m[s[7]]);
    blake2s_g(v[0], v[5], v[10], v[15], m[s[8]], m[s[9]]);
    blake2s_g(v[1], v[6], v[11], v[12], m[s[10]], m[s[11]]);
    blake2s_g(v[2], v[7], v[8], v[13], m[s[12]], m[s[13]]);
    blake2s_g(v[3], v[4], v[9], v[14], m[s[14]], m[s[15]]);
  }

  for (int i = 0; i < 8; ++i) h[i] ^= v[i] ^ v[8 + i];
}

}  // namespace rasc::crypto::detail
