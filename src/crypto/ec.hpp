#pragma once
/// \file ec.hpp
/// Short-Weierstrass elliptic-curve group arithmetic over prime fields,
/// with the three SEC-2 curves the paper benchmarks: secp160r1
/// ("ECDSA-160"), secp224r1 ("ECDSA-224") and secp256r1 ("ECDSA-256").

#include <optional>
#include <string>

#include "src/bignum/bignum.hpp"

namespace rasc::crypto {

/// Affine point; the point at infinity is represented by infinity == true.
struct EcPoint {
  bn::Bignum x;
  bn::Bignum y;
  bool infinity = true;

  static EcPoint at_infinity() { return EcPoint{}; }
  static EcPoint affine(bn::Bignum x, bn::Bignum y) {
    return EcPoint{std::move(x), std::move(y), false};
  }
};

bool operator==(const EcPoint& a, const EcPoint& b);

/// y^2 = x^3 + a*x + b over GF(p), with base point G of prime order n.
class EcCurve {
 public:
  EcCurve(std::string name, bn::Bignum p, bn::Bignum a, bn::Bignum b, EcPoint g,
          bn::Bignum n);

  const std::string& name() const noexcept { return name_; }
  const bn::Bignum& p() const noexcept { return p_; }
  const bn::Bignum& a() const noexcept { return a_; }
  const bn::Bignum& b() const noexcept { return b_; }
  const EcPoint& generator() const noexcept { return g_; }
  const bn::Bignum& order() const noexcept { return n_; }

  /// Field size in bits.
  std::size_t field_bits() const noexcept { return p_.bit_length(); }

  bool is_on_curve(const EcPoint& pt) const;
  EcPoint add(const EcPoint& p1, const EcPoint& p2) const;
  EcPoint double_point(const EcPoint& pt) const;
  /// Scalar multiplication k * pt (left-to-right double-and-add).
  EcPoint multiply(const bn::Bignum& k, const EcPoint& pt) const;

 private:
  std::string name_;
  bn::Bignum p_, a_, b_;
  EcPoint g_;
  bn::Bignum n_;
};

/// Named standard curves (SEC 2).
enum class CurveId { kSecp160r1, kSecp224r1, kSecp256r1 };

const EcCurve& get_curve(CurveId id);
std::string curve_name(CurveId id);

inline constexpr CurveId kAllCurves[] = {CurveId::kSecp160r1, CurveId::kSecp224r1,
                                         CurveId::kSecp256r1};

}  // namespace rasc::crypto
