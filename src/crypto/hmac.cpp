#include "src/crypto/hmac.hpp"

#include <algorithm>

namespace rasc::crypto {

Hmac::Hmac(HashKind kind, support::ByteView key)
    : kind_(kind), inner_(make_hash(kind)), outer_(make_hash(kind)) {
  rekey(key);
}

Hmac::Hmac(const Hmac& other)
    : kind_(other.kind_),
      inner_(other.inner_->clone()),
      outer_(other.outer_->clone()),
      ipad_key_(other.ipad_key_),
      opad_key_(other.opad_key_) {}

Hmac& Hmac::operator=(const Hmac& other) {
  if (this == &other) return *this;
  kind_ = other.kind_;
  inner_ = other.inner_->clone();
  outer_ = other.outer_->clone();
  ipad_key_ = other.ipad_key_;
  opad_key_ = other.opad_key_;
  return *this;
}

void Hmac::rekey(support::ByteView key) {
  const std::size_t block = inner_->block_size();
  support::Bytes k0(block, 0);
  if (key.size() > block) {
    // Hash the long key on inner_'s state instead of hash_oneshot: no
    // temporary Hash or Bytes (inner_ is re-reset below anyway).
    std::uint8_t digest[64];  // large enough for every library hash
    hash_oneshot_into(*inner_, key,
                      support::MutableByteView(digest, inner_->digest_size()));
    std::copy_n(digest, inner_->digest_size(), k0.begin());
    support::secure_wipe(support::MutableByteView(digest, sizeof digest));
  } else {
    std::copy(key.begin(), key.end(), k0.begin());
  }
  ipad_key_.assign(block, 0);
  opad_key_.assign(block, 0);
  for (std::size_t i = 0; i < block; ++i) {
    ipad_key_[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }
  support::secure_wipe(k0);
  inner_->reset();
  inner_->update(ipad_key_);
}

void Hmac::update(support::ByteView data) { inner_->update(data); }

support::Bytes Hmac::finalize() {
  support::Bytes tag(tag_size());
  finalize_into(tag);
  return tag;
}

void Hmac::finalize_into(support::MutableByteView out) {
  std::uint8_t inner_digest[64];  // large enough for every library hash
  const std::size_t digest_len = inner_->digest_size();
  inner_->finalize_into(support::MutableByteView(inner_digest, digest_len));
  outer_->reset();
  outer_->update(opad_key_);
  outer_->update(support::ByteView(inner_digest, digest_len));
  outer_->finalize_into(out);
  // Reset for reuse with the same key.
  inner_->reset();
  inner_->update(ipad_key_);
}

void Hmac::reset() {
  inner_->reset();
  inner_->update(ipad_key_);
}

void Hmac::compute_into(support::ByteView message, support::MutableByteView out) {
  update(message);
  finalize_into(out);
}

support::Bytes Hmac::compute(HashKind kind, support::ByteView key,
                             support::ByteView message) {
  Hmac mac(kind, key);
  mac.update(message);
  return mac.finalize();
}

bool Hmac::verify(HashKind kind, support::ByteView key, support::ByteView message,
                  support::ByteView tag) {
  return support::ct_equal(compute(kind, key, message), tag);
}

}  // namespace rasc::crypto
