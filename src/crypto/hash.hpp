#pragma once
/// \file hash.hpp
/// Streaming hash interface shared by every digest in the library, plus a
/// registry keyed by HashKind so measurement code and benchmarks can select
/// algorithms at run time (the paper's Figure 2 compares four of them).

#include <memory>
#include <string>

#include "src/support/bytes.hpp"

namespace rasc::crypto {

/// Hash algorithms implemented by the library.
enum class HashKind {
  kSha256,
  kSha512,
  kBlake2b,  // 512-bit digest
  kBlake2s,  // 256-bit digest
};

/// Streaming (init/update/final) hash.  Copyable via clone() so a
/// measurement can be checkpointed and resumed (needed for interruptible
/// attestation).
class Hash {
 public:
  virtual ~Hash() = default;

  /// Absorb more input.
  virtual void update(support::ByteView data) = 0;

  /// Produce the digest and reset to the initial state.
  virtual support::Bytes finalize() = 0;

  /// Allocation-free finalize: write the digest into `out` (which must be
  /// at least digest_size() bytes) and reset to the initial state.  The
  /// base implementation falls back to finalize(); the concrete hashes
  /// override it to write straight from their internal state.
  virtual void finalize_into(support::MutableByteView out);

  /// Digest size in bytes.
  virtual std::size_t digest_size() const noexcept = 0;

  /// Input block size in bytes (needed by HMAC).
  virtual std::size_t block_size() const noexcept = 0;

  /// Deep copy of the current streaming state.
  virtual std::unique_ptr<Hash> clone() const = 0;

  /// Reset to the initial (keyless) state.
  virtual void reset() = 0;
};

/// Factory for a fresh hash of the given kind.
std::unique_ptr<Hash> make_hash(HashKind kind);

/// Human-readable algorithm name ("SHA-256", ...).
std::string hash_name(HashKind kind);

/// Digest size in bytes without instantiating.
std::size_t hash_digest_size(HashKind kind);

/// One-shot convenience.
support::Bytes hash_oneshot(HashKind kind, support::ByteView data);

/// Allocation-free one-shot: digest `data` into `out` (>= digest_size()
/// bytes) reusing `hasher`'s streaming state.  Hot loops hold one Hash and
/// call this per message instead of paying hash_oneshot's make_hash +
/// Bytes allocation every time.
void hash_oneshot_into(Hash& hasher, support::ByteView data,
                       support::MutableByteView out);

/// All kinds, for parameterized tests and benches.
inline constexpr HashKind kAllHashKinds[] = {
    HashKind::kSha256, HashKind::kSha512, HashKind::kBlake2b, HashKind::kBlake2s};

}  // namespace rasc::crypto
