#include "src/crypto/sig.hpp"

#include <stdexcept>

#include "src/crypto/ecdsa.hpp"
#include "src/crypto/rsa.hpp"

namespace rasc::crypto {

std::string sig_name(SigKind kind) {
  switch (kind) {
    case SigKind::kRsa1024: return "RSA-1024";
    case SigKind::kRsa2048: return "RSA-2048";
    case SigKind::kRsa4096: return "RSA-4096";
    case SigKind::kEcdsa160: return "ECDSA-160";
    case SigKind::kEcdsa224: return "ECDSA-224";
    case SigKind::kEcdsa256: return "ECDSA-256";
  }
  return "?";
}

namespace {

class RsaSigner final : public Signer {
 public:
  RsaSigner(SigKind kind, std::size_t bits, HmacDrbg& drbg)
      : kind_(kind), key_(rsa_generate_key(bits, drbg)) {}

  support::Bytes sign(HashKind hash, support::ByteView message) override {
    return rsa_sign_message(key_.priv, hash, message);
  }
  bool verify(HashKind hash, support::ByteView message,
              support::ByteView signature) const override {
    return rsa_verify_message(key_.pub, hash, message, signature);
  }
  support::Bytes sign_digest(HashKind hash, support::ByteView digest) override {
    return rsa_sign_digest(key_.priv, hash, digest);
  }
  SigKind kind() const noexcept override { return kind_; }

 private:
  SigKind kind_;
  RsaKeyPair key_;
};

class EcdsaSigner final : public Signer {
 public:
  EcdsaSigner(SigKind kind, CurveId curve, HmacDrbg& drbg)
      : kind_(kind), key_(ecdsa_generate_key(curve, drbg)) {}

  support::Bytes sign(HashKind hash, support::ByteView message) override {
    return sign_digest(hash, hash_oneshot(hash, message));
  }
  bool verify(HashKind hash, support::ByteView message,
              support::ByteView signature) const override {
    const auto sig = decode(signature);
    if (!sig) return false;
    return ecdsa_verify(key_.curve, key_.public_key, hash_oneshot(hash, message), *sig);
  }
  support::Bytes sign_digest(HashKind, support::ByteView digest) override {
    const auto sig = ecdsa_sign(key_, digest);
    // Fixed-width r || s encoding.
    const std::size_t w = scalar_bytes();
    auto out = sig.r.to_bytes_be(w);
    const auto s = sig.s.to_bytes_be(w);
    out.insert(out.end(), s.begin(), s.end());
    return out;
  }
  SigKind kind() const noexcept override { return kind_; }

 private:
  std::size_t scalar_bytes() const {
    return (get_curve(key_.curve).order().bit_length() + 7) / 8;
  }
  std::optional<EcdsaSignature> decode(support::ByteView signature) const {
    const std::size_t w = scalar_bytes();
    if (signature.size() != 2 * w) return std::nullopt;
    return EcdsaSignature{bn::Bignum::from_bytes_be(signature.subspan(0, w)),
                          bn::Bignum::from_bytes_be(signature.subspan(w))};
  }

  SigKind kind_;
  EcdsaKeyPair key_;
};

}  // namespace

std::unique_ptr<Signer> make_signer(SigKind kind, HmacDrbg& drbg) {
  switch (kind) {
    case SigKind::kRsa1024: return std::make_unique<RsaSigner>(kind, 1024, drbg);
    case SigKind::kRsa2048: return std::make_unique<RsaSigner>(kind, 2048, drbg);
    case SigKind::kRsa4096: return std::make_unique<RsaSigner>(kind, 4096, drbg);
    case SigKind::kEcdsa160:
      return std::make_unique<EcdsaSigner>(kind, CurveId::kSecp160r1, drbg);
    case SigKind::kEcdsa224:
      return std::make_unique<EcdsaSigner>(kind, CurveId::kSecp224r1, drbg);
    case SigKind::kEcdsa256:
      return std::make_unique<EcdsaSigner>(kind, CurveId::kSecp256r1, drbg);
  }
  throw std::invalid_argument("unknown SigKind");
}

}  // namespace rasc::crypto
