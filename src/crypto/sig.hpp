#pragma once
/// \file sig.hpp
/// Unified signature-scheme interface covering the six schemes in the
/// paper's Figure 2 (RSA-1024/2048/4096, ECDSA-160/224/256), so the
/// attestation report layer and the benchmark harness can treat them
/// uniformly via hash-and-sign.

#include <memory>
#include <string>
#include <vector>

#include "src/crypto/drbg.hpp"
#include "src/crypto/hash.hpp"

namespace rasc::crypto {

enum class SigKind {
  kRsa1024,
  kRsa2048,
  kRsa4096,
  kEcdsa160,
  kEcdsa224,
  kEcdsa256,
};

inline constexpr SigKind kAllSigKinds[] = {SigKind::kRsa1024,  SigKind::kRsa2048,
                                           SigKind::kRsa4096,  SigKind::kEcdsa160,
                                           SigKind::kEcdsa224, SigKind::kEcdsa256};

std::string sig_name(SigKind kind);

/// Hash-and-sign signer with an opaque serialized signature.
class Signer {
 public:
  virtual ~Signer() = default;

  /// Sign a message (the implementation hashes internally with `hash`).
  virtual support::Bytes sign(HashKind hash, support::ByteView message) = 0;

  /// Verify with the key pair's public half.
  virtual bool verify(HashKind hash, support::ByteView message,
                      support::ByteView signature) const = 0;

  /// Sign an already-computed digest (isolates signature cost from hash
  /// cost, as the paper's Figure 2 analysis requires).
  virtual support::Bytes sign_digest(HashKind hash, support::ByteView digest) = 0;

  virtual SigKind kind() const noexcept = 0;
};

/// Generate a fresh key pair for the given scheme (deterministic per DRBG).
/// RSA key generation dominates setup time at 4096 bits; callers that need
/// several schemes should reuse a single seeded DRBG for reproducibility.
std::unique_ptr<Signer> make_signer(SigKind kind, HmacDrbg& drbg);

}  // namespace rasc::crypto
