/// Section 2.5 reproduction: the fire-alarm worked example, as a
/// Monte-Carlo campaign (src/exp).  A bare-metal sensor-actuator
/// application samples a temperature sensor every second; attestation of
/// ~1 GB takes ~7 s on the calibrated prover.  Each trial drops the fire
/// at a uniformly random offset inside the measurement window:
///  * under SMART-style atomic MP the alarm waits for t_e — seconds of
///    latency and a deadline-miss rate that grows with memory size;
///  * interruptible MP holds the per-sample deadline-miss rate at zero
///    and bounds alarm latency by one sensor period + one block.
/// The per-cell miss rates carry Wilson 95% intervals; exits non-zero if
/// the interruptible cells ever miss a deadline or the atomic 1 GB cell
/// fails to show the paper's conflict.

#include <cstdio>
#include <string>

#include "src/apps/campaign.hpp"
#include "src/exp/report.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

bool expect(bool condition, const char* what) {
  std::printf("  [%s] %s\n", condition ? "ok" : "FAIL", what);
  return condition;
}

}  // namespace

int main() {
  std::printf("=== Section 2.5: fire alarm vs. attestation (campaign) ===\n");
  std::printf("Sensor period 1 s; fire at a uniform offset inside the MP window.\n\n");

  apps::FireAlarmCampaignOptions options;
  options.trials = 40;
  exp::CampaignSpec spec = apps::make_fire_alarm_campaign(options);
  std::printf("--- campaign: %zu cells x %zu trials ---\n", spec.grid.size(),
              spec.trials_per_point);
  const exp::CampaignResult result = exp::run_campaign(spec);

  support::Table table({"mode", "memory", "miss rate", "wilson 95% CI",
                        "alarm latency ms (mean/max)", "MP ms (mean)"});
  for (const auto& cell : result.cells) {
    const auto& latency = cell.values.at("alarm_latency_ms");
    const auto& mp = cell.values.at("mp_duration_ms");
    table.add_row({cell.point.str("mode"), std::to_string(cell.point.i64("memory_mb")) + " MB",
                   support::fmt_sci(cell.success_rate, 2),
                   "[" + support::fmt_sci(cell.ci.lower, 2) + ", " +
                       support::fmt_sci(cell.ci.upper, 2) + "]",
                   support::fmt_double(latency.mean(), 1) + " / " +
                       support::fmt_double(latency.max(), 1),
                   support::fmt_double(mp.mean(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(ran on %zu thread(s) in %.2f s)\n\n", result.threads_used,
              result.wall_seconds);

  std::printf("--- paper claims vs. campaign aggregates ---\n");
  bool ok = true;
  for (const auto& cell : result.cells) {
    const bool interruptible = cell.point.str("mode") == "interruptible";
    char label[112];
    if (interruptible) {
      std::snprintf(label, sizeof(label),
                    "interruptible @ %lld MB: zero deadline misses (%llu/%llu)",
                    static_cast<long long>(cell.point.i64("memory_mb")),
                    static_cast<unsigned long long>(cell.successes),
                    static_cast<unsigned long long>(cell.attempts));
      ok &= expect(cell.successes == 0, label);
      const auto& latency = cell.values.at("alarm_latency_ms");
      std::snprintf(label, sizeof(label),
                    "interruptible @ %lld MB: alarm latency bounded by ~1 sensor period",
                    static_cast<long long>(cell.point.i64("memory_mb")));
      ok &= expect(latency.max() < 1100.0, label);
    } else {
      const auto& latency = cell.values.at("alarm_latency_ms");
      const auto& mp = cell.values.at("mp_duration_ms");
      // The paper's conflict needs the atomic measurement to outlast the
      // sensor period; below that (100 MB ~ 0.7 s) every sample can still
      // land between measurements.
      if (mp.mean() > 1100.0) {
        std::snprintf(label, sizeof(label),
                      "atomic @ %lld MB: misses occur (rate %.3g) and alarm can wait for t_e",
                      static_cast<long long>(cell.point.i64("memory_mb")), cell.success_rate);
        ok &= expect(cell.successes > 0 && latency.max() > 1000.0, label);
      }
      std::snprintf(label, sizeof(label),
                    "atomic @ %lld MB: alarm latency bounded by the measurement tail",
                    static_cast<long long>(cell.point.i64("memory_mb")));
      ok &= expect(latency.max() < mp.max() + 1100.0, label);
    }
    const auto& attested = cell.values.at("attestation_ok");
    char label2[96];
    std::snprintf(label2, sizeof(label2), "%s @ %lld MB: every measurement verifies",
                  cell.point.str("mode").c_str(),
                  static_cast<long long>(cell.point.i64("memory_mb")));
    ok &= expect(attested.mean() == 1.0 && attested.min() == 1.0, label2);
  }

  // The digest cache is a host-side optimization: rerunning the campaign
  // with it disabled must reproduce the aggregate JSON byte-for-byte.
  std::printf("\n--- digest cache: cached vs. uncached aggregates ---\n");
  apps::FireAlarmCampaignOptions uncached_options = options;
  uncached_options.use_digest_cache = false;
  const exp::CampaignResult uncached =
      exp::run_campaign(apps::make_fire_alarm_campaign(uncached_options));
  ok &= expect(exp::campaign_json(result) == exp::campaign_json(uncached),
               "BENCH json byte-identical with and without the digest cache");

  const std::string json_path = exp::write_campaign_json(result);
  if (!json_path.empty()) std::printf("\nmachine-readable results: %s\n", json_path.c_str());

  std::printf("\nPaper claims reproduced:\n");
  std::printf(" * atomic MP over 1 GB runs ~7 s; a fire during MP waits for t_e,\n");
  std::printf("   so the alarm is seconds late (\"disastrous consequences\");\n");
  std::printf(" * interruptible MP keeps the alarm latency at the sensor period\n");
  std::printf("   (1 s) plus one block measurement, at any memory size;\n");
  std::printf(" * the measurement itself still completes and verifies.\n");

  if (!ok) {
    std::fprintf(stderr, "FAIL: campaign aggregates disagree with the paper claims\n");
    return 1;
  }
  return 0;
}
