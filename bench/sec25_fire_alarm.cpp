/// Section 2.5 reproduction: the fire-alarm worked example.  A bare-metal
/// sensor-actuator application samples a temperature sensor every second;
/// attestation of ~1 GB takes ~7 s on the calibrated prover.  Under
/// SMART-style atomic MP, a fire that breaks out just after MP starts is
/// only noticed once MP finishes; interruptible MP bounds the alarm
/// latency by one sensor period plus one block measurement.

#include <cstdio>
#include <string>

#include "src/apps/scenario.hpp"
#include "src/obs/bench_io.hpp"
#include "src/support/table.hpp"

using namespace rasc;

int main() {
  std::printf("=== Section 2.5: fire alarm vs. attestation ===\n");
  std::printf("Sensor period 1 s; fire breaks out 100 ms after MP starts.\n\n");

  support::Table table({"memory", "MP mode", "MP duration", "alarm latency",
                        "max sensor delay", "attestation"});

  const struct {
    std::uint64_t bytes;
    const char* label;
  } memories[] = {
      {100ull << 20, "100 MB"},
      {512ull << 20, "512 MB"},
      {1ull << 30, "1 GB"},
      {2ull << 30, "2 GB"},
  };

  obs::MetricsRegistry metrics;
  for (const auto& memory : memories) {
    for (attest::ExecutionMode mode :
         {attest::ExecutionMode::kAtomic, attest::ExecutionMode::kInterruptible}) {
      apps::FireAlarmScenarioConfig config;
      config.modeled_memory_bytes = memory.bytes;
      config.mode = mode;
      // Per-scheme histograms: every sensor sample across all memory sizes
      // lands in the mode's delay distribution.
      obs::MetricsRegistry per_run;
      config.metrics = &per_run;
      const auto outcome = apps::run_fire_alarm_scenario(config);
      table.add_row({memory.label, attest::execution_mode_name(mode),
                     sim::format_duration(outcome.measurement_duration),
                     sim::format_duration(outcome.alarm_latency),
                     sim::format_duration(outcome.max_sample_delay),
                     outcome.attestation_ok ? "PASS" : "FAIL"});

      const std::string scheme = attest::execution_mode_name(mode);
      if (const auto* h = per_run.find_histogram("fire_alarm.sample_delay_ms")) {
        metrics.histogram("alarm_sample_delay_ms/" + scheme).merge(*h);
      }
      metrics.histogram("mp_duration_ms/" + scheme)
          .record(sim::to_millis(outcome.measurement_duration));
      metrics.histogram("alarm_latency_ms/" + scheme)
          .record(sim::to_millis(outcome.alarm_latency));
      metrics.counter("deadline_miss/" + scheme).inc(outcome.deadline_misses);
    }
  }
  std::printf("%s\n", table.render().c_str());

  const std::string json_path = obs::write_bench_json(metrics, "sec25_fire_alarm");
  if (!json_path.empty()) std::printf("machine-readable results: %s\n\n", json_path.c_str());

  std::printf("Paper claims reproduced:\n");
  std::printf(" * atomic MP over 1 GB runs ~7 s; a fire during MP waits for t_e,\n");
  std::printf("   so the alarm is seconds late (\"disastrous consequences\");\n");
  std::printf(" * interruptible MP keeps the alarm latency at the sensor period\n");
  std::printf("   (1 s) plus one block measurement, at any memory size;\n");
  std::printf(" * the measurement itself still completes and verifies.\n");
  return 0;
}
