/// Section 2.5 reproduction: the fire-alarm worked example.  A bare-metal
/// sensor-actuator application samples a temperature sensor every second;
/// attestation of ~1 GB takes ~7 s on the calibrated prover.  Under
/// SMART-style atomic MP, a fire that breaks out just after MP starts is
/// only noticed once MP finishes; interruptible MP bounds the alarm
/// latency by one sensor period plus one block measurement.

#include <cstdio>

#include "src/apps/scenario.hpp"
#include "src/support/table.hpp"

using namespace rasc;

int main() {
  std::printf("=== Section 2.5: fire alarm vs. attestation ===\n");
  std::printf("Sensor period 1 s; fire breaks out 100 ms after MP starts.\n\n");

  support::Table table({"memory", "MP mode", "MP duration", "alarm latency",
                        "max sensor delay", "attestation"});

  const struct {
    std::uint64_t bytes;
    const char* label;
  } memories[] = {
      {100ull << 20, "100 MB"},
      {512ull << 20, "512 MB"},
      {1ull << 30, "1 GB"},
      {2ull << 30, "2 GB"},
  };

  for (const auto& memory : memories) {
    for (attest::ExecutionMode mode :
         {attest::ExecutionMode::kAtomic, attest::ExecutionMode::kInterruptible}) {
      apps::FireAlarmScenarioConfig config;
      config.modeled_memory_bytes = memory.bytes;
      config.mode = mode;
      const auto outcome = apps::run_fire_alarm_scenario(config);
      table.add_row({memory.label, attest::execution_mode_name(mode),
                     sim::format_duration(outcome.measurement_duration),
                     sim::format_duration(outcome.alarm_latency),
                     sim::format_duration(outcome.max_sample_delay),
                     outcome.attestation_ok ? "PASS" : "FAIL"});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Paper claims reproduced:\n");
  std::printf(" * atomic MP over 1 GB runs ~7 s; a fire during MP waits for t_e,\n");
  std::printf("   so the alarm is seconds late (\"disastrous consequences\");\n");
  std::printf(" * interruptible MP keeps the alarm latency at the sensor period\n");
  std::printf("   (1 s) plus one block measurement, at any memory size;\n");
  std::printf(" * the measurement itself still completes and verifies.\n");
  return 0;
}
