/// google-benchmark microbenchmarks of the cryptographic substrate.

#include <benchmark/benchmark.h>

#include "src/attest/measurement.hpp"
#include "src/bignum/prime.hpp"
#include "src/crypto/cbcmac.hpp"
#include "src/crypto/drbg.hpp"
#include "src/crypto/ecdsa.hpp"
#include "src/crypto/hmac.hpp"
#include "src/crypto/lanes.hpp"
#include "src/crypto/rsa.hpp"
#include "src/support/rng.hpp"

namespace {

using namespace rasc;

support::Bytes random_bytes(std::size_t n, std::uint64_t seed = 1) {
  support::Xoshiro256 rng(seed);
  support::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

void BM_Hash(benchmark::State& state) {
  const auto kind = static_cast<crypto::HashKind>(state.range(0));
  const auto data = random_bytes(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hash_oneshot(kind, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
  state.SetLabel(crypto::hash_name(kind));
}
BENCHMARK(BM_Hash)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 10, 64 << 10, 1 << 20}});

/// Multi-lane digesting: N independent 4 KiB messages per wave.  lanes=1
/// is the reused-state scalar loop (BlockDigester's per-block baseline);
/// lanes=4/8 go through LaneHasher on the auto-selected backend.
template <std::size_t N>
void lane_rows(benchmark::State& state, crypto::HashKind kind) {
  constexpr std::size_t kMsg = 4096;
  const auto pool = random_bytes(kMsg * N);
  support::Bytes sink(64 * N);
  support::ByteView views[N];
  support::MutableByteView outs[N];
  const std::size_t digest_size = crypto::hash_digest_size(kind);
  for (std::size_t l = 0; l < N; ++l) {
    views[l] = support::ByteView(pool.data() + l * kMsg, kMsg);
    outs[l] = support::MutableByteView(sink.data() + l * digest_size, digest_size);
  }
  if constexpr (N == 1) {
    auto hasher = crypto::make_hash(kind);
    for (auto _ : state) {
      crypto::hash_oneshot_into(*hasher, views[0], outs[0]);
      benchmark::DoNotOptimize(sink.data());
    }
    state.SetLabel(crypto::hash_name(kind) + "/scalar");
  } else {
    crypto::LaneHasher<N> lanes(kind);
    for (auto _ : state) {
      lanes.digest(std::span<const support::ByteView>(views, N),
                   std::span<const support::MutableByteView>(outs, N));
      benchmark::DoNotOptimize(sink.data());
    }
    state.SetLabel(crypto::hash_name(kind) + "/" +
                   crypto::lane_backend_name(lanes.backend()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kMsg * N);
}

void BM_LaneHash(benchmark::State& state) {
  const auto kind = static_cast<crypto::HashKind>(state.range(0));
  switch (state.range(1)) {
    case 1: lane_rows<1>(state, kind); break;
    case 4: lane_rows<4>(state, kind); break;
    default: lane_rows<8>(state, kind); break;
  }
}
BENCHMARK(BM_LaneHash)
    ->ArgsProduct({{0, 3}, {1, 4, 8}});  // SHA-256, BLAKE2s x lanes

/// Per-block digest F cost at the exact measurement block sizes: the
/// encryption-based F (AES-CBC-MAC) vs the hash-based F (unkeyed SHA-256 /
/// BLAKE2s), through the same reusable BlockDigester the prover runs.
void BM_BlockDigestF(benchmark::State& state) {
  const auto mac = static_cast<attest::MacKind>(state.range(0));
  const auto kind = static_cast<crypto::HashKind>(state.range(1));
  const auto block_size = static_cast<std::size_t>(state.range(2));
  const auto key = random_bytes(16);
  const auto block = random_bytes(block_size);
  attest::BlockDigester digester(mac, kind, key);
  attest::Digest out;
  for (auto _ : state) {
    digester.digest(block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block_size));
  state.SetLabel(attest::mac_kind_name(mac) + "/" + crypto::hash_name(kind));
  state.counters["blocks/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockDigestF)
    ->ArgsProduct({{0, 1}, {0, 3}, {64, 4096}});  // F x hash x block size

void BM_HmacSha256(benchmark::State& state) {
  const auto key = random_bytes(32);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Hmac::compute(crypto::HashKind::kSha256, key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(1 << 10)->Arg(1 << 20);

void BM_AesCbcMac(benchmark::State& state) {
  const auto key = random_bytes(16);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::CbcMac::compute(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCbcMac)->Arg(1 << 10)->Arg(64 << 10);

void BM_DrbgGenerate(benchmark::State& state) {
  crypto::HmacDrbg drbg(random_bytes(32));
  support::Bytes out(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    drbg.generate(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DrbgGenerate)->Arg(32)->Arg(4096);

void BM_EcdsaSign(benchmark::State& state) {
  const auto curve = static_cast<crypto::CurveId>(state.range(0));
  crypto::HmacDrbg drbg(random_bytes(32, 7));
  const auto key = crypto::ecdsa_generate_key(curve, drbg);
  const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha256, random_bytes(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ecdsa_sign(key, digest));
  }
  state.SetLabel(crypto::curve_name(curve));
}
BENCHMARK(BM_EcdsaSign)->Arg(0)->Arg(1)->Arg(2);

void BM_EcdsaVerify(benchmark::State& state) {
  const auto curve = static_cast<crypto::CurveId>(state.range(0));
  crypto::HmacDrbg drbg(random_bytes(32, 8));
  const auto key = crypto::ecdsa_generate_key(curve, drbg);
  const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha256, random_bytes(64));
  const auto sig = crypto::ecdsa_sign(key, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ecdsa_verify(curve, key.public_key, digest, sig));
  }
  state.SetLabel(crypto::curve_name(curve));
}
BENCHMARK(BM_EcdsaVerify)->Arg(0)->Arg(1)->Arg(2);

const crypto::RsaKeyPair& rsa_key(std::size_t bits) {
  static const crypto::RsaKeyPair k1024 = [] {
    crypto::HmacDrbg drbg(random_bytes(32, 1024));
    return crypto::rsa_generate_key(1024, drbg);
  }();
  static const crypto::RsaKeyPair k2048 = [] {
    crypto::HmacDrbg drbg(random_bytes(32, 2048));
    return crypto::rsa_generate_key(2048, drbg);
  }();
  return bits == 1024 ? k1024 : k2048;
}

void BM_RsaSign(benchmark::State& state) {
  const auto& key = rsa_key(static_cast<std::size_t>(state.range(0)));
  const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha256, random_bytes(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign_digest(key.priv, crypto::HashKind::kSha256,
                                                     digest));
  }
}
BENCHMARK(BM_RsaSign)->Arg(1024)->Arg(2048);

void BM_RsaVerify(benchmark::State& state) {
  const auto& key = rsa_key(static_cast<std::size_t>(state.range(0)));
  const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha256, random_bytes(64));
  const auto sig = crypto::rsa_sign_digest(key.priv, crypto::HashKind::kSha256, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::rsa_verify_digest(key.pub, crypto::HashKind::kSha256, digest, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(1024)->Arg(2048);

void BM_MillerRabin256(benchmark::State& state) {
  crypto::HmacDrbg drbg(random_bytes(32, 9));
  auto source = drbg.byte_source();
  const bn::Bignum prime = bn::generate_prime(256, source, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn::is_probable_prime(prime, 5, source));
  }
}
BENCHMARK(BM_MillerRabin256);

}  // namespace
