/// Multi-lane digest gate: identity, throughput and per-block MAC cost for
/// the lane-packed crypto hot path (src/crypto/lanes.hpp).
///
/// Three sections, all folded into BENCH_crypto_lanes.json:
///
///  1. Identity sweep — every (hash, lane-count, backend, length) cell,
///     including staggered per-lane lengths, must produce digests
///     byte-identical to the scalar path.  Deterministic; a fingerprint of
///     the scalar digests is emitted so the baseline gate catches silent
///     digest drift across platforms, not just lane/scalar divergence.
///  2. Lane throughput — lanes=1 (reused scalar state) vs LaneHasher<4>
///     and LaneHasher<8> on the portable fallback and, when compiled, the
///     SIMD backend.  Best-of-K timing; exits non-zero unless portable
///     4-way SHA-256 is at least 2x the scalar loop (the ISSUE 9
///     acceptance bar; ratios are taken within one process run so they
///     survive noisy CI machines).
///  3. Per-block MAC cost — CBC-MAC vs HMAC-SHA256 vs BLAKE2s through
///     BlockDigester::digest at the exact measurement block sizes (64 B
///     fleet blocks, 4096 B micro_measurement blocks), in blocks/s.
///
/// Wall-clock leaves ("seconds", "per_s") are machine-dependent; CI diffs
/// the artifact with those ignored and only the deterministic leaves and
/// (loosely) the speedups gated — see .github/workflows/ci.yml.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/attest/measurement.hpp"
#include "src/crypto/hash.hpp"
#include "src/crypto/lanes.hpp"
#include "src/obs/bench_io.hpp"
#include "src/obs/metrics.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

bool expect(bool condition, const char* what) {
  std::printf("  [%s] %s\n", condition ? "ok" : "FAIL", what);
  return condition;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

support::Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  support::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::string hash_label(crypto::HashKind kind) {
  return kind == crypto::HashKind::kSha256 ? "sha256" : "blake2s";
}

// --- 1. identity -----------------------------------------------------------

/// Run every lane configuration over `lens` (uniform and staggered) and
/// compare against the scalar digests.  Returns cells checked; failures
/// are counted into `failures`.  XORs the first 8 bytes of every scalar
/// digest into `fingerprint` (deterministic across platforms).
template <std::size_t N>
std::size_t identity_cells(crypto::HashKind kind, crypto::LaneBackend backend,
                           const std::vector<std::size_t>& lens,
                           std::size_t& failures, std::uint64_t& fingerprint) {
  const std::size_t digest_size = crypto::hash_digest_size(kind);
  auto hasher = crypto::make_hash(kind);
  std::size_t cells = 0;
  // One uniform pack per length plus one staggered pack ((len*(l+1))/N per
  // lane) — the staggered pack forces the divergent scalar-tail path.
  for (const bool staggered : {false, true}) {
    for (const std::size_t len : lens) {
      support::Bytes messages[N];
      support::Bytes expected[N];
      support::Bytes actual[N];
      support::ByteView views[N];
      support::MutableByteView outs[N];
      for (std::size_t l = 0; l < N; ++l) {
        const std::size_t lane_len = staggered ? (len * (l + 1)) / N : len;
        messages[l] = random_bytes(lane_len, 0x1a5e + 977 * len + l);
        expected[l].resize(digest_size);
        actual[l].resize(digest_size);
        crypto::hash_oneshot_into(*hasher, messages[l],
                                  support::MutableByteView(expected[l]));
        views[l] = messages[l];
        outs[l] = support::MutableByteView(actual[l]);
        for (std::size_t i = 0; i + 8 <= digest_size; i += 8) {
          std::uint64_t word = 0;
          for (std::size_t b = 0; b < 8; ++b) {
            word = (word << 8) | expected[l][i + b];
          }
          // Multiply-accumulate (not XOR): repeated identical digests must
          // not cancel out of the fold.
          fingerprint = fingerprint * 0x100000001b3ull + word;
        }
      }
      crypto::LaneHasher<N> lanes(kind, backend);
      lanes.digest(std::span<const support::ByteView>(views, N),
                   std::span<const support::MutableByteView>(outs, N));
      for (std::size_t l = 0; l < N; ++l) {
        ++cells;
        if (actual[l] != expected[l]) ++failures;
      }
    }
  }
  return cells;
}

// --- 2. throughput ---------------------------------------------------------

constexpr std::size_t kMsgBytes = 4096;
constexpr std::size_t kMsgCount = 2048;  ///< per rep; 8 MiB hashed per rep
constexpr int kReps = 7;                 ///< best-of, for noisy machines

struct Throughput {
  double seconds = 0.0;   ///< best rep
  double mb_per_s = 0.0;
};

Throughput best_of(const std::function<void()>& rep) {
  double best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    const double start = now_seconds();
    rep();
    best = std::min(best, now_seconds() - start);
  }
  return {best, static_cast<double>(kMsgBytes * kMsgCount) / best / 1e6};
}

/// Scalar loop with one reused hash state (the allocation-free baseline —
/// what BlockDigester's scalar path does per block).
Throughput scalar_throughput(crypto::HashKind kind, const support::Bytes& pool,
                             support::Bytes& sink) {
  auto hasher = crypto::make_hash(kind);
  const std::size_t digest_size = hasher->digest_size();
  return best_of([&] {
    for (std::size_t m = 0; m < kMsgCount; ++m) {
      crypto::hash_oneshot_into(
          *hasher, support::ByteView(pool.data() + m * kMsgBytes, kMsgBytes),
          support::MutableByteView(sink.data() + m * digest_size, digest_size));
    }
  });
}

template <std::size_t N>
Throughput lane_throughput(crypto::HashKind kind, crypto::LaneBackend backend,
                           const support::Bytes& pool, support::Bytes& sink) {
  crypto::LaneHasher<N> lanes(kind, backend);
  const std::size_t digest_size = lanes.digest_size();
  support::ByteView views[N];
  support::MutableByteView outs[N];
  return best_of([&] {
    for (std::size_t m = 0; m + N <= kMsgCount; m += N) {
      for (std::size_t l = 0; l < N; ++l) {
        views[l] = support::ByteView(pool.data() + (m + l) * kMsgBytes, kMsgBytes);
        outs[l] =
            support::MutableByteView(sink.data() + (m + l) * digest_size, digest_size);
      }
      lanes.digest(std::span<const support::ByteView>(views, N),
                   std::span<const support::MutableByteView>(outs, N));
    }
  });
}

// --- 3. per-block MAC cost -------------------------------------------------

double block_mac_blocks_per_s(attest::MacKind mac, crypto::HashKind hash,
                              const support::Bytes& key, std::size_t block_size,
                              const support::Bytes& pool) {
  attest::BlockDigester digester(mac, hash, key);
  attest::Digest out;
  const std::size_t blocks = pool.size() / block_size;
  const Throughput t = best_of([&] {
    // Same total bytes as the lane section so one rep is comparable.
    for (std::size_t pass = 0; pass * blocks * block_size <
                               kMsgBytes * kMsgCount;
         ++pass) {
      for (std::size_t b = 0; b < blocks; ++b) {
        digester.digest(support::ByteView(pool.data() + b * block_size, block_size),
                        out);
      }
    }
  });
  const double passes =
      static_cast<double>(kMsgBytes * kMsgCount) / (blocks * block_size);
  return static_cast<double>(blocks) * passes / t.seconds;
}

}  // namespace

int main() {
  std::printf("=== multi-lane digest gate ===\n");
  std::printf("backends: portable%s%s; auto packs %zu lanes (%s)\n\n",
              crypto::simd_compiled() ? ", simd" : "",
              crypto::avx2_active() ? " (avx2)" : "",
              crypto::preferred_lanes(), crypto::lane_backend_name());

  obs::MetricsRegistry registry;
  bool ok = true;

  const std::vector<std::size_t> lens = {0, 1, 55, 63, 64, 65, 127, 128, 4096, 5000};
  const std::vector<crypto::HashKind> kinds = {crypto::HashKind::kSha256,
                                               crypto::HashKind::kBlake2s};
  std::vector<crypto::LaneBackend> backends = {crypto::LaneBackend::kPortable};
  if (crypto::simd_compiled()) backends.push_back(crypto::LaneBackend::kSimd);

  // 1. identity
  std::size_t cells = 0;
  std::size_t failures = 0;
  std::uint64_t fingerprint = 0;
  for (const auto kind : kinds) {
    for (const auto backend : backends) {
      cells += identity_cells<2>(kind, backend, lens, failures, fingerprint);
      cells += identity_cells<4>(kind, backend, lens, failures, fingerprint);
      cells += identity_cells<8>(kind, backend, lens, failures, fingerprint);
    }
  }
  registry.gauge("crypto_lanes.identity_cells").set(static_cast<double>(cells));
  registry.gauge("crypto_lanes.identity_failures").set(static_cast<double>(failures));
  // Fold to 52 bits so the value survives the double-typed metrics gauge.
  registry.gauge("crypto_lanes.digest_fingerprint")
      .set(static_cast<double>(fingerprint & ((std::uint64_t{1} << 52) - 1)));
  char line[128];
  std::snprintf(line, sizeof(line), "lane digests byte-identical to scalar (%zu cells)",
                cells);
  ok &= expect(failures == 0, line);

  // 2. throughput
  const support::Bytes pool = random_bytes(kMsgBytes * kMsgCount, 0xfeed);
  support::Bytes sink(kMsgCount * 32);
  double sha256_portable_x4 = 0.0;
  support::Table table(
      {"hash", "backend", "lanes", "best s", "MB/s", "speedup"});
  for (const auto kind : kinds) {
    const std::string label = hash_label(kind);
    const Throughput scalar = scalar_throughput(kind, pool, sink);
    registry.gauge("crypto_lanes." + label + ".scalar_seconds").set(scalar.seconds);
    registry.gauge("crypto_lanes." + label + ".scalar_mb_per_s").set(scalar.mb_per_s);
    table.add_row({label, "scalar", "1", support::fmt_double(scalar.seconds, 4),
                   support::fmt_double(scalar.mb_per_s, 1), "1.0"});
    for (const auto backend : backends) {
      const bool portable = backend == crypto::LaneBackend::kPortable;
      const std::string bname =
          portable ? "portable" : crypto::lane_backend_name(backend);
      const Throughput x4 = lane_throughput<4>(kind, backend, pool, sink);
      const Throughput x8 = lane_throughput<8>(kind, backend, pool, sink);
      const double s4 = scalar.seconds / x4.seconds;
      const double s8 = scalar.seconds / x8.seconds;
      if (portable && kind == crypto::HashKind::kSha256) sha256_portable_x4 = s4;
      registry.gauge("crypto_lanes." + label + "." + bname + "_x4_speedup").set(s4);
      registry.gauge("crypto_lanes." + label + "." + bname + "_x8_speedup").set(s8);
      registry.gauge("crypto_lanes." + label + "." + bname + "_x8_mb_per_s")
          .set(x8.mb_per_s);
      table.add_row({label, bname, "4", support::fmt_double(x4.seconds, 4),
                     support::fmt_double(x4.mb_per_s, 1), support::fmt_double(s4, 2)});
      table.add_row({label, bname, "8", support::fmt_double(x8.seconds, 4),
                     support::fmt_double(x8.mb_per_s, 1), support::fmt_double(s8, 2)});
    }
  }
  std::printf("\n%s\n", table.render().c_str());
  std::snprintf(line, sizeof(line),
                "portable 4-way SHA-256 >= 2x scalar (measured %.2fx)",
                sha256_portable_x4);
  ok &= expect(sha256_portable_x4 >= 2.0, line);

  // 3. per-block MAC cost at the measurement block sizes
  const support::Bytes key = random_bytes(16, 0x6e7);
  support::Table mac_table({"F", "block B", "blocks/s"});
  for (const std::size_t block_size : {std::size_t{64}, std::size_t{4096}}) {
    struct Row {
      const char* label;
      attest::MacKind mac;
      crypto::HashKind hash;
    };
    const Row rows[] = {
        {"cbcmac_aes", attest::MacKind::kCbcMac, crypto::HashKind::kSha256},
        {"hash_sha256", attest::MacKind::kHmac, crypto::HashKind::kSha256},
        {"hash_blake2s", attest::MacKind::kHmac, crypto::HashKind::kBlake2s},
    };
    for (const Row& row : rows) {
      const double bps = block_mac_blocks_per_s(row.mac, row.hash, key, block_size, pool);
      registry
          .gauge("crypto_lanes.block_mac." + std::string(row.label) + "_" +
                 std::to_string(block_size) + "_blocks_per_s")
          .set(bps);
      mac_table.add_row({row.label, std::to_string(block_size),
                         support::fmt_double(bps / 1e3, 1) + "k"});
    }
  }
  std::printf("%s\n", mac_table.render().c_str());

  registry.gauge("crypto_lanes.simd_compiled")
      .set(crypto::simd_compiled() ? 1.0 : 0.0);

  const std::string path = obs::write_bench_json(registry, "crypto_lanes");
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());

  if (!ok) {
    std::fprintf(stderr, "FAIL: lane identity or speedup gate failed\n");
    return 1;
  }
  return 0;
}
