/// Table 1 reproduction: the feature matrix of the solution landscape.
/// Every detection / availability / consistency cell is *measured* by
/// running the corresponding adversary or workload through the full
/// simulated stack; qualitative columns (extra hardware, unattended
/// operation) restate the mechanism's design properties.

#include <cstdio>

#include "src/apps/scenario.hpp"
#include "src/apps/tytan.hpp"
#include "src/malware/transient.hpp"
#include "src/selfmeasure/erasmus.hpp"
#include "src/smarm/escape.hpp"
#include "src/smarm/runner.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

struct RowEvidence {
  std::string reloc;
  std::string transient;
  std::string availability;
  std::string consistency;
  std::string interruptible;
  std::string unattended;
  std::string extra_hw;
  std::string overhead;
};

apps::LockScenarioConfig base_config() {
  apps::LockScenarioConfig config;
  config.blocks = 64;
  config.block_size = 1024;
  config.mode = attest::ExecutionMode::kInterruptible;
  return config;
}

std::string detect_cell(bool detected) { return detected ? "YES (detected)" : "NO (escaped)"; }

/// Evidence for one locking mechanism (or the SMART baseline).
RowEvidence lock_row(locking::LockMechanism lock, attest::ExecutionMode mode) {
  RowEvidence row;

  auto config = base_config();
  config.mode = mode;
  config.lock = lock;
  config.adversary = apps::AdversaryKind::kRelocChase;
  row.reloc = detect_cell(apps::run_lock_scenario(config).detected);

  config.adversary = apps::AdversaryKind::kTransientLeaver;
  row.transient = detect_cell(apps::run_lock_scenario(config).detected);

  config.adversary = apps::AdversaryKind::kNone;
  config.writer_enabled = true;
  const auto with_writer = apps::run_lock_scenario(config);
  if (mode == attest::ExecutionMode::kAtomic) {
    row.availability = "none (CPU held)";
  } else {
    row.availability = support::fmt_percent(with_writer.writer_availability, 0) +
                       " writes admitted";
  }
  std::string consistency;
  if (with_writer.consistency.at_ts) consistency += "t_s ";
  if (with_writer.consistency.at_te) consistency += "t_e ";
  if (with_writer.consistency.at_tr) consistency += "t_r";
  row.consistency = consistency.empty() ? "none" : consistency;
  row.interruptible = mode == attest::ExecutionMode::kInterruptible ? "yes" : "no";
  row.unattended = "no (on-demand)";
  row.overhead = sim::format_duration(with_writer.measurement_duration);
  return row;
}

}  // namespace

int main() {
  std::printf("=== Table 1: features of the solution landscape (measured) ===\n");
  std::printf("Workload: 64-block device, sequential interruptible MP unless noted;\n");
  std::printf("adversaries: half-copy self-relocating, mid-measurement transient.\n\n");

  support::Table table({"solution", "self-reloc.", "transient", "writable mem.",
                        "consistent at", "interruptible", "unattended", "extra HW",
                        "overhead"});

  // -- Baseline: SMART-based on-demand RA (atomic, no locks) ---------------
  {
    RowEvidence row = lock_row(locking::LockMechanism::kNoLock,
                               attest::ExecutionMode::kAtomic);
    row.extra_hw = "baseline (ROM+key rules)";
    table.add_row({"SMART baseline (atomic)", row.reloc, row.transient, row.availability,
                   row.consistency, row.interruptible, row.unattended, row.extra_hw,
                   row.overhead});
  }

  // -- Memory locking -------------------------------------------------------
  for (locking::LockMechanism lock :
       {locking::LockMechanism::kAllLock, locking::LockMechanism::kDecLock,
        locking::LockMechanism::kIncLock}) {
    RowEvidence row = lock_row(lock, attest::ExecutionMode::kInterruptible);
    row.extra_hw = "configurable MPU/MMU";
    table.add_row({lock_mechanism_name(lock), row.reloc, row.transient, row.availability,
                   row.consistency, row.interruptible, row.unattended, row.extra_hw,
                   row.overhead});
  }

  // -- Shuffled measurement (SMARM) -----------------------------------------
  {
    smarm::RunnerConfig config;
    config.blocks = 16;
    config.block_size = 1024;
    const double escape = smarm::full_stack_single_round_escape(config, 600);
    const double analytic = smarm::single_round_escape(config.blocks);
    const std::size_t rounds = smarm::rounds_for_target(config.blocks, 1e-6);

    apps::LockScenarioConfig t_config = base_config();
    t_config.order = attest::TraversalOrder::kShuffledSecret;
    t_config.adversary = apps::AdversaryKind::kTransientLeaver;
    const bool transient_detected = apps::run_lock_scenario(t_config).detected;

    char reloc[96];
    std::snprintf(reloc, sizeof(reloc), "YES w.p. %.2f/round (1/e: %.2f)", 1 - escape,
                  1 - analytic);
    char overhead[96];
    std::snprintf(overhead, sizeof(overhead), "high: %zu rounds for 1e-6", rounds);
    table.add_row({"Shuffled (SMARM)", reloc, detect_cell(transient_detected),
                   "100% writes admitted", "none", "yes", "no (on-demand)",
                   "none (opt. secure mem.)", overhead});
  }

  // -- Self-measurement (ERASMUS) -------------------------------------------
  {
    // Roving malware vs. atomic self-measurements: cannot move, detected.
    smarm::RunnerConfig r_config;
    r_config.blocks = 16;
    r_config.block_size = 1024;
    r_config.mode = attest::ExecutionMode::kAtomic;
    r_config.order = attest::TraversalOrder::kSequential;
    r_config.rounds = 1;
    const bool reloc_detected = smarm::run_rounds(r_config).detections > 0;

    // Transient overlapping a scheduled self-measurement.
    sim::Simulator simulator;
    sim::Device device(simulator, sim::DeviceConfig{"prv-er", 16 * 1024, 1024,
                                                    support::to_bytes("t1-key")});
    support::Xoshiro256 rng(5);
    support::Bytes image(device.memory().size());
    for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
    device.memory().load(image);
    attest::Verifier verifier(crypto::HashKind::kSha256, support::to_bytes("t1-key"),
                              device.memory().snapshot(), 1024);
    selfm::ErasmusConfig e_config;
    e_config.period = 50 * sim::kMillisecond;
    e_config.mode = attest::ExecutionMode::kAtomic;
    selfm::ErasmusProver prover(device, e_config);
    malware::TransientConfig mc;
    mc.block = 9;
    mc.infect_at = 60 * sim::kMillisecond;
    mc.dwell = 120 * sim::kMillisecond;
    malware::TransientMalware transient(device, mc);
    transient.arm();
    prover.start(sim::from_seconds(0.5));
    simulator.run();
    bool transient_detected = false;
    for (const auto& report : prover.history()) {
      if (!verifier.verify(report, false).ok()) transient_detected = true;
    }

    table.add_row({"Self-measurement (ERASMUS)", detect_cell(reloc_detected),
                   detect_cell(transient_detected) + " (T_M window)",
                   "none during MP (CPU held)", "t_s t_e", "no (context-aware sched.)",
                   "YES", "secure clock", "amortized (off critical path)"});
  }

  std::printf("%s\n", table.render().c_str());

  // -- Section 3.1 aside: TyTAN per-process measurement ----------------------
  {
    apps::TytanConfig single;
    single.colluding = false;
    const auto caught = apps::run_tytan_scenario(single);
    apps::TytanConfig colluding;
    colluding.colluding = true;
    const auto escaped = apps::run_tytan_scenario(colluding);
    std::printf("TyTAN-style per-process measurement (Sec. 3.1):\n");
    std::printf(" * single-process malware: %s (its region is frozen while measured)\n",
                caught.detected ? "DETECTED" : "escaped");
    std::printf(" * colluding two-process malware: %s after %zu cross-region moves\n",
                escaped.malware_escaped ? "ESCAPED" : "detected", escaped.relocations);
    std::printf("   (requires violating process isolation, as the paper notes)\n\n");
  }

  // -- Extension: Cpy-Lock (snapshot-based, from [5]) -------------------------
  {
    apps::LockScenarioConfig config = base_config();
    config.lock = locking::LockMechanism::kCpyLock;
    config.adversary = apps::AdversaryKind::kRelocChase;
    const bool reloc = apps::run_lock_scenario(config).detected;
    config.adversary = apps::AdversaryKind::kTransientLeaver;
    const bool transient = apps::run_lock_scenario(config).detected;
    config.adversary = apps::AdversaryKind::kNone;
    config.writer_enabled = true;
    const auto avail = apps::run_lock_scenario(config);
    std::printf("Extension row — Cpy-Lock (snapshot-based mechanism from [5]):\n");
    std::printf(" * self-relocating: %s, transient: %s, availability: %s,\n",
                reloc ? "DETECTED" : "escaped", transient ? "DETECTED" : "escaped",
                support::fmt_percent(avail.writer_availability, 0).c_str());
    std::printf("   consistent at t_s; costs one region copy + 2x transient memory.\n\n");
  }

  std::printf("Paper Table 1 claims checked:\n");
  std::printf(" * baseline & All-Lock detect both adversaries but sacrifice\n");
  std::printf("   availability; No-Lock+interrupts (TrustLite scenario) fails;\n");
  std::printf(" * Dec-Lock detects transient (consistent at t_s), Inc-Lock does\n");
  std::printf("   not (consistent at t_e only); both restore partial availability;\n");
  std::printf(" * SMARM detects self-relocating malware with high probability per\n");
  std::printf("   round, needs no locking, costs multiple rounds;\n");
  std::printf(" * ERASMUS handles unattended operation; detection window = T_M.\n");
  return 0;
}
