/// Ablation: the measurement block size is the library's central design
/// knob (DESIGN.md).  It trades off:
///   - interrupt latency (one block measurement is the non-preemptible
///     unit of an interruptible MP),
///   - per-block overheads (lock syscalls, SMARM permutation storage),
///   - SMARM's escape probability (more blocks -> closer to e^-1 per
///     round, but also more per-round moves for the malware).

#include <cstdio>
#include <vector>

#include "src/apps/scenario.hpp"
#include "src/smarm/escape.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

struct Row {
  std::size_t block_size;
  std::size_t blocks;
  sim::Duration block_cost;
  sim::Duration duration;
  double escape;
};

}  // namespace

int main() {
  std::printf("=== Ablation: measurement block size ===\n");
  std::printf("Fixed 1 MiB attested memory, SHA-256, interruptible MP.\n\n");

  constexpr std::size_t kMemory = 1 << 20;
  std::vector<Row> rows;
  for (std::size_t block_size : {1024u, 4096u, 16384u, 65536u}) {
    apps::LockScenarioConfig config;
    config.blocks = kMemory / block_size;
    config.block_size = block_size;
    config.mode = attest::ExecutionMode::kInterruptible;
    const auto outcome = apps::run_lock_scenario(config);

    sim::Simulator probe_sim;
    sim::Device probe(probe_sim, sim::DeviceConfig{"probe", kMemory, block_size,
                                                   support::to_bytes("k")});
    attest::ProverConfig pc;
    pc.mode = attest::ExecutionMode::kInterruptible;
    attest::AttestationProcess mp(probe, pc);

    rows.push_back(Row{block_size, config.blocks, mp.block_cost(),
                       outcome.measurement_duration,
                       smarm::single_round_escape(config.blocks)});
  }
  const double base_duration = static_cast<double>(rows.back().duration);

  support::Table table({"block size", "blocks n", "block cost (interrupt latency)",
                        "MP duration", "overhead vs 64KiB", "SMARM escape/round",
                        "perm. storage"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.block_size / 1024) + " KiB",
                   std::to_string(row.blocks), sim::format_duration(row.block_cost),
                   sim::format_duration(row.duration),
                   support::fmt_percent(
                       static_cast<double>(row.duration) / base_duration - 1.0, 1),
                   support::fmt_double(row.escape, 3),
                   std::to_string(row.blocks * 8) + " B"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Reading the ablation:\n");
  std::printf(" * small blocks: microsecond interrupt latency and SMARM escape\n");
  std::printf("   closest to the e^-1 bound, but per-block overhead (lock syscall,\n");
  std::printf("   state save) inflates total MP time and permutation storage;\n");
  std::printf(" * large blocks: negligible overhead but the critical task can be\n");
  std::printf("   stalled for a whole block measurement — the knob interpolates\n");
  std::printf("   between SMART (one giant block) and fine-grained TrustLite.\n");
  return 0;
}
