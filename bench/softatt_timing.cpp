/// Section 2.1 (software-based RA) reproduction: Pioneer/SWATT-style
/// timing attestation.  An honest prover answers in the expected time; a
/// memory-shadowing adversary returns the right checksum but pays a
/// per-access penalty and misses the deadline.  The scheme's fragility
/// ("security of this approach is uncertain", citing [8]) appears as soon
/// as network jitter or deadline slack grows past the timing gap.

#include <cstdio>

#include "src/softatt/protocol.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

struct RunResult {
  softatt::SoftAttOutcome honest_clean;
  softatt::SoftAttOutcome honest_infected;
  softatt::SoftAttOutcome shadowing;
};

RunResult run_with(sim::Duration jitter, sim::Duration slack) {
  RunResult out;
  for (int which = 0; which < 3; ++which) {
    sim::Simulator simulator;
    sim::Device device(simulator,
                       sim::DeviceConfig{"prv-sw", 64 * 1024, 1024,
                                         support::to_bytes("k")});
    support::Xoshiro256 rng(6);
    support::Bytes golden(device.memory().size());
    for (auto& b : golden) b = static_cast<std::uint8_t>(rng.below(256));
    device.memory().load(golden);

    sim::LinkConfig lc;
    lc.base_latency = sim::kMillisecond;
    lc.jitter = jitter;
    lc.bytes_per_second = 0;
    lc.seed = 5 + static_cast<std::uint64_t>(which);
    sim::Link down(simulator, lc), up(simulator, lc);

    softatt::SoftAttConfig config;
    config.deadline_slack = slack;
    softatt::SoftwareAttestation protocol(device, golden, down, up, config);

    softatt::ProverBehavior behavior = softatt::ProverBehavior::kHonest;
    if (which == 1) {
      (void)device.memory().write(7777, support::to_bytes("malware"), 0,
                                  sim::Actor::kMalware);
    }
    if (which == 2) {
      (void)device.memory().write(7777, support::to_bytes("malware"), 0,
                                  sim::Actor::kMalware);
      behavior = softatt::ProverBehavior::kShadowing;
    }
    softatt::SoftAttOutcome outcome;
    protocol.run(behavior, 1, [&](softatt::SoftAttOutcome o) { outcome = o; });
    simulator.run();
    if (which == 0) out.honest_clean = outcome;
    if (which == 1) out.honest_infected = outcome;
    if (which == 2) out.shadowing = outcome;
  }
  return out;
}

std::string verdict(const softatt::SoftAttOutcome& o) {
  std::string s = o.accepted ? "ACCEPT" : "reject";
  s += o.checksum_ok ? " (value ok" : " (value BAD";
  s += o.on_time ? ", on time)" : ", LATE)";
  return s;
}

}  // namespace

int main() {
  std::printf("=== Software-based RA: checksum + timing (Pioneer/SWATT) ===\n");
  std::printf("64 KiB prover, 4n pseudorandom reads, shadowing overhead 1.30x.\n\n");

  std::printf("--- tight timing (no jitter, 0.5 ms slack) ---\n");
  {
    const auto r = run_with(0, 500 * sim::kMicrosecond);
    support::Table t({"prover", "response", "deadline", "verdict"});
    t.add_row({"honest, clean", sim::format_duration(r.honest_clean.response_time),
               sim::format_duration(r.honest_clean.deadline), verdict(r.honest_clean)});
    t.add_row({"honest, infected", sim::format_duration(r.honest_infected.response_time),
               sim::format_duration(r.honest_infected.deadline),
               verdict(r.honest_infected)});
    t.add_row({"shadowing malware", sim::format_duration(r.shadowing.response_time),
               sim::format_duration(r.shadowing.deadline), verdict(r.shadowing)});
    std::printf("%s\n", t.render().c_str());
  }

  std::printf("--- the fragility sweep: jitter / slack vs. shadowing detection ---\n");
  support::Table sweep({"network jitter", "deadline slack", "shadowing verdict",
                        "scheme sound?"});
  const struct {
    sim::Duration jitter;
    sim::Duration slack;
  } points[] = {
      {0, 500 * sim::kMicrosecond},
      {200 * sim::kMicrosecond, 500 * sim::kMicrosecond},
      {0, 2 * sim::kMillisecond},
      {0, 5 * sim::kMillisecond},
      {sim::kMillisecond, 2 * sim::kMillisecond},
      {0, sim::from_seconds(1)},
  };
  for (const auto& p : points) {
    const auto r = run_with(p.jitter, p.slack);
    const bool sound = !r.shadowing.accepted && r.honest_clean.accepted;
    sweep.add_row({sim::format_duration(p.jitter), sim::format_duration(p.slack),
                   verdict(r.shadowing), sound ? "yes" : "NO — evasion possible"});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf("With tight timing the 1.30x per-access penalty convicts the\n");
  std::printf("shadowing adversary; widen the deadline past the gap (~1.2 ms of\n");
  std::printf("compute here) and the correct-but-late answer is accepted — the\n");
  std::printf("strong-assumption caveat the paper raises about software-based RA.\n");
  return 0;
}
