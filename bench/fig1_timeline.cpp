/// Figure 1 reproduction: the timeline of one on-demand RA round —
/// Vrf sends the challenge-bearing request, Prv receives it, defers
/// (request authentication / task teardown), runs MP from t_s to t_e,
/// returns the report, and Vrf verifies it.

#include <cstdio>

#include "src/attest/protocol.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;

int main() {
  std::printf("=== Figure 1: on-demand RA timeline ===\n");
  std::printf("Device: 4 MiB attested memory, SHA-256 HMAC measurement,\n");
  std::printf("SMART-style atomic MP, 2 ms one-way network latency.\n\n");

  sim::Simulator simulator;
  sim::DeviceConfig dev_config;
  dev_config.id = "prv-0";
  dev_config.memory_size = 4u << 20;
  dev_config.block_size = 4096;
  dev_config.attestation_key = support::to_bytes("fig1-key");
  sim::Device device(simulator, dev_config);

  support::Xoshiro256 rng(1);
  support::Bytes image(device.memory().size());
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  device.memory().load(image);

  attest::Verifier verifier(crypto::HashKind::kSha256, dev_config.attestation_key,
                            device.memory().snapshot(), dev_config.block_size);
  attest::ProverConfig prover_config;
  prover_config.mode = attest::ExecutionMode::kAtomic;
  attest::AttestationProcess mp(device, prover_config);

  sim::Link vrf_to_prv(simulator, {});
  sim::Link prv_to_vrf(simulator, {});
  attest::OnDemandProtocol protocol(device, verifier, mp, vrf_to_prv, prv_to_vrf);

  attest::OnDemandTimings timings;
  bool done = false;
  protocol.run(1, [&](attest::OnDemandTimings t) {
    timings = t;
    done = true;
  });
  simulator.run();
  if (!done) {
    std::printf("protocol did not complete\n");
    return 1;
  }

  support::Table table({"event", "t (ms)", "delta (ms)"});
  sim::Time prev = timings.t_challenge_sent;
  auto row = [&](const char* label, sim::Time t) {
    table.add_row({label, support::fmt_double(sim::to_millis(t), 3),
                   support::fmt_double(sim::to_millis(t - prev), 3)});
    prev = t;
  };
  row("Vrf sends challenge-bearing request", timings.t_challenge_sent);
  row("Prv receives request", timings.t_request_received);
  row("Prv finishes request auth / deferral", timings.t_mp_started);
  row("t_s : MP starts (gray region begins)", timings.t_s);
  row("t_e : MP ends (gray region ends)", timings.t_e);
  row("Vrf receives attestation report", timings.t_report_received);
  row("Vrf verifies report", timings.t_verified);
  std::printf("%s\n", table.render().c_str());

  const double total = sim::to_millis(timings.t_verified - timings.t_challenge_sent);
  const double mp_ms = sim::to_millis(timings.t_e - timings.t_s);
  std::printf("MP computation (t_e - t_s): %.3f ms (%.1f%% of the round)\n", mp_ms,
              100.0 * mp_ms / total);
  std::printf("End-to-end round:           %.3f ms\n", total);
  std::printf("Verification outcome:       %s\n",
              timings.outcome.ok() ? "PASS (device clean)" : "FAIL");

  // ASCII timeline, Figure 1 style.
  std::printf("\nVrf  --req-->                                      <--report--  verify\n");
  std::printf("Prv          recv .. defer .. [===== MP =====] send\n");
  std::printf("                              t_s           t_e\n");
  return timings.outcome.ok() ? 0 : 1;
}
