/// Measurement hot path micro-bench: generation-tracked digest caching
/// under a dirty-fraction sweep.
///
/// For each dirty fraction, the prover re-measures the same device memory
/// repeatedly while an application dirties that fraction of blocks between
/// rounds.  With the cache, each round rehashes only the dirty blocks and
/// serves the rest from generation-matched cache slots; without it, every
/// round rehashes everything.  Both paths must produce byte-identical
/// measurements for every round — divergence is a correctness failure, not
/// noise, and exits non-zero.
///
/// A third column runs the same sweep through the Merkle-tree incremental
/// path (src/mtree): per round only the dirty blocks are re-digested and
/// O(dirty * log n) tree nodes re-hashed, and the *root* stands in for the
/// flat digest.  Tree and flat measurements live in different MAC domains
/// so their bytes differ by design; what must agree byte-for-byte is the
/// per-round *verdict* (measurement == the golden expectation for that
/// context), plus the incremental root must equal a from-scratch rebuild.
///
/// Also runs the `measurement_cache` campaign (deterministic identity +
/// hit-rate aggregates through the exp engine) and folds everything into
/// BENCH_measurement.json.  Exits non-zero if any identity check fails, if
/// repeated measurement at <=10% dirty blocks is not at least 5x faster
/// with the cache than without, or if the tree path is not at least 50x
/// faster than uncached at <=1% dirty blocks.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "src/apps/campaign.hpp"
#include "src/attest/digest_cache.hpp"
#include "src/attest/golden.hpp"
#include "src/attest/measurement.hpp"
#include "src/exp/report.hpp"
#include "src/mtree/incremental.hpp"
#include "src/obs/bench_io.hpp"
#include "src/obs/journal.hpp"
#include "src/sim/memory.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

bool expect(bool condition, const char* what) {
  std::printf("  [%s] %s\n", condition ? "ok" : "FAIL", what);
  return condition;
}

constexpr std::size_t kBlocks = 256;
constexpr std::size_t kBlockSize = 4096;
constexpr std::size_t kRounds = 40;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Identical dirtying stream for every column of one sweep point.
void dirty_round(sim::DeviceMemory& memory, support::Xoshiro256& rng,
                 std::size_t dirty_blocks, std::size_t round) {
  for (std::size_t d = 0; d < dirty_blocks; ++d) {
    const std::size_t block = static_cast<std::size_t>(rng.below(kBlocks));
    const support::Bytes patch{static_cast<std::uint8_t>(rng.below(256))};
    memory.write(block * kBlockSize + static_cast<std::size_t>(rng.below(kBlockSize)),
                 patch, /*now=*/static_cast<sim::Time>(round), sim::Actor::kApplication);
  }
}

/// One sweep point: run `kRounds` measure-dirty-measure cycles, returning
/// elapsed seconds; every round's measurement is appended to `out`.
/// `batch` routes visitation through the multi-lane visit_blocks path
/// (byte-identical by contract — checked against the scalar column below).
double run_rounds(sim::DeviceMemory& memory, attest::DigestCache* cache,
                  support::ByteView key, std::size_t dirty_blocks,
                  std::uint64_t rng_seed, std::vector<support::Bytes>& out,
                  attest::MacKind mac = attest::MacKind::kHmac,
                  bool batch = false) {
  support::Xoshiro256 rng(rng_seed);
  std::vector<std::size_t> all_blocks(kBlocks);
  std::iota(all_blocks.begin(), all_blocks.end(), std::size_t{0});
  const double start = now_seconds();
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Dirty a random subset, then measure the whole memory.
    dirty_round(memory, rng, dirty_blocks, round);
    attest::Measurement m(memory, crypto::HashKind::kSha256, key,
                          attest::MeasurementContext{"prv-micro", {}, round + 1},
                          attest::Coverage{}, mac);
    m.set_digest_cache(cache);
    if (batch) {
      m.visit_blocks(all_blocks, /*now=*/0);
    } else {
      for (std::size_t b = 0; b < kBlocks; ++b) m.visit_block(b, /*now=*/0);
    }
    out.push_back(m.finalize());
  }
  return now_seconds() - start;
}

/// Same sweep point through the Merkle-tree incremental path: the same
/// dirtying stream, but each round re-digests only the dirty blocks
/// (observed via the generation observer), flushes O(dirty * log n) tree
/// nodes and MACs the root.  Appends the per-round tree measurement to
/// `out`; returns elapsed seconds.
double run_tree_rounds(sim::DeviceMemory& memory, support::ByteView key,
                       std::size_t dirty_blocks, std::uint64_t rng_seed,
                       std::vector<support::Bytes>& out,
                       mtree::IncrementalTree& tree) {
  support::Xoshiro256 rng(rng_seed);
  const double start = now_seconds();
  for (std::size_t round = 0; round < kRounds; ++round) {
    dirty_round(memory, rng, dirty_blocks, round);
    tree.refresh();
    out.push_back(attest::Measurement::combine_root(
        tree.root_bytes(), crypto::HashKind::kSha256, key,
        attest::MeasurementContext{"prv-micro", {}, round + 1},
        attest::MacKind::kHmac));
  }
  return now_seconds() - start;
}

}  // namespace

int main() {
  std::printf("=== measurement hot path: digest cache dirty-fraction sweep ===\n");
  std::printf("%zu blocks x %zu B, %zu measurement rounds per point\n\n", kBlocks,
              kBlockSize, kRounds);

  const support::Bytes key = support::to_bytes("micro-measurement-key");
  obs::MetricsRegistry registry;
  bool ok = true;
  double speedup_at_10pct = 0.0;
  double batch_speedup_at_100pct = 0.0;
  double tree_speedup_at_1pct = 0.0;

  support::Table table({"dirty %", "cached s", "uncached s", "speedup",
                        "batch s", "batch spdup", "tree s", "tree spdup",
                        "hit rate", "identical"});
  for (const std::size_t dirty_pct : {0u, 1u, 5u, 10u, 25u, 50u, 100u}) {
    const std::size_t dirty_blocks = kBlocks * dirty_pct / 100;
    // Identical initial contents and identical dirtying streams on all
    // four sides, so measurement k is comparable round-for-round.
    sim::DeviceMemory cached_mem(kBlocks * kBlockSize, kBlockSize);
    sim::DeviceMemory uncached_mem(kBlocks * kBlockSize, kBlockSize);
    sim::DeviceMemory batch_mem(kBlocks * kBlockSize, kBlockSize);
    sim::DeviceMemory tree_mem(kBlocks * kBlockSize, kBlockSize);
    support::Bytes image(cached_mem.size());
    {
      support::Xoshiro256 rng(0xbeef + dirty_pct);
      for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
      cached_mem.load(image);
      uncached_mem.load(image);
      batch_mem.load(image);
      tree_mem.load(image);
    }
    attest::DigestCache cache;
    cache.resize(kBlocks);
    cache.set_metrics(&registry);

    std::vector<support::Bytes> cached_results, uncached_results, batch_results,
        tree_results;
    cached_results.reserve(kRounds);
    uncached_results.reserve(kRounds);
    batch_results.reserve(kRounds);
    tree_results.reserve(kRounds);
    const std::uint64_t stream_seed = 0xd127 + dirty_pct;
    const double cached_s =
        run_rounds(cached_mem, &cache, key, dirty_blocks, stream_seed, cached_results);
    const double uncached_s = run_rounds(uncached_mem, nullptr, key, dirty_blocks,
                                         stream_seed, uncached_results);
    // Batch column: the same uncached measurement, but every round visits
    // through the multi-lane visit_blocks wave instead of the per-block
    // scalar loop.  Must be byte-identical to the scalar column.
    const double batch_s =
        run_rounds(batch_mem, nullptr, key, dirty_blocks, stream_seed, batch_results,
                   attest::MacKind::kHmac, /*batch=*/true);

    // Tree column: primed once outside the timed loop (the prover primes
    // at deployment), then dirty discovery through the generation
    // observer, exactly as the tree-mode prover runs.
    attest::BlockDigester digester(attest::MacKind::kHmac, crypto::HashKind::kSha256,
                                   key);
    mtree::IncrementalTree tree(
        tree_mem, crypto::HashKind::kSha256,
        [&digester](std::size_t, support::ByteView content, attest::Digest& out) {
          digester.digest(content, out);
        });
    tree.rebuild();
    tree_mem.set_generation_observer(
        [&tree](std::size_t block) { tree.note_block_changed(block); });
    tree.use_observed_dirty(true);
    const double tree_s =
        run_tree_rounds(tree_mem, key, dirty_blocks, stream_seed, tree_results, tree);

    const bool identical =
        cached_results == uncached_results && batch_results == uncached_results;
    ok &= identical;

    // The incremental root must equal a from-scratch rebuild over the
    // final memory state — incrementality is an optimization, never a
    // different answer.
    mtree::IncrementalTree reference(
        tree_mem, crypto::HashKind::kSha256,
        [&digester](std::size_t, support::ByteView content, attest::Digest& out) {
          digester.digest(content, out);
        });
    reference.rebuild();
    const bool root_matches_rebuild = tree.root_bytes() == reference.root_bytes();
    ok &= root_matches_rebuild;

    // Flat and tree measurements differ byte-wise (separate MAC domains);
    // the per-round *verdicts* against the golden image must be identical.
    attest::GoldenMeasurement golden(image, kBlockSize, crypto::HashKind::kSha256,
                                     key);
    bool verdicts_identical = true;
    for (std::size_t round = 0; round < kRounds; ++round) {
      const attest::MeasurementContext context{"prv-micro", {}, round + 1};
      const bool flat_verdict = uncached_results[round] == golden.expected(context);
      const bool tree_verdict = tree_results[round] == golden.expected_tree(context);
      verdicts_identical &= flat_verdict == tree_verdict;
    }
    ok &= verdicts_identical;
    const bool column_ok = identical && root_matches_rebuild && verdicts_identical;

    const double speedup = cached_s > 0.0 ? uncached_s / cached_s : 0.0;
    if (dirty_pct == 10) speedup_at_10pct = speedup;
    const double batch_speedup = batch_s > 0.0 ? uncached_s / batch_s : 0.0;
    if (dirty_pct == 100) batch_speedup_at_100pct = batch_speedup;
    const double tree_speedup = tree_s > 0.0 ? uncached_s / tree_s : 0.0;
    if (dirty_pct == 1) tree_speedup_at_1pct = tree_speedup;
    const double hit_rate =
        static_cast<double>(cache.hits()) /
        static_cast<double>(cache.hits() + cache.misses());
    // blocks/s make the scalar hot path attributable: the uncached row
    // digests every block every round regardless of dirty fraction.
    const double total_blocks = static_cast<double>(kRounds * kBlocks);
    const double uncached_bps = uncached_s > 0.0 ? total_blocks / uncached_s : 0.0;
    const double batch_bps = batch_s > 0.0 ? total_blocks / batch_s : 0.0;

    const std::string suffix = std::to_string(dirty_pct);
    registry.gauge("measurement.cached_seconds_dirty_" + suffix).set(cached_s);
    registry.gauge("measurement.uncached_seconds_dirty_" + suffix).set(uncached_s);
    registry.gauge("measurement.uncached_blocks_per_s_dirty_" + suffix)
        .set(uncached_bps);
    registry.gauge("measurement.speedup_dirty_" + suffix).set(speedup);
    registry.gauge("measurement.batch_seconds_dirty_" + suffix).set(batch_s);
    registry.gauge("measurement.batch_blocks_per_s_dirty_" + suffix).set(batch_bps);
    registry.gauge("measurement.batch_speedup_dirty_" + suffix).set(batch_speedup);
    registry.gauge("measurement.tree_seconds_dirty_" + suffix).set(tree_s);
    registry.gauge("measurement.tree_speedup_dirty_" + suffix).set(tree_speedup);
    registry.gauge("measurement.hit_rate_dirty_" + suffix).set(hit_rate);
    if (!identical) registry.counter("measurement.divergence").inc();
    if (!root_matches_rebuild || !verdicts_identical)
      registry.counter("measurement.tree_divergence").inc();

    table.add_row({std::to_string(dirty_pct), support::fmt_double(cached_s, 4),
                   support::fmt_double(uncached_s, 4), support::fmt_double(speedup, 1),
                   support::fmt_double(batch_s, 4),
                   support::fmt_double(batch_speedup, 1),
                   support::fmt_double(tree_s, 4), support::fmt_double(tree_speedup, 1),
                   support::fmt_double(hit_rate, 3), column_ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  // Per-MacKind scalar blocks/s at 100% dirty, so a regression in either
  // F's scalar path is attributable after the batch path lands (the batch
  // wave only covers the hash-based F; AES-CBC-MAC always runs scalar).
  {
    support::Table mac_table({"MacKind", "scalar blocks/s", "batch"});
    for (const attest::MacKind mac :
         {attest::MacKind::kHmac, attest::MacKind::kCbcMac}) {
      sim::DeviceMemory mem(kBlocks * kBlockSize, kBlockSize);
      support::Bytes image(mem.size());
      support::Xoshiro256 rng(0xbeef);
      for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
      mem.load(image);
      std::vector<support::Bytes> results;
      const double seconds =
          run_rounds(mem, nullptr, key, kBlocks, 0xd127, results, mac);
      const double bps =
          seconds > 0.0 ? static_cast<double>(kRounds * kBlocks) / seconds : 0.0;
      attest::BlockDigester digester(mac, crypto::HashKind::kSha256, key);
      std::string label = attest::mac_kind_name(mac);
      for (auto& c : label) c = c == '-' ? '_' : static_cast<char>(std::tolower(c));
      registry.gauge("measurement.scalar_blocks_per_s_" + label).set(bps);
      mac_table.add_row({attest::mac_kind_name(mac), support::fmt_double(bps, 0),
                         digester.batch_uses_lanes() ? "lanes" : "scalar"});
    }
    std::printf("%s\n", mac_table.render().c_str());
  }

  ok &= expect(speedup_at_10pct >= 5.0,
               "repeated measurement at 10% dirty blocks is >=5x faster cached");
  ok &= expect(batch_speedup_at_100pct > 1.0,
               "batched visit_blocks beats the per-block scalar loop at 100% dirty");
  ok &= expect(tree_speedup_at_1pct >= 50.0,
               "tree re-measurement at 1% dirty blocks is >=50x faster than uncached");

  // A detached flight recorder must be invisible on the measurement hot
  // path.  Time the disabled-path gate every instrumented site pays per
  // event (a pointer load + branch; volatile models the member re-load)
  // and hold it under 1% of one block digest.
  {
    obs::EventJournal* volatile journal = nullptr;
    constexpr std::size_t kGateIters = std::size_t{1} << 24;
    std::uint64_t armed = 0;
    const double gate_start = now_seconds();
    for (std::size_t i = 0; i < kGateIters; ++i) {
      if (obs::EventJournal* j = journal) {
        j->append(0, 0, 0, 0, obs::JournalEventKind::kCacheHit, i, 0);
        ++armed;
      }
    }
    const double per_gate_s = (now_seconds() - gate_start) / kGateIters;
    const double per_block_s =
        registry.gauge("measurement.uncached_seconds_dirty_100").value() /
        static_cast<double>(kRounds * kBlocks);
    const double overhead = per_block_s > 0.0 ? per_gate_s / per_block_s : 0.0;
    std::printf("\nnull-journal gate: %.3g ns/event vs %.4g us/block digest (%.5f%%)\n",
                per_gate_s * 1e9, per_block_s * 1e6, overhead * 100.0);
    registry.gauge("measurement.null_journal_gate_pct").set(overhead * 100.0);
    ok &= expect(armed == 0 && overhead < 0.01,
                 "disabled journal gate costs <1% of a block digest");
  }

  // Deterministic identity/hit-rate aggregates through the campaign
  // engine (the statistical counterpart of the wall-clock sweep above).
  std::printf("\n--- measurement_cache campaign ---\n");
  apps::MeasurementCacheCampaignOptions options;
  options.trials = 40;
  const exp::CampaignResult campaign =
      exp::run_campaign(apps::make_measurement_cache_campaign(options));
  std::printf("%s", exp::campaign_table(campaign).render().c_str());
  for (const auto& cell : campaign.cells) {
    char label[96];
    std::snprintf(label, sizeof(label),
                  "campaign %s: cached == uncached in all %llu trials",
                  cell.point.label().c_str(),
                  static_cast<unsigned long long>(cell.attempts));
    ok &= expect(cell.successes == cell.attempts, label);
    const auto& hits = cell.values.at("cache_hits");
    const auto& clean = cell.values.at("expected_clean");
    std::snprintf(label, sizeof(label),
                  "campaign %s: every clean block served from cache",
                  cell.point.label().c_str());
    ok &= expect(hits.mean() >= clean.mean(), label);
    registry.gauge("campaign.hit_rate_" + cell.point.label())
        .set(cell.values.at("hit_rate").mean());
    registry.gauge("campaign.identity_rate_" + cell.point.label())
        .set(cell.success_rate);
  }

  const std::string path = obs::write_bench_json(registry, "measurement");
  if (!path.empty()) std::printf("\nmachine-readable results: %s\n", path.c_str());

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: digest cache diverged or speedup below threshold\n");
    return 1;
  }
  return 0;
}
