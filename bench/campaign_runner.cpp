/// Campaign CLI: run any registered experiment campaign with overridable
/// grid, trial count, thread count and seed, and write the aggregate as
/// BENCH_<name>.json.  The JSON artifact is a pure function of
/// (campaign, grid, trials, seed) — bit-identical across thread counts —
/// while wall time and threads are reported on stdout only.
///
///   campaign_runner --campaign smarm_escape --trials 1000 --threads 8
///   campaign_runner --campaign sec25_fire_alarm --grid "memory_mb=1024"
///   campaign_runner --list

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/apps/campaign.hpp"
#include "src/exp/report.hpp"
#include "src/exp/seeding.hpp"
#include "src/fleet/campaign.hpp"
#include "src/obs/journal.hpp"
#include "src/obs/timeline.hpp"
#include "src/smarm/campaign.hpp"
#include "src/smarm/escape.hpp"

using namespace rasc;

namespace {

struct Options {
  std::string campaign = "smarm_escape";
  std::string grid_override;
  std::string out_dir;
  std::string journal_dir;  ///< --journal-out: flight-recorder replays
  std::size_t trials = 0;  // 0 = campaign default
  std::size_t threads = 0;
  std::uint64_t seed = 1;
  bool list = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--campaign NAME] [--grid \"axis=v1,v2;...\"] [--trials N]\n"
      "          [--threads N] [--seed S] [--out DIR] [--journal-out DIR] [--list]\n\n"
      "--journal-out DIR (network_reliability and fleet_scale): per cell,\n"
      "re-run the first misjudged trial (or trial 0) with the flight recorder\n"
      "attached, write JOURNAL_<name>_<grid_index>.ndjson and print a\n"
      "timeline.  The replay is seeded from the campaign coordinates, so the\n"
      "artifacts are byte-identical for any --threads.\n\n"
      "campaigns:\n"
      "  smarm_escape            abstract SMARM game, rounds x blocks sweep\n"
      "  smarm_escape_fullstack  device sim + verifier, blocks sweep\n"
      "  sec25_fire_alarm        fire-alarm deadline misses, mode x memory sweep\n"
      "  lock_matrix             Table 1 mechanisms x adversaries detection rates\n"
      "  measurement_cache       digest-cache identity + hit rate, dirty-%% sweep\n"
      "  mtree                   Merkle-tree prover, dirty-%% x infected sweep\n"
      "  network_reliability     lossy-link RA sessions, drop x retries x timeout\n"
      "  fleet_scale             fleet verifier, devices x drop x stagger sweep\n",
      argv0);
}

exp::CampaignSpec build_spec(const Options& options) {
  if (options.campaign == "smarm_escape") {
    smarm::EscapeCampaignOptions o;
    if (options.trials != 0) o.trials = options.trials;
    o.seed = options.seed;
    o.threads = options.threads;
    return smarm::make_escape_campaign(o);
  }
  if (options.campaign == "smarm_escape_fullstack") {
    smarm::EscapeCampaignOptions o;
    o.trials = options.trials != 0 ? options.trials : 200;
    o.seed = options.seed;
    o.threads = options.threads;
    return smarm::make_fullstack_escape_campaign(o);
  }
  if (options.campaign == "sec25_fire_alarm") {
    apps::FireAlarmCampaignOptions o;
    if (options.trials != 0) o.trials = options.trials;
    o.seed = options.seed;
    o.threads = options.threads;
    return apps::make_fire_alarm_campaign(o);
  }
  if (options.campaign == "lock_matrix") {
    apps::LockMatrixCampaignOptions o;
    if (options.trials != 0) o.trials = options.trials;
    o.seed = options.seed;
    o.threads = options.threads;
    return apps::make_lock_matrix_campaign(o);
  }
  if (options.campaign == "measurement_cache") {
    apps::MeasurementCacheCampaignOptions o;
    if (options.trials != 0) o.trials = options.trials;
    o.seed = options.seed;
    o.threads = options.threads;
    return apps::make_measurement_cache_campaign(o);
  }
  if (options.campaign == "mtree") {
    apps::MtreeCampaignOptions o;
    if (options.trials != 0) o.trials = options.trials;
    o.seed = options.seed;
    o.threads = options.threads;
    return apps::make_mtree_campaign(o);
  }
  if (options.campaign == "network_reliability") {
    apps::NetworkReliabilityCampaignOptions o;
    if (options.trials != 0) o.trials = options.trials;
    o.seed = options.seed;
    o.threads = options.threads;
    return apps::make_network_reliability_campaign(o);
  }
  if (options.campaign == "fleet_scale") {
    fleet::FleetScaleCampaignOptions o;
    if (options.trials != 0) o.trials = options.trials;
    o.seed = options.seed;
    o.threads = options.threads;
    return fleet::make_fleet_scale_campaign(o);
  }
  throw std::invalid_argument("unknown campaign '" + options.campaign + "'");
}

/// For the SMARM sweep, print empirical vs. closed-form escape rates and
/// whether the analytic value falls inside each cell's confidence
/// interval.  The pass/fail check widens to 99.9% (z = 3.29) so that a
/// sweep of ~24 simultaneous cells has a comfortable joint pass rate for
/// any seed; the reported JSON keeps the standard 95% interval.
bool check_smarm_cells(const exp::CampaignResult& result) {
  bool all_ok = true;
  std::printf("\n%-28s %-12s %-12s %-24s %s\n", "cell", "empirical", "analytic",
              "wilson 99.9% CI", "analytic in CI?");
  for (const auto& cell : result.cells) {
    const auto rounds = static_cast<std::size_t>(cell.point.i64("rounds"));
    const auto blocks = static_cast<std::size_t>(cell.point.i64("blocks"));
    const double analytic = smarm::multi_round_escape(blocks, rounds);
    const exp::WilsonInterval wide =
        exp::wilson_interval(cell.successes, cell.attempts, 3.290526731491926);
    const bool ok = wide.contains(analytic);
    all_ok = all_ok && ok;
    std::printf("%-28s %-12.4g %-12.4g [%-9.3g, %-9.3g] %s\n",
                cell.point.label().c_str(), cell.success_rate, analytic, wide.lower,
                wide.upper, ok ? "yes" : "NO");
  }
  return all_ok;
}

/// Replay one trial per cell of the network campaign with the flight
/// recorder attached and dump JOURNAL_network_<grid_index>.ndjson +
/// explain timelines.  Journals stay off during the campaign itself (the
/// trials above ran bare); the replay re-derives the trial's seed from its
/// (base_seed, grid_index, trial_index) coordinates, so the re-run is the
/// same simulation event-for-event and the artifact does not depend on
/// the campaign's thread count.
bool write_network_journals(const exp::CampaignResult& result,
                            const std::string& dir) {
  const std::size_t rounds = apps::NetworkReliabilityCampaignOptions{}.rounds;
  bool ok = true;
  for (const auto& cell : result.cells) {
    // Replay the lowest misjudging trial; a cell where every round
    // verified replays trial 0 (still useful: retries/backoff show up).
    std::size_t trial = 0;
    if (const auto it = cell.values.find("first_misjudge_trial");
        it != cell.values.end() && it->second.min() < apps::kNoMisjudgeTrial) {
      trial = static_cast<std::size_t>(it->second.min());
    }
    const std::uint64_t trial_seed =
        exp::derive_trial_seed(result.base_seed, cell.grid_index, trial);
    apps::NetworkScenarioConfig config =
        apps::network_scenario_config(cell.point, trial_seed, rounds);
    obs::EventJournal journal;
    config.journal = &journal;
    (void)apps::run_network_scenario(config);

    std::string path = dir.empty() ? std::string() : dir + "/";
    path += "JOURNAL_network_" + std::to_string(cell.grid_index) + ".ndjson";
    if (!journal.write_ndjson(path)) {
      std::fprintf(stderr, "campaign_runner: cannot write '%s'\n", path.c_str());
      ok = false;
      continue;
    }
    std::printf("\n=== journal %s: %s, trial %zu (%zu events) ===\n%s",
                path.c_str(), cell.point.label().c_str(), trial, journal.size(),
                obs::explain(journal, /*only_problem_rounds=*/true).c_str());
  }
  return ok;
}

/// Fleet counterpart of write_network_journals: per cell, re-run the
/// lowest misjudging trial's whole fleet with the flight recorder
/// attached and dump JOURNAL_fleet_<grid_index>.ndjson.  Only the
/// problem rounds are explained on stdout — a fleet journal holds every
/// device's events, so the full transcript would drown the interesting
/// ones.
bool write_fleet_journals(const exp::CampaignResult& result,
                          const std::string& dir) {
  bool ok = true;
  for (const auto& cell : result.cells) {
    std::size_t trial = 0;
    if (const auto it = cell.values.find("first_misjudge_trial");
        it != cell.values.end() &&
        it->second.min() < fleet::kNoMisjudgeFleetTrial) {
      trial = static_cast<std::size_t>(it->second.min());
    }
    const std::uint64_t trial_seed =
        exp::derive_trial_seed(result.base_seed, cell.grid_index, trial);
    fleet::FleetConfig config = fleet::fleet_config_for(cell.point, trial_seed);
    obs::EventJournal journal;
    config.journal = &journal;
    config.enforce_invariants = false;
    fleet::FleetVerifier verifier(config);
    (void)verifier.run();

    std::string path = dir.empty() ? std::string() : dir + "/";
    path += "JOURNAL_fleet_" + std::to_string(cell.grid_index) + ".ndjson";
    if (!journal.write_ndjson(path)) {
      std::fprintf(stderr, "campaign_runner: cannot write '%s'\n", path.c_str());
      ok = false;
      continue;
    }
    std::printf("\n=== journal %s: %s, trial %zu (%zu events) ===\n%s",
                path.c_str(), cell.point.label().c_str(), trial, journal.size(),
                obs::explain(journal, /*only_problem_rounds=*/true).c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaign") {
      options.campaign = next();
    } else if (arg == "--grid") {
      options.grid_override = next();
    } else if (arg == "--trials") {
      options.trials = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      options.threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      options.out_dir = next();
    } else if (arg == "--journal-out") {
      options.journal_dir = next();
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (options.list) {
    usage(argv[0]);
    return 0;
  }

  try {
    exp::CampaignSpec spec = build_spec(options);
    for (auto& axis : exp::parse_grid_spec(options.grid_override)) {
      spec.grid.set_axis(axis.name, std::move(axis.values));
    }

    std::printf("=== campaign %s: %zu cells x %zu trials (seed %llu) ===\n",
                spec.name.c_str(), spec.grid.size(), spec.trials_per_point,
                static_cast<unsigned long long>(spec.base_seed));
    const exp::CampaignResult result = exp::run_campaign(spec);
    std::printf("%s\n", exp::campaign_table(result).render().c_str());
    std::printf("ran on %zu thread(s) in %.3f s\n", result.threads_used,
                result.wall_seconds);

    bool ok = true;
    if (spec.name == "smarm_escape") ok = check_smarm_cells(result);
    if (spec.name == "fleet") {
      // The per-trial require() already threw on a violated fleet
      // invariant; assert the aggregate too so the check shows up in the
      // output even when every trial passed.
      for (const auto& cell : result.cells) {
        const auto it = cell.values.find("resolved");
        if (it == cell.values.end() || it->second.mean() != 1.0) {
          std::fprintf(stderr, "FAIL: %s: some fleet rounds never resolved\n",
                       cell.point.label().c_str());
          ok = false;
        }
      }
    }
    if (spec.name == "network") {
      // Every round in every trial must have reached a terminal outcome
      // (the per-trial require() would already have thrown on a leak, but
      // assert the aggregate too so the invariant shows in the output).
      for (const auto& cell : result.cells) {
        const auto it = cell.values.find("resolved");
        if (it == cell.values.end() || it->second.mean() != 1.0) {
          std::fprintf(stderr, "FAIL: %s: some rounds never resolved\n",
                       cell.point.label().c_str());
          ok = false;
        }
      }
    }
    if (spec.name == "measurement_cache") {
      // Cached and uncached measurements must be byte-identical in every
      // single trial — anything less is a correctness bug, not noise.
      for (const auto& cell : result.cells) {
        if (cell.successes != cell.attempts) {
          std::fprintf(stderr, "FAIL: %s: cached/uncached divergence in %llu/%llu trials\n",
                       cell.point.label().c_str(),
                       static_cast<unsigned long long>(cell.attempts - cell.successes),
                       static_cast<unsigned long long>(cell.attempts));
          ok = false;
        }
      }
    }

    if (spec.name == "mtree") {
      // Verdict correctness is per-trial exact: healthy cells must verify
      // and infected cells must localize exactly the infected range.
      for (const auto& cell : result.cells) {
        if (cell.successes != cell.attempts) {
          std::fprintf(stderr, "FAIL: %s: wrong verdict/localization in %llu/%llu trials\n",
                       cell.point.label().c_str(),
                       static_cast<unsigned long long>(cell.attempts - cell.successes),
                       static_cast<unsigned long long>(cell.attempts));
          ok = false;
        }
      }
    }

    if (!options.journal_dir.empty()) {
      const std::string dir =
          options.journal_dir == "." ? std::string() : options.journal_dir;
      if (spec.name == "network") {
        if (!write_network_journals(result, dir)) return 2;
      } else if (spec.name == "fleet") {
        if (!write_fleet_journals(result, dir)) return 2;
      } else {
        std::fprintf(stderr,
                     "campaign_runner: --journal-out only applies to "
                     "network_reliability and fleet_scale; ignoring\n");
      }
    }

    const std::string path = exp::write_campaign_json(result, options.out_dir);
    if (!path.empty()) {
      std::printf("machine-readable results: %s\n", path.c_str());
    } else if (!options.out_dir.empty()) {
      std::fprintf(stderr, "campaign_runner: cannot write BENCH json under '%s'\n",
                   options.out_dir.c_str());
      return 2;
    }

    if (!ok) {
      std::fprintf(stderr, "FAIL: some cells disagree with the closed form\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_runner: %s\n", e.what());
    return 2;
  }
}
