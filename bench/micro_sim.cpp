/// google-benchmark microbenchmarks of the device simulator and the
/// end-to-end attestation scenarios (events/second, rounds/second).

#include <benchmark/benchmark.h>

#include "src/apps/scenario.hpp"
#include "src/obs/journal.hpp"
#include "src/smarm/escape.hpp"
#include "src/smarm/runner.hpp"
#include "src/support/rng.hpp"

namespace {

using namespace rasc;

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    support::Xoshiro256 rng(1);
    for (int i = 0; i < 10000; ++i) {
      simulator.schedule_at(rng.below(1000000), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_MemoryWriteLogged(benchmark::State& state) {
  sim::DeviceMemory memory(1 << 20, 4096);
  const support::Bytes data(64, 0xab);
  sim::Time t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.write((t * 64) % (1 << 19), data, t,
                                          sim::Actor::kApplication));
    ++t;
    if (memory.write_log().size() > 1u << 16) memory.clear_write_log();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryWriteLogged);

void BM_AttestationRound(benchmark::State& state) {
  const auto mode = static_cast<attest::ExecutionMode>(state.range(0));
  for (auto _ : state) {
    apps::LockScenarioConfig config;
    config.blocks = 64;
    config.block_size = 1024;
    config.mode = mode;
    benchmark::DoNotOptimize(apps::run_lock_scenario(config));
  }
  state.SetLabel(attest::execution_mode_name(mode));
}
BENCHMARK(BM_AttestationRound)->Arg(0)->Arg(1);

void BM_LockScenarioWithAdversary(benchmark::State& state) {
  for (auto _ : state) {
    apps::LockScenarioConfig config;
    config.blocks = 64;
    config.block_size = 1024;
    config.mode = attest::ExecutionMode::kInterruptible;
    config.lock = locking::LockMechanism::kIncLock;
    config.adversary = apps::AdversaryKind::kRelocChase;
    benchmark::DoNotOptimize(apps::run_lock_scenario(config));
  }
}
BENCHMARK(BM_LockScenarioWithAdversary);

void BM_SmarmRound(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    smarm::RunnerConfig config;
    config.blocks = static_cast<std::size_t>(state.range(0));
    config.block_size = 512;
    config.rounds = 1;
    config.seed = seed++;
    benchmark::DoNotOptimize(smarm::run_rounds(config));
  }
}
BENCHMARK(BM_SmarmRound)->Arg(16)->Arg(64);

void BM_JournalAppend(benchmark::State& state) {
  obs::EventJournal journal;
  const std::uint32_t actor = journal.intern("bench");
  obs::TimeNs t = 0;
  for (auto _ : state) {
    ++t;
    journal.append(t, actor, 1, t, obs::JournalEventKind::kLinkSend, t, 64);
  }
  benchmark::DoNotOptimize(journal);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalAppend);

void BM_JournalDisabledGate(benchmark::State& state) {
  // The per-event cost with no journal attached: what every instrumented
  // site in sim/attest/apps pays when the flight recorder is off.
  sim::Simulator simulator;
  std::uint64_t armed = 0;
  for (auto _ : state) {
    if (auto* j = simulator.journal()) {
      j->append(0, 0, 0, 0, obs::JournalEventKind::kLinkSend);
      ++armed;
    }
    benchmark::DoNotOptimize(armed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalDisabledGate);

void BM_NetworkScenario(benchmark::State& state) {
  // Arg toggles the flight recorder so its end-to-end overhead (append
  // per link/session event) is directly comparable to the bare run.
  const bool journaled = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    obs::EventJournal journal;
    apps::NetworkScenarioConfig config;
    config.rounds = 2;
    config.drop_probability = 0.1;
    config.seed = seed++;
    if (journaled) config.journal = &journal;
    benchmark::DoNotOptimize(apps::run_network_scenario(config));
  }
  state.SetLabel(journaled ? "journal" : "no-journal");
}
BENCHMARK(BM_NetworkScenario)->Arg(0)->Arg(1);

void BM_SmarmAbstractGame(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smarm::simulate_single_round_escape(static_cast<std::size_t>(state.range(0)),
                                            1000, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SmarmAbstractGame)->Arg(64)->Arg(1024);

}  // namespace
