/// Section 3.3 (SeED) reproduction: secure non-interactive attestation.
///  (a) secret pseudorandom attestation times defeat schedule-aware
///      transient malware that dodges a predictable schedule;
///  (b) unidirectional reporting turns network loss into false alarms,
///      scaling with the drop rate.

#include <cstdio>

#include "src/malware/transient.hpp"
#include "src/selfmeasure/seed.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

struct SeedRun {
  std::size_t epochs = 0;
  std::size_t detections = 0;
  std::size_t false_alarms = 0;
  double residency = 0.0;
};

SeedRun run_seed(bool schedule_leaked, double drop, std::uint64_t seed_tag) {
  sim::Simulator simulator;
  sim::Device device(simulator, sim::DeviceConfig{"prv-seed", 16 * 1024, 1024,
                                                  support::to_bytes("seed-key")});
  support::Xoshiro256 rng(41);
  support::Bytes image(device.memory().size());
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  device.memory().load(image);
  attest::Verifier verifier(crypto::HashKind::kSha256, support::to_bytes("seed-key"),
                            device.memory().snapshot(), 1024);

  selfm::SeedConfig config;
  config.shared_seed = support::to_bytes("fleet-seed-" + std::to_string(seed_tag));
  config.epoch = 10 * sim::kSecond;
  config.response_window = sim::kSecond;

  sim::LinkConfig link_config;
  link_config.drop_probability = drop;
  link_config.seed = 0x5eed + seed_tag;
  sim::Link to_vrf(simulator, link_config);

  selfm::SeedProver prover(device, config, to_vrf);
  selfm::SeedVerifier seed_verifier(simulator, verifier, config);
  prover.set_delivery_handler(
      [&](const attest::Report& r) { seed_verifier.on_report(r); });

  const sim::Time horizon = sim::from_seconds(200);
  malware::ScheduleAwareTransient::Predictor predictor;
  if (schedule_leaked) {
    predictor = [shared = config.shared_seed,
                 epoch = config.epoch](sim::Time now) -> std::optional<sim::Time> {
      for (std::uint64_t k = 0;; ++k) {
        const sim::Time t = selfm::seed_attestation_time(shared, k, epoch);
        if (t > now) return t;
      }
    };
  } else {
    predictor = [](sim::Time) { return std::nullopt; };
  }
  malware::ScheduleAwareTransient malware(device, 7, predictor,
                                          /*guard=*/2 * sim::kSecond);
  malware.arm(horizon);

  prover.start(horizon);
  seed_verifier.start(horizon);
  simulator.run();

  SeedRun out;
  out.epochs = seed_verifier.outcomes().size();
  out.detections = seed_verifier.detections();
  out.false_alarms = seed_verifier.false_alarms();
  out.residency = malware.residency_fraction();
  return out;
}

}  // namespace

int main() {
  std::printf("=== SeED: non-interactive attestation (Section 3.3) ===\n\n");

  std::printf("--- (a) secret vs. leaked attestation schedule ---\n");
  std::printf("Adversary: schedule-aware transient malware (hides +-2 s around\n");
  std::printf("each predicted measurement); 20 epochs of 10 s.\n\n");
  support::Table schedule({"schedule", "epochs", "detections", "malware residency"});
  const SeedRun leaked = run_seed(/*schedule_leaked=*/true, 0.0, 1);
  const SeedRun secret = run_seed(/*schedule_leaked=*/false, 0.0, 1);
  schedule.add_row({"predictable (leaked/periodic)", std::to_string(leaked.epochs),
                    std::to_string(leaked.detections),
                    support::fmt_percent(leaked.residency, 1)});
  schedule.add_row({"SeED secret pseudorandom", std::to_string(secret.epochs),
                    std::to_string(secret.detections),
                    support::fmt_percent(secret.residency, 1)});
  std::printf("%s\n", schedule.render().c_str());
  std::printf("With a predictable schedule the malware stays resident most of the\n");
  std::printf("time yet is never measured; keeping attestation times secret from\n");
  std::printf("prover software (dedicated timeout circuit) convicts it.\n\n");

  std::printf("--- (b) drop-induced false positives (benign device) ---\n");
  support::Table drops({"link drop rate", "epochs", "false alarms", "false-alarm rate"});
  for (double drop : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    // Benign run: no malware (the predictor-run above had detections; here
    // we arm nothing).
    sim::Simulator simulator;
    sim::Device device(simulator, sim::DeviceConfig{"prv-b", 16 * 1024, 1024,
                                                    support::to_bytes("seed-key")});
    support::Xoshiro256 rng(43);
    support::Bytes image(device.memory().size());
    for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
    device.memory().load(image);
    attest::Verifier verifier(crypto::HashKind::kSha256, support::to_bytes("seed-key"),
                              device.memory().snapshot(), 1024);
    selfm::SeedConfig config;
    config.shared_seed = support::to_bytes("fleet-seed-b");
    config.epoch = 10 * sim::kSecond;
    sim::LinkConfig link_config;
    link_config.drop_probability = drop;
    link_config.seed = static_cast<std::uint64_t>(drop * 1000) + 3;
    sim::Link to_vrf(simulator, link_config);
    selfm::SeedProver prover(device, config, to_vrf);
    selfm::SeedVerifier seed_verifier(simulator, verifier, config);
    prover.set_delivery_handler(
        [&](const attest::Report& r) { seed_verifier.on_report(r); });
    const sim::Time horizon = sim::from_seconds(600);
    prover.start(horizon);
    seed_verifier.start(horizon);
    simulator.run();

    const std::size_t epochs = seed_verifier.outcomes().size();
    drops.add_row({support::fmt_percent(drop, 0), std::to_string(epochs),
                   std::to_string(seed_verifier.false_alarms()),
                   support::fmt_percent(
                       static_cast<double>(seed_verifier.false_alarms()) /
                           static_cast<double>(epochs),
                       1)});
  }
  std::printf("%s\n", drops.render().c_str());
  std::printf("Without acknowledgements, every dropped report reads as a missing\n");
  std::printf("attestation: the false-alarm rate tracks the loss rate (paper's\n");
  std::printf("caveat about network partitions for unidirectional SeED).\n");
  return 0;
}
