/// Bench regression gate CLI: compare a current BENCH_*.json artifact
/// against a committed baseline and exit non-zero on regression, so CI can
/// hold every PR's campaign numbers to the numbers checked in under
/// bench/baselines/.
///
///   bench_diff bench/baselines/BENCH_network.json build/BENCH_network.json
///   bench_diff base.json cur.json --tolerance 0.02 --rule wall=0.5 --ignore .stderr
///
/// Exit codes: 0 = within tolerance, 1 = regression (numeric deviation,
/// missing leaf, or type change), 2 = usage / I/O / parse error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/bench_diff.hpp"

using namespace rasc;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s BASELINE.json CURRENT.json [--tolerance T]\n"
      "          [--rule PATTERN=T]... [--ignore PATTERN]...\n\n"
      "  --tolerance T      default relative tolerance for numeric leaves\n"
      "                     (|cur-base| / max(|base|,|cur|); default 0 = exact)\n"
      "  --rule PATTERN=T   tolerance T for every path containing PATTERN\n"
      "                     (substring match; last matching rule wins)\n"
      "  --ignore PATTERN   skip paths containing PATTERN entirely\n",
      argv0);
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  obs::BenchDiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_diff: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerance") {
      options.default_tolerance = std::strtod(next(), nullptr);
    } else if (arg == "--rule") {
      const std::string spec = next();
      const std::size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "bench_diff: --rule wants PATTERN=TOLERANCE, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      options.rules.push_back(
          {spec.substr(0, eq), std::strtod(spec.c_str() + eq + 1, nullptr)});
    } else if (arg == "--ignore") {
      options.ignore.emplace_back(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    usage(argv[0]);
    return 2;
  }

  std::string baseline_text;
  std::string current_text;
  if (!read_file(positional[0], &baseline_text)) {
    std::fprintf(stderr, "bench_diff: cannot read baseline '%s'\n",
                 positional[0].c_str());
    return 2;
  }
  if (!read_file(positional[1], &current_text)) {
    std::fprintf(stderr, "bench_diff: cannot read current '%s'\n",
                 positional[1].c_str());
    return 2;
  }

  std::string error;
  const auto baseline = obs::parse_json(baseline_text, &error);
  if (!baseline) {
    std::fprintf(stderr, "bench_diff: baseline '%s': %s\n", positional[0].c_str(),
                 error.c_str());
    return 2;
  }
  const auto current = obs::parse_json(current_text, &error);
  if (!current) {
    std::fprintf(stderr, "bench_diff: current '%s': %s\n", positional[1].c_str(),
                 error.c_str());
    return 2;
  }

  const obs::BenchDiffResult result = obs::diff_bench(*baseline, *current, options);
  std::printf("%s vs %s\n%s", positional[0].c_str(), positional[1].c_str(),
              obs::format_bench_diff(result).c_str());
  return result.ok() ? 0 : 1;
}
