/// Figure 5 reproduction: Quality of Attestation under ERASMUS.
/// Self-measurements run every T_M; the verifier collects every T_C.
/// Infection 1 (short, falls between two measurements) goes undetected;
/// Infection 2 (spans a measurement) is detected and reported at the next
/// collection.  A sweep shows detection probability scaling with dwell/T_M
/// independently of T_C, which only sets the reporting latency.

#include <cstdio>

#include "src/malware/transient.hpp"
#include "src/selfmeasure/erasmus.hpp"
#include "src/selfmeasure/qoa.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

struct Fig5Setup {
  sim::Simulator simulator;
  sim::Device device;
  attest::Verifier verifier;
  sim::Link to_prv;
  sim::Link to_vrf;

  Fig5Setup()
      : device(simulator, sim::DeviceConfig{"prv-f5", 32 * 1024, 1024,
                                            support::to_bytes("f5-key")}),
        verifier(crypto::HashKind::kSha256, support::to_bytes("f5-key"),
                 [&] {
                   support::Xoshiro256 rng(17);
                   support::Bytes image(32 * 1024);
                   for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
                   device.memory().load(image);
                   return image;
                 }(),
                 1024),
        to_prv(simulator, {}),
        to_vrf(simulator, {}) {}
};

}  // namespace

int main() {
  std::printf("=== Figure 5: QoA — T_M vs. T_C ===\n");
  std::printf("T_M = 10 s (self-measurements), T_C = 50 s (collections).\n\n");

  Fig5Setup fx;
  selfm::ErasmusConfig config;
  config.period = 10 * sim::kSecond;
  selfm::ErasmusProver prover(fx.device, config);
  selfm::Collector collector(fx.verifier, prover, fx.to_prv, fx.to_vrf,
                             50 * sim::kSecond);

  // Infection 1: t in [12 s, 17 s] — inside one T_M gap -> undetected.
  malware::TransientConfig inf1;
  inf1.block = 5;
  inf1.infect_at = sim::from_seconds(12);
  inf1.dwell = 5 * sim::kSecond;
  inf1.marker = 0x11;
  malware::TransientMalware malware1(fx.device, inf1);
  malware1.arm();

  // Infection 2: t in [55 s, 78 s] — spans measurements at 60/70 s -> detected.
  malware::TransientConfig inf2;
  inf2.block = 21;
  inf2.infect_at = sim::from_seconds(55);
  inf2.dwell = 23 * sim::kSecond;
  inf2.marker = 0x22;
  malware::TransientMalware malware2(fx.device, inf2);
  malware2.arm();

  prover.start(sim::from_seconds(120));
  collector.start(sim::from_seconds(130));
  fx.simulator.run();

  std::vector<sim::Time> collection_times;
  for (const auto& record : collector.records()) collection_times.push_back(record.at);

  support::Table timeline({"infection", "window", "measured while resident?",
                           "Vrf learns at", "detection latency"});
  const malware::TransientMalware* infections[] = {&malware1, &malware2};
  int idx = 1;
  for (const auto* m : infections) {
    const auto& iv = m->history().front();
    const auto analysis = selfm::analyze_infection(
        prover.measurement_times(), collection_times, iv.begin,
        iv.end.value_or(sim::from_seconds(120)));
    char window[64];
    std::snprintf(window, sizeof(window), "[%.0f s, %.0f s]", sim::to_seconds(iv.begin),
                  sim::to_seconds(iv.end.value_or(0)));
    timeline.add_row(
        {"Infection " + std::to_string(idx++), window,
         analysis.detected ? "YES" : "no  (fits between measurements)",
         analysis.reported_at ? sim::format_duration(*analysis.reported_at) : "-",
         analysis.detection_latency ? sim::format_duration(*analysis.detection_latency)
                                    : "-"});
  }
  std::printf("%s\n", timeline.render().c_str());

  std::size_t bad_reports = 0;
  for (const auto& record : collector.records()) bad_reports += record.reports_bad;
  std::printf("Collector verdicts: %zu collections, %zu bad report(s) — matches the\n",
              collector.records().size(), bad_reports);
  std::printf("ground truth above (only Infection 2 overlapped measurements).\n\n");

  // ---- sweep: detection probability vs dwell / T_M -------------------------
  std::printf("--- detection probability vs. infection dwell (T_M = 10 s) ---\n");
  support::Table sweep({"dwell", "analytic min(1, d/T_M)", "simulated (random phase)"});
  support::Xoshiro256 phase_rng(23);
  for (double dwell_s : {1.0, 2.0, 5.0, 8.0, 10.0, 15.0, 20.0}) {
    const sim::Duration dwell = sim::from_seconds(dwell_s);
    int detected = 0;
    constexpr int kTrials = 4000;
    for (int t = 0; t < kTrials; ++t) {
      const sim::Time begin =
          sim::from_seconds(20) + phase_rng.below(10 * sim::kSecond);
      const auto analysis = selfm::analyze_infection(prover.measurement_times(),
                                                     collection_times, begin,
                                                     begin + dwell);
      detected += analysis.detected;
    }
    sweep.add_row({support::fmt_double(dwell_s, 0) + " s",
                   support::fmt_double(selfm::analytic_detection_probability(
                                           10 * sim::kSecond, dwell),
                                       3),
                   support::fmt_double(static_cast<double>(detected) / kTrials, 3)});
  }
  std::printf("%s\n", sweep.render().c_str());

  // ---- Vrf participation: on-demand vs ERASMUS at equal QoA_M ------------
  std::printf("--- Vrf load for equal measurement frequency (1 hour horizon) ---\n");
  support::Table load({"scheme", "T_M", "T_C", "Vrf messages/h", "Vrf verifications/h"});
  const double hour = 3600.0;
  for (double t_m_s : {60.0, 10.0, 1.0}) {
    char tm_label[32];
    std::snprintf(tm_label, sizeof(tm_label), "%.0f s", t_m_s);
    // On-demand RA conjoins measurement and verification: one round trip
    // and one verification per measurement.
    load.add_row({"on-demand", tm_label, "= T_M",
                  support::fmt_double(2 * hour / t_m_s, 0),
                  support::fmt_double(hour / t_m_s, 0)});
    // ERASMUS: Vrf shows up every T_C = 10 min regardless of T_M; it
    // verifies every stored report but exchanges only 2 messages.
    load.add_row({"ERASMUS", tm_label, "600 s",
                  support::fmt_double(2 * hour / 600.0, 0),
                  support::fmt_double(hour / t_m_s, 0)});
  }
  std::printf("%s\n", load.render().c_str());
  std::printf("Measuring 60x more often multiplies on-demand Vrf traffic 60x, but\n");
  std::printf("leaves ERASMUS at 12 messages per hour — the decoupling claim.\n\n");

  std::printf("Halving T_M doubles detection probability without any extra Vrf\n");
  std::printf("interaction; T_C only bounds reporting latency (worst case T_M+T_C = %s).\n",
              sim::format_duration(selfm::worst_case_detection_latency(
                                       10 * sim::kSecond, 50 * sim::kSecond))
                  .c_str());
  return 0;
}
