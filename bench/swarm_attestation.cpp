/// Section 2.1 (swarm RA) reproduction: collective attestation of large
/// device swarms (SEDA/LISA family) vs. the single-prover baseline.
/// Collective tree attestation scales with tree *depth*; attesting
/// devices one by one scales linearly with swarm size.

#include <cstdio>
#include <set>

#include "src/support/plot.hpp"
#include "src/support/table.hpp"
#include "src/swarm/swarm.hpp"

using namespace rasc;

int main() {
  std::printf("=== Swarm attestation: collective tree vs. one-by-one ===\n");
  std::printf("Per-device MP 50 ms, per-hop latency 2 ms, binary spanning tree.\n\n");

  support::Table table({"devices", "tree depth", "collective time",
                        "forwarding time", "star time", "speedup (coll/star)",
                        "msgs coll/fwd"});
  support::Series tree_series{"collective (SEDA-style)", {}, {}};
  support::Series star_series{"naive star", {}, {}};

  for (std::size_t n : {3u, 7u, 15u, 31u, 63u, 127u, 255u, 511u, 1023u}) {
    swarm::SwarmConfig config;
    config.device_count = n;
    const auto tree =
        swarm::run_swarm_attestation(config, swarm::SwarmProtocol::kCollectiveTree, {});
    const auto fwd =
        swarm::run_swarm_attestation(config, swarm::SwarmProtocol::kForwardingTree, {});
    const auto star =
        swarm::run_swarm_attestation(config, swarm::SwarmProtocol::kNaiveStar, {});
    table.add_row({std::to_string(n), std::to_string(swarm::tree_depth(n, 2)),
                   sim::format_duration(tree.total_time),
                   sim::format_duration(fwd.total_time),
                   sim::format_duration(star.total_time),
                   support::fmt_double(static_cast<double>(star.total_time) /
                                           static_cast<double>(tree.total_time),
                                       1) + "x",
                   std::to_string(tree.messages) + "/" + std::to_string(fwd.messages)});
    tree_series.x.push_back(static_cast<double>(n));
    tree_series.y.push_back(sim::to_seconds(tree.total_time));
    star_series.x.push_back(static_cast<double>(n));
    star_series.y.push_back(sim::to_seconds(star.total_time));
  }
  std::printf("%s\n", table.render().c_str());

  support::PlotOptions opt;
  opt.log_x = true;
  opt.log_y = true;
  opt.height = 16;
  opt.x_label = "swarm size (devices)";
  opt.y_label = "attestation round time (s)";
  std::printf("%s\n", support::render_plot({tree_series, star_series}, opt).c_str());

  std::printf("--- detection & aggregate authenticity with infections ---\n");
  support::Table detect({"devices", "infected", "reported failed ids",
                         "aggregate MAC chain"});
  for (std::size_t n : {15u, 63u}) {
    swarm::SwarmConfig config;
    config.device_count = n;
    std::set<std::size_t> infected = {2, n / 2, n - 1};
    const auto result = swarm::run_swarm_attestation(
        config, swarm::SwarmProtocol::kCollectiveTree, infected);
    std::string ids;
    for (std::size_t id : result.failed_ids) ids += std::to_string(id) + " ";
    detect.add_row({std::to_string(n), std::to_string(infected.size()), ids,
                    result.aggregate_authentic ? "authentic" : "FORGED"});
  }
  std::printf("%s\n", detect.render().c_str());

  std::printf("--- physical removal (DARPA-style absence detection) ---\n");
  {
    swarm::SwarmConfig config;
    config.device_count = 15;
    support::Table absent({"removed device", "devices reported absent",
                           "healthy reported", "round time"});
    for (std::size_t removed : {9u, 1u}) {
      const auto result = swarm::run_swarm_attestation(
          config, swarm::SwarmProtocol::kCollectiveTree, {}, {removed});
      std::string ids;
      for (std::size_t id : result.absent_ids) ids += std::to_string(id) + " ";
      absent.add_row({std::to_string(removed) + (removed == 1 ? " (inner node)" : " (leaf)"),
                      ids, std::to_string(result.reported_good),
                      sim::format_duration(result.total_time)});
    }
    std::printf("%s\n", absent.render().c_str());
    std::printf("A removed inner node silences its whole subtree; prolonged absence\n");
    std::printf("is the physical-attack signal the paper attributes to DARPA [13].\n\n");
  }
  std::printf("Collective attestation exploits device interconnectivity: one\n");
  std::printf("authenticated aggregate replaces N verifier round trips, and the\n");
  std::printf("round time grows with log(N) instead of N.\n");
  return 0;
}
