/// Figure 4 reproduction: the consistency timeline.  A write lands at one
/// of the four epochs relative to the measurement —
///   A: before t_s,  B: during [t_s, visit(target)),
///   C: during (visit(target), t_e],  D: after t_r —
/// and for each locking mechanism we report whether the MPU admitted the
/// write and with which canonical instants the report stays consistent.
/// Paper: changes at A or D never matter; the effect of B or C depends on
/// the mechanism.

#include <cstdio>

#include "src/attest/prover.hpp"
#include "src/attest/verifier.hpp"
#include "src/locking/consistency.hpp"
#include "src/locking/policies.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

constexpr std::size_t kBlocks = 16;
constexpr std::size_t kBlockSize = 1024;
constexpr std::size_t kTarget = 8;  // block receiving the write

struct EpochOutcome {
  bool write_admitted = false;
  locking::ConsistencyVerdict verdict;
  bool completed = false;
};

EpochOutcome run_epoch(locking::LockMechanism lock, char epoch) {
  sim::Simulator simulator;
  sim::Device device(simulator, sim::DeviceConfig{"prv-f4", kBlocks * kBlockSize,
                                                  kBlockSize, support::to_bytes("f4")});
  support::Xoshiro256 rng(9);
  support::Bytes image(device.memory().size());
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  device.memory().load(image);

  auto policy = locking::make_lock_policy(lock, /*release_delay=*/5 * sim::kMillisecond);
  attest::ProverConfig config;
  config.mode = attest::ExecutionMode::kInterruptible;
  attest::AttestationProcess mp(device, config, policy.get());

  const sim::Time t_mp = 10 * sim::kMillisecond;
  const sim::Duration block_cost = mp.block_cost();
  // Visit of block kTarget completes after (kTarget + 1) block segments.
  sim::Time write_at = 0;
  switch (epoch) {
    case 'A': write_at = t_mp - sim::kMillisecond; break;
    case 'B': write_at = t_mp + block_cost * 3; break;
    case 'C': write_at = t_mp + block_cost * 13; break;
    case 'D': write_at = t_mp + block_cost * 20 + 8 * sim::kMillisecond; break;
  }

  EpochOutcome outcome;
  // DMA-style write (a peripheral filling a buffer): instantaneous at the
  // scheduled time, still subject to the MPU.
  simulator.schedule_at(write_at, [&] {
    outcome.write_admitted = device.memory().write(
        kTarget * kBlockSize + 7, support::to_bytes("peripheral-data"),
        simulator.now(), sim::Actor::kApplication);
  });

  std::optional<attest::AttestationResult> attestation;
  simulator.schedule_at(t_mp, [&] {
    mp.start(attest::MeasurementContext{device.id(), {}, 1},
             [&](attest::AttestationResult result) {
               attestation = std::move(result);
               outcome.completed = true;
             });
  });
  // Analyze only after the simulation quiesces so an epoch-D write (after
  // t_r) is already in the log.
  simulator.run();
  if (attestation) {
    locking::ConsistencyAnalyzer analyzer(*attestation, device.memory().write_log(), 0);
    outcome.verdict = analyzer.verdict();
  }
  return outcome;
}

std::string verdict_cell(const EpochOutcome& outcome) {
  if (!outcome.completed) return "(incomplete)";
  std::string cells;
  cells += outcome.write_admitted ? "admitted; " : "BLOCKED; ";
  std::string at;
  if (outcome.verdict.at_ts) at += "t_s ";
  if (outcome.verdict.at_te) at += "t_e ";
  if (outcome.verdict.at_tr) at += "t_r";
  cells += at.empty() ? "consistent: none" : "consistent: " + at;
  return cells;
}

}  // namespace

int main() {
  std::printf("=== Figure 4: effect of a write at epochs A/B/C/D ===\n");
  std::printf("16-block measurement, write targets block %zu (visited mid-sweep);\n",
              kTarget);
  std::printf("A: before t_s   B: in [t_s, visit)   C: in (visit, t_e]   D: after t_r\n\n");

  support::Table table({"mechanism", "A (before t_s)", "B (pre-visit)", "C (post-visit)",
                        "D (after t_r)"});
  for (locking::LockMechanism lock : locking::kAllLockMechanisms) {
    std::vector<std::string> row = {locking::lock_mechanism_name(lock)};
    for (char epoch : {'A', 'B', 'C', 'D'}) {
      row.push_back(verdict_cell(run_epoch(lock, epoch)));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Reading the table against the paper:\n");
  std::printf(" * A and D never hurt: every mechanism stays consistent at t_s..t_r\n");
  std::printf("   (for D, the consistency window simply closes before the late write).\n");
  std::printf(" * B (change before the block is visited): breaks consistency-at-t_s\n");
  std::printf("   under No-Lock and Inc-Lock; All/Dec-Lock block the write instead.\n");
  std::printf(" * C (change after the block is visited): breaks consistency-at-t_e\n");
  std::printf("   under No-Lock and Dec-Lock; All-Lock and Inc-Lock block it; the\n");
  std::printf("   -Ext variants additionally keep M constant until t_r.\n");
  return 0;
}
