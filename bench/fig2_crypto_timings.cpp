/// Figure 2 reproduction: timings of hash functions (SHA-256, SHA-512,
/// BLAKE2b, BLAKE2s) and signature schemes (RSA-1024/2048/4096,
/// ECDSA-160/224/256) as a function of input size.
///
/// Two instruments:
///  (a) host-measured wall clock of this library's from-scratch
///      implementations — reproduces the *shape* (hash cost linear in
///      size, signature cost flat, crossover around ~1 MB);
///  (b) the ODROID-XU4-calibrated CpuModel — reproduces the paper's
///      absolute numbers (~0.9 s @ 100 MB, ~7 s @ 1 GB, ~14 s @ 2 GB).

#include <chrono>
#include <cstdio>
#include <vector>

#include "src/crypto/hash.hpp"
#include "src/crypto/sig.hpp"
#include "src/sim/cpu_model.hpp"
#include "src/support/plot.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

using namespace rasc;
using Clock = std::chrono::steady_clock;

namespace {

double time_once(const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) best = std::min(best, time_once(fn));
  return best;
}

}  // namespace

int main() {
  std::printf("=== Figure 2: hash & signature timings ===\n\n");

  // ---- (a) host-measured -----------------------------------------------
  std::printf("--- (a) host-measured, this library's implementations ---\n");
  const std::vector<std::size_t> sizes = {1 << 10, 4 << 10,  16 << 10, 64 << 10,
                                          256 << 10, 1 << 20, 4 << 20,  16 << 20,
                                          64 << 20};
  support::Xoshiro256 rng(2);
  support::Bytes buffer(sizes.back());
  for (auto& b : buffer) b = static_cast<std::uint8_t>(rng.below(256));

  std::vector<support::Series> series;
  support::Table hash_table({"size", "SHA-256 (s)", "SHA-512 (s)", "BLAKE2b (s)",
                             "BLAKE2s (s)"});
  std::vector<std::vector<double>> hash_times(4);
  for (std::size_t size : sizes) {
    std::vector<std::string> row = {std::to_string(size >> 10) + " KiB"};
    for (std::size_t k = 0; k < 4; ++k) {
      const crypto::HashKind kind = crypto::kAllHashKinds[k];
      const int reps = size <= (1 << 20) ? 5 : 1;
      const double t = time_best_of(reps, [&] {
        (void)crypto::hash_oneshot(kind, support::ByteView(buffer.data(), size));
      });
      hash_times[k].push_back(t);
      row.push_back(support::fmt_sci(t, 2));
    }
    hash_table.add_row(std::move(row));
  }
  std::printf("%s\n", hash_table.render().c_str());

  for (std::size_t k = 0; k < 4; ++k) {
    support::Series s;
    s.name = crypto::hash_name(crypto::kAllHashKinds[k]);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      s.x.push_back(static_cast<double>(sizes[i]));
      s.y.push_back(hash_times[k][i]);
    }
    series.push_back(std::move(s));
  }

  std::printf("Signature schemes (flat in input size; hash-and-sign):\n");
  support::Table sig_table({"scheme", "keygen (s)", "sign (s)", "verify (s)"});
  const auto digest = crypto::hash_oneshot(crypto::HashKind::kSha256,
                                           support::ByteView(buffer.data(), 1024));
  for (crypto::SigKind kind : crypto::kAllSigKinds) {
    crypto::HmacDrbg drbg(support::to_bytes("fig2-" + crypto::sig_name(kind)));
    std::unique_ptr<crypto::Signer> signer;
    const double t_keygen = time_once([&] { signer = crypto::make_signer(kind, drbg); });
    support::Bytes sig;
    const double t_sign =
        time_best_of(3, [&] { sig = signer->sign_digest(crypto::HashKind::kSha256, digest); });
    const double t_verify = time_best_of(3, [&] {
      (void)signer->verify(crypto::HashKind::kSha256,
                           support::ByteView(buffer.data(), 1024), sig);
    });
    // verify() hashes the 1 KiB message; negligible next to the public-key op.
    sig_table.add_row({crypto::sig_name(kind), support::fmt_double(t_keygen, 3),
                       support::fmt_sci(t_sign, 2), support::fmt_sci(t_verify, 2)});
    support::Series flat;
    flat.name = crypto::sig_name(kind) + " sign";
    for (std::size_t size : sizes) {
      flat.x.push_back(static_cast<double>(size));
      flat.y.push_back(t_sign);
    }
    series.push_back(std::move(flat));
  }
  std::printf("%s\n", sig_table.render().c_str());

  support::PlotOptions opt;
  opt.log_x = true;
  opt.log_y = true;
  opt.height = 22;
  opt.x_label = "input size (bytes)";
  opt.y_label = "time (s) -- host-measured";
  std::printf("%s\n", support::render_plot(series, opt).c_str());
  std::printf("Shape checks: hash curves rise linearly (slope 1 in log-log);\n");
  std::printf("signature lines are flat; hashing overtakes every signature\n");
  std::printf("beyond the ~1..64 MB region, as in the paper.\n\n");

  // ---- (b) ODROID-XU4 calibrated model ----------------------------------
  std::printf("--- (b) ODROID-XU4-calibrated model (paper's platform) ---\n");
  sim::CpuModel model;
  support::Table model_table(
      {"size", "SHA-256 model", "paper reference", "SHA-512", "BLAKE2b", "BLAKE2s"});
  struct Ref {
    std::uint64_t size;
    const char* label;
    const char* paper;
  };
  const Ref refs[] = {
      {1u << 20, "1 MB", "> 0.01 s threshold region"},
      {100ull << 20, "100 MB", "~0.9 s (Sec. 2.4)"},
      {1ull << 30, "1 GB", "~7 s (Sec. 2.5)"},
      {2ull << 30, "2 GB", "~14 s (Sec. 2.4)"},
  };
  for (const Ref& ref : refs) {
    model_table.add_row(
        {ref.label,
         support::fmt_double(sim::to_seconds(model.hash_time(crypto::HashKind::kSha256, ref.size)), 3) + " s",
         ref.paper,
         support::fmt_double(sim::to_seconds(model.hash_time(crypto::HashKind::kSha512, ref.size)), 3) + " s",
         support::fmt_double(sim::to_seconds(model.hash_time(crypto::HashKind::kBlake2b, ref.size)), 3) + " s",
         support::fmt_double(sim::to_seconds(model.hash_time(crypto::HashKind::kBlake2s, ref.size)), 3) + " s"});
  }
  std::printf("%s\n", model_table.render().c_str());

  support::Table model_sig({"scheme", "sign (model)", "verify (model)",
                            "hash size where SHA-256 cost = sign cost"});
  for (crypto::SigKind kind : crypto::kAllSigKinds) {
    const double sign_s = sim::to_seconds(model.sign_time(kind));
    const double nspb = model.hash_ns_per_byte(crypto::HashKind::kSha256);
    const double crossover_mb = sign_s * 1e9 / nspb / (1 << 20);
    model_sig.add_row({crypto::sig_name(kind), support::fmt_sci(sign_s, 2) + " s",
                       support::fmt_sci(sim::to_seconds(model.verify_time(kind)), 2) + " s",
                       support::fmt_double(crossover_mb, 2) + " MB"});
  }
  std::printf("%s\n", model_sig.render().c_str());
  std::printf("For inputs over ~1 MB, MP exceeds 0.01 s and most signature costs\n");
  std::printf("become comparatively insignificant (paper Sec. 2.4).\n");
  return 0;
}
