/// Section 3.2 reproduction: SMARM escape probabilities.
///  * single-round escape (1-1/n)^n -> e^-1 ~ 0.37 — analytic, abstract
///    Monte-Carlo, and full-stack (real permutation, real relocation
///    writes, real verifier);
///  * multi-round escape decays exponentially; ~13 independent checks
///    push it below 10^-6.

#include <cmath>
#include <cstdio>

#include "src/obs/bench_io.hpp"
#include "src/smarm/escape.hpp"
#include "src/smarm/runner.hpp"
#include "src/support/plot.hpp"
#include "src/support/table.hpp"

using namespace rasc;

int main() {
  std::printf("=== SMARM: shuffled measurements vs. roving malware ===\n\n");

  std::printf("--- single-round escape probability ---\n");
  support::Table single({"blocks n", "analytic (1-1/n)^n", "Monte-Carlo (50k trials)",
                         "e^-1 reference"});
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u, 512u, 4096u}) {
    single.add_row({std::to_string(n),
                    support::fmt_double(smarm::single_round_escape(n), 4),
                    support::fmt_double(smarm::simulate_single_round_escape(n, 50000, n), 4),
                    support::fmt_double(std::exp(-1.0), 4)});
  }
  std::printf("%s\n", single.render().c_str());

  std::printf("--- full-stack check (device sim + verifier, n=12, 400 trials) ---\n");
  obs::MetricsRegistry metrics;
  smarm::RunnerConfig config;
  config.blocks = 12;
  config.block_size = 512;
  config.metrics = &metrics;  // per-round latency percentiles across all trials
  const double full = smarm::full_stack_single_round_escape(config, 400);
  std::printf("full-stack escape: %.3f   analytic: %.3f\n\n", full,
              smarm::single_round_escape(12));
  metrics.gauge("escape_rate/full_stack").set(full);
  metrics.gauge("escape_rate/analytic").set(smarm::single_round_escape(12));

  std::printf("--- multi-round escape (n = 64) ---\n");
  support::Table multi({"rounds", "analytic escape", "Monte-Carlo", "paper note"});
  support::Series analytic_series{"analytic", {}, {}};
  for (std::size_t rounds : {1u, 2u, 3u, 5u, 8u, 10u, 13u, 14u, 16u, 20u}) {
    const double analytic = smarm::multi_round_escape(64, rounds);
    std::string mc = "-";
    if (rounds <= 5) {
      mc = support::fmt_double(smarm::simulate_multi_round_escape(64, rounds, 50000, rounds),
                               4);
    }
    std::string note;
    if (rounds == 13) note = "paper: ~13 checks -> <1e-6";
    multi.add_row({std::to_string(rounds), support::fmt_sci(analytic, 2), mc, note});
    analytic_series.x.push_back(static_cast<double>(rounds));
    analytic_series.y.push_back(analytic);
  }
  std::printf("%s\n", multi.render().c_str());

  support::PlotOptions opt;
  opt.log_y = true;
  opt.height = 16;
  opt.x_label = "independent measurement rounds";
  opt.y_label = "escape probability (log)";
  std::printf("%s\n", support::render_plot({analytic_series}, opt).c_str());

  support::Table rounds_table({"blocks n", "rounds to reach 1e-6"});
  for (std::size_t n : {8u, 16u, 64u, 1024u, 1u << 20}) {
    rounds_table.add_row(
        {std::to_string(n), std::to_string(smarm::rounds_for_target(n, 1e-6))});
  }
  std::printf("%s\n", rounds_table.render().c_str());
  std::printf("Escape decays exponentially with rounds; 13-14 independent\n");
  std::printf("measurements suffice for a false-negative rate below 10^-6.\n");

  const std::string json_path = obs::write_bench_json(metrics, "smarm_escape");
  if (!json_path.empty()) std::printf("machine-readable results: %s\n", json_path.c_str());
  return 0;
}
