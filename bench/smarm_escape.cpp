/// Section 3.2 reproduction: SMARM escape probabilities, as a parallel
/// Monte-Carlo campaign (src/exp).
///  * single-round escape (1-1/n)^n -> e^-1 ~ 0.37 — analytic vs. the
///    campaign's empirical rate with Wilson confidence intervals;
///  * multi-round escape decays exponentially; ~13 independent checks
///    push it below 10^-6 — asserted against the campaign aggregates;
///  * full-stack spot check (real permutation, real relocation writes,
///    real verifier) through the same campaign engine.
/// Exits non-zero if any paper claim falls outside its interval, so CI
/// catches statistical regressions, not just crashes.

#include <cmath>
#include <cstdio>

#include "src/exp/report.hpp"
#include "src/smarm/campaign.hpp"
#include "src/smarm/escape.hpp"
#include "src/support/plot.hpp"
#include "src/support/table.hpp"

using namespace rasc;

namespace {

bool expect(bool condition, const char* what) {
  std::printf("  [%s] %s\n", condition ? "ok" : "FAIL", what);
  return condition;
}

}  // namespace

int main() {
  std::printf("=== SMARM: shuffled measurements vs. roving malware ===\n\n");

  std::printf("--- analytic single-round escape probability ---\n");
  support::Table single({"blocks n", "analytic (1-1/n)^n", "e^-1 reference"});
  for (std::size_t n : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
    single.add_row({std::to_string(n),
                    support::fmt_double(smarm::single_round_escape(n), 4),
                    support::fmt_double(std::exp(-1.0), 4)});
  }
  std::printf("%s\n", single.render().c_str());

  // Abstract-game campaign: rounds x blocks sweep, 50k trials per cell.
  smarm::EscapeCampaignOptions options;
  options.trials = 50000;
  exp::CampaignSpec spec = smarm::make_escape_campaign(options);
  std::printf("--- campaign: %zu cells x %zu trials ---\n", spec.grid.size(),
              spec.trials_per_point);
  const exp::CampaignResult result = exp::run_campaign(spec);
  std::printf("%s", exp::campaign_table(result).render().c_str());
  std::printf("(ran on %zu thread(s) in %.2f s)\n\n", result.threads_used,
              result.wall_seconds);

  // Paper-claim assertions against the campaign aggregates.
  std::printf("--- paper claims vs. campaign aggregates ---\n");
  bool ok = true;
  for (const auto& cell : result.cells) {
    const auto rounds = static_cast<std::size_t>(cell.point.i64("rounds"));
    const auto blocks = static_cast<std::size_t>(cell.point.i64("blocks"));
    const double analytic = smarm::multi_round_escape(blocks, rounds);
    // 99.9% interval: ~24 simultaneous cells at 95% would flag a cell in
    // most sweeps purely by chance.
    const exp::WilsonInterval wide =
        exp::wilson_interval(cell.successes, cell.attempts, 3.290526731491926);
    char label[96];
    std::snprintf(label, sizeof(label), "%-24s empirical %.3g vs analytic %.3g",
                  cell.point.label().c_str(), cell.success_rate, analytic);
    ok &= expect(wide.contains(analytic), label);
  }

  const auto* one_round = result.find_cell("rounds=1 blocks=1024");
  const auto* thirteen = result.find_cell("rounds=13 blocks=8");
  ok &= expect(one_round != nullptr && std::abs(one_round->success_rate - std::exp(-1.0)) < 0.02,
               "1 round @ n=1024: escape rate ~ e^-1 ~ 0.37");
  ok &= expect(smarm::multi_round_escape(8, 13) < 1e-6,
               "13 rounds @ n=8: closed form below 1e-6");
  ok &= expect(thirteen != nullptr && thirteen->success_rate <= 1e-6 &&
                   thirteen->ci.lower <= 1e-6,
               "13 rounds @ n=8: empirical escape below 1e-6 within its CI");

  // Full-stack spot check through the same campaign engine: real
  // permutation, real relocation writes, real verifier.
  std::printf("\n--- full-stack campaign (device sim + verifier) ---\n");
  smarm::EscapeCampaignOptions fs_options;
  fs_options.trials = 300;
  const exp::CampaignResult fullstack =
      exp::run_campaign(smarm::make_fullstack_escape_campaign(fs_options));
  std::printf("%s", exp::campaign_table(fullstack).render().c_str());
  for (const auto& cell : fullstack.cells) {
    const auto blocks = static_cast<std::size_t>(cell.point.i64("blocks"));
    const double analytic = smarm::single_round_escape(blocks);
    const exp::WilsonInterval wide =
        exp::wilson_interval(cell.successes, cell.attempts, 3.290526731491926);
    char label[96];
    std::snprintf(label, sizeof(label), "full stack n=%-4zu empirical %.3g vs analytic %.3g",
                  blocks, cell.success_rate, analytic);
    ok &= expect(wide.contains(analytic), label);
  }

  // The prover's digest cache is a host-side optimization: the full-stack
  // campaign rerun with it disabled must aggregate byte-identically.
  std::printf("\n--- digest cache: cached vs. uncached full-stack aggregates ---\n");
  smarm::EscapeCampaignOptions fs_uncached = fs_options;
  fs_uncached.use_digest_cache = false;
  const exp::CampaignResult fullstack_uncached =
      exp::run_campaign(smarm::make_fullstack_escape_campaign(fs_uncached));
  ok &= expect(exp::campaign_json(fullstack) == exp::campaign_json(fullstack_uncached),
               "full-stack BENCH json byte-identical with and without the cache");

  // Escape-decay plot from the analytic curve (unchanged from the paper).
  support::Series analytic_series{"analytic", {}, {}};
  for (std::size_t rounds : {1u, 2u, 3u, 5u, 8u, 10u, 13u, 16u, 20u}) {
    analytic_series.x.push_back(static_cast<double>(rounds));
    analytic_series.y.push_back(smarm::multi_round_escape(64, rounds));
  }
  support::PlotOptions opt;
  opt.log_y = true;
  opt.height = 16;
  opt.x_label = "independent measurement rounds";
  opt.y_label = "escape probability (log)";
  std::printf("\n%s\n", support::render_plot({analytic_series}, opt).c_str());

  support::Table rounds_table({"blocks n", "rounds to reach 1e-6"});
  for (std::size_t n : {8u, 16u, 64u, 1024u, 1u << 20}) {
    rounds_table.add_row(
        {std::to_string(n), std::to_string(smarm::rounds_for_target(n, 1e-6))});
  }
  std::printf("%s\n", rounds_table.render().c_str());
  std::printf("Escape decays exponentially with rounds; 13-14 independent\n");
  std::printf("measurements suffice for a false-negative rate below 10^-6.\n");

  const std::string json_path = exp::write_campaign_json(result);
  if (!json_path.empty()) std::printf("machine-readable results: %s\n", json_path.c_str());

  if (!ok) {
    std::fprintf(stderr, "FAIL: campaign aggregates disagree with the paper claims\n");
    return 1;
  }
  return 0;
}
