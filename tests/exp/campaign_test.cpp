#include "src/exp/campaign.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/exp/report.hpp"

namespace rasc::exp {
namespace {

/// A deterministic trial: Bernoulli on the trial RNG plus scalar values
/// derived from the grid cell, exercising every aggregation channel.
CampaignSpec make_test_spec(std::size_t threads, std::size_t shard_size = 16) {
  CampaignSpec spec;
  spec.name = "exp_selftest";
  spec.grid.axis("p", {0.25, 0.75}).axis("k", {std::int64_t{1}, std::int64_t{3}});
  spec.trials_per_point = 200;
  spec.base_seed = 99;
  spec.threads = threads;
  spec.shard_size = shard_size;
  spec.trial = [](const GridPoint& point, TrialContext& ctx) {
    TrialOutput out;
    out.bernoulli(ctx.rng.uniform() < point.f64("p"));
    out.value("draw", ctx.rng.uniform() * point.f64("k"));
    out.metrics.counter("trials_seen").inc();
    out.metrics.histogram("draw_hist", {0.5, 1.0, 2.0, 4.0})
        .record(ctx.rng.uniform() * point.f64("k"));
    return out;
  };
  return spec;
}

TEST(Campaign, AggregatesBitIdenticalAcrossThreadCounts) {
  const CampaignResult one = run_campaign(make_test_spec(1));
  const CampaignResult four = run_campaign(make_test_spec(4));
  const CampaignResult eight = run_campaign(make_test_spec(8));
  // The JSON artifact excludes execution facts, so it must match byte for
  // byte — including every float aggregate.
  const std::string golden = campaign_json(one);
  EXPECT_EQ(campaign_json(four), golden);
  EXPECT_EQ(campaign_json(eight), golden);
}

TEST(Campaign, CellShapeAndCounts) {
  const CampaignResult result = run_campaign(make_test_spec(4));
  ASSERT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.trials, 200u);
    EXPECT_EQ(cell.attempts, 200u);
    EXPECT_EQ(cell.values.at("draw").count(), 200u);
    EXPECT_EQ(cell.metrics.find_counter("trials_seen")->value(), 200u);
    EXPECT_EQ(cell.metrics.find_histogram("draw_hist")->count(), 200u);
    // The empirical rate should be near the cell's Bernoulli parameter,
    // and its Wilson interval should cover it.
    EXPECT_NEAR(cell.success_rate, cell.point.f64("p"), 0.1);
    EXPECT_TRUE(cell.ci.contains(cell.point.f64("p")));
  }
}

TEST(Campaign, ShardSizeDoesNotChangeCounts) {
  // Integer aggregates are shard-size invariant (floats may differ in the
  // last ulp; the determinism contract fixes thread count only).
  const CampaignResult a = run_campaign(make_test_spec(2, 7));
  const CampaignResult b = run_campaign(make_test_spec(3, 64));
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].successes, b.cells[i].successes);
    EXPECT_EQ(a.cells[i].attempts, b.cells[i].attempts);
    EXPECT_EQ(a.cells[i].trials, b.cells[i].trials);
  }
}

TEST(Campaign, HistogramMergeAssociativity) {
  // Folding N histograms pairwise in any grouping yields identical
  // buckets: merge is integer bucket addition.
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  obs::Histogram left(bounds), right(bounds), sequential(bounds);
  obs::Histogram a(bounds), b(bounds), c(bounds);
  const double samples_a[] = {0.5, 1.5};
  const double samples_b[] = {3.0, 8.0, 1.1};
  const double samples_c[] = {0.1};
  for (double v : samples_a) { a.record(v); sequential.record(v); }
  for (double v : samples_b) { b.record(v); sequential.record(v); }
  for (double v : samples_c) { c.record(v); sequential.record(v); }
  // (a + b) + c
  left.merge(a);
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  b.merge(c);
  right.merge(a);
  right.merge(b);
  EXPECT_EQ(left.bucket_counts(), right.bucket_counts());
  EXPECT_EQ(left.bucket_counts(), sequential.bucket_counts());
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(Campaign, RegistryMergeAccumulates) {
  obs::MetricsRegistry dst, src;
  dst.counter("c").inc(2);
  src.counter("c").inc(3);
  src.counter("only_src").inc(1);
  src.gauge("g").set(7.5);
  dst.histogram("h", {1.0, 2.0}).record(0.5);
  src.histogram("h", {1.0, 2.0}).record(1.5);
  detail::merge_registry(dst, src);
  EXPECT_EQ(dst.find_counter("c")->value(), 5u);
  EXPECT_EQ(dst.find_counter("only_src")->value(), 1u);
  EXPECT_DOUBLE_EQ(dst.find_gauge("g")->value(), 7.5);
  EXPECT_EQ(dst.find_histogram("h")->count(), 2u);
}

TEST(Campaign, TrialSeedsFollowDerivation) {
  CampaignSpec spec;
  spec.name = "seed_probe";
  spec.trials_per_point = 8;
  spec.base_seed = 1234;
  spec.threads = 1;
  std::vector<std::uint64_t> seeds(8, 0);
  spec.trial = [&seeds](const GridPoint&, TrialContext& ctx) {
    seeds[ctx.trial_index] = ctx.seed;
    return TrialOutput{};
  };
  run_campaign(spec);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    EXPECT_EQ(seeds[t], derive_trial_seed(1234, 0, t)) << "trial " << t;
  }
}

TEST(Campaign, InvalidSpecsThrow) {
  CampaignSpec spec;
  EXPECT_THROW(run_campaign(spec), std::invalid_argument);  // no trial fn
  spec.trial = [](const GridPoint&, TrialContext&) { return TrialOutput{}; };
  spec.trials_per_point = 0;
  EXPECT_THROW(run_campaign(spec), std::invalid_argument);
  spec.trials_per_point = 1;
  spec.shard_size = 0;
  EXPECT_THROW(run_campaign(spec), std::invalid_argument);
}

TEST(Campaign, TrialExceptionPropagates) {
  CampaignSpec spec;
  spec.trials_per_point = 64;
  spec.threads = 4;
  spec.trial = [](const GridPoint&, TrialContext& ctx) -> TrialOutput {
    if (ctx.trial_index == 17) throw std::runtime_error("boom");
    return TrialOutput{};
  };
  EXPECT_THROW(run_campaign(spec), std::runtime_error);
}

TEST(Campaign, RequireFailureFailsTheCampaignLoudly) {
  // TrialOutput::require is the per-trial invariant hook (e.g. "every
  // attestation round resolved"); a violation must abort the campaign,
  // not quietly skew its aggregates.
  TrialOutput out;
  out.require(true, "fine");  // no-op
  CampaignSpec spec;
  spec.trials_per_point = 32;
  spec.threads = 2;
  spec.trial = [](const GridPoint&, TrialContext& ctx) -> TrialOutput {
    TrialOutput trial;
    trial.require(ctx.trial_index != 9, "round leaked its done callback");
    return trial;
  };
  EXPECT_THROW(run_campaign(spec), std::runtime_error);
}

TEST(Campaign, ReportJsonShape) {
  const CampaignResult result = run_campaign(make_test_spec(2));
  const std::string json = campaign_json(result);
  EXPECT_NE(json.find("\"bench\":\"exp_selftest\""), std::string::npos);
  EXPECT_NE(json.find("\"base_seed\":99"), std::string::npos);
  EXPECT_NE(json.find("\"wilson_lower\""), std::string::npos);
  EXPECT_NE(json.find("\"params\":{\"p\":0.25,\"k\":1}"), std::string::npos);
  // Execution facts must NOT leak into the artifact.
  EXPECT_EQ(json.find("threads"), std::string::npos);
  EXPECT_EQ(json.find("wall"), std::string::npos);
}

TEST(Campaign, FindCellByLabel) {
  const CampaignResult result = run_campaign(make_test_spec(1));
  const CellResult* cell = result.find_cell("p=0.75 k=3");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->grid_index, 3u);
  EXPECT_EQ(result.find_cell("p=0.5 k=9"), nullptr);
}

}  // namespace
}  // namespace rasc::exp
