/// Thread-safety audit for the simulator stack: concurrent Simulator
/// instances (one per campaign worker) must not share mutable state.
/// These tests run full device scenarios from several threads at once and
/// assert the results equal a single-threaded reference run — and they are
/// the payload of the ThreadSanitizer CI job, which turns any hidden
/// static/global into a reported race.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/apps/campaign.hpp"
#include "src/attest/golden.hpp"
#include "src/exp/campaign.hpp"
#include "src/exp/report.hpp"
#include "src/smarm/campaign.hpp"
#include "src/support/rng.hpp"

namespace rasc::exp {
namespace {

TEST(Concurrency, ParallelLockScenariosMatchSerialReference) {
  apps::LockMatrixCampaignOptions options;
  options.trials = 6;
  options.seed = 5;
  auto make = [&](std::size_t threads) {
    CampaignSpec spec = apps::make_lock_matrix_campaign(options);
    // Trim the grid so the test stays fast under TSan.
    spec.grid.set_axis("lock", {std::string("No-Lock"), std::string("Dec-Lock"),
                                std::string("Cpy-Lock")});
    spec.grid.set_axis("adversary", {std::string("transient"), std::string("roving")});
    spec.threads = threads;
    return spec;
  };
  const CampaignResult serial = run_campaign(make(1));
  const CampaignResult parallel = run_campaign(make(4));
  EXPECT_EQ(campaign_json(parallel), campaign_json(serial));
}

TEST(Concurrency, ParallelFullStackSmarmMatchesSerialReference) {
  smarm::EscapeCampaignOptions options;
  options.trials = 12;
  options.seed = 3;
  auto make = [&](std::size_t threads) {
    CampaignSpec spec = smarm::make_fullstack_escape_campaign(options);
    spec.grid.set_axis("blocks", {std::int64_t{8}, std::int64_t{12}});
    spec.threads = threads;
    return spec;
  };
  const CampaignResult serial = run_campaign(make(1));
  const CampaignResult parallel = run_campaign(make(4));
  EXPECT_EQ(campaign_json(parallel), campaign_json(serial));
}

TEST(Concurrency, ParallelFireAlarmScenariosMatchSerialReference) {
  apps::FireAlarmCampaignOptions options;
  options.trials = 4;
  options.seed = 7;
  auto make = [&](std::size_t threads) {
    CampaignSpec spec = apps::make_fire_alarm_campaign(options);
    spec.grid.set_axis("memory_mb", {std::int64_t{100}});
    spec.threads = threads;
    return spec;
  };
  const CampaignResult serial = run_campaign(make(1));
  const CampaignResult parallel = run_campaign(make(4));
  EXPECT_EQ(campaign_json(parallel), campaign_json(serial));
}

TEST(Concurrency, SharedGoldenMeasurementIsSafeAcrossThreads) {
  // One immutable GoldenMeasurement shared by const reference across many
  // workers, as the campaign factories do — TSan flags any hidden mutation.
  constexpr std::size_t kBlocks = 16;
  constexpr std::size_t kBlockSize = 128;
  support::Xoshiro256 rng(11);
  support::Bytes image(kBlocks * kBlockSize);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  const auto golden = std::make_shared<const attest::GoldenMeasurement>(
      image, kBlockSize, crypto::HashKind::kSha256, support::to_bytes("k"));

  const attest::MeasurementContext context{"dev", support::to_bytes("c"), 3};
  const support::Bytes reference = golden->expected(context);

  constexpr std::size_t kThreads = 8;
  std::vector<support::Bytes> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 16; ++round) {
        results[t] = golden->expected(context);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& r : results) EXPECT_EQ(r, reference);
}

}  // namespace
}  // namespace rasc::exp
