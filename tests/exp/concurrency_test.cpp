/// Thread-safety audit for the simulator stack: concurrent Simulator
/// instances (one per campaign worker) must not share mutable state.
/// These tests run full device scenarios from several threads at once and
/// assert the results equal a single-threaded reference run — and they are
/// the payload of the ThreadSanitizer CI job, which turns any hidden
/// static/global into a reported race.

#include <gtest/gtest.h>

#include "src/apps/campaign.hpp"
#include "src/exp/campaign.hpp"
#include "src/exp/report.hpp"
#include "src/smarm/campaign.hpp"

namespace rasc::exp {
namespace {

TEST(Concurrency, ParallelLockScenariosMatchSerialReference) {
  apps::LockMatrixCampaignOptions options;
  options.trials = 6;
  options.seed = 5;
  auto make = [&](std::size_t threads) {
    CampaignSpec spec = apps::make_lock_matrix_campaign(options);
    // Trim the grid so the test stays fast under TSan.
    spec.grid.set_axis("lock", {std::string("No-Lock"), std::string("Dec-Lock"),
                                std::string("Cpy-Lock")});
    spec.grid.set_axis("adversary", {std::string("transient"), std::string("roving")});
    spec.threads = threads;
    return spec;
  };
  const CampaignResult serial = run_campaign(make(1));
  const CampaignResult parallel = run_campaign(make(4));
  EXPECT_EQ(campaign_json(parallel), campaign_json(serial));
}

TEST(Concurrency, ParallelFullStackSmarmMatchesSerialReference) {
  smarm::EscapeCampaignOptions options;
  options.trials = 12;
  options.seed = 3;
  auto make = [&](std::size_t threads) {
    CampaignSpec spec = smarm::make_fullstack_escape_campaign(options);
    spec.grid.set_axis("blocks", {std::int64_t{8}, std::int64_t{12}});
    spec.threads = threads;
    return spec;
  };
  const CampaignResult serial = run_campaign(make(1));
  const CampaignResult parallel = run_campaign(make(4));
  EXPECT_EQ(campaign_json(parallel), campaign_json(serial));
}

TEST(Concurrency, ParallelFireAlarmScenariosMatchSerialReference) {
  apps::FireAlarmCampaignOptions options;
  options.trials = 4;
  options.seed = 7;
  auto make = [&](std::size_t threads) {
    CampaignSpec spec = apps::make_fire_alarm_campaign(options);
    spec.grid.set_axis("memory_mb", {std::int64_t{100}});
    spec.threads = threads;
    return spec;
  };
  const CampaignResult serial = run_campaign(make(1));
  const CampaignResult parallel = run_campaign(make(4));
  EXPECT_EQ(campaign_json(parallel), campaign_json(serial));
}

}  // namespace
}  // namespace rasc::exp
