#include "src/exp/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rasc::exp {
namespace {

TEST(StreamingMoments, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  StreamingMoments m;
  for (double x : xs) m.add(x);

  double sum = 0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);

  EXPECT_EQ(m.count(), xs.size());
  EXPECT_NEAR(m.mean(), mean, 1e-12);
  EXPECT_NEAR(m.variance(), ss / static_cast<double>(xs.size() - 1), 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), -3.0);
  EXPECT_DOUBLE_EQ(m.max(), 7.25);
  EXPECT_NEAR(m.sum(), sum, 1e-12);
}

TEST(StreamingMoments, EmptyAndSingleton) {
  StreamingMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.stderror(), 0.0);
  m.add(5.0);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 5.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
}

TEST(StreamingMoments, MergeEquivalentToSequential) {
  StreamingMoments whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(StreamingMoments, MergeWithEmptySides) {
  StreamingMoments a, b, c;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // empty right side: unchanged
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  c.merge(a);  // empty left side: adopt
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Wilson, ZeroSuccessesPinsLowerToZero) {
  const WilsonInterval ci = wilson_interval(0, 1000);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
  EXPECT_LT(ci.upper, 0.005);  // ~ z^2 / (n + z^2) ~ 0.0038
  EXPECT_TRUE(ci.contains(1e-6));
  EXPECT_TRUE(ci.contains(0.0));
}

TEST(Wilson, AllSuccessesPinsUpperToOne) {
  const WilsonInterval ci = wilson_interval(1000, 1000);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
  EXPECT_GT(ci.lower, 0.995);
  EXPECT_TRUE(ci.contains(1.0));
}

TEST(Wilson, ZeroTrialsIsVacuous) {
  const WilsonInterval ci = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(Wilson, CoversTrueProportion) {
  // 370 / 1000 at 95%: the interval straddles 0.37 and is ~6% wide.
  const WilsonInterval ci = wilson_interval(370, 1000);
  EXPECT_TRUE(ci.contains(0.37));
  EXPECT_NEAR(ci.lower, 0.340, 0.005);
  EXPECT_NEAR(ci.upper, 0.400, 0.005);
}

TEST(Wilson, WiderZWidensInterval) {
  const WilsonInterval narrow = wilson_interval(37, 100, 1.0);
  const WilsonInterval wide = wilson_interval(37, 100, 3.0);
  EXPECT_LT(wide.lower, narrow.lower);
  EXPECT_GT(wide.upper, narrow.upper);
}

}  // namespace
}  // namespace rasc::exp
