#include "src/exp/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rasc::exp {
namespace {

TEST(Grid, EmptyGridHasOneCell) {
  ParamGrid grid;
  EXPECT_EQ(grid.size(), 1u);
  const GridPoint point = grid.point(0);
  EXPECT_TRUE(point.params().empty());
  EXPECT_EQ(point.label(), "");
}

TEST(Grid, CartesianExpansionFirstAxisSlowest) {
  ParamGrid grid;
  grid.axis("a", {std::int64_t{1}, std::int64_t{2}})
      .axis("b", {std::string("x"), std::string("y"), std::string("z")});
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid.point(0).label(), "a=1 b=x");
  EXPECT_EQ(grid.point(1).label(), "a=1 b=y");
  EXPECT_EQ(grid.point(2).label(), "a=1 b=z");
  EXPECT_EQ(grid.point(3).label(), "a=2 b=x");
  EXPECT_EQ(grid.point(5).label(), "a=2 b=z");
  EXPECT_EQ(grid.point(4).index(), 4u);
}

TEST(Grid, TypedAccessors) {
  ParamGrid grid;
  grid.axis("n", {std::int64_t{64}}).axis("p", {0.5}).axis("lock", {std::string("No-Lock")});
  const GridPoint point = grid.point(0);
  EXPECT_EQ(point.i64("n"), 64);
  EXPECT_DOUBLE_EQ(point.f64("n"), 64.0);  // int widens to double
  EXPECT_DOUBLE_EQ(point.f64("p"), 0.5);
  EXPECT_EQ(point.str("lock"), "No-Lock");
  EXPECT_TRUE(point.has("n"));
  EXPECT_FALSE(point.has("missing"));
  EXPECT_THROW(point.i64("missing"), std::out_of_range);
  EXPECT_THROW(point.i64("lock"), std::bad_variant_access);
}

TEST(Grid, InvalidAxesThrow) {
  ParamGrid grid;
  EXPECT_THROW(grid.axis("empty", {}), std::invalid_argument);
  grid.axis("a", {std::int64_t{1}});
  EXPECT_THROW(grid.axis("a", {std::int64_t{2}}), std::invalid_argument);
  EXPECT_THROW(grid.point(1), std::out_of_range);
}

TEST(Grid, SetAxisOverridesOrAppends) {
  ParamGrid grid;
  grid.axis("rounds", {std::int64_t{1}, std::int64_t{13}});
  grid.set_axis("rounds", {std::int64_t{5}});
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.point(0).i64("rounds"), 5);
  grid.set_axis("blocks", {std::int64_t{16}, std::int64_t{64}});
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.point(1).label(), "rounds=5 blocks=64");
}

TEST(Grid, ParseSpecTypesAndStructure) {
  const auto axes = parse_grid_spec("rounds=1,2,13;scale=0.5,1.5;lock=No-Lock,Cpy-Lock");
  ASSERT_EQ(axes.size(), 3u);
  EXPECT_EQ(axes[0].name, "rounds");
  ASSERT_EQ(axes[0].values.size(), 3u);
  EXPECT_EQ(std::get<std::int64_t>(axes[0].values[2]), 13);
  EXPECT_DOUBLE_EQ(std::get<double>(axes[1].values[0]), 0.5);
  EXPECT_EQ(std::get<std::string>(axes[2].values[1]), "Cpy-Lock");
}

TEST(Grid, ParseSpecEdgesAndErrors) {
  EXPECT_TRUE(parse_grid_spec("").empty());
  EXPECT_TRUE(parse_grid_spec(";;").empty());
  EXPECT_THROW(parse_grid_spec("noequals"), std::invalid_argument);
  EXPECT_THROW(parse_grid_spec("=1,2"), std::invalid_argument);
  EXPECT_THROW(parse_grid_spec("a=1,,2"), std::invalid_argument);
}

TEST(Grid, ParamToString) {
  EXPECT_EQ(param_to_string(ParamValue{std::int64_t{-7}}), "-7");
  EXPECT_EQ(param_to_string(ParamValue{0.5}), "0.5");
  EXPECT_EQ(param_to_string(ParamValue{std::string("atomic")}), "atomic");
}

}  // namespace
}  // namespace rasc::exp
