#include "src/exp/seeding.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rasc::exp {
namespace {

TEST(Seeding, DeterministicPerCoordinates) {
  EXPECT_EQ(derive_trial_seed(1, 2, 3), derive_trial_seed(1, 2, 3));
  EXPECT_EQ(derive_trial_seed(0, 0, 0), derive_trial_seed(0, 0, 0));
}

TEST(Seeding, CoordinatesAreDomainSeparated) {
  // Swapping grid and trial indices must land in different streams.
  EXPECT_NE(derive_trial_seed(1, 2, 3), derive_trial_seed(1, 3, 2));
  EXPECT_NE(derive_trial_seed(2, 1, 3), derive_trial_seed(1, 2, 3));
  EXPECT_NE(derive_trial_seed(1, 0, 0), derive_trial_seed(0, 1, 0));
  EXPECT_NE(derive_trial_seed(0, 1, 0), derive_trial_seed(0, 0, 1));
}

TEST(Seeding, NoCollisionsAcrossDenseGrid) {
  // Small structured coordinates (the common case) must not collide.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    for (std::uint64_t grid = 0; grid < 32; ++grid) {
      for (std::uint64_t trial = 0; trial < 128; ++trial) {
        seen.insert(derive_trial_seed(base, grid, trial));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 32u * 128u);
}

TEST(Seeding, MixAvalanches) {
  // Single-bit input changes flip roughly half the output bits.
  const std::uint64_t a = mix64(0x1234);
  const std::uint64_t b = mix64(0x1235);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(Seeding, TrialRngStreamsAreIndependent) {
  auto rng_a = make_trial_rng(7, 0, 0);
  auto rng_b = make_trial_rng(7, 0, 1);
  // First draws from adjacent trials should differ (streams decorrelated).
  EXPECT_NE(rng_a(), rng_b());
  // And re-creating the same stream replays it exactly.
  auto rng_c = make_trial_rng(7, 0, 0);
  auto rng_d = make_trial_rng(7, 0, 0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng_c(), rng_d());
}

}  // namespace
}  // namespace rasc::exp
