/// Property tests for the campaign engine's shard reduction: folding
/// trial outputs into exp::detail::ShardAggregate shards and merging them
/// in shard order must equal the direct sequential fold, for any shard
/// partition — the algebra behind "BENCH JSON is bit-identical for any
/// --threads".  Plus failure-path coverage for TrialOutput::require, the
/// per-trial invariant hook the fleet campaign leans on.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/exp/campaign.hpp"
#include "src/support/rng.hpp"

namespace rasc::exp {
namespace {

std::vector<TrialOutput> random_outputs(std::uint64_t seed, std::size_t count) {
  support::Xoshiro256 rng(seed);
  std::vector<TrialOutput> outputs;
  outputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TrialOutput out;
    out.successes = rng.below(4);
    out.attempts = out.successes + rng.below(4);
    out.value("latency", static_cast<double>(rng.below(1000)));
    if (rng.below(2)) out.value("sparse", static_cast<double>(rng.below(10)));
    out.metrics.counter("work").inc(rng.below(8));
    out.health.record_round(
        static_cast<obs::RoundOutcome>(rng.below(obs::kRoundOutcomeCount)),
        1 + rng.below(6), rng.below(1'000'000'000ull), rng.below(1'000'000ull),
        rng.below(1'000ull));
    outputs.push_back(std::move(out));
  }
  return outputs;
}

detail::ShardAggregate fold_range(const std::vector<TrialOutput>& outputs,
                                  std::size_t begin, std::size_t end) {
  detail::ShardAggregate shard;
  for (std::size_t i = begin; i < end; ++i) shard.fold(outputs[i]);
  return shard;
}

void expect_same(const detail::ShardAggregate& a, const detail::ShardAggregate& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.attempts, b.attempts);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (const auto& [name, moments] : a.values) {
    const auto it = b.values.find(name);
    ASSERT_NE(it, b.values.end()) << name;
    EXPECT_EQ(moments.count(), it->second.count()) << name;
    // min/max/count are grouping-independent and must match exactly; the
    // Welford mean is grouping-sensitive only in its last few ulps (this
    // is why run_campaign fixes the shard partition by shard_size rather
    // than by thread count — bit-identity needs identical grouping, which
    // Campaign.AggregatesBitIdenticalAcrossThreadCounts pins down).
    EXPECT_NEAR(moments.mean(), it->second.mean(),
                1e-12 * (1.0 + std::abs(moments.mean())))
        << name;
    EXPECT_DOUBLE_EQ(moments.min(), it->second.min()) << name;
    EXPECT_DOUBLE_EQ(moments.max(), it->second.max()) << name;
  }
  EXPECT_EQ(a.health.rounds(), b.health.rounds());
  for (std::size_t o = 0; o < obs::kRoundOutcomeCount; ++o) {
    EXPECT_EQ(a.health.outcome_count(static_cast<obs::RoundOutcome>(o)),
              b.health.outcome_count(static_cast<obs::RoundOutcome>(o)));
  }
  const obs::Counter* ca = a.metrics.find_counter("work");
  const obs::Counter* cb = b.metrics.find_counter("work");
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(ca->value(), cb->value());
}

TEST(ShardFoldProperty, AnyShardPartitionMergesToTheDirectFold) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const std::vector<TrialOutput> outputs = random_outputs(seed, 100);
    const detail::ShardAggregate reference =
        fold_range(outputs, 0, outputs.size());

    support::Xoshiro256 rng(seed ^ 0xbeef);
    for (int repeat = 0; repeat < 4; ++repeat) {
      // Random shard boundaries, merged in shard order (as run_campaign
      // does regardless of which worker computed which shard).
      std::vector<std::size_t> cuts = {0, outputs.size()};
      for (int i = 0; i < 4; ++i) cuts.push_back(rng.below(outputs.size() + 1));
      std::sort(cuts.begin(), cuts.end());
      detail::ShardAggregate merged;
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        merged.merge(fold_range(outputs, cuts[i], cuts[i + 1]));
      }
      expect_same(merged, reference);
    }
  }
}

TEST(ShardFoldProperty, MergeWithEmptyShardIsANoOp) {
  const std::vector<TrialOutput> outputs = random_outputs(7, 20);
  const detail::ShardAggregate reference = fold_range(outputs, 0, outputs.size());
  detail::ShardAggregate merged = fold_range(outputs, 0, outputs.size());
  merged.merge(detail::ShardAggregate{});
  expect_same(merged, reference);
  detail::ShardAggregate from_empty;
  from_empty.merge(fold_range(outputs, 0, outputs.size()));
  expect_same(from_empty, reference);
}

TEST(ShardFoldProperty, SparseValueChannelsUnionAcrossShards) {
  // A value channel recorded only by some trials must still aggregate the
  // union of observations, not just the channels the first shard saw.
  TrialOutput only_a;
  only_a.value("a", 1.0);
  TrialOutput only_b;
  only_b.value("b", 2.0);
  detail::ShardAggregate left;
  left.fold(only_a);
  detail::ShardAggregate right;
  right.fold(only_b);
  left.merge(std::move(right));
  ASSERT_EQ(left.values.size(), 2u);
  EXPECT_EQ(left.values.at("a").count(), 1u);
  EXPECT_EQ(left.values.at("b").count(), 1u);
}

TEST(TrialRequire, ThrowsRuntimeErrorNamingTheInvariant) {
  TrialOutput out;
  out.require(true, "holds");  // passing requirement is silent
  try {
    out.require(false, "every admitted device reached a terminal outcome");
    FAIL() << "require(false) did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "every admitted device reached a terminal outcome"),
              std::string::npos)
        << "message must name the violated invariant, got: " << e.what();
  }
}

}  // namespace
}  // namespace rasc::exp
