/// Cross-feature integration: combinations the paper implies but no single
/// module owns — self-measurement under a locking policy, signed reports
/// over the full protocol, shuffled measurement with CBC-MAC, and the
/// detect-then-remediate loop against live transient malware.

#include <gtest/gtest.h>

#include "src/apps/scenario.hpp"
#include "src/attest/protocol.hpp"
#include "src/attest/remediation.hpp"
#include "src/locking/consistency.hpp"
#include "src/locking/policies.hpp"
#include "src/malware/transient.hpp"
#include "src/selfmeasure/erasmus.hpp"
#include "src/support/rng.hpp"

namespace rasc {
namespace {

using support::to_bytes;

support::Bytes random_image(std::size_t size, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  support::Bytes image(size);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  return image;
}

TEST(CrossFeature, ErasmusWithDecLockConvictsTransientAtTs) {
  // Self-measurement + Dec-Lock: the transient adversary present at a
  // measurement's t_s cannot erase itself even between self-measurements'
  // block segments.
  sim::Simulator simulator;
  sim::Device device(simulator,
                     sim::DeviceConfig{"prv-el", 32 * 512, 512, to_bytes("el-key")});
  device.memory().load(random_image(32 * 512, 3));
  attest::Verifier verifier(crypto::HashKind::kSha256, to_bytes("el-key"),
                            device.memory().snapshot(), 512);

  auto policy = locking::make_lock_policy(locking::LockMechanism::kDecLock);
  selfm::ErasmusConfig config;
  config.period = 100 * sim::kMillisecond;
  config.mode = attest::ExecutionMode::kInterruptible;
  selfm::ErasmusProver prover(device, config, policy.get());

  // Infect just before a scheduled measurement; try to erase right after
  // it begins (the block is late in the sequential order).
  malware::TransientConfig mc;
  mc.block = 30;
  mc.infect_at = 195 * sim::kMillisecond;
  // Erase attempt lands mid-measurement: the t=200 ms measurement sweeps
  // 32 blocks in ~280 us, and block 30 is visited near the end.
  mc.dwell = 5 * sim::kMillisecond + 150 * sim::kMicrosecond;
  malware::TransientMalware malware(device, mc);
  malware.arm();

  prover.start(sim::from_seconds(0.5));
  simulator.run();

  bool any_bad = false;
  for (const auto& report : prover.history()) {
    if (!verifier.verify(report, /*expect_challenge=*/false).ok()) any_bad = true;
  }
  EXPECT_TRUE(any_bad);
  EXPECT_GE(malware.failed_erase_attempts(), 1u);
}

TEST(CrossFeature, SignedReportsOverProtocolProvideNonRepudiation) {
  sim::Simulator simulator;
  sim::Device device(simulator,
                     sim::DeviceConfig{"prv-sg", 16 * 512, 512, to_bytes("sg-key")});
  device.memory().load(random_image(16 * 512, 4));
  attest::Verifier verifier(crypto::HashKind::kSha256, to_bytes("sg-key"),
                            device.memory().snapshot(), 512);

  crypto::HmacDrbg drbg(to_bytes("device-signing-key"));
  auto signer = crypto::make_signer(crypto::SigKind::kEcdsa256, drbg);
  attest::ProverConfig config;
  config.signature = crypto::SigKind::kEcdsa256;
  attest::AttestationProcess mp(device, config);
  mp.set_signer(signer.get());

  sim::Link up(simulator, {}), down(simulator, {});
  attest::OnDemandProtocol protocol(device, verifier, mp, up, down);
  bool checked = false;
  protocol.run(1, [&](attest::OnDemandTimings t) {
    EXPECT_TRUE(t.outcome.ok());
    // Anyone holding only the *public* key can audit the report.
    EXPECT_TRUE(report_signature_valid(t.attestation.report, *signer));
    attest::Report tampered = t.attestation.report;
    tampered.counter ^= 1;
    EXPECT_FALSE(report_signature_valid(tampered, *signer));
    checked = true;
  });
  simulator.run();
  EXPECT_TRUE(checked);
}

TEST(CrossFeature, ShuffledCbcMacMeasurementVerifies) {
  sim::Simulator simulator;
  sim::Device device(simulator,
                     sim::DeviceConfig{"prv-sc", 16 * 512, 512, support::Bytes(16, 0x5c)});
  device.memory().load(random_image(16 * 512, 5));
  attest::Verifier verifier(crypto::HashKind::kSha256, support::Bytes(16, 0x5c),
                            device.memory().snapshot(), 512, 0xc0ffee,
                            attest::MacKind::kCbcMac);
  attest::ProverConfig config;
  config.mac = attest::MacKind::kCbcMac;
  config.order = attest::TraversalOrder::kShuffledSecret;
  config.mode = attest::ExecutionMode::kInterruptible;
  attest::AttestationProcess mp(device, config);
  bool ok = false;
  mp.start(attest::MeasurementContext{device.id(), verifier.issue_challenge(), 1},
           [&](attest::AttestationResult result) {
             ok = verifier.verify(result.report).ok();
           });
  simulator.run();
  EXPECT_TRUE(ok);
}

TEST(CrossFeature, RemediationDefeatsTransientReinfectionLoop) {
  // Detect-and-cure against periodically reinfecting malware: each cycle
  // ends with a verified-clean device.
  sim::Simulator simulator;
  sim::Device device(simulator,
                     sim::DeviceConfig{"prv-rr", 16 * 512, 512, to_bytes("rr-key")});
  const auto golden = random_image(16 * 512, 6);
  device.memory().load(golden);
  attest::Verifier verifier(crypto::HashKind::kSha256, to_bytes("rr-key"), golden, 512);
  attest::AttestationProcess mp(device, {});
  sim::Link up(simulator, {}), down(simulator, {});
  attest::RemediationService service(device, verifier, mp, up, down, golden);

  malware::TransientConfig mc;
  mc.block = 9;
  mc.infect_at = sim::kMillisecond;
  mc.dwell = sim::from_seconds(100);  // persistent until scrubbed
  malware::TransientMalware malware(device, mc);
  malware.arm();

  bool cured = false;
  simulator.schedule_at(10 * sim::kMillisecond, [&] {
    service.run(1, [&](attest::RemediationOutcome outcome) {
      EXPECT_TRUE(outcome.attempted);
      cured = outcome.reattested_ok;
    });
  });
  simulator.run();
  EXPECT_TRUE(cured);
}

TEST(CrossFeature, CpyLockKeepsFireAlarmPromptDuringMeasurement) {
  // Snapshot-based consistency + interruptible MP: the critical task sees
  // microsecond jitter while the measurement stays t_s-consistent.
  apps::LockScenarioConfig config;
  config.blocks = 64;
  config.block_size = 1024;
  config.mode = attest::ExecutionMode::kInterruptible;
  config.lock = locking::LockMechanism::kCpyLock;
  config.writer_enabled = true;
  const auto outcome = apps::run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_DOUBLE_EQ(outcome.writer_availability, 1.0);
  EXPECT_TRUE(outcome.consistency.at_ts);
}

}  // namespace
}  // namespace rasc
