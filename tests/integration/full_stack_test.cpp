/// Integration tests exercising several modules together: the on-demand
/// protocol over a lossy network against live adversaries, attestation
/// coexisting with the safety-critical application, and cross-mechanism
/// sanity sweeps.

#include <gtest/gtest.h>

#include "src/apps/fire_alarm.hpp"
#include "src/apps/scenario.hpp"
#include "src/attest/protocol.hpp"
#include "src/locking/policies.hpp"
#include "src/malware/relocating.hpp"
#include "src/selfmeasure/erasmus.hpp"
#include "src/support/rng.hpp"

namespace rasc {
namespace {

using support::to_bytes;

support::Bytes random_image(std::size_t size, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  support::Bytes image(size);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
  return image;
}

TEST(FullStack, OnDemandProtocolWithLockingAndChaseMalware) {
  // Chase malware vs Inc-Lock over the full network protocol: blocked and
  // detected end-to-end.
  sim::Simulator simulator;
  sim::Device device(simulator,
                     sim::DeviceConfig{"prv-it", 32 * 512, 512, to_bytes("it-key")});
  device.memory().load(random_image(32 * 512, 77));
  attest::Verifier verifier(crypto::HashKind::kSha256, to_bytes("it-key"),
                            device.memory().snapshot(), 512);

  auto policy = locking::make_lock_policy(locking::LockMechanism::kIncLock);
  attest::ProverConfig pc;
  pc.mode = attest::ExecutionMode::kInterruptible;
  attest::AttestationProcess mp(device, pc, policy.get());

  malware::RelocatingConfig mc;
  mc.initial_block = 16;
  mc.strategy = malware::RelocationStrategy::kChaseMeasured;
  malware::SelfRelocatingMalware malware(device, mc);
  malware.infect_initial();
  mp.set_observer([&](std::size_t done, std::size_t total) {
    malware.on_measurement_progress(done, total);
  });

  sim::Link up(simulator, {});
  sim::Link down(simulator, {});
  attest::OnDemandProtocol protocol(device, verifier, mp, up, down);

  bool done = false;
  attest::VerifyOutcome outcome;
  malware.on_measurement_start();
  protocol.run(1, [&](attest::OnDemandTimings t) {
    outcome = t.outcome;
    done = true;
  });
  simulator.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.mac_ok);
  EXPECT_FALSE(outcome.digest_ok);
  EXPECT_GE(malware.blocked_relocations(), 1u);
}

TEST(FullStack, SmarmOverProtocolDetectsWithinRounds) {
  // Shuffled interruptible measurement vs roving malware, repeated rounds
  // over the protocol until detection; expected geometric with p ~ 0.65.
  sim::Simulator simulator;
  sim::Device device(simulator,
                     sim::DeviceConfig{"prv-sm", 16 * 512, 512, to_bytes("sm-key")});
  device.memory().load(random_image(16 * 512, 88));
  attest::Verifier verifier(crypto::HashKind::kSha256, to_bytes("sm-key"),
                            device.memory().snapshot(), 512);

  attest::ProverConfig pc;
  pc.mode = attest::ExecutionMode::kInterruptible;
  pc.order = attest::TraversalOrder::kShuffledSecret;
  attest::AttestationProcess mp(device, pc);

  malware::RelocatingConfig mc;
  mc.strategy = malware::RelocationStrategy::kRovingUniform;
  mc.seed = 0x9a9a;
  malware::SelfRelocatingMalware malware(device, mc);
  malware.infect_initial();
  mp.set_observer([&](std::size_t done, std::size_t total) {
    malware.on_measurement_progress(done, total);
  });

  sim::Link up(simulator, {});
  sim::Link down(simulator, {});
  attest::OnDemandProtocol protocol(device, verifier, mp, up, down);

  int detected_round = -1;
  std::function<void(int)> round = [&](int k) {
    if (k > 30) return;
    malware.on_measurement_start();
    protocol.run(static_cast<std::uint64_t>(k), [&, k](attest::OnDemandTimings t) {
      if (!t.outcome.digest_ok && detected_round < 0) {
        detected_round = k;
        return;
      }
      if (detected_round < 0) round(k + 1);
    });
  };
  round(1);
  simulator.run();
  ASSERT_GT(detected_round, 0);
  EXPECT_LE(detected_round, 30);
}

TEST(FullStack, ErasmusRunsAlongsideFireAlarmWithoutHarm) {
  // Self-measurement at low priority + interruptible mode: the critical
  // app's sampling jitter stays tiny while attestation still completes.
  sim::Simulator simulator;
  sim::Device device(simulator,
                     sim::DeviceConfig{"prv-fa", 64 * 1024, 1024, to_bytes("fa-key")});
  device.memory().load(random_image(64 * 1024, 99));
  attest::Verifier verifier(crypto::HashKind::kSha256, to_bytes("fa-key"),
                            device.memory().snapshot(), 1024);

  apps::FireAlarmConfig fa;
  fa.period = 100 * sim::kMillisecond;
  apps::FireAlarmTask alarm(device, fa);
  alarm.set_fire_time(sim::from_seconds(2.05));
  alarm.arm(sim::from_seconds(5));

  selfm::ErasmusConfig ec;
  ec.period = 500 * sim::kMillisecond;
  ec.mode = attest::ExecutionMode::kInterruptible;
  selfm::ErasmusProver prover(device, ec);
  prover.start(sim::from_seconds(5));

  simulator.run();
  ASSERT_TRUE(alarm.alarm_latency().has_value());
  EXPECT_LT(sim::to_seconds(*alarm.alarm_latency()), 0.2);
  EXPECT_GE(prover.measurements_taken(), 9u);
  for (const auto& report : prover.history()) {
    EXPECT_TRUE(verifier.verify(report, false).ok());
  }
}

TEST(FullStack, AtomicErasmusStarvesFireAlarm) {
  // Same setup but atomic self-measurement on a big (scaled) memory: the
  // app's jitter explodes — the paper's core conflict, now via ERASMUS.
  sim::Simulator simulator;
  sim::Device device(simulator,
                     sim::DeviceConfig{"prv-fb", 64 * 1024, 1024, to_bytes("fb-key")});
  device.memory().load(random_image(64 * 1024, 100));
  device.model().set_hash_time_scale(1000.0);  // model ~64 MB -> seconds

  apps::FireAlarmConfig fa;
  fa.period = 100 * sim::kMillisecond;
  apps::FireAlarmTask alarm(device, fa);
  alarm.arm(sim::from_seconds(5));

  selfm::ErasmusConfig ec;
  ec.period = 2 * sim::kSecond;
  ec.mode = attest::ExecutionMode::kAtomic;
  selfm::ErasmusProver prover(device, ec);
  prover.start(sim::from_seconds(4));

  simulator.run();
  EXPECT_GT(sim::to_seconds(alarm.max_sample_delay()), 0.2);
}

TEST(FullStack, RovingMalwareUnderAllLockCannotMoveAndIsDetected) {
  apps::LockScenarioConfig config;
  config.blocks = 32;
  config.block_size = 512;
  config.mode = attest::ExecutionMode::kInterruptible;
  config.lock = locking::LockMechanism::kAllLock;
  config.adversary = apps::AdversaryKind::kRelocRoving;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);
}

TEST(FullStack, MechanismSweepBenignAndAdversarial) {
  // Smoke-sweep every mechanism x adversary; benign rounds pass, and the
  // detection matrix matches Table 1 where deterministic.
  for (locking::LockMechanism lock : locking::kAllLockMechanisms) {
    for (apps::AdversaryKind adv :
         {apps::AdversaryKind::kNone, apps::AdversaryKind::kTransientLeaver,
          apps::AdversaryKind::kRelocChase}) {
      apps::LockScenarioConfig config;
      config.blocks = 32;
      config.block_size = 512;
      config.mode = attest::ExecutionMode::kInterruptible;
      config.lock = lock;
      config.release_delay = sim::kMillisecond;
      config.adversary = adv;
      const auto outcome = run_lock_scenario(config);
      ASSERT_TRUE(outcome.completed)
          << lock_mechanism_name(lock) << " / " << apps::adversary_name(adv);
      if (adv == apps::AdversaryKind::kNone) {
        EXPECT_FALSE(outcome.detected) << lock_mechanism_name(lock);
      }
    }
  }
}

}  // namespace
}  // namespace rasc
