#include "src/apps/fire_alarm.hpp"

#include <gtest/gtest.h>

#include "src/apps/scenario.hpp"
#include "tests/support/fleet_fixtures.hpp"

namespace rasc::apps {
namespace {

TEST(FireAlarm, SamplesAtConfiguredPeriod) {
  testfx::DeviceHarness fx;
  FireAlarmConfig config;
  config.period = 100 * sim::kMillisecond;
  FireAlarmTask alarm(fx.device, config);
  alarm.arm(sim::from_seconds(1));
  fx.simulator.run();
  EXPECT_EQ(alarm.samples_taken(), 10u);
  EXPECT_LT(alarm.max_sample_delay(), sim::kMillisecond);
}

TEST(FireAlarm, DetectsFireAtNextSample) {
  testfx::DeviceHarness fx;
  FireAlarmConfig config;
  config.period = sim::kSecond;
  FireAlarmTask alarm(fx.device, config);
  alarm.set_fire_time(sim::from_seconds(2.5));
  alarm.arm(sim::from_seconds(10));
  fx.simulator.run();
  ASSERT_TRUE(alarm.alarm_latency().has_value());
  // Fire at 2.5 s, next sample at 3 s (plus the tiny sample cost).
  EXPECT_NEAR(sim::to_seconds(*alarm.alarm_latency()), 0.5, 0.01);
}

TEST(FireAlarm, NoFireNoAlarm) {
  testfx::DeviceHarness fx;
  FireAlarmTask alarm(fx.device);
  alarm.arm(sim::from_seconds(3));
  fx.simulator.run();
  EXPECT_FALSE(alarm.alarm_raised_at().has_value());
  EXPECT_FALSE(alarm.alarm_latency().has_value());
}

// ---- the Section 2.5 worked example -----------------------------------------

TEST(FireAlarmScenario, AtomicMeasurementOf1GbTakesAbout7Seconds) {
  FireAlarmScenarioConfig config;
  config.mode = attest::ExecutionMode::kAtomic;
  const auto outcome = run_fire_alarm_scenario(config);
  EXPECT_NEAR(sim::to_seconds(outcome.measurement_duration), 7.0, 1.0);
  EXPECT_TRUE(outcome.attestation_ok);
}

TEST(FireAlarmScenario, AtomicMeasurementDelaysAlarmBySeconds) {
  // The paper's disaster case: fire breaks out just after MP starts; the
  // app regains control only at t_e, so the alarm is ~7 s late.
  FireAlarmScenarioConfig config;
  config.mode = attest::ExecutionMode::kAtomic;
  config.fire_after_mp_start = 100 * sim::kMillisecond;
  const auto outcome = run_fire_alarm_scenario(config);
  EXPECT_GT(sim::to_seconds(outcome.alarm_latency), 5.0);
  EXPECT_GT(sim::to_seconds(outcome.max_sample_delay), 5.0);
}

TEST(FireAlarmScenario, InterruptibleMeasurementKeepsAlarmPrompt) {
  FireAlarmScenarioConfig config;
  config.mode = attest::ExecutionMode::kInterruptible;
  config.fire_after_mp_start = 100 * sim::kMillisecond;
  const auto outcome = run_fire_alarm_scenario(config);
  // Alarm latency bounded by the sensor period + one block measurement.
  EXPECT_LT(sim::to_seconds(outcome.alarm_latency), 1.2);
  EXPECT_LT(sim::to_seconds(outcome.max_sample_delay), 0.5);
  EXPECT_TRUE(outcome.attestation_ok);
}

TEST(FireAlarmScenario, LatencyScalesWithMemorySize) {
  FireAlarmScenarioConfig small;
  small.modeled_memory_bytes = 100ull << 20;  // 100 MB
  small.mode = attest::ExecutionMode::kAtomic;
  FireAlarmScenarioConfig large;
  large.modeled_memory_bytes = 2ull << 30;  // 2 GB
  large.mode = attest::ExecutionMode::kAtomic;
  const auto s = run_fire_alarm_scenario(small);
  const auto l = run_fire_alarm_scenario(large);
  EXPECT_NEAR(sim::to_seconds(s.measurement_duration), 0.7, 0.3);
  EXPECT_NEAR(sim::to_seconds(l.measurement_duration), 14.0, 2.0);
  EXPECT_GT(l.alarm_latency, s.alarm_latency);
}

TEST(FireAlarmScenario, InterruptibleStillCompletesAttestation) {
  FireAlarmScenarioConfig config;
  config.mode = attest::ExecutionMode::kInterruptible;
  config.modeled_memory_bytes = 1ull << 30;
  const auto outcome = run_fire_alarm_scenario(config);
  EXPECT_TRUE(outcome.attestation_ok);
  // Total measurement wall time is still ~7 s of CPU plus app slices.
  EXPECT_GT(sim::to_seconds(outcome.measurement_duration), 6.0);
}

}  // namespace
}  // namespace rasc::apps
