/// End-to-end flight-recorder coverage: the network and fire-alarm
/// scenarios populate the journal and health rollup through the real
/// sim/attest/apps plumbing, the journal is deterministic and inert
/// (attaching it changes nothing observable), timelines reconstruct the
/// rounds, and campaign health aggregates are thread-count independent.

#include <gtest/gtest.h>

#include "src/apps/campaign.hpp"
#include "src/apps/scenario.hpp"
#include "src/exp/report.hpp"
#include "src/obs/timeline.hpp"

namespace rasc::apps {
namespace {

NetworkScenarioConfig lossy_config() {
  NetworkScenarioConfig config;
  config.rounds = 4;
  config.drop_probability = 0.3;
  config.duplicate_probability = 0.05;
  config.reorder_probability = 0.05;
  config.corrupt_probability = 0.02;
  config.session.max_attempts = 4;
  config.session.response_timeout = 60 * sim::kMillisecond;
  config.session.backoff_base = 20 * sim::kMillisecond;
  config.seed = 7;
  return config;
}

std::size_t count_kind(const obs::EventJournal& journal,
                       obs::JournalEventKind kind) {
  obs::JournalFilter filter;
  filter.kind = kind;
  return journal.count(filter);
}

TEST(JournalIntegration, NetworkScenarioPopulatesJournalAndHealth) {
  obs::EventJournal journal;
  obs::HealthRollup health;
  NetworkScenarioConfig config = lossy_config();
  config.journal = &journal;
  config.health = &health;
  const NetworkScenarioOutcome outcome = run_network_scenario(config);
  ASSERT_TRUE(outcome.all_resolved);
  ASSERT_FALSE(journal.empty());

  // One session.start / session.resolved pair per round, one
  // session.attempt per challenge sent.
  EXPECT_EQ(count_kind(journal, obs::JournalEventKind::kSessionStart),
            outcome.rounds_requested);
  EXPECT_EQ(count_kind(journal, obs::JournalEventKind::kSessionResolved),
            outcome.rounds_resolved);
  EXPECT_EQ(count_kind(journal, obs::JournalEventKind::kSessionAttempt),
            outcome.total_attempts);
  // Link fates recorded per direction under the documented actor names.
  EXPECT_EQ(count_kind(journal, obs::JournalEventKind::kLinkSend),
            outcome.link_sent);
  EXPECT_EQ(count_kind(journal, obs::JournalEventKind::kLinkDrop),
            outcome.link_dropped);
  obs::JournalFilter forward;
  forward.actor = journal.intern("vrf->prv");
  EXPECT_GT(journal.count(forward), 0u);
  obs::JournalFilter reverse;
  reverse.actor = journal.intern("prv->vrf");
  EXPECT_GT(journal.count(reverse), 0u);

  // The health rollup saw exactly the rounds the outcome reports.
  EXPECT_EQ(health.rounds(), outcome.rounds_resolved);
  EXPECT_EQ(health.outcome_count(obs::RoundOutcome::kVerified), outcome.verified);
  EXPECT_EQ(health.outcome_count(obs::RoundOutcome::kTimeout), outcome.timeouts);
  EXPECT_EQ(health.outcome_count(obs::RoundOutcome::kCorruptReport),
            outcome.corrupt_report);
  EXPECT_EQ(health.outcome_count(obs::RoundOutcome::kReplayRejected),
            outcome.replay_rejected);
  EXPECT_DOUBLE_EQ(health.wasted_measure_ms_total(),
                   sim::to_millis(outcome.wasted_measure_time));
}

TEST(JournalIntegration, AttachingJournalChangesNothingObservable) {
  // The flight recorder must be a pure observer: no RNG draws, no timing.
  NetworkScenarioConfig bare = lossy_config();
  const NetworkScenarioOutcome without = run_network_scenario(bare);
  obs::EventJournal journal;
  NetworkScenarioConfig observed = lossy_config();
  observed.journal = &journal;
  const NetworkScenarioOutcome with = run_network_scenario(observed);
  EXPECT_EQ(with.verified, without.verified);
  EXPECT_EQ(with.timeouts, without.timeouts);
  EXPECT_EQ(with.total_attempts, without.total_attempts);
  EXPECT_EQ(with.total_round_latency, without.total_round_latency);
  EXPECT_EQ(with.link_sent, without.link_sent);
  EXPECT_EQ(with.link_dropped, without.link_dropped);
  EXPECT_EQ(with.link_duplicated, without.link_duplicated);
  EXPECT_EQ(with.wasted_measure_time, without.wasted_measure_time);
}

TEST(JournalIntegration, NdjsonIsByteIdenticalAcrossReruns) {
  const auto capture = [] {
    obs::EventJournal journal;
    NetworkScenarioConfig config = lossy_config();
    config.journal = &journal;
    (void)run_network_scenario(config);
    return journal.to_ndjson();
  };
  const std::string first = capture();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(capture(), first);
}

TEST(JournalIntegration, TimelinesReconstructEveryRound) {
  obs::EventJournal journal;
  NetworkScenarioConfig config = lossy_config();
  config.journal = &journal;
  const NetworkScenarioOutcome outcome = run_network_scenario(config);
  const auto rounds = obs::build_round_timelines(journal);
  ASSERT_EQ(rounds.size(), outcome.rounds_resolved);
  std::uint64_t attempts = 0;
  std::uint64_t wasted = 0;
  for (const auto& rt : rounds) {
    EXPECT_TRUE(rt.resolved());
    EXPECT_GE(rt.t_resolved, rt.t_start);
    attempts += rt.attempts;
    wasted += rt.wasted_measure_ns;
  }
  EXPECT_EQ(attempts, outcome.total_attempts);
  EXPECT_EQ(wasted, outcome.wasted_measure_time);
  // The transcript renders every round and names the prover.
  const std::string text = obs::explain(journal);
  EXPECT_NE(text.find("round 1 on prv-net"), std::string::npos) << text;
}

TEST(JournalIntegration, ProtocolEmitsMatchedChallengeAndReportFlows) {
  // Every clean round produces one challenge flow (vrf -> prover track)
  // and one report flow back, each a matched s/f pair in the Chrome
  // export so Perfetto draws the arrows across tracks.
  obs::TraceSink trace;
  NetworkScenarioConfig config;
  config.rounds = 2;
  config.trace = &trace;
  const NetworkScenarioOutcome outcome = run_network_scenario(config);
  ASSERT_EQ(outcome.verified, 2u);
  const std::string json = trace.to_chrome_json();
  const auto count = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"name\":\"ra.challenge\",\"cat\":\"flow\",\"ph\":\"s\""), 2u)
      << json;
  EXPECT_EQ(count("\"name\":\"ra.challenge\",\"cat\":\"flow\",\"ph\":\"f\""), 2u);
  EXPECT_EQ(count("\"name\":\"ra.report\",\"cat\":\"flow\",\"ph\":\"s\""), 2u);
  EXPECT_EQ(count("\"name\":\"ra.report\",\"cat\":\"flow\",\"ph\":\"f\""), 2u);
}

TEST(JournalIntegration, FireAlarmJournalRecordsDeadlinesAndAlarm) {
  obs::EventJournal journal;
  FireAlarmScenarioConfig config;
  config.modeled_memory_bytes = 64ull << 20;
  config.real_blocks = 64;
  config.mode = attest::ExecutionMode::kAtomic;
  config.journal = &journal;
  const FireAlarmScenarioOutcome outcome = run_fire_alarm_scenario(config);
  EXPECT_EQ(count_kind(journal, obs::JournalEventKind::kDeadlineHit) +
                count_kind(journal, obs::JournalEventKind::kDeadlineMiss),
            outcome.samples_taken);
  EXPECT_EQ(count_kind(journal, obs::JournalEventKind::kDeadlineMiss),
            outcome.deadline_misses);
  EXPECT_EQ(count_kind(journal, obs::JournalEventKind::kAlarmRaised), 1u);
  obs::JournalFilter alarm;
  alarm.kind = obs::JournalEventKind::kAlarmRaised;
  EXPECT_EQ(journal.first(alarm)->a, outcome.alarm_latency);
}

TEST(JournalIntegration, CampaignHealthIsThreadCountIndependent) {
  const auto run = [](std::size_t threads) {
    NetworkReliabilityCampaignOptions options;
    options.trials = 8;
    options.seed = 3;
    options.threads = threads;
    options.rounds = 2;
    exp::CampaignSpec spec = make_network_reliability_campaign(options);
    // One lossy cell keeps the test fast while exercising retries.
    spec.grid.set_axis("drop_pct", {std::int64_t{30}});
    spec.grid.set_axis("max_attempts", {std::int64_t{3}});
    spec.grid.set_axis("timeout_ms", {std::int64_t{60}});
    return exp::run_campaign(spec);
  };
  const exp::CampaignResult serial = run(1);
  const exp::CampaignResult parallel = run(4);
  ASSERT_EQ(serial.cells.size(), 1u);
  // The health rollup is part of the cell and folded across trials.
  EXPECT_EQ(serial.cells[0].health.rounds(), 8u * 2u);
  EXPECT_FALSE(serial.cells[0].health.empty());
  // The whole artifact — including the embedded health block — is
  // byte-identical for any thread count.
  EXPECT_EQ(exp::campaign_json(serial), exp::campaign_json(parallel));
  EXPECT_NE(exp::campaign_json(serial).find("\"health\""), std::string::npos);
}

}  // namespace
}  // namespace rasc::apps
