#include "src/apps/scenario.hpp"

#include <gtest/gtest.h>

namespace rasc::apps {
namespace {

using locking::LockMechanism;

LockScenarioConfig base_config() {
  LockScenarioConfig config;
  config.blocks = 32;
  config.block_size = 512;
  config.mode = attest::ExecutionMode::kInterruptible;
  return config;
}

// ---- benign rounds ---------------------------------------------------------

TEST(Scenario, BenignDevicePassesUnderEveryMechanism) {
  for (LockMechanism lock : locking::kAllLockMechanisms) {
    LockScenarioConfig config = base_config();
    config.lock = lock;
    config.release_delay = 5 * sim::kMillisecond;
    const auto outcome = run_lock_scenario(config);
    EXPECT_TRUE(outcome.completed) << lock_mechanism_name(lock);
    EXPECT_FALSE(outcome.detected) << lock_mechanism_name(lock);
  }
}

TEST(Scenario, LocksAreReleasedAfterRound) {
  // Indirect check: a second benign round under the same config passes.
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kAllLockExt;
  config.release_delay = sim::kMillisecond;
  EXPECT_FALSE(run_lock_scenario(config).detected);
}

// ---- Table 1: self-relocating malware (chase attack) -----------------------

TEST(Scenario, ChaseAttackEvadesNoLockInterruptible) {
  // Section 3.1: with interrupts and no locking, malware in the second
  // half interrupts MP, copies into the measured first half and scrubs
  // itself -> all locations measured, nothing detected.
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kNoLock;
  config.adversary = AdversaryKind::kRelocChase;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.detected);
  EXPECT_TRUE(outcome.malware_escaped);
}

TEST(Scenario, ChaseAttackFailsUnderAtomicSmart) {
  // SMART: no interrupts, malware never gets the CPU mid-measurement.
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kNoLock;
  config.mode = attest::ExecutionMode::kAtomic;
  config.adversary = AdversaryKind::kRelocChase;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);
}

TEST(Scenario, ChaseAttackDetectedUnderAllLock) {
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kAllLock;
  config.adversary = AdversaryKind::kRelocChase;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);
  EXPECT_GE(outcome.malware_blocked_actions, 1u);
}

TEST(Scenario, ChaseAttackDetectedUnderIncLock) {
  // Inc-Lock: already-measured blocks are locked, so the copy into the
  // measured region faults.
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kIncLock;
  config.adversary = AdversaryKind::kRelocChase;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);
  EXPECT_GE(outcome.malware_blocked_actions, 1u);
}

TEST(Scenario, ChaseAttackDetectedUnderDecLock) {
  // Dec-Lock: measured blocks are unlocked (the copy may land), but the
  // malware's own block is still locked, so the scrub fails and the stale
  // body is measured.
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kDecLock;
  config.adversary = AdversaryKind::kRelocChase;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);
}

// ---- Table 1: transient malware --------------------------------------------

TEST(Scenario, TransientEvadesNoLockInterruptible) {
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kNoLock;
  config.adversary = AdversaryKind::kTransientLeaver;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.detected);
  EXPECT_TRUE(outcome.malware_escaped);
}

TEST(Scenario, TransientEvadesIncLock) {
  // Inc-Lock is consistent at t_e only: malware that erases itself before
  // its block is visited (and before that block gets locked) escapes.
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kIncLock;
  config.adversary = AdversaryKind::kTransientLeaver;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.detected);
}

TEST(Scenario, TransientDetectedUnderDecLock) {
  // Dec-Lock is consistent at t_s: anything present at t_s is measured
  // before it can erase itself (the erase faults on the lock).
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kDecLock;
  config.adversary = AdversaryKind::kTransientLeaver;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);
  EXPECT_GE(outcome.malware_blocked_actions, 1u);
}

TEST(Scenario, TransientDetectedUnderAllLock) {
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kAllLock;
  config.adversary = AdversaryKind::kTransientLeaver;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);
}

TEST(Scenario, TransientDetectedUnderAtomic) {
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kNoLock;
  config.mode = attest::ExecutionMode::kAtomic;
  config.adversary = AdversaryKind::kTransientLeaver;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected);
}

// ---- Table 1: consistency guarantees ----------------------------------------

TEST(Scenario, ConsistencyColumnsMatchTable1) {
  // Run each mechanism with an active writer and compare the analyzer's
  // verdict to the paper's claims.
  auto run = [&](LockMechanism lock) {
    LockScenarioConfig config = base_config();
    config.lock = lock;
    config.writer_enabled = true;
    config.release_delay = 2 * sim::kMillisecond;
    return run_lock_scenario(config);
  };

  const auto all = run(LockMechanism::kAllLock);
  EXPECT_TRUE(all.consistency.at_ts);
  EXPECT_TRUE(all.consistency.at_te);

  const auto dec = run(LockMechanism::kDecLock);
  EXPECT_TRUE(dec.consistency.at_ts);  // consistent with M at t_s only

  const auto inc = run(LockMechanism::kIncLock);
  EXPECT_TRUE(inc.consistency.at_te);  // consistent with M at t_e only

  const auto inc_ext = run(LockMechanism::kIncLockExt);
  EXPECT_TRUE(inc_ext.consistency.at_te);
  EXPECT_TRUE(inc_ext.consistency.at_tr);  // constant on [t_e, t_r]

  const auto all_ext = run(LockMechanism::kAllLockExt);
  EXPECT_TRUE(all_ext.consistency.at_ts);
  EXPECT_TRUE(all_ext.consistency.at_tr);
}

TEST(Scenario, NoLockWithWriterIsInconsistent) {
  // With a busy writer and no locking, the report reflects a state that
  // never existed: inconsistent at every canonical instant.
  LockScenarioConfig config = base_config();
  config.lock = LockMechanism::kNoLock;
  config.writer_enabled = true;
  // Make the measurement long enough for several writer periods.
  config.blocks = 64;
  const auto outcome = run_lock_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.consistency.at_ts);
  EXPECT_FALSE(outcome.consistency.at_te);
}

// ---- Table 1: writable-memory availability ----------------------------------

TEST(Scenario, AvailabilityOrderingMatchesTable1) {
  auto availability = [&](LockMechanism lock) {
    LockScenarioConfig config = base_config();
    config.lock = lock;
    config.writer_enabled = true;
    config.blocks = 64;
    const auto outcome = run_lock_scenario(config);
    EXPECT_GT(outcome.writer_attempts_during, 0u) << lock_mechanism_name(lock);
    return outcome.writer_availability;
  };

  const double no_lock = availability(LockMechanism::kNoLock);
  const double all_lock = availability(LockMechanism::kAllLock);
  const double dec_lock = availability(LockMechanism::kDecLock);
  const double inc_lock = availability(LockMechanism::kIncLock);

  EXPECT_DOUBLE_EQ(no_lock, 1.0);
  EXPECT_LT(all_lock, 0.2);          // X in Table 1: essentially unavailable
  EXPECT_GT(dec_lock, all_lock);     // "to some degree"
  EXPECT_GT(inc_lock, all_lock);     // "to some degree"
  EXPECT_LT(dec_lock, 1.0);
  EXPECT_LT(inc_lock, 1.0);
}

// ---- lossy-link reliable sessions ------------------------------------------

TEST(Scenario, NetworkScenarioCleanLinkVerifiesEveryRound) {
  NetworkScenarioConfig config;
  config.rounds = 3;
  const NetworkScenarioOutcome outcome = run_network_scenario(config);
  EXPECT_TRUE(outcome.all_resolved);
  EXPECT_EQ(outcome.rounds_resolved, 3u);
  EXPECT_EQ(outcome.verified, 3u);
  EXPECT_EQ(outcome.total_attempts, 3u);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_EQ(outcome.wasted_measure_time, 0u);
  EXPECT_EQ(outcome.link_dropped, 0u);
}

TEST(Scenario, NetworkScenarioResolvesEveryRoundOnVeryLossyLink) {
  NetworkScenarioConfig config;
  config.rounds = 6;
  config.drop_probability = 0.4;
  config.duplicate_probability = 0.2;
  config.corrupt_probability = 0.1;
  config.reorder_probability = 0.2;
  config.session.max_attempts = 5;
  config.session.response_timeout = 100 * sim::kMillisecond;
  const NetworkScenarioOutcome outcome = run_network_scenario(config);
  EXPECT_TRUE(outcome.all_resolved);
  EXPECT_EQ(outcome.rounds_resolved, 6u);
  EXPECT_GT(outcome.link_dropped, 0u);
  // Every terminal outcome is accounted for exactly once.
  EXPECT_EQ(outcome.verified + outcome.compromised + outcome.timeouts +
                outcome.corrupt_report + outcome.replay_rejected,
            outcome.rounds_resolved);
}

TEST(Scenario, NetworkScenarioDetectsInfectionDespiteLoss) {
  NetworkScenarioConfig config;
  config.rounds = 4;
  config.infected = true;
  config.drop_probability = 0.2;
  config.session.max_attempts = 6;
  const NetworkScenarioOutcome outcome = run_network_scenario(config);
  EXPECT_TRUE(outcome.all_resolved);
  EXPECT_GT(outcome.compromised, 0u);
  EXPECT_EQ(outcome.verified, 0u);  // never misjudged healthy
}

TEST(Scenario, NetworkScenarioIsDeterministic) {
  NetworkScenarioConfig config;
  config.rounds = 4;
  config.drop_probability = 0.3;
  config.duplicate_probability = 0.1;
  const NetworkScenarioOutcome a = run_network_scenario(config);
  const NetworkScenarioOutcome b = run_network_scenario(config);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.total_attempts, b.total_attempts);
  EXPECT_EQ(a.total_round_latency, b.total_round_latency);
  EXPECT_EQ(a.link_dropped, b.link_dropped);
  EXPECT_EQ(a.wasted_measure_time, b.wasted_measure_time);
}

TEST(Scenario, AdversaryNamesAreStable) {
  EXPECT_EQ(adversary_name(AdversaryKind::kNone), "none");
  EXPECT_EQ(adversary_name(AdversaryKind::kTransientLeaver), "transient");
  EXPECT_NE(adversary_name(AdversaryKind::kRelocChase),
            adversary_name(AdversaryKind::kRelocRoving));
}

}  // namespace
}  // namespace rasc::apps
