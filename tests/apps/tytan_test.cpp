#include "src/apps/tytan.hpp"

#include <gtest/gtest.h>

namespace rasc::apps {
namespace {

TEST(Tytan, SingleProcessMalwareIsCaught) {
  // The measured process is frozen during its own measurement: the
  // malware cannot move and its region's digest convicts it.
  TytanConfig config;
  config.colluding = false;
  const auto outcome = run_tytan_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.detected_in_a);
  EXPECT_FALSE(outcome.detected_in_b);
  EXPECT_FALSE(outcome.malware_escaped);
  EXPECT_EQ(outcome.relocations, 0u);
}

TEST(Tytan, CollusiveMalwareDefeatsPerProcessMeasurement) {
  // Paper Section 3.1: "malware that is spread over several colluding
  // processes can defeat this countermeasure" — the body shuttles into
  // whichever region is not frozen.
  TytanConfig config;
  config.colluding = true;
  const auto outcome = run_tytan_scenario(config);
  ASSERT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.detected_in_a);
  EXPECT_FALSE(outcome.detected_in_b);
  EXPECT_TRUE(outcome.malware_escaped);
  EXPECT_GE(outcome.relocations, 2u);  // A -> B and back
}

TEST(Tytan, CollusionRequiresIsolationViolation) {
  // With MPU isolation intact (lock the other region as the OS would
  // enforce), the cross-process write fails and the malware is caught.
  // We model this by shrinking region B to zero writable room: the
  // simplest check here is that the non-colluding path (isolation held)
  // detects, which the first test covers; this test pins the relocation
  // count to confirm moves only happen when collusion is enabled.
  TytanConfig honest;
  honest.colluding = false;
  EXPECT_EQ(run_tytan_scenario(honest).relocations, 0u);
  TytanConfig colluding;
  colluding.colluding = true;
  EXPECT_GT(run_tytan_scenario(colluding).relocations, 0u);
}

TEST(Tytan, DifferentRegionSizesWork) {
  for (std::size_t blocks : {4u, 8u, 32u}) {
    TytanConfig config;
    config.region_blocks = blocks;
    config.colluding = true;
    const auto outcome = run_tytan_scenario(config);
    ASSERT_TRUE(outcome.completed) << blocks;
    EXPECT_TRUE(outcome.malware_escaped) << blocks;
  }
}

TEST(Tytan, DeterministicPerSeed) {
  TytanConfig config;
  config.colluding = true;
  config.seed = 9;
  const auto a = run_tytan_scenario(config);
  const auto b = run_tytan_scenario(config);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.relocations, b.relocations);
}

}  // namespace
}  // namespace rasc::apps
