#include "src/mtree/incremental.hpp"

#include <gtest/gtest.h>

#include "src/crypto/hash.hpp"
#include "src/support/rng.hpp"

namespace rasc::mtree {
namespace {

constexpr std::size_t kBlocks = 16;
constexpr std::size_t kBlockSize = 64;

IncrementalTree::LeafDigestFn sha_leaf() {
  return [](std::size_t, support::ByteView content, Digest& out) {
    const auto hash = crypto::make_hash(crypto::HashKind::kSha256);
    hash->update(content);
    hash->finalize_into(out.prepare(hash->digest_size()));
  };
}

struct Fixture {
  sim::DeviceMemory memory{kBlocks * kBlockSize, kBlockSize};
  IncrementalTree tree;

  Fixture() : tree(memory, crypto::HashKind::kSha256, sha_leaf()) {
    support::Xoshiro256 rng(99);
    support::Bytes image(memory.size());
    for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
    memory.load(image);
  }

  void write_byte(std::size_t block, std::uint8_t value) {
    memory.write(block * kBlockSize, support::Bytes{value}, /*now=*/0,
                 sim::Actor::kApplication);
  }
};

TEST(IncrementalTree, StartsUnprimedAndRefreshPrimes) {
  Fixture fx;
  EXPECT_FALSE(fx.tree.primed());
  const RehashStats stats = fx.tree.refresh();
  EXPECT_TRUE(fx.tree.primed());
  EXPECT_EQ(stats.dirty_leaves, kBlocks);
  EXPECT_FALSE(fx.tree.root_bytes().empty());
}

TEST(IncrementalTree, RefreshRehashesOnlyDirtyBlocks) {
  Fixture fx;
  fx.tree.refresh();
  fx.write_byte(3, 0xaa);
  fx.write_byte(12, 0xbb);
  EXPECT_EQ(fx.tree.dirty_blocks(), (std::vector<std::size_t>{3, 12}));
  const RehashStats stats = fx.tree.refresh();
  EXPECT_EQ(stats.dirty_leaves, 2u);
  EXPECT_LT(stats.nodes_rehashed, 2 * kBlocks);
  EXPECT_TRUE(fx.tree.dirty_blocks().empty());
}

TEST(IncrementalTree, GenerationBumpWithoutContentChangeStillRehashesButRootHolds) {
  Fixture fx;
  fx.tree.refresh();
  const support::Bytes before = fx.tree.root_bytes();
  // Rewrite a block with its own bytes: generation moves, digest doesn't.
  const support::ByteView view = fx.memory.block_view(7);
  const support::Bytes same(view.begin(), view.end());
  fx.memory.write(7 * kBlockSize, same, /*now=*/0, sim::Actor::kApplication);
  const RehashStats stats = fx.tree.refresh();
  EXPECT_EQ(stats.dirty_leaves, 1u);
  EXPECT_EQ(fx.tree.root_bytes(), before);
}

TEST(IncrementalTree, ObservedModeMatchesScanMode) {
  Fixture scan, observed;
  observed.memory.load(support::Bytes(scan.memory.read(0, scan.memory.size()).begin(),
                                      scan.memory.read(0, scan.memory.size()).end()));
  observed.memory.set_generation_observer(
      [&observed](std::size_t block) { observed.tree.note_block_changed(block); });
  observed.tree.use_observed_dirty(true);
  scan.tree.refresh();
  observed.tree.refresh();

  support::Xoshiro256 rng(5);
  for (int round = 0; round < 12; ++round) {
    const std::size_t dirty = static_cast<std::size_t>(rng.below(4));
    for (std::size_t d = 0; d < dirty; ++d) {
      const std::size_t block = static_cast<std::size_t>(rng.below(kBlocks));
      const std::uint8_t value = static_cast<std::uint8_t>(rng.below(256));
      scan.write_byte(block, value);
      observed.write_byte(block, value);
    }
    scan.tree.refresh();
    observed.tree.refresh();
    ASSERT_EQ(scan.tree.root_bytes(), observed.tree.root_bytes()) << round;
  }
}

TEST(IncrementalTree, SplitRefreshMatchesMonolithicRefresh) {
  Fixture split, mono;
  mono.memory.load(support::Bytes(split.memory.read(0, split.memory.size()).begin(),
                                  split.memory.read(0, split.memory.size()).end()));
  split.tree.refresh();
  mono.tree.refresh();
  split.write_byte(1, 0x11);
  split.write_byte(9, 0x22);
  mono.write_byte(1, 0x11);
  mono.write_byte(9, 0x22);

  const std::vector<std::size_t> dirty = split.tree.collect_dirty();
  EXPECT_EQ(dirty, (std::vector<std::size_t>{1, 9}));
  for (const std::size_t block : dirty) split.tree.refresh_one(block);
  const RehashStats split_stats = split.tree.flush_tree();
  const RehashStats mono_stats = mono.tree.refresh();
  EXPECT_EQ(split_stats.dirty_leaves, mono_stats.dirty_leaves);
  EXPECT_EQ(split_stats.nodes_rehashed, mono_stats.nodes_rehashed);
  EXPECT_EQ(split.tree.root_bytes(), mono.tree.root_bytes());
}

TEST(IncrementalTree, ObservedNoteSurvivesAbortedCollect) {
  Fixture fx;
  fx.memory.set_generation_observer(
      [&fx](std::size_t block) { fx.tree.note_block_changed(block); });
  fx.tree.use_observed_dirty(true);
  fx.tree.refresh();
  fx.write_byte(4, 0xcc);
  // A round collects the dirty block but aborts before refreshing it.
  EXPECT_EQ(fx.tree.collect_dirty(), (std::vector<std::size_t>{4}));
  // The next round must still see it — the note is not consumed until
  // refresh_one() lands the new digest.
  EXPECT_EQ(fx.tree.collect_dirty(), (std::vector<std::size_t>{4}));
  fx.tree.refresh_one(4);
  fx.tree.flush_tree();
  EXPECT_TRUE(fx.tree.collect_dirty().empty());
}

TEST(IncrementalTree, ProveRangeCarriesLiveGenerations) {
  Fixture fx;
  fx.tree.refresh();
  fx.write_byte(2, 0xdd);
  fx.tree.refresh();
  const MtreeProof proof = fx.tree.prove_range(2, 1);
  EXPECT_TRUE(proof.verify(fx.tree.root_bytes()));
  ASSERT_EQ(proof.generations.size(), 1u);
  EXPECT_EQ(proof.generations[0], fx.memory.block_generation(2));
}

TEST(IncrementalTree, MemoryBytesIncludesTreeAndTracking) {
  Fixture fx;
  EXPECT_GT(fx.tree.memory_bytes(), fx.tree.tree().memory_bytes());
}

}  // namespace
}  // namespace rasc::mtree
