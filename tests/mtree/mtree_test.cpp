#include "src/mtree/mtree.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/support/rng.hpp"

namespace rasc::mtree {
namespace {

Digest digest_of(std::uint64_t tag) {
  support::Bytes bytes(32);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>((tag >> (8 * (i % 8))) ^ i);
  }
  return Digest(support::ByteView(bytes));
}

MerkleTree make_tree(std::size_t leaves, std::uint64_t salt = 0) {
  MerkleTree tree(leaves, crypto::HashKind::kSha256);
  for (std::size_t i = 0; i < leaves; ++i) tree.set_leaf(i, digest_of(salt + i));
  tree.flush();
  return tree;
}

TEST(MerkleTree, RootThrowsWhileDirty) {
  MerkleTree tree(4, crypto::HashKind::kSha256);
  tree.set_leaf(0, digest_of(1));
  EXPECT_TRUE(tree.dirty());
  EXPECT_THROW(tree.root(), std::logic_error);
  tree.flush();
  EXPECT_FALSE(tree.dirty());
  EXPECT_NO_THROW(tree.root());
}

TEST(MerkleTree, SingleLeafTreeHasARoot) {
  const MerkleTree tree = make_tree(1);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_FALSE(tree.root_bytes().empty());
}

TEST(MerkleTree, RootDependsOnEveryLeaf) {
  for (std::size_t leaves : {2u, 3u, 5u, 8u, 13u}) {
    const MerkleTree base = make_tree(leaves);
    for (std::size_t changed = 0; changed < leaves; ++changed) {
      MerkleTree tree = make_tree(leaves);
      tree.set_leaf(changed, digest_of(0x9999 + changed));
      tree.flush();
      EXPECT_NE(tree.root(), base.root()) << leaves << " leaves, leaf " << changed;
    }
  }
}

TEST(MerkleTree, WidthIsDomainSeparated) {
  // Same leaves, different tree width -> different root (padding leaves
  // hash differently from absent ones).
  MerkleTree narrow(3, crypto::HashKind::kSha256);
  MerkleTree wide(4, crypto::HashKind::kSha256);
  for (std::size_t i = 0; i < 3; ++i) {
    narrow.set_leaf(i, digest_of(i));
    wide.set_leaf(i, digest_of(i));
  }
  wide.set_leaf(3, Digest());
  narrow.flush();
  wide.flush();
  EXPECT_NE(narrow.root(), wide.root());
}

TEST(MerkleTree, IncrementalFlushEqualsRebuild) {
  support::Xoshiro256 rng(42);
  MerkleTree tree = make_tree(11);
  for (int round = 0; round < 20; ++round) {
    const std::size_t dirty = 1 + static_cast<std::size_t>(rng.below(4));
    for (std::size_t d = 0; d < dirty; ++d) {
      tree.set_leaf(static_cast<std::size_t>(rng.below(11)),
                    digest_of(rng()));
    }
    tree.flush();
    // Reference: fresh tree over the same leaf digests.
    MerkleTree reference(11, crypto::HashKind::kSha256);
    for (std::size_t i = 0; i < 11; ++i) reference.set_leaf(i, tree.leaf_digest(i));
    reference.rebuild();
    ASSERT_EQ(tree.root(), reference.root()) << "round " << round;
  }
}

TEST(MerkleTree, FlushCountsAreSubLinearForOneDirtyLeaf) {
  MerkleTree tree = make_tree(256);
  tree.set_leaf(17, digest_of(0xfeed));
  const RehashStats stats = tree.flush();
  EXPECT_EQ(stats.dirty_leaves, 1u);
  // Leaf + path to root of a 256-leaf tree: 9 nodes.
  EXPECT_EQ(stats.nodes_rehashed, 9u);
}

TEST(MerkleTree, RedundantSetLeafIsOneFlushPath) {
  MerkleTree tree = make_tree(64);
  tree.set_leaf(5, digest_of(1000));
  tree.set_leaf(5, digest_of(1001));
  const RehashStats stats = tree.flush();
  EXPECT_EQ(stats.dirty_leaves, 1u);
  EXPECT_EQ(stats.nodes_rehashed, 7u);  // log2(64) + 1
}

TEST(MerkleTree, PlanRehashPredictsFlush) {
  support::Xoshiro256 rng(7);
  for (int round = 0; round < 10; ++round) {
    MerkleTree tree = make_tree(37, /*salt=*/round);
    std::vector<std::size_t> leaves;
    const std::size_t dirty = 1 + static_cast<std::size_t>(rng.below(8));
    for (std::size_t d = 0; d < dirty; ++d) {
      leaves.push_back(static_cast<std::size_t>(rng.below(37)));
    }
    const std::size_t planned = tree.plan_rehash(leaves);
    for (const std::size_t leaf : leaves) tree.set_leaf(leaf, digest_of(rng()));
    const RehashStats stats = tree.flush();
    EXPECT_EQ(planned, stats.nodes_rehashed) << "round " << round;
  }
}

TEST(MerkleTree, PlanRehashRejectsOutOfRangeLeaf) {
  const MerkleTree tree = make_tree(8);
  EXPECT_THROW(tree.plan_rehash({8}), std::out_of_range);
}

TEST(MerkleTree, CombineRootsIsOrderSensitive) {
  const Digest a = digest_of(1), b = digest_of(2);
  const Digest ab = MerkleTree::combine_roots({a, b}, crypto::HashKind::kSha256);
  const Digest ba = MerkleTree::combine_roots({b, a}, crypto::HashKind::kSha256);
  EXPECT_NE(ab, ba);
  EXPECT_EQ(ab, MerkleTree::combine_roots({a, b}, crypto::HashKind::kSha256));
}

TEST(MerkleTree, MemoryBytesGrowsWithLeafCount) {
  const MerkleTree small = make_tree(8);
  const MerkleTree large = make_tree(256);
  EXPECT_GT(small.memory_bytes(), 0u);
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
}

TEST(MtreeProof, VerifiesAndRoundTripsWire) {
  const MerkleTree tree = make_tree(29);
  const support::Bytes root = tree.root_bytes();
  for (const auto [first, count] :
       {std::pair<std::size_t, std::size_t>{0, 1}, {28, 1}, {3, 7}, {0, 29}}) {
    const MtreeProof proof = tree.prove_range(first, count);
    EXPECT_TRUE(proof.verify(root)) << first << "+" << count;

    const support::Bytes wire = proof.serialize();
    std::size_t pos = 0;
    const auto parsed = MtreeProof::parse(wire, pos);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(pos, wire.size());
    EXPECT_EQ(parsed->first_leaf, proof.first_leaf);
    EXPECT_EQ(parsed->leaf_count, proof.leaf_count);
    EXPECT_EQ(parsed->total_leaves, proof.total_leaves);
    EXPECT_EQ(parsed->leaves, proof.leaves);
    EXPECT_EQ(parsed->siblings, proof.siblings);
    EXPECT_EQ(parsed->generations, proof.generations);
    EXPECT_TRUE(parsed->verify(root));
  }
}

TEST(MtreeProof, CarriesGenerationSnapshot) {
  const MerkleTree tree = make_tree(8);
  std::vector<std::uint64_t> generations{10, 11, 12, 13, 14, 15, 16, 17};
  const MtreeProof proof = tree.prove_range(2, 3, &generations);
  ASSERT_EQ(proof.generations.size(), 3u);
  EXPECT_EQ(proof.generations[0], 12u);
  EXPECT_EQ(proof.generations[2], 14u);
}

TEST(MtreeProof, RejectsWrongRootAndStructuralNonsense) {
  const MerkleTree tree = make_tree(16);
  MtreeProof proof = tree.prove_range(4, 4);
  support::Bytes other_root = tree.root_bytes();
  other_root[0] ^= 0x01;
  EXPECT_FALSE(proof.verify(other_root));
  EXPECT_FALSE(proof.verify(support::Bytes{}));

  MtreeProof empty = proof;
  empty.leaf_count = 0;
  empty.leaves.clear();
  empty.generations.clear();
  EXPECT_FALSE(empty.verify(tree.root_bytes()));

  MtreeProof outside = proof;
  outside.first_leaf = 15;  // 15 + 4 > 16
  EXPECT_FALSE(outside.verify(tree.root_bytes()));
}

TEST(MtreeProof, ParseRejectsTruncation) {
  const MerkleTree tree = make_tree(8);
  const support::Bytes wire = tree.prove_range(1, 3).serialize();
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    std::size_t pos = 0;
    const auto parsed =
        MtreeProof::parse(support::ByteView(wire.data(), cut), pos);
    EXPECT_FALSE(parsed.has_value()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace rasc::mtree
