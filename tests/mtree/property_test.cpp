/// Randomized property tests for the Merkle tree (ISSUE 8 satellite):
///  - the root is invariant under the order dirty writes land and always
///    equals a from-scratch rebuild over the same leaf digests;
///  - any single-bit tamper in a proof's carried leaf digests or sibling
///    hashes fails verification against the true root.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/mtree/mtree.hpp"
#include "src/support/rng.hpp"

namespace rasc::mtree {
namespace {

Digest random_digest(support::Xoshiro256& rng) {
  support::Bytes bytes(32);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return Digest(support::ByteView(bytes));
}

TEST(MtreeProperty, RootInvariantUnderWriteOrderAndEqualsRebuild) {
  support::Xoshiro256 rng(0x5eed);
  for (int iteration = 0; iteration < 25; ++iteration) {
    const std::size_t leaves = 1 + static_cast<std::size_t>(rng.below(40));
    // One batch of (leaf, digest) updates; the last write per leaf wins.
    std::vector<std::pair<std::size_t, Digest>> updates;
    const std::size_t count = 1 + static_cast<std::size_t>(rng.below(3 * leaves));
    for (std::size_t u = 0; u < count; ++u) {
      updates.emplace_back(static_cast<std::size_t>(rng.below(leaves)),
                           random_digest(rng));
    }
    // Deduplicate to last-write-wins so permuted application orders agree.
    std::vector<bool> seen(leaves, false);
    std::vector<std::pair<std::size_t, Digest>> final_updates;
    for (auto it = updates.rbegin(); it != updates.rend(); ++it) {
      if (seen[it->first]) continue;
      seen[it->first] = true;
      final_updates.push_back(*it);
    }

    MerkleTree base(leaves, crypto::HashKind::kSha256);
    for (std::size_t i = 0; i < leaves; ++i) base.set_leaf(i, random_digest(rng));
    base.flush();

    // Apply the same updates in several random orders, flushing at random
    // boundaries; every ordering must converge to the same root.
    std::optional<Digest> expected;
    for (int order = 0; order < 4; ++order) {
      MerkleTree tree(leaves, crypto::HashKind::kSha256);
      for (std::size_t i = 0; i < leaves; ++i) tree.set_leaf(i, base.leaf_digest(i));
      tree.flush();
      auto shuffled = final_updates;
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        std::swap(shuffled[i - 1], shuffled[static_cast<std::size_t>(rng.below(i))]);
      }
      for (const auto& [leaf, digest] : shuffled) {
        tree.set_leaf(leaf, digest);
        if (rng.below(3) == 0) tree.flush();  // interleaved partial flushes
      }
      tree.flush();
      if (!expected) {
        expected = tree.root();
      } else {
        ASSERT_EQ(tree.root(), *expected) << "iteration " << iteration;
      }
      // And the incremental result equals a from-scratch rebuild.
      MerkleTree rebuilt(leaves, crypto::HashKind::kSha256);
      for (std::size_t i = 0; i < leaves; ++i) rebuilt.set_leaf(i, tree.leaf_digest(i));
      rebuilt.rebuild();
      ASSERT_EQ(rebuilt.root(), *expected) << "iteration " << iteration;
    }
  }
}

TEST(MtreeProperty, SingleBitTamperInProofFailsVerification) {
  support::Xoshiro256 rng(0x7a3b);
  for (int iteration = 0; iteration < 20; ++iteration) {
    const std::size_t leaves = 2 + static_cast<std::size_t>(rng.below(30));
    MerkleTree tree(leaves, crypto::HashKind::kSha256);
    for (std::size_t i = 0; i < leaves; ++i) tree.set_leaf(i, random_digest(rng));
    tree.flush();
    const support::Bytes root = tree.root_bytes();

    const std::size_t first = static_cast<std::size_t>(rng.below(leaves));
    const std::size_t count =
        1 + static_cast<std::size_t>(rng.below(leaves - first));
    const MtreeProof proof = tree.prove_range(first, count);
    ASSERT_TRUE(proof.verify(root));

    // Flip one random bit in one random carried leaf digest.
    {
      MtreeProof tampered = proof;
      const std::size_t leaf = static_cast<std::size_t>(rng.below(count));
      support::Bytes bytes = tampered.leaves[leaf].to_bytes();
      bytes[static_cast<std::size_t>(rng.below(bytes.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      tampered.leaves[leaf].assign(bytes);
      EXPECT_FALSE(tampered.verify(root)) << "iteration " << iteration;
    }

    // Flip one random bit in one random sibling hash (when any exist —
    // a full-width proof over a 1-level tree carries none).
    if (!proof.siblings.empty()) {
      MtreeProof tampered = proof;
      const std::size_t sibling =
          static_cast<std::size_t>(rng.below(tampered.siblings.size()));
      support::Bytes bytes = tampered.siblings[sibling].to_bytes();
      bytes[static_cast<std::size_t>(rng.below(bytes.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      tampered.siblings[sibling].assign(bytes);
      EXPECT_FALSE(tampered.verify(root)) << "iteration " << iteration;
    }

    // Shifting the claimed range must fail too (binding, not just value).
    if (first + count < leaves) {
      MtreeProof shifted = proof;
      shifted.first_leaf += 1;
      EXPECT_FALSE(shifted.verify(root)) << "iteration " << iteration;
    }
  }
}

}  // namespace
}  // namespace rasc::mtree
