/// DARPA-style physical-attack detection: a removed device (and anything
/// routed through it) shows up as *absent* in the swarm round.

#include <gtest/gtest.h>

#include "src/swarm/swarm.hpp"

namespace rasc::swarm {
namespace {

SwarmConfig config_of(std::size_t n) {
  SwarmConfig config;
  config.device_count = n;
  config.branching = 2;
  return config;
}

TEST(Absence, RemovedLeafIsReportedAbsent) {
  const auto result = run_swarm_attestation(config_of(15),
                                            SwarmProtocol::kCollectiveTree, {}, {9});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.absent_ids, (std::vector<std::size_t>{9}));
  EXPECT_EQ(result.reported_good, 14u);
  EXPECT_TRUE(result.aggregate_authentic);
}

TEST(Absence, RemovedInnerNodeCutsOffItsSubtree) {
  // Node 1's subtree in a 15-node binary tree: {1,3,4,7,8,9,10}.
  const auto result = run_swarm_attestation(config_of(15),
                                            SwarmProtocol::kCollectiveTree, {}, {1});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.absent_ids, (std::vector<std::size_t>{1, 3, 4, 7, 8, 9, 10}));
  EXPECT_EQ(result.reported_good, 8u);
  EXPECT_TRUE(result.aggregate_authentic);
}

TEST(Absence, RemovedRootMeansTotalSilence) {
  const auto result = run_swarm_attestation(config_of(7),
                                            SwarmProtocol::kCollectiveTree, {}, {0});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.absent_ids.size(), 7u);
  EXPECT_EQ(result.reported_good, 0u);
  EXPECT_FALSE(result.aggregate_authentic);  // nothing to authenticate
}

TEST(Absence, AbsenceAndInfectionCoexist) {
  const auto result = run_swarm_attestation(config_of(15),
                                            SwarmProtocol::kCollectiveTree, {2}, {9});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.failed_ids, (std::vector<std::size_t>{2}));
  EXPECT_EQ(result.absent_ids, (std::vector<std::size_t>{9}));
  EXPECT_EQ(result.reported_good, 13u);
  EXPECT_TRUE(result.aggregate_authentic);
}

TEST(Absence, TimeoutDelaysButCompletesTheRound) {
  SwarmConfig config = config_of(15);
  const auto clean =
      run_swarm_attestation(config, SwarmProtocol::kCollectiveTree, {}, {});
  const auto with_absent =
      run_swarm_attestation(config, SwarmProtocol::kCollectiveTree, {}, {9});
  EXPECT_GT(with_absent.total_time, clean.total_time);
  EXPECT_GE(with_absent.total_time, config.child_timeout);
}

TEST(Absence, StarProtocolAlsoFlagsAbsentDevices) {
  const auto result =
      run_swarm_attestation(config_of(7), SwarmProtocol::kNaiveStar, {}, {3, 5});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.absent_ids, (std::vector<std::size_t>{3, 5}));
  EXPECT_EQ(result.reported_good, 5u);
}

TEST(Absence, NoRemovalsNoAbsents) {
  const auto result =
      run_swarm_attestation(config_of(31), SwarmProtocol::kCollectiveTree, {}, {});
  EXPECT_TRUE(result.absent_ids.empty());
}

}  // namespace
}  // namespace rasc::swarm
