/// Swarm-scale Merkle aggregation (ISSUE 8): per-device roots fold up the
/// spanning tree into one swarm digest, and comparing top-level subtree
/// roots localizes which branch holds a compromised device.

#include <gtest/gtest.h>

#include "src/swarm/swarm.hpp"

namespace rasc::swarm {
namespace {

SwarmConfig base_config() {
  SwarmConfig config;
  config.device_count = 15;  // full binary tree, depth 4
  config.branching = 2;
  return config;
}

TEST(SwarmRoots, CleanSwarmMatchesExpectation) {
  const SwarmRootAggregate agg = aggregate_swarm_roots(base_config(), {});
  EXPECT_TRUE(agg.matches);
  EXPECT_EQ(agg.root, agg.expected_root);
  EXPECT_FALSE(agg.root.empty());
  EXPECT_TRUE(agg.suspect_subtrees.empty());
  EXPECT_EQ(agg.child_roots.size(), 2u);  // device 0's children: 1 and 2
}

TEST(SwarmRoots, IsDeterministic) {
  const SwarmRootAggregate a = aggregate_swarm_roots(base_config(), {9});
  const SwarmRootAggregate b = aggregate_swarm_roots(base_config(), {9});
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.expected_root, b.expected_root);
  EXPECT_EQ(a.suspect_subtrees, b.suspect_subtrees);
}

TEST(SwarmRoots, RootDependsOnGroupKey) {
  SwarmConfig other = base_config();
  other.group_key = support::to_bytes("different-group-key");
  EXPECT_NE(aggregate_swarm_roots(base_config(), {}).root,
            aggregate_swarm_roots(other, {}).root);
}

TEST(SwarmRoots, LocalizesInfectionToTopLevelBranch) {
  // With branching 2 and 15 devices, device 9 sits in child 1's subtree
  // (1 -> 4 -> 9) and device 13 in child 2's (2 -> 6 -> 13).
  {
    const SwarmRootAggregate agg = aggregate_swarm_roots(base_config(), {9});
    EXPECT_FALSE(agg.matches);
    EXPECT_EQ(agg.suspect_subtrees, (std::vector<std::size_t>{1}));
  }
  {
    const SwarmRootAggregate agg = aggregate_swarm_roots(base_config(), {13});
    EXPECT_FALSE(agg.matches);
    EXPECT_EQ(agg.suspect_subtrees, (std::vector<std::size_t>{2}));
  }
  {
    const SwarmRootAggregate agg = aggregate_swarm_roots(base_config(), {9, 13});
    EXPECT_FALSE(agg.matches);
    EXPECT_EQ(agg.suspect_subtrees, (std::vector<std::size_t>{1, 2}));
  }
}

TEST(SwarmRoots, InfectedRootDeviceIsItsOwnSuspect) {
  const SwarmRootAggregate agg = aggregate_swarm_roots(base_config(), {0});
  EXPECT_FALSE(agg.matches);
  EXPECT_EQ(agg.suspect_subtrees, (std::vector<std::size_t>{0}));
}

TEST(SwarmRoots, ChildRootCountClampsToSwarmSize) {
  SwarmConfig tiny = base_config();
  tiny.device_count = 2;  // device 0 has a single child
  tiny.branching = 4;
  const SwarmRootAggregate agg = aggregate_swarm_roots(tiny, {});
  EXPECT_EQ(agg.child_roots.size(), 1u);
  EXPECT_TRUE(agg.matches);

  SwarmConfig solo = base_config();
  solo.device_count = 1;  // root only: the aggregate is its own leaf fold
  const SwarmRootAggregate alone = aggregate_swarm_roots(solo, {});
  EXPECT_TRUE(alone.child_roots.empty());
  EXPECT_TRUE(alone.matches);
  EXPECT_FALSE(alone.root.empty());
}

TEST(SwarmRoots, WideBranchingStillLocalizes) {
  SwarmConfig wide = base_config();
  wide.device_count = 13;
  wide.branching = 3;  // children of 0: 1, 2, 3; child of 3: 10, 11, 12
  const SwarmRootAggregate agg = aggregate_swarm_roots(wide, {11});
  ASSERT_EQ(agg.child_roots.size(), 3u);
  EXPECT_FALSE(agg.matches);
  EXPECT_EQ(agg.suspect_subtrees, (std::vector<std::size_t>{3}));
}

}  // namespace
}  // namespace rasc::swarm
